"""Legacy setup shim.

This environment ships setuptools without the ``wheel`` package, so PEP
660 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` take the legacy ``setup.py develop``
path instead.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
