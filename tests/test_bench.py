"""Tests for the benchmark-trajectory layer (repro.obs.bench).

Covers KPI extraction (per-figure and the generic fallback), the timed
bench harness, trajectory append/load/validate round trips, record
comparison semantics (tolerances, schema drift, incomparable machines),
and the ``bench``/``compare`` CLI subcommands with their exit codes.
"""

import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.experiments import common
from repro.experiments.registry import EXPERIMENTS
from repro.obs import bench
from repro.obs.manifest import drain_run_log, machine_fingerprint
from repro.sim.config import MachineConfig
from repro.sim.single_core import simulate
from repro.workloads.irregular import chain_trace

MACHINE = MachineConfig.scaled(16)


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    common.clear_caches()
    drain_run_log()
    yield
    obs.disable()
    common.clear_caches()
    drain_run_log()


class _StubExperiment:
    """A registry-shaped experiment that runs instantly."""

    __doc__ = "Stub experiment for bench tests."
    calls = 0

    @staticmethod
    def run(quick=False):
        _StubExperiment.calls += 1
        table = common.ExperimentTable(
            title="stub", headers=["benchmark", "speedup", "label"]
        )
        table.add("alpha", 1.5, "x")
        table.add("geomean", 1.25, "y")
        return table

    main = run


class _StubWithKpis(_StubExperiment):
    @staticmethod
    def kpis(table):
        return {"speedup_geomean": table.row("geomean")[1]}


def _record(**overrides):
    """A minimal schema-valid record for comparison tests."""
    record = {
        "schema": bench.SCHEMA_VERSION,
        "experiment": "stub",
        "quick": True,
        "repeats": 2,
        "warmup": 1,
        "created_unix": 1.0,
        "kpis": {"speedup": 1.25, "coverage": 0.4},
        "wall_times_s": [1.0, 1.1],
        "wall_time_mean_s": 1.05,
        "wall_time_min_s": 1.0,
        "accesses_total": 1000,
        "throughput_accesses_per_s": 952.4,
        "peak_rss_kb": 1,
        "cache": {"enabled": False, "hits": 0, "misses": 0},
        "cell_latency_s": {"count": 0, "p50": 0.0, "p95": 0.0},
        "fingerprint": machine_fingerprint(),
    }
    record.update(overrides)
    return record


# ---------------------------------------------------------------------------
# fingerprint
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_deterministic_within_process(self):
        assert machine_fingerprint() == machine_fingerprint()

    def test_required_fields(self):
        fp = machine_fingerprint()
        for key in ("python", "cpu_count", "package_version", "system"):
            assert key in fp
        assert fp["cpu_count"] >= 1

    def test_returns_a_copy(self):
        fp = machine_fingerprint()
        fp["cpu_count"] = -1
        assert machine_fingerprint()["cpu_count"] >= 1


# ---------------------------------------------------------------------------
# KPI extraction
# ---------------------------------------------------------------------------


class TestKpiExtraction:
    def test_generic_fallback_uses_last_row_numeric_cells(self):
        table = _StubExperiment.run()
        kpis = bench.table_kpis(table)
        assert kpis == {"speedup": 1.25}  # strings and the label col drop out

    def test_module_kpis_hook_wins(self):
        table = _StubWithKpis.run()
        kpis = bench.kpis_for("stub", _StubWithKpis, table)
        assert kpis == {"speedup_geomean": 1.25}

    def test_figure_modules_define_kpis(self):
        for name in ("fig01", "fig05", "fig06", "fig11", "fig19"):
            assert callable(getattr(EXPERIMENTS[name], "kpis", None)), name

    def test_simulation_kpis(self):
        trace = chain_trace("kpi", 4_000, seed=3, hot_lines=64, cold_lines=256)
        result = simulate(trace, None, machine=MACHINE)
        kpis = bench.simulation_kpis(result)
        assert set(kpis) >= {"ipc", "coverage", "accuracy", "traffic_bytes"}
        assert kpis["ipc"] > 0
        drain_run_log()

    def test_fig05_kpis_shape(self):
        from repro.experiments import fig05_irregular_speedup as fig05

        table = common.ExperimentTable(
            title="f", headers=["benchmark"] + fig05.CONFIGS
        )
        table.add("geomean", *[1.0 + i / 10 for i in range(len(fig05.CONFIGS))])
        kpis = fig05.kpis(table)
        assert kpis["speedup_geomean.bo"] == 1.0
        assert len(kpis) == len(fig05.CONFIGS)


# ---------------------------------------------------------------------------
# trajectory files
# ---------------------------------------------------------------------------


class TestTrajectory:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_stub.json"
        bench.append_record(path, _record())
        bench.append_record(path, _record(created_unix=2.0))
        records = bench.load_trajectory(path)
        assert len(records) == 2
        assert records[0]["created_unix"] == 1.0  # append-only: order kept
        for record in records:
            bench.validate_record(record)

    def test_load_missing_file_is_empty(self, tmp_path):
        assert bench.load_trajectory(tmp_path / "nope.json") == []

    def test_load_rejects_non_array(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"schema": 1}')
        with pytest.raises(bench.BenchSchemaError, match="JSON array"):
            bench.load_trajectory(path)

    def test_validate_rejects_missing_field(self):
        record = _record()
        del record["kpis"]
        with pytest.raises(bench.BenchSchemaError, match="kpis"):
            bench.validate_record(record)

    def test_validate_rejects_wrong_type(self):
        with pytest.raises(bench.BenchSchemaError, match="wall_time_mean_s"):
            bench.validate_record(_record(wall_time_mean_s="fast"))

    def test_validate_rejects_future_schema(self):
        with pytest.raises(bench.BenchSchemaError, match="schema"):
            bench.validate_record(_record(schema=bench.SCHEMA_VERSION + 1))

    def test_validate_rejects_non_numeric_kpi(self):
        with pytest.raises(bench.BenchSchemaError, match="not numeric"):
            bench.validate_record(_record(kpis={"speedup": "fast"}))


# ---------------------------------------------------------------------------
# the timed harness
# ---------------------------------------------------------------------------


class TestBenchExperiment:
    def test_record_is_schema_valid(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "stub", _StubWithKpis)
        record = bench.bench_experiment("stub", repeats=2, warmup=1, quick=True)
        bench.validate_record(record)
        assert record["experiment"] == "stub"
        assert record["repeats"] == 2
        assert len(record["wall_times_s"]) == 2
        assert record["kpis"] == {"speedup_geomean": 1.25}
        assert record["fingerprint"] == machine_fingerprint()
        assert record["quick"] is True

    def test_warmup_runs_are_untimed(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "stub", _StubExperiment)
        _StubExperiment.calls = 0
        record = bench.bench_experiment("stub", repeats=3, warmup=2)
        assert _StubExperiment.calls == 5
        assert len(record["wall_times_s"]) == 3

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            bench.bench_experiment("fig99")

    def test_bad_repeats_raises(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "stub", _StubExperiment)
        with pytest.raises(ValueError, match="repeats"):
            bench.bench_experiment("stub", repeats=0)

    def test_obs_session_restored(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "stub", _StubExperiment)
        bench.bench_experiment("stub", repeats=1, warmup=0)
        assert obs.get_session() is None  # ephemeral session torn down
        mine = obs.enable()
        bench.bench_experiment("stub", repeats=1, warmup=0)
        assert obs.get_session() is mine  # existing session left in place

    def test_cell_latencies_harvested_from_parallel_events(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "grid", _GridExperiment)
        monkeypatch.setenv("REPRO_JOBS", "2")
        record = bench.bench_experiment("grid", repeats=1, warmup=0, quick=True)
        cell = record["cell_latency_s"]
        assert cell["count"] == len(_GridExperiment.BENCHES)
        assert cell["p95"] >= cell["p50"] > 0
        assert record["accesses_total"] > 0
        assert record["throughput_accesses_per_s"] > 0


class _GridExperiment:
    """An experiment whose run() fans a small grid over run_cells."""

    __doc__ = "Grid stub exercising parallel cell timing."
    BENCHES = ("mcf", "omnetpp")

    @staticmethod
    def run(quick=False):
        common.warm_grid(_GridExperiment.BENCHES, ["none"], n=2_000, n_jobs=2)
        table = common.ExperimentTable(title="grid", headers=["benchmark", "ipc"])
        for name in _GridExperiment.BENCHES:
            table.add(name, common.run_single(name, "none", n=2_000).ipc)
        return table

    main = run


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


class TestCompare:
    def test_identical_records_pass(self):
        comparison = bench.compare_records(_record(), _record())
        assert comparison.ok
        assert "wall_time_mean_s" in [row[0] for row in comparison.rows]

    def test_kpi_within_tolerance_passes(self):
        candidate = _record()
        candidate["kpis"]["speedup"] *= 1.04
        assert bench.compare_records(_record(), candidate, kpi_tol=0.05).ok

    def test_kpi_past_tolerance_fails_both_directions(self):
        for factor in (1.10, 0.90):
            candidate = _record()
            candidate["kpis"]["speedup"] *= factor
            comparison = bench.compare_records(_record(), candidate, kpi_tol=0.05)
            assert not comparison.ok
            assert "speedup" in comparison.regressions[0]

    def test_removed_kpi_is_schema_drift(self):
        candidate = _record(kpis={"speedup": 1.25})
        comparison = bench.compare_records(_record(), candidate)
        assert not comparison.ok
        assert any("disappeared" in r for r in comparison.regressions)

    def test_new_kpi_is_noted_not_failed(self):
        candidate = _record()
        candidate["kpis"]["extra"] = 7.0
        comparison = bench.compare_records(_record(), candidate)
        assert comparison.ok
        assert any("new" in n for n in comparison.notes)

    def test_time_regression_fails(self):
        candidate = _record(wall_time_mean_s=2.0)
        comparison = bench.compare_records(_record(), candidate, time_tol=0.5)
        assert not comparison.ok
        assert any("wall time" in r for r in comparison.regressions)

    def test_time_improvement_passes(self):
        candidate = _record(wall_time_mean_s=0.1)
        assert bench.compare_records(_record(), candidate, time_tol=0.5).ok

    def test_different_fingerprint_skips_time_gate(self):
        fp = dict(machine_fingerprint(), cpu_count=999)
        candidate = _record(wall_time_mean_s=100.0, fingerprint=fp)
        comparison = bench.compare_records(_record(), candidate, time_tol=0.1)
        assert comparison.ok
        assert any("fingerprints differ" in n for n in comparison.notes)

    def test_different_quick_modes_skip_time_gate(self):
        candidate = _record(quick=False, wall_time_mean_s=100.0)
        comparison = bench.compare_records(_record(), candidate, time_tol=0.1)
        assert comparison.ok
        assert any("quick modes differ" in n for n in comparison.notes)

    def test_different_experiments_raise(self):
        with pytest.raises(bench.BenchSchemaError, match="cannot compare"):
            bench.compare_records(_record(), _record(experiment="other"))

    def test_render_includes_verdict(self):
        candidate = _record()
        candidate["kpis"]["speedup"] *= 2
        comparison = bench.compare_records(_record(), candidate)
        text = bench.render_comparison(comparison)
        assert "REGRESSION" in text and "verdict: REGRESSED" in text
        assert "speedup" in text

    def test_comparison_to_dict(self):
        payload = bench.compare_records(_record(), _record()).to_dict()
        assert payload["ok"] is True
        assert all("metric" in row for row in payload["rows"])
        json.dumps(payload)  # must be serializable for --json


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_bench_writes_trajectory(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "stub", _StubWithKpis)
        out = tmp_path / "BENCH_stub.json"
        assert main(
            ["bench", "stub", "--repeats", "2", "--warmup", "0",
             "--quick", "--out", str(out)]
        ) == 0
        records = bench.load_trajectory(out)
        assert len(records) == 1
        bench.validate_record(records[0])
        assert "speedup_geomean" in capsys.readouterr().out

    def test_bench_default_path_is_cwd(self, tmp_path, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "stub", _StubExperiment)
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "stub", "--repeats", "1", "--warmup", "0"]) == 0
        assert (tmp_path / "BENCH_stub.json").exists()

    def test_bench_no_append_and_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "stub", _StubExperiment)
        out = tmp_path / "BENCH_stub.json"
        assert main(
            ["bench", "stub", "--repeats", "1", "--warmup", "0",
             "--out", str(out), "--no-append", "--json"]
        ) == 0
        assert not out.exists()
        record = json.loads(capsys.readouterr().out)
        bench.validate_record(record)

    def test_bench_unknown_experiment_exits_2(self, capsys):
        assert main(["bench", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_compare_within_one_file(self, tmp_path, capsys):
        path = tmp_path / "BENCH_stub.json"
        bench.append_record(path, _record())
        bench.append_record(path, _record(created_unix=2.0))
        assert main(["compare", str(path)]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_compare_two_files_regression_exits_1(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        bench.append_record(base, _record())
        perturbed = _record()
        perturbed["kpis"]["speedup"] *= 1.5
        bench.append_record(cand, perturbed)
        assert main(["compare", str(base), str(cand)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_tolerance_flag_loosens_gate(self, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        bench.append_record(base, _record())
        perturbed = _record()
        perturbed["kpis"]["speedup"] *= 1.5
        bench.append_record(cand, perturbed)
        assert main(
            ["compare", str(base), str(cand), "--kpi-tol", "0.6"]
        ) == 0

    def test_compare_single_record_exits_2(self, tmp_path, capsys):
        path = tmp_path / "BENCH_stub.json"
        bench.append_record(path, _record())
        assert main(["compare", str(path)]) == 2
        assert "need two" in capsys.readouterr().err

    def test_compare_schema_drift_exits_2(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        broken = _record()
        del broken["fingerprint"]
        path.write_text(json.dumps([_record(), broken]))
        assert main(["compare", str(path)]) == 2
        assert "fingerprint" in capsys.readouterr().err

    def test_compare_json_output(self, tmp_path, capsys):
        path = tmp_path / "BENCH_stub.json"
        bench.append_record(path, _record())
        bench.append_record(path, _record(created_unix=2.0))
        assert main(["compare", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
