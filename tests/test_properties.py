"""Property-based tests (hypothesis) for core data structures."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.core.compressed_tags import CompressedTagTable
from repro.core.metadata_store import ENTRIES_PER_LINE, MetadataStore
from repro.core.training_unit import TrainingUnit
from repro.memory.cache import Cache
from repro.memory.hierarchy import CacheHierarchy
from repro.replacement.optgen import OptGen
from repro.sim.stats import geomean

lines = st.integers(min_value=0, max_value=255)
small_streams = st.lists(lines, min_size=1, max_size=300)


@settings(max_examples=40, deadline=None)
@given(small_streams)
def test_lru_cache_matches_reference_model(stream):
    """Our Cache with LRU behaves exactly like a textbook LRU dict."""
    ways, sets = 2, 4
    cache = Cache("m", sets * ways * 64, ways, policy="lru")
    model = [OrderedDict() for _ in range(sets)]

    for line in stream:
        outcome = cache.access(line)
        set_idx = line % sets
        bucket = model[set_idx]
        model_hit = line in bucket
        assert outcome.hit == model_hit
        if model_hit:
            bucket.move_to_end(line)
        else:
            cache.fill(line)
            if len(bucket) >= ways:
                bucket.popitem(last=False)
            bucket[line] = True


@settings(max_examples=40, deadline=None)
@given(small_streams)
def test_cache_occupancy_never_exceeds_capacity(stream):
    cache = Cache("m", 1024, 2)  # 8 sets x 2 ways
    for line in stream:
        if not cache.access(line).hit:
            cache.fill(line)
    assert cache.occupancy() <= 16


@settings(max_examples=30, deadline=None)
@given(small_streams, st.integers(min_value=1, max_value=8))
def test_optgen_hits_monotone_in_capacity(stream, capacity):
    small, large = OptGen(capacity), OptGen(capacity * 2)
    for key in stream:
        small.access(key)
        large.access(key)
    assert large.hits >= small.hits
    assert small.hits + small.misses + small.compulsory == len(stream)


@settings(max_examples=30, deadline=None)
@given(small_streams)
def test_optgen_never_beats_full_reuse(stream):
    og = OptGen(512)  # capacity >> working set: OPT hits every reuse
    seen = set()
    expected_hits = 0
    for key in stream:
        if key in seen:
            expected_hits += 1
        seen.add(key)
    for key in stream:
        og.access(key)
    assert og.hits == expected_hits


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
def test_tag_table_recent_tags_roundtrip(tags):
    table = CompressedTagTable(bits=6)
    compact = None
    for tag in tags:
        compact = table.compress(tag)
        assert table.expand(compact) == tag  # fresh compressions always hold
    assert len(table) <= table.capacity


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(lines, st.integers(min_value=0, max_value=1 << 20)),
        min_size=1,
        max_size=300,
    )
)
def test_metadata_store_capacity_invariant(pairs):
    store = MetadataStore(capacity_bytes=4 * ENTRIES_PER_LINE * 4)  # 4 sets
    for trigger, successor in pairs:
        store.update(trigger, successor)
    assert store.occupancy() <= store.capacity_entries
    # Every resident entry decodes to *some* line (or None if its
    # compressed tag was recycled) without raising.
    for entry in store.entries():
        store.lookup(entry.trigger)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=31), lines),
        min_size=1,
        max_size=200,
    )
)
def test_training_unit_matches_dict_semantics(observations):
    tu = TrainingUnit(max_pcs=1000)  # never evicts in this range
    model = {}
    for pc, line in observations:
        expected = model.get(pc)
        assert tu.observe(pc, line) == expected
        model[pc] = line
    assert len(tu) == len(model)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(lines, st.booleans()), min_size=1, max_size=200))
def test_hierarchy_conservation(accesses):
    h = CacheHierarchy(
        n_cores=1, l1_size=512, l1_ways=2, l2_size=1024, l2_ways=2,
        llc_size_per_core=4096, llc_ways=4,
    )
    for line, is_write in accesses:
        h.access(0, 1, line * 64, is_write)
    c = h.counters[0]
    assert c.accesses == len(accesses)
    assert c.accesses == c.l1_hits + c.l2_hits + c.llc_hits + c.dram_accesses
    for nbytes in h.traffic.bytes_by_category.values():
        assert nbytes % 64 == 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
def test_geomean_bounded_by_extremes(values):
    g = geomean(values)
    assert min(values) <= g * 1.000001
    assert g <= max(values) * 1.000001


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=2**31),
    st.integers(min_value=1000, max_value=4000),
)
def test_chain_trace_properties(seed, n):
    from repro.workloads.irregular import chain_trace

    trace = chain_trace("p", n, seed, hot_lines=500, cold_lines=500)
    assert len(trace) == n
    assert all(a >= 0 and a % 64 == 0 for a in trace.addrs)
    again = chain_trace("p", n, seed, hot_lines=500, cold_lines=500)
    assert again.addrs == trace.addrs
