"""Resilient sweep execution: every recovery path, chaos-tested.

The contract of :mod:`repro.resilience` + :mod:`repro.sim.parallel` is
that faults change *wall-clock time only, never results*:

* with injected worker crashes and cache corruption (the CI chaos
  rates), a sweep completes bit-identical to a fault-free serial run
  and the obs session shows the retry/respawn events;
* per-cell timeouts abandon stuck cells and re-run them;
* ``BrokenProcessPool`` respawns re-run only unfinished cells and
  degrade to serial after repeated deaths;
* SIGTERM mid-grid journals finished cells, and ``--resume`` skips them
  (zero ``simulate()`` calls for journaled cells, identical tables);
* the checkpoint journal is append-only and torn-line tolerant;
* the trace memo is a bounded LRU whose evictions never change results;
* invalid ``REPRO_JOBS``-style env values and unpicklable-spec serial
  fallbacks warn loudly instead of silently degrading.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro import cache, config, faults, obs, resilience
from repro.core.triage import TriageConfig
from repro.experiments import common
from repro.sim import parallel
from repro.sim.sweep import sweep

KB = 1024
N_ACCESSES = 3_000

TRIAGE = TriageConfig(
    metadata_capacity=(1024 * KB) // 4,
    capacities=(0, (512 * KB) // 4, (1024 * KB) // 4),
)
GRID = {"bo": "bo", "triage": TRIAGE}
BENCHES = ["mcf", "omnetpp"]


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    for var in (
        "REPRO_CACHE_DIR", "REPRO_JOBS", "REPRO_FAULTS", "REPRO_FAULTS_SEED",
        "REPRO_RETRIES", "REPRO_CELL_TIMEOUT", "REPRO_RESUME",
        "REPRO_FAULT_SLEEP",
    ):
        monkeypatch.delenv(var, raising=False)
    faults.reset()
    cache.configure(None)
    common.clear_caches()
    obs.disable()
    yield
    faults.reset()
    cache.configure(None)
    common.clear_caches()
    obs.disable()


def _records_equal(a, b) -> None:
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.workload == right.workload
        assert left.config == right.config
        assert left.result == right.result, (left.workload, left.config)
        assert left.baseline == right.baseline, left.workload


def _clean_serial():
    records = sweep(BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=1)
    common.clear_caches()
    cache.configure(None)
    return records


# -- engine unit tests (toy workers, no simulation) --------------------------


def _toy_worker(payload):
    value = payload["value"]
    if payload.get("crash_until", -1) > payload.get("fault_attempt", 0):
        os._exit(1)
    if payload.get("raise_until", -1) > payload.get("fault_attempt", 0):
        raise RuntimeError(f"boom {value}")
    return value * 2


def _toy_local(payload, attempt):
    return payload["value"] * 2


class TestEngine:
    def test_input_order_regardless_of_completion_order(self):
        payloads = [{"value": v} for v in range(8)]
        out = resilience.run_resilient(
            payloads, _toy_worker, _toy_local, n_jobs=4
        )
        assert out == [v * 2 for v in range(8)]

    def test_worker_exception_retries_then_succeeds(self):
        events = []
        payloads = [{"value": 1}, {"value": 2, "raise_until": 2}, {"value": 3}]
        out = resilience.run_resilient(
            payloads, _toy_worker, _toy_local, n_jobs=2,
            policy=resilience.RetryPolicy(retries=3, backoff_base_s=0.0),
            emit=lambda c, s="info", **f: events.append((c, f)),
        )
        assert out == [2, 4, 6]
        retries = [f for c, f in events if c == "resilience.retry"]
        assert len(retries) == 2 and all(r["cell"] == 1 for r in retries)

    def test_retry_budget_exhaustion_raises_cell_failed(self):
        payloads = [{"value": 1}, {"value": 2, "raise_until": 99}]
        with pytest.raises(resilience.CellFailed) as err:
            resilience.run_resilient(
                payloads, _toy_worker, _toy_local, n_jobs=2,
                policy=resilience.RetryPolicy(retries=1, backoff_base_s=0.0),
            )
        assert err.value.index == 1

    def test_broken_pool_respawns_and_recovers(self):
        events = []
        payloads = [{"value": v} for v in range(5)]
        payloads[3]["crash_until"] = 1  # hard-exits its worker once
        out = resilience.run_resilient(
            payloads, _toy_worker, _toy_local, n_jobs=2,
            policy=resilience.RetryPolicy(retries=2, backoff_base_s=0.0),
            emit=lambda c, s="info", **f: events.append(c),
        )
        assert out == [v * 2 for v in range(5)]
        assert "resilience.pool_respawn" in events

    def test_repeated_pool_deaths_degrade_to_serial(self, capsys):
        events = []
        payloads = [{"value": v} for v in range(4)]
        payloads[0]["crash_until"] = 99  # kills every pool it ever meets
        out = resilience.run_resilient(
            payloads, _toy_worker, _toy_local, n_jobs=2,
            policy=resilience.RetryPolicy(
                retries=2, backoff_base_s=0.0, max_pool_failures=2
            ),
            emit=lambda c, s="info", **f: events.append(c),
        )
        assert out == [v * 2 for v in range(4)]  # _toy_local finished them
        assert "resilience.serial_fallback" in events
        assert "pool died" in capsys.readouterr().err

    def test_discarded_pools_leave_no_live_workers(self):
        """Abandoning a broken pool must kill its surviving workers.

        A worker that hard-exits mid-task can die holding the shared
        call-queue lock, wedging its siblings forever; lingering zombies
        then hang interpreter exit on the executor's atexit join.  After
        the engine returns, no pool children may remain alive."""
        import multiprocessing

        payloads = [{"value": v} for v in range(6)]
        payloads[1]["crash_until"] = 99  # breaks pools until serial fallback
        out = resilience.run_resilient(
            payloads, _toy_worker, _toy_local, n_jobs=3,
            policy=resilience.RetryPolicy(
                retries=2, backoff_base_s=0.0, max_pool_failures=2
            ),
        )
        assert out == [v * 2 for v in range(6)]
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_backoff_schedule(self):
        policy = resilience.RetryPolicy(retries=5, backoff_base_s=0.1, backoff_max_s=0.3)
        assert [policy.backoff_s(k) for k in range(5)] == [0.0, 0.1, 0.2, 0.3, 0.3]
        assert resilience.RetryPolicy(backoff_base_s=0.0).backoff_s(3) == 0.0

    def test_policy_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "7")
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2.5")
        policy = resilience.RetryPolicy.from_env()
        assert policy.retries == 7
        assert policy.cell_timeout_s == 2.5
        assert resilience.RetryPolicy.from_env(retries=1, cell_timeout=9.0) == (
            resilience.RetryPolicy(retries=1, cell_timeout_s=9.0)
        )


# -- the checkpoint journal --------------------------------------------------


class TestJournal:
    def test_record_and_load_round_trip(self, tmp_path):
        journal = resilience.SweepJournal(tmp_path / "j" / "grid.jsonl")
        journal.record("cell-a", "result-a")
        journal.record("cell-b", None)
        entries = journal.load()
        assert entries["cell-a"]["result_key"] == "result-a"
        assert entries["cell-b"]["result_key"] is None

    def test_torn_and_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        journal = resilience.SweepJournal(path)
        journal.record("cell-a", "result-a")
        with path.open("a") as fh:
            fh.write("not json at all\n")
            fh.write('{"cell_key": "cell-b", "result_key": "result-b"}\n')
            fh.write('{"cell_key": "torn-by-a-cra')  # no newline, mid-write
        entries = journal.load()
        assert set(entries) == {"cell-a", "cell-b"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert resilience.SweepJournal(tmp_path / "nope.jsonl").load() == {}


# -- chaos: the acceptance-criteria sweep ------------------------------------


class TestChaos:
    def test_crashes_and_corruption_leave_results_bit_identical(self, tmp_path):
        """Worker crashes at 20% + cache corruption at 10% change nothing."""
        clean = _clean_serial()

        faults.configure("worker_crash:0.2,cache_corrupt:0.1", seed=7)
        session = obs.enable(out_dir=tmp_path / "obs")
        chaotic = sweep(
            BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=4,
            cache_dir=tmp_path / "cache", retries=4,
        )
        _records_equal(clean, chaotic)

        categories = Counter(e.category for e in session.events.events())
        recoveries = (
            categories["resilience.retry"]
            + categories["resilience.pool_respawn"]
            + categories["resilience.serial_fallback"]
        )
        assert recoveries >= 1, categories

        # The rendered obs report surfaces the recovery events.
        from repro.obs.report import render_report

        session.flush()
        report = render_report(tmp_path / "obs")
        assert "resilience." in report

    def test_chaotic_warm_rerun_still_identical(self, tmp_path):
        """Corrupted cache entries read as misses, recompute, stay right."""
        clean = _clean_serial()
        faults.configure("cache_corrupt:0.3,trace_io:0.2", seed=3)
        first = sweep(
            BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=1,
            cache_dir=tmp_path,
        )
        common.clear_caches()
        second = sweep(
            BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=1,
            cache_dir=tmp_path,
        )
        _records_equal(clean, first)
        _records_equal(clean, second)

    def test_injected_trace_io_errors_read_as_misses(self, tmp_path):
        reference = sweep(["mcf"], {"sms": "sms"}, n_accesses=N_ACCESSES,
                          n_jobs=1)
        common.clear_caches()
        cache.configure(None)
        # Prime the trace tier only (different prefetcher, same trace),
        # then make every trace read fail: the runner must fall through
        # to regeneration, never crash, and results must not change.
        sweep(["mcf"], {"bo": "bo"}, n_accesses=N_ACCESSES, n_jobs=1,
              cache_dir=tmp_path)
        common.clear_caches()
        faults.configure("trace_io:1.0:99", seed=1)
        records = sweep(["mcf"], {"sms": "sms"}, n_accesses=N_ACCESSES,
                        n_jobs=1, cache_dir=tmp_path)
        _records_equal(reference, records)
        assert cache.get_cache().errors >= 1

    def test_cell_timeout_abandons_and_retries(self, tmp_path, monkeypatch):
        """A stuck cell is abandoned at its deadline and re-run."""
        clean = _clean_serial()
        monkeypatch.setenv("REPRO_FAULT_SLEEP", "2.5")
        faults.configure("cell_timeout:1.0:1", seed=1)  # first attempts stall
        session = obs.enable()
        records = sweep(
            BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=4,
            retries=3, cell_timeout=1.2,
        )
        _records_equal(clean, records)
        timeouts = session.events.events("resilience.cell_timeout")
        assert len(timeouts) == len(BENCHES) * (len(GRID) + 1)

    def test_pickle_faults_retry_on_the_parent_side(self):
        clean = _clean_serial()
        faults.configure("pickle:1.0:1", seed=1)
        session = obs.enable()
        records = sweep(
            BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=4, retries=2
        )
        _records_equal(clean, records)
        submits = [
            e for e in session.events.events("resilience.retry")
            if e.fields.get("kind") == "submit"
        ]
        assert len(submits) == len(BENCHES) * (len(GRID) + 1)

    def test_exhausted_retries_surface_cell_failed(self):
        faults.configure("worker_crash:1.0:99", seed=1)
        cells = [
            parallel.sweep_cell(
                "mcf", "bo", "bo", N_ACCESSES, 1, 4,
                common.MachineConfig.scaled(4), 1000,
            )
        ]
        with pytest.raises(resilience.CellFailed) as err:
            parallel.run_cells(cells, n_jobs=1, retries=1)
        assert isinstance(err.value.cause, faults.InjectedFault)


# -- kill + resume -----------------------------------------------------------

_CHILD_SCRIPT = """
import sys
from repro.core.triage import TriageConfig
from repro.sim.sweep import sweep

KB = 1024
TRIAGE = TriageConfig(
    metadata_capacity=(1024 * KB) // 4,
    capacities=(0, (512 * KB) // 4, (1024 * KB) // 4),
)
try:
    sweep(
        ["mcf", "omnetpp"],
        {"bo": "bo", "triage": TRIAGE},
        n_accesses=3000,
        n_jobs=2,
        cache_dir=sys.argv[1],
    )
except KeyboardInterrupt:
    sys.exit(130)
sys.exit(0)
"""


class TestKillAndResume:
    def test_sigterm_then_resume_skips_journaled_cells(self, tmp_path, monkeypatch):
        clean = _clean_serial()
        cache_dir = tmp_path / "cache"

        # Slow every cell down (fault-injected stall) so the grid is
        # reliably mid-flight when the signal lands.
        env = dict(
            os.environ,
            PYTHONPATH="src",
            REPRO_FAULTS="cell_timeout:1.0:99",
            REPRO_FAULT_SLEEP="0.4",
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD_SCRIPT, str(cache_dir)],
            env=env, cwd=str(Path(__file__).resolve().parent.parent),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )

        def journal_lines():
            files = list((cache_dir / "journal").glob("*.jsonl"))
            if not files:
                return 0
            return sum(1 for l in files[0].read_text().splitlines() if l.strip())

        deadline = time.monotonic() + 60
        while journal_lines() < 2 and time.monotonic() < deadline:
            if child.poll() is not None:
                break
            time.sleep(0.05)
        journaled_at_kill = journal_lines()
        assert journaled_at_kill >= 2, "grid finished/stalled before the kill"
        child.send_signal(signal.SIGTERM)
        _out, err = child.communicate(timeout=60)
        assert child.returncode == 130, err.decode()

        # The journal survived the kill intact (append-only, fsynced).
        entries = journal_lines()
        assert entries >= journaled_at_kill

        # Resume: journaled cells are served without dispatch, and no
        # journaled cell is ever simulated again.
        calls = []
        real = parallel.simulate

        def counting_simulate(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(parallel, "simulate", counting_simulate)
        session = obs.enable()
        resumed = sweep(
            BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=1,
            cache_dir=cache_dir, resume=True,
        )
        _records_equal(clean, resumed)
        skips = session.events.events("resilience.resume_skip")
        assert len(skips) == entries
        total_cells = len(BENCHES) * (len(GRID) + 1)
        assert len(calls) <= total_cells - len(skips)

    def test_resume_flag_reads_environment(self, tmp_path, monkeypatch):
        sweep(BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=1,
              cache_dir=tmp_path)
        common.clear_caches()
        monkeypatch.setenv("REPRO_RESUME", "1")
        session = obs.enable()
        resumed = sweep(BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=1,
                        cache_dir=tmp_path)
        assert len(session.events.events("resilience.resume_skip")) == (
            len(BENCHES) * (len(GRID) + 1)
        )
        assert len(resumed) == len(BENCHES) * len(GRID)


# -- satellites: warnings, LRU memo -----------------------------------------


class TestLoudDegradation:
    def test_unpicklable_specs_warn_and_emit_event(self, capsys):
        from repro.prefetchers.best_offset import BestOffsetPrefetcher

        session = obs.enable()
        grid = {"bo_factory": lambda: BestOffsetPrefetcher()}
        sweep(["mcf"], grid, n_accesses=N_ACCESSES, n_jobs=4)
        err = capsys.readouterr().err
        assert "cannot cross a process boundary" in err
        fallbacks = session.events.events("resilience.serial_fallback")
        assert len(fallbacks) == 1
        assert fallbacks[0].fields["reason"] == "unpicklable_spec"

    @pytest.mark.parametrize("bad", ["0", "-3", "banana"])
    def test_invalid_repro_jobs_warns_and_falls_back(
        self, bad, capsys, monkeypatch
    ):
        monkeypatch.setattr(config, "_WARNED", set())
        monkeypatch.setenv("REPRO_JOBS", bad)
        assert parallel.jobs_from_env(default=3) == 3
        assert parallel.default_jobs() >= 1
        err = capsys.readouterr().err
        assert err.count("ignoring invalid REPRO_JOBS") == 1  # warn once

    def test_invalid_env_emits_obs_event(self, monkeypatch):
        monkeypatch.setattr(config, "_WARNED", set())
        monkeypatch.setenv("REPRO_RETRIES", "never")
        session = obs.enable()
        assert resilience.RetryPolicy.from_env().retries == (
            resilience.DEFAULT_RETRIES
        )
        events = session.events.events("config.invalid_env")
        assert len(events) == 1
        assert events[0].fields["variable"] == "REPRO_RETRIES"

    def test_valid_repro_jobs_still_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert parallel.jobs_from_env(default=1) == 5
        assert parallel.default_jobs() == 5


class TestTraceMemoLru:
    def test_lru_evicts_least_recent(self):
        memo = parallel._LruMemo(maxsize=2)
        memo.store("a", 1)
        memo.store("b", 2)
        assert memo.lookup("a") == 1  # refreshes a
        memo.store("c", 3)  # evicts b, the least recent
        assert set(memo) == {"a", "c"}
        assert memo.lookup("b") is None

    def test_eviction_keeps_sweep_results_correct(self, monkeypatch):
        benches = ["mcf", "omnetpp", "libquantum"]
        reference = sweep(benches, {"bo": "bo"}, n_accesses=N_ACCESSES, n_jobs=1)
        common.clear_caches()
        monkeypatch.setattr(parallel, "_TRACE_MEMO", parallel._LruMemo(maxsize=1))
        squeezed = sweep(benches, {"bo": "bo"}, n_accesses=N_ACCESSES, n_jobs=1)
        _records_equal(reference, squeezed)
        assert len(parallel._TRACE_MEMO) <= 1

    def test_memo_is_bounded_across_benchmarks(self):
        parallel._TRACE_MEMO.clear()
        benches = ["mcf", "omnetpp", "libquantum", "soplex_k"]
        bound = parallel._TRACE_MEMO.maxsize
        sweep(benches, {"bo": "bo"}, n_accesses=N_ACCESSES, n_jobs=1)
        assert len(parallel._TRACE_MEMO) <= bound
