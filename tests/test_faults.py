"""The fault-injection framework must be deterministic and inert-by-default.

Chaos testing is only trustworthy if the chaos is reproducible: every
fire/no-fire decision of :mod:`repro.faults` is a pure function of
``(seed, site, token, attempt)``, sites stop firing once an operation's
attempt counter reaches the clause's ``max_attempt`` (so retrying
harnesses provably converge), and with no plan configured every hook is
a no-op.
"""

from __future__ import annotations

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    faults.reset()
    yield
    faults.reset()


class TestPlanParsing:
    def test_parse_rates_and_max_attempts(self):
        plan = faults.FaultPlan.parse(
            "worker_crash:0.2,cache_corrupt:0.1:5", seed=3
        )
        assert plan.sites["worker_crash"].rate == 0.2
        assert plan.sites["worker_crash"].max_attempt == faults.DEFAULT_MAX_ATTEMPT
        assert plan.sites["cache_corrupt"].max_attempt == 5
        assert plan.seed == 3

    def test_spec_round_trips(self):
        plan = faults.FaultPlan.parse("pickle:0.5:3,trace_io:0.25", seed=9)
        again = faults.FaultPlan.parse(plan.to_spec(), seed=plan.seed)
        assert again.sites == plan.sites

    @pytest.mark.parametrize(
        "bad", ["nonsense:0.5", "worker_crash", "worker_crash:1.5", "worker_crash:x"]
    )
    def test_bad_clauses_raise(self, bad):
        with pytest.raises(ValueError):
            faults.FaultPlan.parse(bad)

    def test_empty_clauses_are_skipped(self):
        plan = faults.FaultPlan.parse("worker_crash:0.5,,")
        assert set(plan.sites) == {"worker_crash"}


class TestDeterminism:
    def test_same_inputs_same_decision(self):
        plan = faults.FaultPlan.parse("worker_crash:0.5", seed=1)
        decisions = [plan.should_fire("worker_crash", f"t{i}") for i in range(64)]
        again = [plan.should_fire("worker_crash", f"t{i}") for i in range(64)]
        assert decisions == again
        assert any(decisions) and not all(decisions)  # rate is actually ~0.5

    def test_seed_changes_decisions(self):
        one = faults.FaultPlan.parse("worker_crash:0.5", seed=1)
        two = faults.FaultPlan.parse("worker_crash:0.5", seed=2)
        tokens = [f"t{i}" for i in range(64)]
        assert [one.should_fire("worker_crash", t) for t in tokens] != [
            two.should_fire("worker_crash", t) for t in tokens
        ]

    def test_rate_zero_never_fires_rate_one_always(self):
        plan = faults.FaultPlan.parse("pickle:0.0,trace_io:1.0")
        assert not any(plan.should_fire("pickle", f"t{i}") for i in range(32))
        assert all(plan.should_fire("trace_io", f"t{i}") for i in range(32))

    def test_max_attempt_guarantees_convergence(self):
        plan = faults.FaultPlan.parse("worker_crash:1.0:2")
        assert plan.should_fire("worker_crash", "cell", attempt=0)
        assert plan.should_fire("worker_crash", "cell", attempt=1)
        assert not plan.should_fire("worker_crash", "cell", attempt=2)
        assert not plan.should_fire("worker_crash", "cell", attempt=99)

    def test_unconfigured_site_never_fires(self):
        plan = faults.FaultPlan.parse("worker_crash:1.0")
        assert not plan.should_fire("pickle", "t")


class TestProcessPlan:
    def test_disarmed_by_default(self):
        assert faults.get_plan() is None
        assert not faults.active()
        assert not faults.should_fire("worker_crash", "t")
        faults.fire("worker_crash", "t")  # no-op, must not raise

    def test_configure_and_reset(self):
        faults.configure("pickle:1.0:99", seed=4)
        assert faults.active()
        with pytest.raises(faults.InjectedFault) as err:
            faults.fire("pickle", "t")
        assert err.value.site == "pickle"
        assert faults.FIRED["pickle"] == 1
        faults.reset()
        assert not faults.active()
        assert faults.FIRED == {}

    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "trace_io:1.0:99")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "11")
        plan = faults.get_plan()
        assert plan is not None and plan.seed == 11
        with pytest.raises(faults.InjectedFault):
            faults.fire("trace_io", "t")

    def test_worker_crash_raises_in_process(self):
        """Outside a pool worker the crash site raises, never hard-exits."""
        faults.configure("worker_crash:1.0:99")
        faults.mark_worker(False)
        with pytest.raises(faults.InjectedFault):
            faults.fire("worker_crash", "t")

    def test_corrupt_file_garbles_target(self, tmp_path):
        faults.configure("cache_corrupt:1.0:99")
        target = tmp_path / "entry.json"
        target.write_text('{"ok": true}')
        assert faults.corrupt_file(target, "cache_corrupt", "k")
        assert b"corrupt" in target.read_bytes()

    def test_corrupt_file_noop_when_disarmed(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text('{"ok": true}')
        assert not faults.corrupt_file(target, "cache_corrupt", "k")
        assert target.read_text() == '{"ok": true}'


class TestSiteRegistry:
    """SITE_REGISTRY is the single documented list of fault sites."""

    def test_registry_describes_every_site(self):
        assert tuple(faults.SITE_REGISTRY) == faults.SITES
        for site, description in faults.SITE_REGISTRY.items():
            assert description, f"{site} has no description"

    def test_serve_sites_are_registered(self):
        assert {"serve_worker_crash", "serve_slow_reply", "serve_deadline"} \
            <= set(faults.SITES)

    def test_configure_still_raises_on_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.configure("typo_site:0.5")

    def test_env_typo_is_dropped_with_one_warning(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "typo_site:0.5,trace_io:1.0:99")
        plan = faults.plan_from_env()
        assert "typo_site" not in plan.sites
        assert "trace_io" in plan.sites  # valid clauses survive the typo
        err = capsys.readouterr().err
        assert err.count("typo_site") == 1
        # A second parse does not warn again (warn-once per process).
        faults.plan_from_env()
        assert "typo_site" not in capsys.readouterr().err

    def test_env_typo_does_not_crash_fault_hooks(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "definitely_not_a_site:1.0")
        assert faults.should_fire("worker_crash", "t") is False
        faults.fire("worker_crash", "t")  # must not raise

    def test_reset_clears_the_warned_set(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "typo_site:0.5")
        faults.plan_from_env()
        faults.reset()
        faults.plan_from_env()
        assert capsys.readouterr().err.count("typo_site") == 2
