"""Tests for the CLI and the experiment registry."""

import pytest

from repro.__main__ import main
from repro.experiments.registry import EXPERIMENTS, get


def test_registry_covers_every_figure():
    for fig in range(5, 21):
        assert f"fig{fig:02d}" in EXPERIMENTS
    assert "fig01" in EXPERIMENTS
    assert "sens-latency" in EXPERIMENTS
    assert "sens-epoch" in EXPERIMENTS
    assert "ablations" in EXPERIMENTS


def test_registry_modules_expose_run():
    for module in EXPERIMENTS.values():
        assert callable(module.run)
        assert callable(module.main)


def test_registry_get_unknown():
    with pytest.raises(ValueError, match="unknown experiment"):
        get("fig99")


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig05" in out
    assert "Figure 5" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment 'fig99'" in err
    assert "fig05" in err  # the message lists the valid names


def test_cli_list_tolerates_empty_docstring(capsys, monkeypatch):
    class _Bare:
        __doc__ = ""

        @staticmethod
        def run(quick=False):
            return ""

        main = run

    monkeypatch.setitem(EXPERIMENTS, "bare", _Bare)
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert any(line.startswith("bare") for line in out.splitlines())


def test_cli_report_missing_path(capsys, tmp_path):
    assert main(["report", str(tmp_path / "nope")]) == 2
    assert "no such run directory" in capsys.readouterr().err
