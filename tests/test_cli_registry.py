"""Tests for the CLI and the experiment registry."""

import pytest

from repro.__main__ import main
from repro.experiments.registry import EXPERIMENTS, get


def test_registry_covers_every_figure():
    for fig in range(5, 21):
        assert f"fig{fig:02d}" in EXPERIMENTS
    assert "fig01" in EXPERIMENTS
    assert "sens-latency" in EXPERIMENTS
    assert "sens-epoch" in EXPERIMENTS
    assert "ablations" in EXPERIMENTS


def test_registry_modules_expose_run():
    for module in EXPERIMENTS.values():
        assert callable(module.run)
        assert callable(module.main)


def test_registry_get_unknown():
    with pytest.raises(ValueError, match="unknown experiment"):
        get("fig99")


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig05" in out
    assert "Figure 5" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_run_unknown_experiment():
    with pytest.raises(ValueError):
        main(["run", "fig99"])
