"""The persistent result/trace cache: keys, round trips, corruption, CLI.

Covers the contracts :mod:`repro.cache` promises:

* key stability -- the same configuration always hashes to the same
  key, and perturbing *any* field of it produces a different key;
* round-trip fidelity -- a cached result/trace compares equal to the
  one that was stored (the warm-cache path must be bit-identical);
* corruption safety -- truncated or garbage entries read as misses
  (recompute), never exceptions;
* the ``python -m repro cache stats|clear`` CLI paths.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro import cache
from repro.cache.keys import KEY_SCHEMA_VERSION
from repro.core.triage import TriageConfig
from repro.prefetchers.best_offset import BestOffsetPrefetcher
from repro.sim.config import MachineConfig
from repro.sim.single_core import simulate
from repro.sim.stats import MultiCoreResult
from repro.workloads import spec

KB = 1024


@pytest.fixture(autouse=True)
def _no_ambient_cache(monkeypatch):
    """Keep each test's cache explicit regardless of the environment."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    cache.configure(None)
    yield
    cache.configure(None)


def _machine() -> MachineConfig:
    return MachineConfig.scaled(4)


def _base_key(**overrides) -> str:
    params = dict(
        namespace="sweep",
        workload={
            "suite": "spec",
            "bench": "mcf",
            "n_accesses": 4000,
            "seed": 1,
            "scale": 4,
        },
        prefetcher=cache.spec_fingerprint("bo"),
        machine=_machine(),
        degree=1,
        warmup=1333,
        charge_metadata_to_llc=True,
    )
    params.update(overrides)
    return cache.run_key(**params)


def _small_result(prefetcher="bo", seed=1):
    trace = spec.make_trace("mcf", n_accesses=3000, seed=seed, scale=4)
    return simulate(trace, prefetcher, machine=_machine(), warmup_accesses=1000)


class TestKeys:
    def test_same_config_same_key(self):
        assert _base_key() == _base_key()

    def test_every_field_perturbation_changes_the_key(self):
        base = _base_key()
        perturbed = [
            _base_key(namespace="experiments.run_single"),
            _base_key(
                workload={
                    "suite": "spec",
                    "bench": "omnetpp",
                    "n_accesses": 4000,
                    "seed": 1,
                    "scale": 4,
                }
            ),
            _base_key(
                workload={
                    "suite": "spec",
                    "bench": "mcf",
                    "n_accesses": 4001,
                    "seed": 1,
                    "scale": 4,
                }
            ),
            _base_key(
                workload={
                    "suite": "spec",
                    "bench": "mcf",
                    "n_accesses": 4000,
                    "seed": 2,
                    "scale": 4,
                }
            ),
            _base_key(prefetcher=cache.spec_fingerprint("sms")),
            _base_key(machine=MachineConfig.scaled(8)),
            _base_key(machine=dataclasses.replace(_machine(), llc_ways=8)),
            _base_key(degree=2),
            _base_key(warmup=0),
            _base_key(charge_metadata_to_llc=False),
        ]
        assert len(set(perturbed) | {base}) == len(perturbed) + 1

    def test_triage_config_fingerprint_is_field_sensitive(self):
        a = TriageConfig(metadata_capacity=256 * KB)
        b = TriageConfig(metadata_capacity=128 * KB)
        assert cache.spec_fingerprint(a) == cache.spec_fingerprint(
            TriageConfig(metadata_capacity=256 * KB)
        )
        assert cache.spec_fingerprint(a) != cache.spec_fingerprint(b)

    def test_uncacheable_specs_raise(self):
        with pytest.raises(cache.UncacheableSpec):
            cache.spec_fingerprint(BestOffsetPrefetcher())
        with pytest.raises(cache.UncacheableSpec):
            cache.spec_fingerprint(lambda: None)

    def test_unknown_prefetcher_name_fails_loudly(self):
        """A typo'd name must raise, not silently hash into its own
        never-hitting cache namespace."""
        for bogus in ("traige_1mb", "triangle", "bo+nope", "bo "):
            if bogus == "bo ":
                # Whitespace normalizes to a registered name: allowed.
                assert cache.spec_fingerprint(bogus)["name"] == "bo"
                continue
            with pytest.raises(cache.UncacheableSpec):
                cache.spec_fingerprint(bogus)

    def test_registered_names_from_both_registries_fingerprint(self):
        # Factory-only ("stride"), experiments-only ("triage_noconf" and
        # the sweep pattern), and both ("triangel", hybrids).
        for name in (
            "stride",
            "triage_noconf",
            "triage@65536:lru:10",
            "triangel",
            "triangel_nosample",
            "bo+triangel_dynamic",
        ):
            assert cache.spec_fingerprint(name) == {
                "kind": "name",
                "name": name,
            }

    def test_triangel_config_fingerprint_distinct_from_triage(self):
        """Same field values, different class: canonicalize folds the
        dataclass name in, so the keys can never collide."""
        from repro.prefetchers.triangel import TriangelConfig

        triage = TriageConfig(metadata_capacity=256 * KB)
        triangel = TriangelConfig(
            metadata_capacity=256 * KB,
            sampling=False,
            lookahead=1,
            replacement="hawkeye",
        )
        a = cache.spec_fingerprint(triage)
        b = cache.spec_fingerprint(triangel)
        assert a != b
        assert a["config"]["__dataclass__"] == "TriageConfig"
        assert b["config"]["__dataclass__"] == "TriangelConfig"
        assert cache.spec_fingerprint(triangel) == cache.spec_fingerprint(
            TriangelConfig(
                metadata_capacity=256 * KB,
                sampling=False,
                lookahead=1,
                replacement="hawkeye",
            )
        )

    def test_trace_key_stability(self):
        same = cache.trace_key("spec", "mcf", 4000, 1, 4)
        assert same == cache.trace_key("spec", "mcf", 4000, 1, 4)
        assert same != cache.trace_key("spec", "mcf", 4000, 2, 4)
        assert same != cache.trace_key("cloudsuite", "mcf", 4000, 1, 4)


class TestRoundTrip:
    def test_single_core_result_round_trips_exactly(self, tmp_path):
        store = cache.ResultCache(tmp_path)
        result = _small_result()
        key = _base_key()
        store.put_result(key, result)
        loaded = store.get_result(key)
        assert loaded == result  # dataclass equality: counters, traffic, stats
        assert loaded.counters == result.counters
        assert loaded.traffic == result.traffic
        # Manifest provenance is stamped on the entry and survives.
        assert loaded.manifest is not None
        assert loaded.manifest.to_dict() == result.manifest.to_dict()

    def test_multi_core_result_round_trips(self, tmp_path):
        store = cache.ResultCache(tmp_path)
        cores = [_small_result(seed=1), _small_result(seed=2)]
        result = MultiCoreResult(
            workloads=["mcf", "mcf"],
            prefetcher="bo",
            per_core=cores,
            traffic={"demand": 123, "prefetch": 45},
        )
        store.put_result("k" * 64, result)
        loaded = store.get_result("k" * 64)
        assert isinstance(loaded, MultiCoreResult)
        assert loaded == result

    def test_trace_round_trips(self, tmp_path):
        store = cache.ResultCache(tmp_path)
        trace = spec.make_trace("mcf", n_accesses=2000, seed=3, scale=4)
        key = cache.trace_key("spec", "mcf", 2000, 3, 4)
        store.put_trace(key, trace)
        loaded = store.get_trace(key)
        assert loaded.pcs == trace.pcs
        assert loaded.addrs == trace.addrs
        assert loaded.writes == trace.writes
        assert loaded.mlp == trace.mlp
        assert loaded.instr_per_access == trace.instr_per_access


class TestCorruption:
    def test_missing_entry_is_a_miss(self, tmp_path):
        store = cache.ResultCache(tmp_path)
        assert store.get_result("0" * 64) is None
        assert store.misses == 1 and store.errors == 0

    def test_garbage_result_entry_is_a_miss_not_a_crash(self, tmp_path):
        store = cache.ResultCache(tmp_path)
        key = _base_key()
        store.put_result(key, _small_result())
        store.result_path(key).write_text("{not json at all")
        assert store.get_result(key) is None
        assert store.errors == 1

    def test_truncated_result_entry_is_a_miss(self, tmp_path):
        store = cache.ResultCache(tmp_path)
        key = _base_key()
        path = store.put_result(key, _small_result())
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.get_result(key) is None

    def test_key_mismatch_inside_entry_is_a_miss(self, tmp_path):
        store = cache.ResultCache(tmp_path)
        key = _base_key()
        path = store.put_result(key, _small_result())
        envelope = json.loads(path.read_text())
        envelope["key"] = "f" * 64
        path.write_text(json.dumps(envelope))
        assert store.get_result(key) is None

    def test_truncated_trace_is_a_miss(self, tmp_path):
        store = cache.ResultCache(tmp_path)
        trace = spec.make_trace("mcf", n_accesses=1000, seed=1, scale=4)
        key = cache.trace_key("spec", "mcf", 1000, 1, 4)
        path = store.put_trace(key, trace)
        path.write_bytes(path.read_bytes()[:100])
        assert store.get_trace(key) is None
        assert store.errors == 1

    def test_recompute_overwrites_corrupt_entry(self, tmp_path):
        store = cache.ResultCache(tmp_path)
        key = _base_key()
        store.put_result(key, _small_result())
        store.result_path(key).write_text("garbage")
        assert store.get_result(key) is None
        fresh = _small_result()
        store.put_result(key, fresh)
        assert store.get_result(key) == fresh


class TestConfiguration:
    def test_environment_variable_enables_the_cache(self, tmp_path, monkeypatch):
        assert cache.get_cache() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = cache.get_cache()
        assert store is not None and store.root == tmp_path
        # Same root -> same instance (counters persist across lookups).
        assert cache.get_cache() is store

    def test_configure_overrides_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        explicit = cache.configure(tmp_path / "explicit")
        assert cache.get_cache() is explicit

    def test_schema_version_dir_isolation(self, tmp_path):
        """Entries of another schema version are never addressed."""
        store = cache.ResultCache(tmp_path)
        stale = tmp_path / f"v{KEY_SCHEMA_VERSION + 1}" / "results" / "ab"
        stale.mkdir(parents=True)
        (stale / ("ab" * 32 + ".json")).write_text("{}")
        assert store.get_result("ab" * 32) is None
        assert store.stats()["stale_versions"] == [f"v{KEY_SCHEMA_VERSION + 1}"]
        assert store.clear() >= 1
        assert store.stats()["stale_versions"] == []


class TestCli:
    def test_cache_stats_and_clear(self, tmp_path, capsys):
        from repro.__main__ import main

        store = cache.ResultCache(tmp_path)
        store.put_result(_base_key(), _small_result())

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "results" in out and "1 entries" in out

        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 entries" in out

    def test_cache_stats_on_missing_dir_is_ok(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "nope")]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_run_accepts_jobs_and_cache_dir_flags(self, tmp_path, monkeypatch):
        """--jobs/--cache-dir are parsed and exported for the harnesses."""
        import repro.__main__ as cli

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr(
            cli, "_run_experiments", lambda selected, quick: None
        )
        assert (
            cli.main(
                [
                    "run",
                    "fig05",
                    "--quick",
                    "--jobs",
                    "2",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        import os

        assert os.environ["REPRO_JOBS"] == "2"
        assert cache.get_cache() is not None
        assert cache.get_cache().root == tmp_path


# --------------------------------------------------------------------------
# Concurrency: the atomic-rename write path must make simultaneous writers
# and racing readers safe without any locking.
# --------------------------------------------------------------------------

#: Child-process writer: computes the (deterministic) small result itself,
#: waits for a start gun so competing writers overlap, then hammers
#: ``put_result`` on one shared key.
_WRITER_SCRIPT = textwrap.dedent(
    """
    import sys, time
    from pathlib import Path

    from repro import cache
    from repro.sim.config import MachineConfig
    from repro.sim.single_core import simulate
    from repro.workloads import spec

    root, key, iters = sys.argv[1], sys.argv[2], int(sys.argv[3])
    store = cache.ResultCache(root)
    trace = spec.make_trace("mcf", n_accesses=1000, seed=1, scale=4)
    result = simulate(
        trace, "bo", machine=MachineConfig.scaled(4), warmup_accesses=333
    )
    gun = Path(root) / "go"
    deadline = time.monotonic() + 30.0
    while not gun.exists():
        if time.monotonic() > deadline:
            sys.exit(3)
        time.sleep(0.005)
    for _ in range(iters):
        store.put_result(key, result)
    """
)


def _tiny_result():
    """Same configuration as :data:`_WRITER_SCRIPT` builds in the child."""
    trace = spec.make_trace("mcf", n_accesses=1000, seed=1, scale=4)
    return simulate(trace, "bo", machine=_machine(), warmup_accesses=333)


def _spawn_writer(root, key, iters):
    src = Path(cache.__file__).resolve().parents[2]
    env = dict(os.environ, PYTHONPATH=str(src))
    for var in ("REPRO_FAULTS", "REPRO_FAULTS_SEED", "REPRO_CACHE_DIR"):
        env.pop(var, None)
    return subprocess.Popen(
        [sys.executable, "-c", _WRITER_SCRIPT, str(root), key, str(iters)],
        env=env,
    )


class TestConcurrency:
    def test_two_processes_putting_same_key_both_succeed(self, tmp_path):
        """Concurrent writers of one key never corrupt the entry."""
        key = _base_key()
        writers = [_spawn_writer(tmp_path, key, 100) for _ in range(2)]
        (tmp_path / "go").touch()  # start gun: maximize write overlap
        for proc in writers:
            assert proc.wait(timeout=120) == 0
        store = cache.ResultCache(tmp_path)
        assert store.get_result(key) == _tiny_result()
        assert store.errors == 0

    def test_reader_racing_writer_sees_hit_or_miss_never_exception(
        self, tmp_path
    ):
        """``os.replace`` publication means readers never observe a torn
        entry: every ``get_result`` during a write storm is either a miss
        (recompute) or a full, bit-identical hit."""
        key = _base_key()
        expected = _tiny_result()
        store = cache.ResultCache(tmp_path)
        writer = _spawn_writer(tmp_path, key, 200)
        (tmp_path / "go").touch()
        hits = 0
        try:
            while writer.poll() is None:
                loaded = store.get_result(key)  # must not raise
                if loaded is not None:
                    assert loaded == expected
                    hits += 1
        finally:
            assert writer.wait(timeout=120) == 0
        assert store.get_result(key) == expected
        assert hits >= 1
        assert store.errors == 0
