"""Unit tests for the set-associative cache model."""

import pytest

from repro.memory.cache import Cache


def make_cache(size=4096, ways=4, policy="lru"):
    return Cache("T", size, ways, policy=policy)


def test_geometry():
    cache = make_cache(size=4096, ways=4)  # 4096 / (64*4) = 16 sets
    assert cache.num_sets == 16
    assert cache.total_ways == 4
    assert cache.active_size_bytes == 4096


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        Cache("bad", 1000, 3)  # not a power-of-two set count


def test_miss_then_fill_then_hit():
    cache = make_cache()
    assert not cache.access(100).hit
    cache.fill(100)
    assert cache.access(100).hit
    assert cache.contains(100)


def test_fill_evicts_lru_victim():
    cache = make_cache(size=1024, ways=2)  # 8 sets
    s = cache.num_sets
    lines = [s * i for i in range(3)]  # all map to set 0
    cache.fill(lines[0])
    cache.fill(lines[1])
    cache.access(lines[0])  # lines[1] is now LRU
    victim = cache.fill(lines[2])
    assert victim is not None and victim.line == lines[1]
    assert cache.contains(lines[0]) and cache.contains(lines[2])


def test_dirty_bit_set_on_write_and_merge_on_refill():
    cache = make_cache()
    cache.fill(7)
    cache.access(7, is_write=True)
    cache.fill(7, dirty=False)  # re-fill must not clear dirty
    victim = cache.invalidate(7)
    assert victim is not None and victim.dirty


def test_prefetched_flag_cleared_on_first_demand_touch():
    cache = make_cache()
    cache.fill(9, prefetched="l2")
    first = cache.access(9)
    second = cache.access(9)
    assert first.prefetch_hit == "l2"
    assert second.prefetch_hit is None


def test_invalidate_missing_line_is_none():
    cache = make_cache()
    assert cache.invalidate(42) is None


def test_mark_dirty():
    cache = make_cache()
    assert not cache.mark_dirty(5)
    cache.fill(5)
    assert cache.mark_dirty(5)
    assert cache.invalidate(5).dirty


def test_occupancy_counts_valid_lines():
    cache = make_cache()
    assert cache.occupancy() == 0
    for line in range(10):
        cache.fill(line)
    assert cache.occupancy() == 10


def test_shrink_active_ways_evicts_and_restricts():
    cache = make_cache(size=1024, ways=4)  # 4 sets
    s = cache.num_sets
    for i in range(4):
        cache.fill(s * i)  # fill all 4 ways of set 0
    evicted = cache.set_active_ways(2)
    assert len(evicted) == 2
    assert cache.occupancy() == 2
    # New fills never use deactivated ways: set 0 can hold at most 2.
    for i in range(4, 8):
        cache.fill(s * i)
    assert sum(1 for i in range(8) if cache.contains(s * i)) == 2


def test_grow_active_ways_reenables_capacity():
    cache = make_cache(size=1024, ways=4)
    cache.set_active_ways(1)
    cache.set_active_ways(4)
    s = cache.num_sets
    for i in range(4):
        cache.fill(s * i)
    assert all(cache.contains(s * i) for i in range(4))


def test_zero_active_ways_bypasses_fill():
    cache = make_cache(size=1024, ways=4)
    cache.set_active_ways(0)
    assert cache.fill(1) is None
    assert not cache.contains(1)


def test_set_active_ways_range_checked():
    cache = make_cache(size=1024, ways=4)
    with pytest.raises(ValueError):
        cache.set_active_ways(5)
    with pytest.raises(ValueError):
        cache.set_active_ways(-1)


def test_hit_miss_counters():
    cache = make_cache()
    cache.access(1)
    cache.fill(1)
    cache.access(1)
    assert cache.misses == 1
    assert cache.hits == 1
