"""Unit tests for the Triage prefetcher itself."""

from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.prefetchers.base import PrefetchCandidate

KB = 1024


def make(capacity=64 * KB, **kw):
    return TriagePrefetcher(TriageConfig(metadata_capacity=capacity, **kw))


def feed(pf, pc, lines):
    return [[c.line for c in pf.observe(pc, line)] for line in lines]


def test_learns_pc_localized_pairs():
    pf = make()
    chain = [10, 500, 3, 42]
    feed(pf, 0xA, chain)
    results = feed(pf, 0xA, chain)
    assert results[0] == [500]
    assert results[1] == [3]
    assert results[2] == [42]


def test_interleaved_pcs_do_not_corrupt_each_other():
    pf = make()
    a, b = [1, 2, 3], [100, 200, 300]
    for x, y in zip(a, b):
        pf.observe(0xA, x)
        pf.observe(0xB, y)
    assert feed(pf, 0xA, [1])[-1] == [2]
    assert feed(pf, 0xB, [100])[-1] == [200]


def test_degree_chains_lookups():
    pf = make(degree=3)
    chain = [10, 20, 30, 40, 50]
    feed(pf, 0xA, chain)
    result = feed(pf, 0xA, [10])[-1]
    assert result == [20, 30, 40]


def test_degree_chain_stops_at_hole():
    pf = make(degree=4)
    feed(pf, 0xA, [10, 20, 30])
    assert feed(pf, 0xA, [20])[-1] == [30]


def test_pc_localization_off_uses_global_stream():
    pf = make(pc_localized=False)
    pf.observe(0xA, 1)
    pf.observe(0xB, 2)  # different PC, but global stream pairs (1, 2)
    assert feed(pf, 0xC, [1])[-1] == [2]


def test_confidence_off_overwrites_immediately():
    pf = make(use_confidence=False)
    feed(pf, 0xA, [1, 2])
    pf.observe(0xA, 1)
    pf.observe(0xA, 99)
    assert feed(pf, 0xA, [1])[-1] == [99]


def test_confidence_on_needs_two_disagreements():
    pf = make()
    feed(pf, 0xA, [1, 2])
    pf.observe(0xA, 1)
    pf.observe(0xA, 99)
    assert feed(pf, 0xA, [1])[-1] == [2]  # still protected


def test_feedback_trains_only_nonredundant():
    pf = make()
    # Trigger 0 maps to metadata set 0, which is always a sampled set.
    feed(pf, 0xA, [0, 2])
    candidates = pf.observe(0xA, 0)
    assert len(candidates) == 1
    policy = pf.store._policy
    before = sum(s.accesses for s in policy._samplers.values())
    pf.feedback(candidates[0], "redundant")
    assert sum(s.accesses for s in policy._samplers.values()) == before
    pf.feedback(candidates[0], "dram")
    assert sum(s.accesses for s in policy._samplers.values()) == before + 1


def test_dynamic_partition_callback_fires():
    changes = []
    config = TriageConfig(
        dynamic=True,
        capacities=(0, 8 * KB, 16 * KB),
        epoch_accesses=200,
        partition_start=2,
        partition_warmup_epochs=0,
    )
    pf = TriagePrefetcher(config, on_partition_change=changes.append)
    # Pure compulsory stream: controller should shrink the store.
    for line in range(2000):
        pf.observe(0xA, line)
    assert changes, "expected at least one partition change"
    assert changes[-1] in (0, 8 * KB)
    assert pf.metadata_capacity_bytes == changes[-1]


def test_static_config_has_no_controller():
    pf = make()
    assert pf.controller is None
    assert pf.metadata_capacity_bytes == 64 * KB


def test_candidate_context_carries_trigger():
    pf = make()
    feed(pf, 0xA, [7, 8])
    candidate = pf.observe(0xA, 7)[0]
    assert isinstance(candidate, PrefetchCandidate)
    trigger, stream_pc = candidate.context
    assert trigger == 7
    assert stream_pc == 0xA


def test_metadata_llc_accesses_grow_with_degree():
    pf1 = make(degree=1)
    pf8 = make(degree=8)
    chain = list(range(100, 200))
    for pf in (pf1, pf8):
        feed(pf, 0xA, chain)
        feed(pf, 0xA, chain)
    assert pf8.store.llc_accesses > pf1.store.llc_accesses
