"""Unit tests for the (idealized) Irregular Stream Buffer."""

from repro.prefetchers.isb import STREAM_GRANULE, IsbPrefetcher


def feed(pf, pc, lines):
    return [[c.line for c in pf.observe(pc, line)] for line in lines]


def test_learns_pc_localized_chain():
    pf = IsbPrefetcher(degree=1)
    chain = [10, 77, 3, 520, 14]
    feed(pf, 0xA, chain)
    results = feed(pf, 0xA, chain)
    # Second traversal: each access predicts its chain successor.
    assert results[1:] == [[3], [520], [14], []]or results[1:] == [[3], [520], [14], [chain[0]]]


def test_pc_localization_separates_interleaved_streams():
    pf = IsbPrefetcher(degree=1)
    a = [1, 2, 3, 4]
    b = [100, 200, 300, 400]
    # Interleave the two streams; each keeps its own PC.
    for x, y in zip(a, b):
        pf.observe(0xA, x)
        pf.observe(0xB, y)
    assert feed(pf, 0xA, [2])[-1] == [3]
    assert feed(pf, 0xB, [200])[-1] == [300]


def test_degree_walks_structural_space():
    pf = IsbPrefetcher(degree=3)
    chain = [5, 9, 13, 17, 21]
    feed(pf, 0xA, chain)
    assert feed(pf, 0xA, [5])[-1] == [9, 13, 17]


def test_confidence_protects_learned_mapping():
    pf = IsbPrefetcher(degree=1, confidence_bits=2)
    chain = [1, 2, 3, 4]
    feed(pf, 0xA, chain)
    feed(pf, 0xA, chain)  # strengthen the whole chain
    pf.observe(0xA, 2)
    pf.observe(0xA, 99)  # one noisy pair (2 -> 99)
    assert feed(pf, 0xA, [2])[-1] == [3]


def test_repeated_disagreement_eventually_remaps():
    pf = IsbPrefetcher(degree=1, confidence_bits=1)
    feed(pf, 0xA, [1, 2])
    for _ in range(6):
        pf.observe(0xA, 1)
        pf.observe(0xA, 99)
    assert feed(pf, 0xA, [1])[-1] == [99]


def test_streams_get_disjoint_granules():
    pf = IsbPrefetcher()
    pf.observe(0xA, 1)
    pf.observe(0xA, 2)
    pf.observe(0xB, 500)
    pf.observe(0xB, 501)
    structs = [pf._ps[line] for line in (1, 500)]
    assert structs[0] // STREAM_GRANULE != structs[1] // STREAM_GRANULE


def test_mapped_pairs_counts_sp_entries():
    pf = IsbPrefetcher()
    feed(pf, 0xA, [1, 2, 3])
    assert pf.mapped_pairs == 3
