"""Unit tests for STMS and Domino (idealized temporal streaming)."""

from repro.prefetchers.domino import DominoPrefetcher
from repro.prefetchers.stms import StmsPrefetcher


def feed(pf, lines, pc=0):
    return [[c.line for c in pf.observe(pc, line)] for line in lines]


def test_stms_streams_history_successors():
    pf = StmsPrefetcher(degree=2)
    feed(pf, [1, 2, 3, 4])
    results = feed(pf, [1])
    assert results[-1] == [2, 3]


def test_stms_first_occurrence_predicts_nothing():
    pf = StmsPrefetcher(degree=2)
    assert feed(pf, [42])[-1] == []


def test_stms_uses_most_recent_occurrence():
    pf = StmsPrefetcher(degree=1)
    feed(pf, [1, 2, 9, 1, 7])
    assert feed(pf, [1])[-1] == [7]


def test_stms_compaction_preserves_recent_history():
    pf = StmsPrefetcher(degree=1, history_capacity=64)
    feed(pf, list(range(100)))
    assert feed(pf, [90])[-1] == [91]


def test_stms_zero_metadata_traffic():
    pf = StmsPrefetcher()
    feed(pf, list(range(100)))
    assert pf.drain_metadata_traffic() == 0


def test_domino_pair_index_disambiguates():
    """Domino resolves a shared address by the two-miss context."""
    pf = DominoPrefetcher(degree=1)
    # Stream A: 1,5,10   Stream B: 2,5,20 -- successor of 5 depends on
    # what preceded it.
    feed(pf, [1, 5, 10, 2, 5, 20])
    assert feed(pf, [1, 5])[-1] == [10]
    pf2 = DominoPrefetcher(degree=1)
    feed(pf2, [1, 5, 10, 2, 5, 20])
    assert feed(pf2, [2, 5])[-1] == [20]


def test_domino_falls_back_to_single_index():
    pf = DominoPrefetcher(degree=1)
    feed(pf, [1, 2, 3])
    # Pair (9, 2) unseen, but 2 itself has history.
    assert feed(pf, [9, 2])[-1] == [3]


def test_domino_compaction_survives():
    pf = DominoPrefetcher(degree=1, history_capacity=64)
    feed(pf, list(range(200)))
    # The pair (190, 191) from the original pass survived compaction and
    # predicts the next element of the old stream.
    assert feed(pf, [190, 191])[-1] == [192]
