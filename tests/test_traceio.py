"""Tests for trace serialization."""

import pytest

from repro.workloads.base import Trace
from repro.workloads.irregular import chain_trace
from repro.workloads.traceio import load_trace, save_trace


def test_round_trip(tmp_path):
    trace = chain_trace("rt", 5_000, seed=9, hot_lines=500, cold_lines=500)
    path = tmp_path / "t.rpt"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == trace.name
    assert loaded.addrs == trace.addrs
    assert loaded.pcs == trace.pcs
    assert loaded.writes == trace.writes
    assert loaded.mlp == trace.mlp
    assert loaded.category == trace.category


def test_metadata_preserved(tmp_path):
    trace = Trace("m", [1], [64], [True], metadata={"pattern": "x"})
    path = tmp_path / "m.rpt"
    save_trace(trace, path)
    assert load_trace(path).metadata == {"pattern": "x"}


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "junk.rpt"
    path.write_bytes(b"NOPE" + b"\x00" * 100)
    with pytest.raises(ValueError, match="magic"):
        load_trace(path)


def test_truncated_body_rejected(tmp_path):
    trace = Trace("t", [1, 2], [64, 128], [False, False])
    path = tmp_path / "t.rpt"
    save_trace(trace, path)
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(ValueError, match="truncated"):
        load_trace(path)


def test_loaded_trace_simulates_identically(tmp_path):
    from repro.sim.config import MachineConfig
    from repro.sim.single_core import simulate

    trace = chain_trace("sim", 4_000, seed=2, hot_lines=300, cold_lines=300)
    path = tmp_path / "sim.rpt"
    save_trace(trace, path)
    loaded = load_trace(path)
    machine = MachineConfig.scaled(16)
    a = simulate(trace, None, machine=machine)
    b = simulate(loaded, None, machine=machine)
    assert a.cycles == b.cycles
    assert a.counters == b.counters
