"""Tests for the reporting subsystem (repro.obs.reporting).

Covers tolerant artifact discovery over nested/partial/corrupt trees,
the dependency-free Frame, SVG figure rendering, the end-to-end
sweep -> HTML report round trip, the report-manifest schema, the
dashboard's regression-highlight logic on synthetic BENCH trajectories,
the sweep.summary obs event and the CLI exit conventions.
"""

import json
import pathlib

import pytest

from repro import obs
from repro.__main__ import main
from repro.experiments import common
from repro.obs.reporting import (
    Frame,
    ReportError,
    discover,
    generate_dashboard,
    generate_report,
    read_jsonl_tolerant,
)
from repro.obs.reporting import figures as rfigures
from repro.obs.reporting import frames as rframes
from repro.obs.reporting.dashboard import analyze_trajectory, render_dashboard_html
from repro.obs.reporting.discover import TrajectoryFile
from repro.obs.reporting.page import self_containment_violations
from repro.sim.sweep import sweep


@pytest.fixture(autouse=True)
def _clean_obs(monkeypatch):
    """Isolated observability and no ambient sweep knobs."""
    for var in ("REPRO_JOBS", "REPRO_CACHE_DIR", "REPRO_RESUME",
                "REPRO_REPORT", "REPRO_RETRIES", "REPRO_CELL_TIMEOUT"):
        monkeypatch.delenv(var, raising=False)
    obs.disable()
    yield
    obs.disable()


def run_mini_sweep(out_dir):
    """A real two-config sweep under an obs session, flushed to disk."""
    session = obs.enable(out_dir=out_dir)
    try:
        records = sweep(
            ["mcf"],
            {"bo": "bo", "triage": common.triage_config(dynamic=True)},
            n_accesses=6_000,
            scale=4,
        )
        session.flush()
    finally:
        obs.disable()
    return records


def make_bench_record(experiment="figXX", kpis=None, wall=1.0):
    """A minimal schema-valid BENCH trajectory record."""
    return {
        "schema": 1,
        "experiment": experiment,
        "quick": True,
        "repeats": 2,
        "warmup": 1,
        "created_unix": 1700000000.0,
        "kpis": dict(kpis or {"speedup": 1.5, "coverage": 0.4}),
        "wall_times_s": [wall, wall],
        "wall_time_mean_s": wall,
        "wall_time_min_s": wall,
        "accesses_total": 1000,
        "throughput_accesses_per_s": 1000.0,
        "peak_rss_kb": 1024,
        "cache": {"enabled": False},
        "cell_latency_s": {"count": 0},
        "fingerprint": {"python": "3.x", "machine": "test"},
    }


def write_trajectory(path, records):
    path.write_text(json.dumps(records, indent=1, sort_keys=True) + "\n")
    return path


# -- tolerant parsing + discovery --------------------------------------------


def test_read_jsonl_tolerant_skips_torn_records(tmp_path):
    path = tmp_path / "epochs.jsonl"
    path.write_text('{"epoch": 0, "coverage": 0.5}\n'
                    "not json at all\n"
                    '{"epoch": 1, "coverage": 0.6}\n'
                    '{"epoch": 2, "cover')  # crash mid-append
    rows, problems = read_jsonl_tolerant(path)
    assert [r["epoch"] for r in rows] == [0, 1]
    assert len(problems) == 2
    assert all(str(path) in p for p in problems)


def test_discover_nested_partial_and_corrupt(tmp_path):
    # A complete run dir, nested two levels down.
    good = tmp_path / "results" / "obs" / "fig05"
    good.mkdir(parents=True)
    (good / "manifests.jsonl").write_text('{"kind": "single"}\n')
    (good / "epochs.jsonl").write_text('{"epoch": 0}\n')
    (good / "events.jsonl").write_text('{"category": "x"}\n')
    (good / "metrics.json").write_text("{}\n")
    # A partial run dir: epochs only, no manifests/events.
    partial = tmp_path / "partial"
    partial.mkdir()
    (partial / "epochs.jsonl").write_text('{"epoch": 0}\ntruncated{{{\n')
    # A corrupt metrics file alongside a valid marker.
    corrupt = tmp_path / "corrupt"
    corrupt.mkdir()
    (corrupt / "manifests.jsonl").write_text('{"kind": "single"}\n')
    (corrupt / "metrics.json").write_text("][ not json")
    # A bench trajectory and a checkpoint journal.
    write_trajectory(tmp_path / "BENCH_fig05.json", [make_bench_record("fig05")])
    journal_dir = tmp_path / "cache" / "journal"
    journal_dir.mkdir(parents=True)
    (journal_dir / "abc.jsonl").write_text('{"cell_key": "k1"}\n')
    # Cache payload shards must be pruned, not walked.
    payload = tmp_path / "cache" / "v1" / "results" / "ab"
    payload.mkdir(parents=True)
    (payload / "manifests.jsonl").write_text('{"kind": "should-not-load"}\n')

    tree = discover(tmp_path)
    names = {run.path.name for run in tree.runs}
    assert names == {"fig05", "partial", "corrupt"}
    assert len(tree.manifests) == 2  # payload shard's manifest not loaded
    assert len(tree.trajectories) == 1 and tree.trajectories[0].experiment == "fig05"
    assert len(tree.journals) == 1 and tree.journals[0].entries[0]["cell_key"] == "k1"
    problems = tree.all_problems()
    assert any("partial" in p and "malformed" in p for p in problems)
    assert any("metrics.json" in p for p in problems)
    partial_run = next(r for r in tree.runs if r.path.name == "partial")
    assert "manifests.jsonl" in partial_run.missing()


def test_discover_missing_root_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        discover(tmp_path / "nope")


def test_discover_obs_results_dir_is_not_pruned(tmp_path):
    # "results/obs" is a conventional obs output path; only v<N>/results
    # cache shards are pruned.  Guard against over-eager pruning.
    run = tmp_path / "results" / "obs"
    run.mkdir(parents=True)
    (run / "manifests.jsonl").write_text('{"kind": "single"}\n')
    assert len(discover(tmp_path).manifests) == 1


# -- Frame --------------------------------------------------------------------


def test_frame_accessors():
    frame = Frame([
        {"a": 1, "b": "x"},
        {"a": 2, "b": "y", "c": True},
        {"a": "bad", "b": "x"},
    ])
    assert frame.columns() == ["a", "b", "c"]
    assert frame.numeric("a") == [1.0, 2.0]
    assert len(frame.where(b="x")) == 2
    assert len(frame.where(lambda r: r["a"] == 2)) == 1
    assert set(frame.groupby("b")) == {"x", "y"}
    assert frame.unique("b") == ["x", "y"]


def test_frame_to_pandas_is_gated():
    frame = Frame([{"a": 1}])
    try:
        import pandas  # noqa: F401
    except ImportError:
        with pytest.raises(RuntimeError, match="pandas is not installed"):
            frame.to_pandas()
    else:
        assert len(frame.to_pandas()) == 1


def test_flatten_record():
    flat = rframes.flatten_record({"a": {"b": {"c": 1}}, "d": [1, 2]})
    assert flat == {"a.b.c": 1, "d": [1, 2]}


# -- figures ------------------------------------------------------------------


def test_bar_chart_renders_values_and_highlight():
    svg = rfigures.bar_chart(
        "IPC", ["mcf", "lbm"],
        {"bo": [1.0, 2.0], "triage": [1.5, None]},
        ylabel="ipc", highlight=["triage"],
    )
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "IPC" in svg and "mcf" in svg
    assert rfigures.HIGHLIGHT in svg  # the highlighted series' color
    assert "<title>mcf / bo: 1</title>" in svg  # hover tooltip


def test_line_chart_and_empty_figure():
    svg = rfigures.line_chart(
        "coverage", {"run0": [(0, 0.1), (1, 0.4)]}, xlabel="epoch"
    )
    assert "<path" in svg and "<circle" in svg
    assert "no data" in rfigures.line_chart("empty", {})
    assert "no data" in rfigures.bar_chart("empty", [], {})


# -- end-to-end report --------------------------------------------------------


class TestSweepReportRoundTrip:
    @pytest.fixture(scope="class")
    def report_paths(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("sweep_obs")
        run_mini_sweep(root)
        return root, generate_report(root)

    def test_report_files_written(self, report_paths):
        root, paths = report_paths
        assert paths["html"].exists() and paths["manifest"].exists()
        assert paths["html"].parent == root / "report"

    def test_html_is_self_contained(self, report_paths):
        html = report_paths[1]["html"].read_text()
        assert self_containment_violations(html) == []

    def test_html_carries_provenance_and_figures(self, report_paths):
        html = report_paths[1]["html"].read_text()
        import platform

        assert platform.python_version() in html  # machine fingerprint
        assert html.count("<svg") >= 2  # rendered figures
        for heading in ("Run manifests", "Machine fingerprint",
                        "Resolved config", "KPIs", "Epoch time-series",
                        "Resilience", "Cache economics", "Energy"):
            assert heading in html
        assert "Sweep summaries" in html  # sweep.summary made it through

    def test_report_manifest_schema(self, report_paths):
        manifest = json.loads(report_paths[1]["manifest"].read_text())
        assert manifest["schema"] == 1
        for key in ("root", "html", "generated_unix", "runs", "figures",
                    "kpis", "fingerprints", "energy", "sweep_summaries",
                    "journals", "trajectories", "problems"):
            assert key in manifest, key
        assert len(manifest["runs"]) == 1
        run = manifest["runs"][0]
        assert run["manifests"] == 3  # baseline + bo + triage
        assert set(manifest["kpis"]) and all(
            "ipc" in k for k in manifest["kpis"].values()
        )
        # The energy section reflects the fig13 model for the triage run.
        triage_rows = [e for e in manifest["energy"]
                       if e["prefetcher"].startswith("triage")]
        assert triage_rows and triage_rows[0]["energy_nominal"] == (
            triage_rows[0]["metadata_llc_accesses"]
            + 25.0 * triage_rows[0]["metadata_dram_accesses"]
        )
        summary = manifest["sweep_summaries"][0]
        assert summary["status"] == "ok"
        assert summary["cells_total"] == 3 and summary["executed"] == 3
        for field in ("resumed", "retries", "timeouts", "failed",
                      "cache_hits", "cache_misses", "wall_s"):
            assert field in summary


def test_report_degrades_on_missing_and_truncated_artifacts(tmp_path):
    run_mini_sweep(tmp_path)
    (tmp_path / "events.jsonl").unlink()
    epochs = tmp_path / "epochs.jsonl"
    lines = epochs.read_text().splitlines()
    epochs.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
    paths = generate_report(tmp_path)
    html = paths["html"].read_text()
    manifest = json.loads(paths["manifest"].read_text())
    assert manifest["runs"][0]["manifests"] == 3  # manifests intact
    assert "events.jsonl" in str(manifest["runs"][0]["missing"])
    assert any("skipped malformed line" in p for p in manifest["problems"])
    assert "Problems" in html


def test_report_error_on_manifestless_tree(tmp_path):
    (tmp_path / "notes.txt").write_text("nothing here")
    with pytest.raises(ReportError, match="no discoverable run manifests"):
        generate_report(tmp_path)


# -- sweep.summary event ------------------------------------------------------


def test_sweep_emits_summary_event(tmp_path):
    session = obs.enable(out_dir=tmp_path)
    try:
        sweep(["mcf"], {"bo": "bo"}, n_accesses=6_000, scale=4)
        summaries = [e.fields for e in session.events.events("sweep.summary")]
    finally:
        obs.disable()
    assert len(summaries) == 1
    summary = summaries[0]
    assert summary["status"] == "ok"
    assert summary["cells_total"] == 2  # baseline + bo
    assert summary["executed"] == 2
    assert summary["retries"] == 0 and summary["timeouts"] == 0
    assert summary["failed"] == 0 and summary["resumed"] == 0
    assert summary["wall_s"] > 0


def test_sweep_report_flag_writes_report(tmp_path):
    session = obs.enable(out_dir=tmp_path)
    try:
        sweep(["mcf"], {"bo": "bo"}, n_accesses=6_000, scale=4, report=True)
    finally:
        obs.disable()
    assert (tmp_path / "report" / "report.html").exists()
    assert session.out_dir == tmp_path


def test_resumed_sweep_report_keeps_manifests(tmp_path, monkeypatch):
    """A fully journal-served --resume sweep still reports its runs.

    Resumed cells skip simulation, so their manifests must be filed
    with the session by the prefill path — otherwise the obs dir
    flushes an empty manifests.jsonl and report generation fails.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_RESUME", "1")
    obs.enable(out_dir=tmp_path / "first")
    try:
        sweep(["mcf"], {"bo": "bo"}, n_accesses=6_000, scale=4)
    finally:
        obs.disable()

    session = obs.enable(out_dir=tmp_path / "second")
    try:
        sweep(["mcf"], {"bo": "bo"}, n_accesses=6_000, scale=4)
        summaries = [e.fields for e in session.events.events("sweep.summary")]
        session.flush()
    finally:
        obs.disable()

    assert summaries[-1]["resumed"] == 2
    assert summaries[-1]["executed"] == 0
    paths = generate_report(tmp_path / "second")
    data = json.loads(pathlib.Path(paths["manifest"]).read_text())
    assert data["runs"][0]["manifests"] == 2
    assert len(data["kpis"]) == 2


# -- dashboard regression highlighting ----------------------------------------


def test_dashboard_flags_kpi_drift_beyond_tolerance(tmp_path):
    base = make_bench_record("fig05", kpis={"speedup": 2.0, "coverage": 0.5})
    drifted = make_bench_record("fig05", kpis={"speedup": 1.0, "coverage": 0.5})
    write_trajectory(tmp_path / "BENCH_fig05.json", [base, drifted])
    steady = [
        make_bench_record("fig01", kpis={"speedup": 1.0}),
        make_bench_record("fig01", kpis={"speedup": 1.02}),
    ]
    write_trajectory(tmp_path / "BENCH_fig01.json", steady)

    data = generate_dashboard(tmp_path, kpi_tol=0.05)
    assert data["ok"] is False
    by_name = {e["experiment"]: e for e in data["experiments"]}
    assert by_name["fig05"]["ok"] is False
    assert by_name["fig05"]["regressed_kpis"] == ["speedup"]
    assert by_name["fig01"]["ok"] is True  # 2% drift inside 5% tolerance
    assert by_name["fig01"]["regressed_kpis"] == []

    html = (tmp_path / "dashboard.html").read_text()
    assert self_containment_violations(html) == []
    assert 'class="regressed"' in html  # the drifted row is highlighted
    assert "badge-regressed" in html and "badge-ok" in html


def test_analyze_trajectory_single_record_is_ok(tmp_path):
    trajectory = TrajectoryFile(
        path=tmp_path / "BENCH_x.json", experiment="x",
        records=[make_bench_record("x")],
    )
    entry = analyze_trajectory(trajectory)
    assert entry["ok"] is True and entry["comparison"] is None
    html = render_dashboard_html(
        {"schema": 1, "kpi_tol": 0.05, "time_tol": 0.5, "generated_unix": 0,
         "experiments": [entry], "ok": True},
        [trajectory],
    )
    assert self_containment_violations(html) == []


# -- CLI ----------------------------------------------------------------------


def test_cli_report_html_round_trip(tmp_path, capsys):
    run_mini_sweep(tmp_path / "obs")
    out = tmp_path / "site"
    assert main(["report", "html", str(tmp_path / "obs"), "--out", str(out)]) == 0
    assert (out / "report.html").exists()
    assert (out / "report-manifest.json").exists()
    assert "report.html" in capsys.readouterr().out


def test_cli_report_html_exit_2_without_manifests(tmp_path, capsys):
    assert main(["report", "html", str(tmp_path / "missing")]) == 2
    (tmp_path / "empty").mkdir()
    assert main(["report", "html", str(tmp_path / "empty")]) == 2
    err = capsys.readouterr().err
    assert "no discoverable run manifests" in err
    assert "Traceback" not in err


def test_cli_dashboard_exit_codes(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["dashboard", str(empty)]) == 2

    ok_dir = tmp_path / "ok"
    ok_dir.mkdir()
    write_trajectory(ok_dir / "BENCH_a.json",
                     [make_bench_record("a"), make_bench_record("a")])
    assert main(["dashboard", str(ok_dir)]) == 0

    bad_dir = tmp_path / "bad"
    bad_dir.mkdir()
    write_trajectory(
        bad_dir / "BENCH_b.json",
        [make_bench_record("b", kpis={"speedup": 2.0}),
         make_bench_record("b", kpis={"speedup": 1.0})],
    )
    assert main(["dashboard", str(bad_dir)]) == 1
    assert "REGRESSED" in capsys.readouterr().out
    assert (bad_dir / "dashboard.html").exists()


def test_cli_run_report_generates_html(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("REPRO_QUICK", "1")
    obs_out = tmp_path / "obs-out"
    assert main(["run", "fig05", "--quick", "--obs-out", str(obs_out),
                 "--report"]) == 0
    assert (obs_out / "report" / "report.html").exists()
    assert "HTML report:" in capsys.readouterr().out
