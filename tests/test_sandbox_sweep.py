"""Tests for the Sandbox prefetcher and the sweep utility."""

from repro.prefetchers.sandbox import SandboxPrefetcher, _BloomFilter
from repro.sim.sweep import records_to_csv, sweep


def feed(pf, lines):
    return [[c.line for c in pf.observe(0, line)] for line in lines]


def test_bloom_filter_membership():
    bloom = _BloomFilter()
    bloom.add(1234)
    assert 1234 in bloom
    assert 99999 not in bloom
    bloom.clear()
    assert 1234 not in bloom


def test_sandbox_accepts_winning_offset():
    pf = SandboxPrefetcher(degree=2, offsets=[1])
    feed(pf, list(range(3 * pf.PERIOD)))
    assert 1 in pf.live_scores
    candidates = feed(pf, [5000])[-1]
    assert 5001 in candidates


def test_sandbox_rejects_useless_offset():
    import random

    rnd = random.Random(5)
    pf = SandboxPrefetcher(degree=2, offsets=[7])
    feed(pf, [rnd.randrange(1 << 40) for _ in range(3 * pf.PERIOD)])
    assert 7 not in pf.live_scores
    assert feed(pf, [rnd.randrange(1 << 40)])[-1] == []


def test_sandbox_degree_budget_respected():
    pf = SandboxPrefetcher(degree=3, offsets=[1, 2])
    feed(pf, list(range(6 * pf.PERIOD)))
    for result in feed(pf, list(range(10_000, 10_050))):
        assert len(result) <= 3


def test_sweep_produces_grid():
    records = sweep(
        benchmarks=["mcf", "libquantum"],
        prefetchers={"bo": "bo", "none2": None},
        n_accesses=6_000,
        scale=16,
    )
    assert len(records) == 4
    keys = {(r.workload, r.config) for r in records}
    assert ("mcf", "bo") in keys
    none_records = [r for r in records if r.config == "none2"]
    for record in none_records:
        assert record.speedup == 1.0  # identical to its own baseline


def test_sweep_csv():
    records = sweep(
        benchmarks=["mcf"],
        prefetchers={"bo": "bo"},
        n_accesses=4_000,
        scale=16,
    )
    csv_text = records_to_csv(records)
    lines = csv_text.strip().splitlines()
    assert lines[0].startswith("workload,config,speedup")
    assert len(lines) == 2
    assert records_to_csv([]) == ""
