"""Additional property-based tests: prefetcher and engine invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.metadata_store import ENTRIES_PER_LINE
from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.prefetchers.isb import IsbPrefetcher
from repro.prefetchers.sandbox import SandboxPrefetcher
from repro.prefetchers.stms import StmsPrefetcher
from repro.prefetchers.triangel import TriangelConfig, TriangelPrefetcher
from repro.replacement.reuse_aware import ReuseAwarePolicy
from repro.sim.queued.dram_sched import BankedDram
from repro.sim.queued.mshr import MshrFile

lines = st.integers(min_value=0, max_value=127)
streams = st.lists(st.tuples(st.integers(0, 3), lines), min_size=1, max_size=250)


@settings(max_examples=30, deadline=None)
@given(streams)
def test_isb_maps_stay_bijective(stream):
    """PS and SP must stay mutually consistent under any training."""
    pf = IsbPrefetcher()
    for pc, line in stream:
        pf.observe(pc, line)
    for line, struct in pf._ps.items():
        assert pf._sp.get(struct) == line
    for struct, line in pf._sp.items():
        assert pf._ps.get(line) == struct


@settings(max_examples=30, deadline=None)
@given(streams)
def test_triage_candidates_respect_degree(stream):
    pf = TriagePrefetcher(
        TriageConfig(degree=3, metadata_capacity=8192,
                     capacities=(0, 4096, 8192))
    )
    for pc, line in stream:
        candidates = pf.observe(pc, line)
        assert len(candidates) <= 3
        for c in candidates:
            assert c.owner is pf


@settings(max_examples=25, deadline=None)
@given(st.lists(lines, min_size=1, max_size=300))
def test_stms_candidates_come_from_history(stream):
    pf = StmsPrefetcher(degree=2)
    seen = set()
    for line in stream:
        for c in pf.observe(0, line):
            assert c.line in seen  # can only predict what it has recorded
        seen.add(line)


@settings(max_examples=25, deadline=None)
@given(st.lists(lines, min_size=1, max_size=200))
def test_mshr_never_exceeds_capacity(stream):
    mshrs = MshrFile(4)
    for i, line in enumerate(stream):
        entry = mshrs.allocate(line, float(i))
        if entry is None:
            oldest = mshrs.outstanding_lines()[0]
            mshrs.complete(oldest)
            assert mshrs.allocate(line, float(i)) is not None
        assert len(mshrs) <= 4


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(lines, st.booleans()), min_size=1, max_size=200))
def test_dram_completions_monotone_per_request_time(reqs):
    """A request issued at time t always completes after t plus the
    latency floor, and the bus never time-travels."""
    dram = BankedDram()
    last_bus = 0.0
    for i, (line, is_write) in enumerate(reqs):
        now = float(i)
        done = dram.service(line, now, is_write)
        assert done >= now + dram.params.base_latency - 1e-9
        assert dram.earliest_idle() >= last_bus
        last_bus = dram.earliest_idle()


@settings(max_examples=20, deadline=None)
@given(st.lists(lines, min_size=1, max_size=400))
def test_sandbox_candidates_positive_and_bounded(stream):
    pf = SandboxPrefetcher(degree=2, offsets=[1, -1, 4])
    for line in stream:
        candidates = pf.observe(0, line)
        assert len(candidates) <= 2
        for c in candidates:
            assert c.line > 0


# -- Triangel family ----------------------------------------------------------


def _assert_store_invariants(store) -> None:
    """Structural invariants of the set-associative metadata arrays."""
    assert store.occupancy() <= store.capacity_entries
    for set_idx in range(store.num_sets):
        ways = store._ways[set_idx]
        index = store._index[set_idx]
        free = store._free[set_idx]
        # The index maps exactly the occupied ways, and each mapped way
        # actually holds the trigger it is indexed under.
        assert len(index) + len(free) == ENTRIES_PER_LINE
        for trigger, way in index.items():
            entry = ways[way]
            assert entry is not None
            assert entry.trigger == trigger
            assert entry.confidence in (0, 1)
            assert store._set_of(trigger) == set_idx
        for way in free:
            assert ways[way] is None


@settings(max_examples=25, deadline=None)
@given(streams, st.integers(1, 4), st.booleans())
def test_triangel_streams_never_corrupt_metadata_invariants(
    stream, lookahead, sampling
):
    """Arbitrary access streams leave the store structurally sound."""
    pf = TriangelPrefetcher(
        TriangelConfig(
            metadata_capacity=4096,
            capacities=(0, 2048, 4096),
            lookahead=lookahead,
            sampling=sampling,
            sample_sets=4,
            sample_ways=2,
        )
    )
    for pc, line in stream:
        pf.observe(pc, line)
    _assert_store_invariants(pf.store)
    assert pf.sample_table.occupancy() <= 4 * 2


@settings(max_examples=25, deadline=None)
@given(streams, st.integers(1, 4), st.integers(1, 3))
def test_triangel_lookahead_never_duplicates_inflight(stream, lookahead, degree):
    """One walk never emits the same line twice, nor its own trigger."""
    pf = TriangelPrefetcher(
        TriangelConfig(metadata_capacity=8192, capacities=(0, 4096, 8192),
                       lookahead=lookahead, degree=degree)
    )
    for pc, line in stream:
        candidates = pf.observe(pc, line)
        assert len(candidates) <= lookahead - 1 + degree
        issued = [c.line for c in candidates]
        assert len(issued) == len(set(issued))
        assert line not in issued
        for c in candidates:
            assert c.owner is pf


#: (op, set, way) events for driving a replacement policy directly.
_policy_ops = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 1), st.integers(0, 7)),
    min_size=1,
    max_size=120,
)


@settings(max_examples=40, deadline=None)
@given(_policy_ops, st.integers(2, 8), st.integers(2, 8))
def test_reuse_policy_resize_preserves_ordering_contract(ops, shrink_to, regrow_to):
    """PR-5 contract under resize: victims always answer from live per-way
    state (min ``(reuse, last_touch)``, lowest way on ties), shrinking
    truncates, and a later grow exposes fresh -- never stale -- state."""
    policy = ReuseAwarePolicy(2, 8)

    def check_victims():
        for set_idx in range(2):
            reuse = policy._reuse[set_idx]
            touches = policy._last_touch[set_idx]
            assert len(reuse) == len(touches) == policy.num_ways
            reference = min(
                range(policy.num_ways), key=lambda w: (reuse[w], touches[w])
            )
            assert policy.victim(set_idx) == reference

    for op, set_idx, way in ops:
        way %= policy.num_ways
        if op == 0:
            policy.on_fill(set_idx, way)
        elif op == 1:
            policy.on_hit(set_idx, way)
        else:
            policy.on_evict(set_idx, way)
        check_victims()

    policy.resize_ways(shrink_to)
    check_victims()
    policy.resize_ways(regrow_to)
    check_victims()
    if regrow_to > shrink_to:
        # Re-enabled ways must come back untouched: fresh state, not the
        # pre-shrink counters resurfacing as fake reuse.
        for set_idx in range(2):
            for way in range(shrink_to, regrow_to):
                assert policy._reuse[set_idx][way] == 0
                assert policy._last_touch[set_idx][way] == -1
