"""Additional property-based tests: prefetcher and engine invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.prefetchers.isb import IsbPrefetcher
from repro.prefetchers.sandbox import SandboxPrefetcher
from repro.prefetchers.stms import StmsPrefetcher
from repro.sim.queued.dram_sched import BankedDram
from repro.sim.queued.mshr import MshrFile

lines = st.integers(min_value=0, max_value=127)
streams = st.lists(st.tuples(st.integers(0, 3), lines), min_size=1, max_size=250)


@settings(max_examples=30, deadline=None)
@given(streams)
def test_isb_maps_stay_bijective(stream):
    """PS and SP must stay mutually consistent under any training."""
    pf = IsbPrefetcher()
    for pc, line in stream:
        pf.observe(pc, line)
    for line, struct in pf._ps.items():
        assert pf._sp.get(struct) == line
    for struct, line in pf._sp.items():
        assert pf._ps.get(line) == struct


@settings(max_examples=30, deadline=None)
@given(streams)
def test_triage_candidates_respect_degree(stream):
    pf = TriagePrefetcher(
        TriageConfig(degree=3, metadata_capacity=8192,
                     capacities=(0, 4096, 8192))
    )
    for pc, line in stream:
        candidates = pf.observe(pc, line)
        assert len(candidates) <= 3
        for c in candidates:
            assert c.owner is pf


@settings(max_examples=25, deadline=None)
@given(st.lists(lines, min_size=1, max_size=300))
def test_stms_candidates_come_from_history(stream):
    pf = StmsPrefetcher(degree=2)
    seen = set()
    for line in stream:
        for c in pf.observe(0, line):
            assert c.line in seen  # can only predict what it has recorded
        seen.add(line)


@settings(max_examples=25, deadline=None)
@given(st.lists(lines, min_size=1, max_size=200))
def test_mshr_never_exceeds_capacity(stream):
    mshrs = MshrFile(4)
    for i, line in enumerate(stream):
        entry = mshrs.allocate(line, float(i))
        if entry is None:
            oldest = mshrs.outstanding_lines()[0]
            mshrs.complete(oldest)
            assert mshrs.allocate(line, float(i)) is not None
        assert len(mshrs) <= 4


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(lines, st.booleans()), min_size=1, max_size=200))
def test_dram_completions_monotone_per_request_time(reqs):
    """A request issued at time t always completes after t plus the
    latency floor, and the bus never time-travels."""
    dram = BankedDram()
    last_bus = 0.0
    for i, (line, is_write) in enumerate(reqs):
        now = float(i)
        done = dram.service(line, now, is_write)
        assert done >= now + dram.params.base_latency - 1e-9
        assert dram.earliest_idle() >= last_bus
        last_bus = dram.earliest_idle()


@settings(max_examples=20, deadline=None)
@given(st.lists(lines, min_size=1, max_size=400))
def test_sandbox_candidates_positive_and_bounded(stream):
    pf = SandboxPrefetcher(degree=2, offsets=[1, -1, 4])
    for line in stream:
        candidates = pf.observe(0, line)
        assert len(candidates) <= 2
        for c in candidates:
            assert c.line > 0
