"""Tests for the queued (event-driven) engine and its components."""

import pytest

from repro.core.triage import TriageConfig
from repro.sim.config import MachineConfig
from repro.sim.queued import BankedDram, MshrFile, simulate_queued
from repro.sim.queued.dram_sched import DramTimingParams
from repro.sim.single_core import simulate
from repro.workloads.irregular import chain_trace
from repro.workloads.regular import stream_trace

KB = 1024
MACHINE = MachineConfig.scaled(16)


def chain(n=24_000):
    return chain_trace(
        "qc", n, seed=1, hot_lines=3_000, cold_lines=5_000,
        hot_fraction=0.8, noise=0.0, sequential_frac=0.0,
    )


def triage_cfg():
    return TriageConfig(
        metadata_capacity=32 * KB, capacities=(0, 16 * KB, 32 * KB),
        epoch_accesses=2000,
    )


# -- MSHR ------------------------------------------------------------------


def test_mshr_allocate_and_complete():
    mshrs = MshrFile(2)
    assert mshrs.allocate(1, 0.0) is not None
    assert mshrs.allocate(2, 1.0) is not None
    assert mshrs.full
    assert mshrs.allocate(3, 2.0) is None
    assert mshrs.full_stalls == 1
    assert mshrs.complete(1).line == 1
    assert not mshrs.full


def test_mshr_merges_inflight_lines():
    mshrs = MshrFile(2)
    entry = mshrs.allocate(7, 0.0, is_prefetch=True)
    merged = mshrs.allocate(7, 1.0, is_prefetch=False)
    assert merged is entry
    assert entry.merged_demands == 1
    assert mshrs.merges == 1
    assert len(mshrs) == 1


def test_mshr_rejects_bad_capacity():
    with pytest.raises(ValueError):
        MshrFile(0)


# -- banked DRAM --------------------------------------------------------------


def test_dram_bank_conflict_serializes():
    params = DramTimingParams(n_banks=2, bank_cycles=100, burst_cycles=4)
    dram = BankedDram(params)
    same_bank_line = 0
    first = dram.service(same_bank_line, 0.0)
    second = dram.service(same_bank_line, 0.0)
    assert second >= first + params.bank_cycles


def test_dram_different_banks_overlap():
    params = DramTimingParams(n_banks=16, bank_cycles=100, burst_cycles=4)
    dram = BankedDram(params)
    a = dram.service(0, 0.0)
    b = dram.service(1, 0.0)  # different bank: only the bus serializes
    assert b - a <= params.burst_cycles + params.turnaround_cycles + 1


def test_dram_bus_is_shared():
    params = DramTimingParams(n_banks=64, bank_cycles=10, burst_cycles=4)
    dram = BankedDram(params)
    finish = [dram.service(i, 0.0) for i in range(32)]
    # 32 bursts over one bus cannot finish faster than 32 * burst.
    assert max(finish) >= 32 * params.burst_cycles


def test_dram_turnaround_penalty():
    params = DramTimingParams(n_banks=16, bank_cycles=10, burst_cycles=4,
                              turnaround_cycles=50)
    dram = BankedDram(params)
    dram.service(0, 0.0, is_write=False)
    read_then_write = dram.service(1, 0.0, is_write=True)
    dram2 = BankedDram(params)
    dram2.service(0, 0.0, is_write=False)
    read_then_read = dram2.service(1, 0.0, is_write=False)
    assert read_then_write > read_then_read


# -- engine ----------------------------------------------------------------


def test_queued_engine_runs_and_counts():
    trace = chain(8_000)
    result = simulate_queued(trace, None, machine=MACHINE)
    assert result.cycles > 0
    assert result.counters.accesses == len(trace)


def test_queued_triage_speedup_and_coverage_match_state_model():
    trace = chain()
    qb = simulate_queued(trace, None, machine=MACHINE)
    qt = simulate_queued(trace, triage_cfg(), machine=MACHINE)
    ab = simulate(trace, None, machine=MACHINE)
    at = simulate(trace, triage_cfg(), machine=MACHINE)
    # Cache state is shared between engines: identical coverage.
    assert qt.coverage == pytest.approx(at.coverage, abs=0.01)
    # Both engines agree Triage helps...
    assert qt.speedup_over(qb) > 1.02
    # ...but the queued engine discounts late prefetches.
    assert qt.late_prefetch_hits > 0


def test_queued_engine_bandwidth_wall_on_streams():
    trace = stream_trace("s", 10_000, seed=1, n_streams=1, mlp=8.0)
    result = simulate_queued(trace, None, machine=MACHINE)
    # ~1 line per access over a 16 B/cycle bus: at least 4 cycles/access.
    assert result.cycles >= 0.9 * len(trace) * 4.0


def test_queued_engine_rejects_multicore():
    with pytest.raises(ValueError):
        simulate_queued(chain(100), None, machine=MachineConfig.multi_core(2))


def test_queued_engine_warmup():
    trace = chain(10_000)
    warmed = simulate_queued(trace, None, machine=MACHINE, warmup_accesses=4_000)
    assert warmed.counters.accesses == 6_000
    assert warmed.cycles > 0
