"""Unit tests for the cache hierarchy."""

import pytest

from repro.memory.hierarchy import CacheHierarchy


def small_hierarchy(n_cores=1):
    return CacheHierarchy(
        n_cores=n_cores,
        l1_size=1024,
        l1_ways=2,
        l2_size=4096,
        l2_ways=4,
        llc_size_per_core=16384,
        llc_ways=8,
    )


def test_first_access_goes_to_dram():
    h = small_hierarchy()
    event = h.access(0, pc=1, addr=0x1000)
    assert event.hit_level == "dram"
    assert h.counters[0].dram_accesses == 1
    assert h.traffic.bytes_by_category["demand"] == 64


def test_second_access_hits_l1():
    h = small_hierarchy()
    h.access(0, 1, 0x1000)
    event = h.access(0, 1, 0x1000)
    assert event.hit_level == "l1"
    assert h.counters[0].l1_hits == 1


def test_l2_hit_after_l1_eviction():
    h = small_hierarchy()
    h.access(0, 1, 0)
    # Evict line 0 from L1 (2-way, 8 sets -> two same-set fills).
    sets_l1 = h.l1s[0].num_sets
    h.access(0, 1, sets_l1 * 64)
    h.access(0, 1, 2 * sets_l1 * 64)
    event = h.access(0, 1, 0)
    assert event.hit_level == "l2"


def test_prefetch_paths():
    h = small_hierarchy()
    # Cold prefetch -> DRAM, counted as prefetch traffic.
    assert h.prefetch(0, line=5) == "dram"
    assert h.traffic.bytes_by_category["prefetch"] == 64
    # Already in L2 -> redundant.
    assert h.prefetch(0, line=5) == "redundant"
    c = h.counters[0]
    assert c.prefetches_issued == 1
    assert c.prefetches_redundant == 1


def test_prefetch_from_llc_moves_without_traffic():
    h = small_hierarchy()
    h.access(0, 1, 0x40 * 7)  # line 7 now in all levels
    # Push line 7 out of L2 but not LLC: fill L2 set with conflicting lines.
    sets_l2 = h.l2s[0].num_sets
    for i in range(1, 6):
        h.access(0, 1, (7 + i * sets_l2) * 64)
    assert not h.l2s[0].contains(7)
    before = h.traffic.total_bytes
    assert h.prefetch(0, line=7) == "llc"
    assert h.traffic.total_bytes == before


def test_prefetch_hit_reported_once_and_kind_tagged():
    h = small_hierarchy()
    h.prefetch(0, line=9, kind="l2")
    event = h.access(0, 1, 9 * 64)
    assert event.prefetch_hit_kind == "l2"
    assert event.l2_prefetch_hit
    assert h.counters[0].l2_prefetch_hits == 1


def test_l1_prefetch_kind_counted_separately():
    h = small_hierarchy()
    h.prefetch(0, line=9, kind="l1")
    event = h.access(0, 1, 9 * 64)
    assert event.prefetch_hit_kind == "l1"
    assert not event.l2_prefetch_hit
    c = h.counters[0]
    assert c.l1pf_useful == 1
    assert c.l2_prefetch_hits == 0
    assert c.l1pf_issued == 1


def test_trains_l2_prefetcher_stream():
    h = small_hierarchy()
    miss = h.access(0, 1, 0x2000)
    hit = h.access(0, 1, 0x2000)
    assert miss.trains_l2_prefetcher  # L2 miss
    assert not hit.trains_l2_prefetcher  # plain L1 hit


def test_writeback_traffic_on_dirty_llc_eviction():
    h = small_hierarchy()
    sets = h.llc.num_sets
    # Write a line, then evict it from every level via conflicts.
    h.access(0, 1, 0, is_write=True)
    for i in range(1, 12):
        h.access(0, 1, i * sets * 64)
    assert h.traffic.bytes_by_category["writeback"] >= 64


def test_shared_llc_between_cores():
    h = small_hierarchy(n_cores=2)
    h.access(0, 1, 0x5000)
    event = h.access(1, 1, 0x5000)
    # Core 1 misses its private L1/L2 but hits the shared LLC.
    assert event.hit_level == "llc"


def test_resize_llc_data_ways_flushes_dirty():
    h = small_hierarchy()
    sets = h.llc.num_sets
    # Two conflicting LLC lines: the second lands in way 1, which the
    # shrink to 1 active way must flush (dirty -> write back).
    h.access(0, 1, 0)
    h.access(0, 1, sets * 64)
    h.llc.mark_dirty(sets)
    before = h.traffic.bytes_by_category["writeback"]
    h.resize_llc_data_ways(1)
    assert h.traffic.bytes_by_category["writeback"] > before
    assert h.llc.active_ways == 1


def test_invalid_core_count():
    with pytest.raises(ValueError):
        CacheHierarchy(n_cores=0)
