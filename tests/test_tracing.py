"""Tests for causal tracing, SLO burn rates and the exposition surface.

The contract under test is the observability tentpole:

* span ids are *derived* (seeded tokens + per-parent counters), so the
  same work produces the same trace tree -- serially, across worker
  processes, and across reruns;
* the disabled path allocates nothing (``NULL_SPAN`` identity, zero
  spans started);
* a 2-job sweep's merged trace forest is structurally identical to the
  serial run's;
* the serve loadtest under chaos faults yields a *complete* and
  bit-deterministic span set, SLO verdicts included;
* the Prometheus text exposition round-trips through the strict parser;
* waterfall grouping dedupes retried roots and picks the nearest-rank
  p95 exemplar deterministically.
"""

from __future__ import annotations

import pytest

from repro import cache, faults, obs
from repro.experiments import common
from repro.obs import exposition, slo
from repro.obs.registry import MetricsRegistry
from repro.obs.reporting import waterfall
from repro.obs.tracing import NULL_SPAN, Tracer, trace_id_for
from repro.serve import LoadgenConfig, ServiceConfig, run_loadtest
from repro.sim.sweep import sweep


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    cache.configure(None)
    common.clear_caches()
    obs.disable()
    yield
    cache.configure(None)
    common.clear_caches()
    obs.disable()
    faults._PLAN = None


def tree_of(records):
    """Structural shape of a span set: ids + topology, no durations."""
    return sorted(
        (
            r["trace_id"],
            r["span_id"],
            r.get("parent_id") or "",
            r["name"],
            r.get("status"),
        )
        for r in records
    )


# ---------------------------------------------------------------------------
# deterministic ids + wire propagation
# ---------------------------------------------------------------------------


class TestDeterministicIds:
    def test_trace_id_is_a_pure_function_of_the_token(self):
        assert trace_id_for("cell:a") == trace_id_for("cell:a")
        assert trace_id_for("cell:a") != trace_id_for("cell:b")
        assert len(trace_id_for("cell:a")) == 16

    def test_same_operations_same_tree(self):
        def build():
            tracer = Tracer(enabled=True)
            with tracer.start_trace("root", "token-1"):
                with tracer.span("child-a"):
                    pass
                with tracer.span("child-b"):
                    pass
            return tracer.records()

        assert tree_of(build()) == tree_of(build())

    def test_sibling_spans_get_distinct_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.start_trace("root", "token-1"):
            with tracer.span("step"):
                pass
            with tracer.span("step"):
                pass
        ids = [r["span_id"] for r in tracer.records()]
        assert len(ids) == len(set(ids)) == 3

    def test_wire_round_trip_reconstructs_the_same_ids(self):
        wire = Tracer.to_wire("cell:mcf:bo", "sweep.cell")
        local = Tracer(enabled=True)
        with local.start_trace("sweep.cell", "cell:mcf:bo") as span:
            local_ids = (span.trace_id, span.span_id)
        remote = Tracer(enabled=True)
        with remote.begin_from_wire(wire, "sweep.cell") as span:
            remote_ids = (span.trace_id, span.span_id)
        assert local_ids == remote_ids

    def test_begin_from_wire_marks_error_on_exception(self):
        tracer = Tracer(enabled=True)
        wire = Tracer.to_wire("cell:x", "sweep.cell")
        with pytest.raises(RuntimeError):
            with tracer.begin_from_wire(wire, "sweep.cell"):
                raise RuntimeError("boom")
        (record,) = tracer.records()
        assert record["status"] == "error"

    def test_merge_preserves_remote_records(self):
        remote = Tracer(enabled=True)
        with remote.begin_from_wire(
            Tracer.to_wire("cell:y", "sweep.cell"), "sweep.cell"
        ):
            pass
        local = Tracer(enabled=True)
        local.merge(remote.records())
        assert tree_of(local.records()) == tree_of(remote.records())


# ---------------------------------------------------------------------------
# zero-cost disabled path
# ---------------------------------------------------------------------------


class TestDisabledPath:
    def test_disabled_tracer_allocates_no_spans(self):
        tracer = Tracer(enabled=False)
        with tracer.start_trace("root", "tok") as root:
            with tracer.span("child") as child:
                pass
        assert root is NULL_SPAN and child is NULL_SPAN
        tracer.event(root, "phase.x", 0.0, 1.0)
        assert tracer.started == 0
        assert len(tracer) == 0 and tracer.records() == []

    def test_begin_from_wire_disabled_is_null(self):
        tracer = Tracer(enabled=False)
        wire = Tracer.to_wire("tok", "root")
        assert tracer.begin_from_wire(wire, "root") is NULL_SPAN

    def test_session_with_tracing_off_records_nothing(self):
        session = obs.enable(trace=False)
        try:
            sweep(["mcf"], {"stride": "stride"}, n_accesses=2_000, n_jobs=1)
            assert session.tracer.started == 0
            assert len(session.tracer) == 0
        finally:
            obs.disable()


# ---------------------------------------------------------------------------
# sweep propagation: serial == parallel
# ---------------------------------------------------------------------------


GRID = {"stride": "stride", "bo": "bo"}


def _swept_tree(n_jobs):
    session = obs.enable(trace=True)
    try:
        sweep(["mcf", "omnetpp"], GRID, n_accesses=3_000, n_jobs=n_jobs)
        return tree_of(session.tracer.records())
    finally:
        obs.disable()


def test_two_job_sweep_trace_tree_matches_serial():
    serial = _swept_tree(1)
    common.clear_caches()
    fanned = _swept_tree(2)
    assert serial == fanned
    # every cell (2 benches x (2 prefetchers + baseline)) contributes a
    # root with a sim.run child
    names = [row[3] for row in serial]
    assert names.count("sweep.cell") == 6
    assert names.count("sim.run") == 6


def test_sweep_cell_spans_parent_the_engine_span():
    session = obs.enable(trace=True)
    try:
        sweep(["mcf"], {"stride": "stride"}, n_accesses=2_000, n_jobs=1)
        records = session.tracer.records()
    finally:
        obs.disable()
    by_name = {r["name"]: r for r in records}
    cell, sim_run = by_name["sweep.cell"], by_name["sim.run"]
    assert sim_run["parent_id"] == cell["span_id"]
    assert sim_run["trace_id"] == cell["trace_id"]
    assert not cell["parent_id"]  # the cell is its trace's root
    assert (cell["attrs"] or {})["bench"] == "mcf"


# ---------------------------------------------------------------------------
# serve chaos loadtest: complete + deterministic
# ---------------------------------------------------------------------------


def _chaos_report():
    saved = faults._PLAN
    try:
        faults.configure("serve_worker_crash:0.2,serve_slow_reply:0.1", seed=42)
        session = obs.enable(trace=True)
        report = run_loadtest(
            LoadgenConfig(
                shape="spike", duration_s=5.0, base_rps=120.0,
                n_tenants=4, deadline_s=0.5, seed=7, trace_accesses=512,
            ),
            ServiceConfig(n_workers=2, queue_watermark=16),
        )
        return report, session.tracer.records()
    finally:
        obs.disable()
        faults._PLAN = saved


def test_chaos_loadtest_traces_are_complete_and_deterministic():
    report_a, spans_a = _chaos_report()
    report_b, spans_b = _chaos_report()
    assert spans_a == spans_b  # bit-identical, virtual-time durations included
    assert report_a.slo == report_b.slo
    # completeness: every span closed, every parent present, one trace
    # per submitted request
    ids = {r["span_id"] for r in spans_a}
    assert all(r["end"] is not None for r in spans_a)
    assert all((r.get("parent_id") or "") in ids | {""} for r in spans_a)
    roots = [r for r in spans_a if not r.get("parent_id")]
    assert len(roots) == report_a.requests
    assert set(report_a.slo) == {"serve_p95_latency", "serve_shed_rate"}


# ---------------------------------------------------------------------------
# SLO burn rates
# ---------------------------------------------------------------------------


class TestSLO:
    def test_burn_is_rounded_before_the_verdict(self):
        # burn computes to 4.0000000000000001-ish ratios in float; the
        # verdict must be taken on the rounded value so displayed burn
        # and verdict can never disagree.
        window = slo.Window(seconds=10.0, warn=4.0, breach=8.0)
        assert window.verdict(4.0) == "warn"
        assert window.verdict(3.9999999) == "ok"

    def test_evaluate_counts_windowless_objective(self):
        objective = slo.sweep_cell_objective()
        clean = slo.evaluate_counts(objective, total=100, bad=0)
        assert clean["verdict"] == "ok" and clean["burn"] == 0.0
        dirty = slo.evaluate_counts(objective, total=100, bad=50)
        assert dirty["verdict"] == "breach"
        assert dirty["burn"] == round(0.5 / objective.budget, 6)

    def test_sweep_summary_carries_a_cell_slo_verdict(self):
        session = obs.enable(trace=False)
        try:
            sweep(["mcf"], {"stride": "stride"}, n_accesses=2_000, n_jobs=1)
            summaries = session.events.events(category="sweep.summary")
        finally:
            obs.disable()
        assert summaries, "sweep must emit a summary event"
        verdict = summaries[-1].fields["slo"]
        assert verdict["name"] == "sweep_cell_failures"
        assert verdict["verdict"] == "ok"

    def test_worst_verdict_ordering(self):
        assert slo.worst_verdict(["ok", "warn"]) == "warn"
        assert slo.worst_verdict(["warn", "breach", "ok"]) == "breach"
        assert slo.worst_verdict([]) == "ok"


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


class TestExposition:
    def test_registry_render_parses_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(3)
        registry.gauge("serve.queue_depth").set(7)
        text = exposition.render(registry=registry)
        families = exposition.parse_text(text)
        # counter families are keyed by base name (the _total suffix is
        # the sample's, per Prometheus convention)
        assert families["repro_serve_requests"]["type"] == "counter"
        assert families["repro_serve_requests"]["samples"][0]["value"] == 3.0
        assert families["repro_serve_queue_depth"]["type"] == "gauge"

    def test_malformed_text_is_rejected(self):
        with pytest.raises(exposition.ExpositionError):
            exposition.parse_text("# TYPE x counter\nx{bad 1\n")

    def test_loadtest_exposition_is_valid(self):
        report = run_loadtest(
            LoadgenConfig(
                shape="ramp", duration_s=3.0, base_rps=60.0,
                n_tenants=2, deadline_s=0.5, seed=3, trace_accesses=512,
            ),
            ServiceConfig(n_workers=2, queue_watermark=16),
        )
        families = exposition.parse_text(report.exposition)
        assert "repro_serve_submitted" in families


# ---------------------------------------------------------------------------
# waterfall selection
# ---------------------------------------------------------------------------


def _span(trace_id, span_id, parent, name, start, end, status="ok"):
    return {
        "trace_id": trace_id, "span_id": span_id, "parent_id": parent,
        "name": name, "start": start, "end": end, "status": status,
        "attrs": {},
    }


class TestWaterfall:
    def test_group_dedupes_retried_roots(self):
        first = _span("t1", "s1", "", "sweep.cell", 0.0, 1.0, "error")
        retry = dict(first)  # same derived ids, same start -> one bar
        spans = [first, retry, _span("t1", "s2", "s1", "sim.run", 0.1, 0.9)]
        traces = waterfall.group_traces(spans)
        assert len(traces["t1"]) == 2

    def test_p95_is_nearest_rank_and_deterministic(self):
        spans = []
        for i in range(20):
            spans.append(_span(f"t{i:02d}", f"s{i:02d}", "", "r", 0.0, i + 1.0))
        traces = waterfall.group_traces(spans)
        assert waterfall.p95_trace_id(traces) == "t18"
        assert waterfall.trace_duration(traces["t18"]) == 19.0

    def test_exemplars_slowest_first(self):
        spans = [
            _span("a", "s1", "", "r", 0.0, 2.0),
            _span("b", "s2", "", "r", 0.0, 5.0),
        ]
        rows = waterfall.slowest_exemplars(waterfall.group_traces(spans))
        assert [r["trace_id"] for r in rows] == ["b", "a"]

    def test_svg_renders_error_rows(self):
        spans = [
            _span("t", "s1", "", "root", 0.0, 1.0),
            _span("t", "s2", "s1", "child", 0.2, 0.6, "error"),
        ]
        svg = waterfall.waterfall_svg(spans, "title")
        assert svg.startswith("<svg") and "child [error]" in svg

    def test_empty_section_degrades_gracefully(self):
        html, summary = waterfall.waterfall_section([])
        assert "no spans" in html
        assert summary == {"spans": 0, "traces": 0}
