"""Unit and differential tests for the Triangel prefetcher family.

The differential half pins the degeneracy contract from
:mod:`repro.prefetchers.triangel`: with sampling off, ``lookahead=1``,
``degree=1`` and Hawkeye replacement, Triangel must issue a
**bit-identical** prefetch stream to Triage -- first at the candidate
level over shared synthetic streams, then end to end through
``simulate()`` with the actual ``hierarchy.prefetch`` calls recorded.
"""

from __future__ import annotations

import random

import pytest

from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.experiments import common
from repro.memory.hierarchy import CacheHierarchy
from repro.prefetchers.triangel import (
    SampleTable,
    TriangelConfig,
    TriangelPrefetcher,
)
from repro.sim.single_core import simulate
from repro.workloads import spec

KB = 1024


def make(capacity=64 * KB, **kw) -> TriangelPrefetcher:
    return TriangelPrefetcher(TriangelConfig(metadata_capacity=capacity, **kw))


def feed(pf, pc, lines):
    return [[c.line for c in pf.observe(pc, line)] for line in lines]


def degenerate(**kw) -> TriangelConfig:
    return TriangelConfig(
        metadata_capacity=kw.pop("capacity", 64 * KB),
        sampling=False,
        lookahead=1,
        replacement="hawkeye",
        **kw,
    )


# -- walk / lookahead ---------------------------------------------------------


def test_learns_chain_and_runs_ahead():
    pf = make(lookahead=2)
    chain = [10, 500, 3, 42]
    feed(pf, 0xA, chain)
    results = feed(pf, 0xA, chain)
    # lookahead=2, degree=1: the walk issues two successors per trigger.
    assert results[0] == [500, 3]
    assert results[1] == [3, 42]


def test_lookahead_one_matches_triage_walk_depth():
    pf = make(lookahead=1)
    chain = [10, 500, 3, 42]
    feed(pf, 0xA, chain)
    assert feed(pf, 0xA, [10])[-1] == [500]


def test_walk_terminates_on_chain_loop():
    pf = make(lookahead=3, degree=2)
    feed(pf, 0xA, [10, 20, 10, 20])  # learns 10 -> 20 -> 10
    result = feed(pf, 0xA, [10])[-1]
    # The walk issues 20, sees 10 already visited, and stops: a looping
    # chain must never re-issue an in-flight line no matter the depth.
    assert result == [20]


def test_walk_candidates_are_unique_and_exclude_trigger():
    pf = make(lookahead=4, degree=3)
    rng = random.Random(7)
    for _ in range(3000):
        trigger = rng.randrange(256)
        for c in pf.observe(rng.randrange(4), trigger):
            pass
    for _ in range(500):
        trigger = rng.randrange(256)
        lines = [c.line for c in pf.observe(0, trigger)]
        assert len(lines) == len(set(lines))
        assert trigger not in lines


def test_lookahead_must_be_positive():
    with pytest.raises(ValueError):
        TriangelPrefetcher(TriangelConfig(lookahead=0))


# -- sample table -------------------------------------------------------------


def test_sample_table_is_lru_within_a_set():
    table = SampleTable(num_sets=1, num_ways=2)
    table.insert(1, 0xA, 11)
    table.insert(2, 0xA, 12)
    table.probe(1)  # refresh 1: now 2 is the LRU way
    table.insert(3, 0xA, 13)
    assert table.probe(2) is None
    assert table.probe(1) is not None
    assert table.probe(3) is not None
    assert table.occupancy() == 2


def test_sample_table_rejects_bad_geometry():
    with pytest.raises(ValueError):
        SampleTable(num_sets=0)


def test_noisy_pc_loses_allocation_rights():
    """A PC whose successor churns must stop earning new metadata."""
    pf = make(lookahead=1, sample_sets=8, sample_ways=4)
    # Trigger 5 repeats, but its successor never does: every sample
    # probe is a pattern mismatch, decaying the PC's confidence.
    for i in range(64):
        pf.observe(0xA, 5)
        pf.observe(0xA, 1000 + i)
    assert pf.pattern_confidence(0xA) < pf.config.allocate_threshold
    assert pf.skipped_allocations > 0


def test_repeating_pc_keeps_allocation_rights():
    pf = make(lookahead=1, sample_sets=8, sample_ways=4)
    chain = [10, 500, 3, 42]
    for _ in range(32):
        feed(pf, 0xA, chain)
    assert pf.pattern_confidence(0xA) >= pf.config.allocate_threshold
    assert pf.sample_pattern_matches > 0
    stats = pf.sample_stats()
    assert stats["sample_hits"] > 0
    assert stats["tracked_pcs"] >= 1


def test_sampling_off_never_skips_allocations():
    pf = make(sampling=False)
    rng = random.Random(3)
    for _ in range(2000):
        pf.observe(0xA, rng.randrange(128))
    assert pf.skipped_allocations == 0
    assert pf.sample_table.occupancy() == 0


def test_gated_pc_still_refreshes_existing_entries():
    """The gate blocks *new* allocations, not retraining of resident ones."""
    pf = make(lookahead=1, sample_sets=8, sample_ways=4)
    feed(pf, 0xA, [10, 500, 10, 500])  # entry 10 -> 500 resident
    # Now make the PC noisy until it loses allocation rights.
    for i in range(64):
        pf.observe(0xA, 5)
        pf.observe(0xA, 2000 + i)
    assert pf.pattern_confidence(0xA) < pf.config.allocate_threshold
    before = pf.store.updates
    pf.observe(0xA, 10)
    pf.observe(0xA, 500)  # refresh of a resident trigger: allowed
    assert pf.store.updates > before


# -- defaults / integration ---------------------------------------------------


def test_family_defaults():
    pf = make()
    assert pf.name == "triangel"
    assert pf.config.replacement == "reuse"
    assert pf.store.policy_name == "reuse"
    assert pf.config.lookahead == 2
    assert pf.config.sampling is True
    assert isinstance(pf, TriagePrefetcher)  # engine integration contract


def test_triangel_config_is_a_triage_config():
    assert isinstance(TriangelConfig(), TriageConfig)


# -- differential: degenerate Triangel == Triage ------------------------------


def test_degenerate_candidate_stream_bit_identical():
    """Candidate-level: same synthetic stream, same emitted lines."""
    triage = TriagePrefetcher(TriageConfig(metadata_capacity=64 * KB))
    triangel = TriangelPrefetcher(degenerate())
    rng = random.Random(42)
    for _ in range(5000):
        pc = rng.randrange(8)
        line = rng.randrange(512)
        a = [c.line for c in triage.observe(pc, line)]
        b = [c.line for c in triangel.observe(pc, line)]
        assert a == b
    assert triage.store.llc_accesses == triangel.store.llc_accesses
    assert triage.store.occupancy() == triangel.store.occupancy()


def test_degenerate_end_to_end_prefetch_stream_bit_identical(monkeypatch):
    """Full ``simulate()``: the recorded hierarchy.prefetch calls match."""
    real = CacheHierarchy.prefetch
    streams = {}

    def recording(tag):
        def patched(self, core, line, pc=0, kind="l2"):
            if kind == "l2":
                streams[tag].append(line)
            return real(self, core, line, pc, kind)

        return patched

    trace = spec.make_trace("mcf", n_accesses=6000, seed=3, scale=4)
    machine = common.MACHINE
    results = {}
    configs = {
        "triage": common.triage_config(),
        "triangel": common.triangel_config(
            sampling=False, lookahead=1, replacement="hawkeye"
        ),
    }
    for tag, config in configs.items():
        streams[tag] = []
        monkeypatch.setattr(CacheHierarchy, "prefetch", recording(tag))
        results[tag] = simulate(
            trace, config, machine=machine, warmup_accesses=2000
        )
    assert streams["triangel"] == streams["triage"]
    assert len(streams["triage"]) > 0
    a, b = results["triage"], results["triangel"]
    assert a.counters == b.counters
    assert a.traffic == b.traffic
    assert a.ipc == b.ipc
    assert a.coverage == b.coverage
    assert a.accuracy == b.accuracy


def test_degenerate_dynamic_matches_triage_dynamic():
    """Degeneracy holds with the partition controller in the loop too."""
    triage = TriagePrefetcher(
        TriageConfig(dynamic=True, epoch_accesses=500,
                     capacities=(0, 4 * KB, 8 * KB))
    )
    triangel = TriangelPrefetcher(
        TriangelConfig(dynamic=True, epoch_accesses=500,
                       capacities=(0, 4 * KB, 8 * KB),
                       sampling=False, lookahead=1, replacement="hawkeye")
    )
    rng = random.Random(9)
    for _ in range(4000):
        pc = rng.randrange(4)
        line = rng.randrange(256)
        a = [c.line for c in triage.observe(pc, line)]
        b = [c.line for c in triangel.observe(pc, line)]
        assert a == b
    assert (
        triage.store.capacity_bytes == triangel.store.capacity_bytes
    )  # partition decisions agreed at every epoch
