"""Regression tests for the shared nearest-rank percentile helper.

The old ``int(round(q * (n - 1)))`` picker used banker's rounding, so
the element chosen for p50/p95 depended on list-length *parity*
(``round(0.5) == 0`` but ``round(1.5) == 2``).  ``repro.obs.percentile``
is the single owner of the fix; these tests pin the ceil-based
nearest-rank definition and that every consumer (bench cell latencies,
serve KPIs, waterfall trace pick) routes through it.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.percentile import nearest_rank, nearest_rank_index


def test_nearest_rank_is_classic_definition():
    # rank = ceil(q * n), 1-based, over the sorted sample.
    values = [10, 20, 30, 40]
    assert nearest_rank(values, 0.50) == 20
    assert nearest_rank(values, 0.95) == 40
    assert nearest_rank(values, 0.25) == 10
    assert nearest_rank(values, 1.0) == 40


def test_nearest_rank_parity_independent():
    # The banker's-rounding bug: round(0.5)=0 but round(1.5)=2, so the
    # median of [1,2] and [1,2,3,4] disagreed about which "side" to take.
    # Nearest-rank always picks the ceil(q*n)-th element regardless of
    # parity: the median of n samples is element ceil(n/2).
    for n in range(1, 50):
        values = list(range(n))
        assert nearest_rank(values, 0.50) == values[math.ceil(0.5 * n) - 1]
        assert nearest_rank(values, 0.95) == values[
            min(max(math.ceil(0.95 * n), 1), n) - 1
        ]


def test_nearest_rank_always_a_sample_element():
    values = [0.25, 1.5, 3.75]
    for q in (0.0, 0.01, 0.5, 0.95, 0.99, 1.0):
        assert nearest_rank(values, q) in values


def test_nearest_rank_index_bounds():
    assert nearest_rank_index(1, 0.0) == 0
    assert nearest_rank_index(1, 1.0) == 0
    assert nearest_rank_index(10, 0.0) == 0  # rank clamps up to 1
    assert nearest_rank_index(10, 1.0) == 9
    with pytest.raises(ValueError):
        nearest_rank_index(0, 0.5)


def test_bench_percentile_uses_nearest_rank():
    from repro.obs.bench import _percentile

    values = sorted(float(v) for v in range(1, 21))
    assert _percentile(values, 0.95) == 19.0  # ceil(0.95*20) = 19
    assert _percentile(values, 0.50) == 10.0
    assert _percentile([], 0.5) == 0.0


def test_loadgen_quantile_uses_nearest_rank():
    from repro.serve.loadgen import LoadtestReport

    report = LoadtestReport(shape="ramp", duration_s=1.0)
    report.latencies_s = [0.004, 0.001, 0.003, 0.002]  # unsorted on purpose
    assert report._quantile(0.50) == 0.002
    assert report._quantile(0.95) == 0.004
    assert LoadtestReport(shape="ramp", duration_s=1.0)._quantile(0.5) == 0.0


def test_waterfall_p95_pick_uses_nearest_rank():
    from repro.obs.reporting.waterfall import p95_trace_id

    # 20 single-span traces with duration == index; nearest-rank p95 of
    # 20 samples is the 19th ranked duration (18.0), not the max.
    traces = {
        f"t{i:02d}": [
            {"trace_id": f"t{i:02d}", "span_id": "s", "parent_id": "",
             "start": 0.0, "end": float(i), "name": "root"}
        ]
        for i in range(20)
    }
    assert p95_trace_id(traces) == "t18"
    assert p95_trace_id({}) is None
