"""Unit tests for the Hawkeye predictor and policy."""

from repro.replacement.hawkeye import MAX_RRPV, HawkeyePolicy, HawkeyePredictor


def test_predictor_starts_friendly():
    predictor = HawkeyePredictor()
    assert predictor.predict(0x400)


def test_predictor_training_flips_prediction():
    predictor = HawkeyePredictor()
    for _ in range(5):
        predictor.train(0x400, opt_hit=False)
    assert not predictor.predict(0x400)
    for _ in range(8):
        predictor.train(0x400, opt_hit=True)
    assert predictor.predict(0x400)


def test_predictor_counters_saturate():
    predictor = HawkeyePredictor()
    for _ in range(100):
        predictor.train(0x400, opt_hit=True)
    predictor.train(0x400, opt_hit=False)
    assert predictor.predict(0x400)  # one miss cannot flip a saturated pc


def test_predictor_distinguishes_pcs():
    predictor = HawkeyePredictor()
    for _ in range(8):
        predictor.train(0x100, opt_hit=False)
        predictor.train(0x2000, opt_hit=True)
    assert not predictor.predict(0x100)
    assert predictor.predict(0x2000)


def test_policy_averse_lines_evicted_first():
    policy = HawkeyePolicy(4, 4)
    for _ in range(8):
        policy.predictor.train(0xBAD, opt_hit=False)
    policy.set_line_key(0, 0, 100)
    policy.on_fill(0, 0, pc=0x900)  # friendly
    policy.set_line_key(0, 1, 101)
    policy.on_fill(0, 1, pc=0xBAD)  # averse -> distant RRPV
    assert policy.victim(0) == 1


def test_policy_detrains_on_friendly_eviction():
    policy = HawkeyePolicy(4, 4, auto_observe=False)
    pc = 0x700
    for way in range(4):
        policy.set_line_key(0, way, way)
        policy.on_fill(0, way, pc=pc)
    before = policy.predictor.predict(pc)
    for _ in range(10):
        policy.victim(0)
    assert before  # sanity: started friendly
    assert not policy.predictor.predict(pc)


def test_sampler_trains_from_reuse():
    policy = HawkeyePolicy(1, 4)  # single set: always sampled
    pc = 0x880
    # Reuse within capacity: OPT hits -> PC stays/becomes friendly.
    for _ in range(10):
        policy.observe(0, 55, pc)
    assert policy.predictor.predict(pc)


def test_sampler_trains_averse_from_thrash():
    policy = HawkeyePolicy(1, 2, history_mult=8)
    pc = 0x990
    # Cycle far more keys than capacity: OPT misses dominate.
    for _ in range(40):
        for key in range(12):
            policy.observe(0, key, pc)
    assert not policy.predictor.predict(pc)


def test_auto_observe_off_skips_sampler():
    policy = HawkeyePolicy(1, 2, auto_observe=False)
    pc = 0x440
    policy.set_line_key(0, 0, 7)
    for _ in range(30):
        policy.on_hit(0, 0, pc)
    # No observe() calls: the sampler never saw reuse, prediction is the
    # initialization default.
    assert policy.predictor.predict(pc)
    assert policy._samplers[0].accesses == 0


def test_resize_ways_extends_state():
    policy = HawkeyePolicy(2, 2)
    policy.resize_ways(4)
    policy.on_fill(0, 3, pc=1)
    assert policy._rrpv[0][3] in (0, MAX_RRPV)
