"""Tests for MachineConfig, SimulationResult metrics, and the energy
model."""

import pytest

from repro.memory.hierarchy import CoreCounters
from repro.sim.config import KB, MB, MachineConfig
from repro.sim.energy import (
    EnergyComparison,
    metadata_energy,
    misb_vs_triage_energy,
)
from repro.sim.stats import MultiCoreResult, SimulationResult, geomean


def test_table1_defaults():
    config = MachineConfig()
    assert config.l1_size == 64 * KB
    assert config.l2_size == 512 * KB
    assert config.llc_size_per_core == 2 * MB
    assert config.llc_ways == 16
    assert config.dram_latency_cycles == 170.0


def test_llc_way_math():
    config = MachineConfig()
    assert config.llc_way_bytes == 128 * KB
    assert config.metadata_ways(1 * MB) == 8
    assert config.metadata_ways(512 * KB) == 4
    assert config.metadata_ways(0) == 0
    assert config.metadata_ways(1) == 1  # rounds up


def test_scaled_preserves_ratios():
    config = MachineConfig.scaled(4)
    assert config.llc_size_per_core == 512 * KB
    assert config.metadata_ways(256 * KB) == 8  # half the LLC, as 1MB/2MB
    assert config.llc_ways == 16


def test_multi_core_grows_shared_llc():
    config = MachineConfig.multi_core(4)
    assert config.llc_total_size == 8 * MB
    assert config.with_cores(8).n_cores == 8


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        MachineConfig(n_cores=0)


def result_with(l2_prefetch_hits=0, llc_hits=0, dram=0, issued=0, cycles=100.0,
                traffic=None):
    counters = CoreCounters(
        l2_prefetch_hits=l2_prefetch_hits,
        llc_hits=llc_hits,
        dram_accesses=dram,
        prefetches_issued=issued,
    )
    return SimulationResult(
        workload="w",
        prefetcher="p",
        instructions=1000.0,
        cycles=cycles,
        counters=counters,
        traffic=traffic or {"demand": 0, "prefetch": 0, "writeback": 0, "metadata": 0},
    )


def test_coverage_and_accuracy():
    r = result_with(l2_prefetch_hits=30, llc_hits=10, dram=60, issued=50)
    assert r.coverage == pytest.approx(0.3)
    assert r.accuracy == pytest.approx(0.6)


def test_coverage_zero_when_no_misses():
    r = result_with()
    assert r.coverage == 0.0
    assert r.accuracy == 0.0


def test_speedup_and_ipc():
    base = result_with(cycles=200.0)
    fast = result_with(cycles=100.0)
    assert fast.speedup_over(base) == pytest.approx(2.0)
    assert fast.ipc == pytest.approx(10.0)


def test_traffic_overhead_and_miss_reduction():
    base = result_with(dram=100, traffic={"demand": 1000, "prefetch": 0,
                                          "writeback": 0, "metadata": 0})
    mine = result_with(dram=60, traffic={"demand": 600, "prefetch": 700,
                                         "writeback": 0, "metadata": 100})
    assert mine.traffic_overhead_vs(base) == pytest.approx(0.4)
    assert mine.miss_reduction_over(base) == pytest.approx(0.4)


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0


def test_geomean_skips_nonpositive_values():
    # speedup_over legitimately returns 0.0 for zero-cycle/failed cells:
    # those (and any negative garbage) are skipped, not a domain error.
    assert geomean([0.0, 2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([1.0, -1.0]) == pytest.approx(1.0)
    assert geomean([0.0]) == 0.0
    assert geomean([0.0, -3.0]) == 0.0


def test_multicore_speedup_is_geomean_of_cores():
    base = MultiCoreResult(["a", "b"], "none",
                           [result_with(cycles=200.0), result_with(cycles=100.0)],
                           {"demand": 100})
    mine = MultiCoreResult(["a", "b"], "p",
                           [result_with(cycles=100.0), result_with(cycles=100.0)],
                           {"demand": 100})
    assert mine.speedup_over(base) == pytest.approx(2.0 ** 0.5)
    with pytest.raises(ValueError):
        mine.speedup_over(MultiCoreResult(["a"], "none",
                                          [result_with()], {}))


def test_metadata_energy_units():
    assert metadata_energy(10, 0) == 10.0
    assert metadata_energy(0, 2) == 50.0
    assert metadata_energy(10, 2, dram_unit=10.0) == 30.0


def test_misb_vs_triage_energy_bounds():
    cmp = misb_vs_triage_energy(
        misb_dram_accesses=100, misb_llc_accesses=0, triage_llc_accesses=100
    )
    assert isinstance(cmp, EnergyComparison)
    assert cmp.nominal == pytest.approx(25.0)
    assert cmp.low == pytest.approx(10.0)
    assert cmp.high == pytest.approx(50.0)
    assert cmp.low <= cmp.nominal <= cmp.high


def test_energy_zero_triage_guard():
    cmp = misb_vs_triage_energy(100, 0, 0)
    assert cmp.nominal == 0.0
