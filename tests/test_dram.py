"""Unit tests for the DRAM model and traffic counters."""

import pytest

from repro.memory.dram import DramModel, TrafficCounter


def test_traffic_counter_categories():
    traffic = TrafficCounter()
    traffic.add("demand")
    traffic.add("prefetch", 128)
    assert traffic.total_bytes == 64 + 128
    assert traffic.snapshot()["demand"] == 64


def test_traffic_counter_rejects_unknown_category():
    with pytest.raises(ValueError):
        TrafficCounter().add("bogus")


def test_overhead_vs_baseline():
    traffic = TrafficCounter()
    traffic.add("demand", 150)
    assert traffic.overhead_vs(100) == pytest.approx(0.5)
    assert traffic.overhead_vs(0) == 0.0


def test_effective_latency_flat_at_low_utilization():
    dram = DramModel(base_latency_cycles=170)
    assert dram.effective_latency(0.0) == pytest.approx(170.0)
    assert dram.effective_latency(0.1) < 175.0


def test_effective_latency_grows_and_caps():
    dram = DramModel(base_latency_cycles=100, max_inflation=8.0)
    mid = dram.effective_latency(0.7)
    high = dram.effective_latency(0.95)
    assert 100 < mid < high
    assert high <= 800.0
    assert dram.effective_latency(2.0) <= 800.0  # clamped utilization


def test_utilization():
    dram = DramModel(bandwidth_bytes_per_cycle=16)
    assert dram.utilization(160, 100) == pytest.approx(0.1)
    assert dram.utilization(999999, 1) == 1.0
    assert dram.utilization(0, 0) == 0.0
    assert dram.utilization(10, 0) == 1.0


def test_min_cycles_for_bytes():
    dram = DramModel(bandwidth_bytes_per_cycle=16)
    assert dram.min_cycles_for_bytes(160) == pytest.approx(10.0)


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        DramModel(base_latency_cycles=0)
    with pytest.raises(ValueError):
        DramModel(bandwidth_bytes_per_cycle=-1)
