"""Unit tests for Spatial Memory Streaming."""

import pytest

from repro.prefetchers.sms import SmsPrefetcher


def region_lines(pf):
    return pf.region_lines


def test_rejects_bad_region_size():
    with pytest.raises(ValueError):
        SmsPrefetcher(region_size=100)


def test_footprint_learned_and_replayed_relative_to_trigger():
    pf = SmsPrefetcher(accumulation_entries=1)
    pc = 0x4
    rl = region_lines(pf)
    # Region 0: trigger offset 3, footprint {3, 5, 9}.
    pf.observe(pc, 3)
    pf.observe(pc, 5)
    pf.observe(pc, 9)
    # Promote another region into the 1-entry accumulation table to
    # evict region 0's footprint into the PHT, then trigger region 2.
    pf.observe(pc, 1 * rl + 3)
    pf.observe(pc, 1 * rl + 4)
    candidates = pf.observe(pc, 2 * rl + 3)
    lines = sorted(c.line for c in candidates)
    assert lines == [2 * rl + 5, 2 * rl + 9]


def test_pattern_rotates_with_trigger_offset():
    pf = SmsPrefetcher(accumulation_entries=1)
    pc = 0x8
    rl = region_lines(pf)
    pf.observe(pc, 0)
    pf.observe(pc, 2)
    pf.observe(pc, 1 * rl)  # second region...
    pf.observe(pc, 1 * rl + 1)  # ...promoted: region 0 evicted to PHT
    # New region triggered at offset 0 -> relative pattern {+2} replayed.
    candidates = pf.observe(pc, 5 * rl)
    assert [c.line for c in candidates] == [5 * rl + 2]


def test_single_access_regions_store_nothing():
    pf = SmsPrefetcher(accumulation_entries=1, filter_entries=1)
    pc = 0xC
    rl = region_lines(pf)
    for region in range(10):
        pf.observe(pc, region * rl + 1)
    # Every region saw one access: the filter churns, the PHT stays empty.
    assert len(pf._pht) == 0


def test_flush_training_commits_accumulation():
    pf = SmsPrefetcher()
    pc = 0x10
    pf.observe(pc, 4)
    pf.observe(pc, 6)
    assert len(pf._pht) == 0
    pf.flush_training()
    assert len(pf._pht) == 1


def test_different_signatures_do_not_cross_predict():
    pf = SmsPrefetcher(accumulation_entries=1)
    rl = region_lines(pf)
    pf.observe(0xA, 0)
    pf.observe(0xA, 7)
    pf.observe(0xA, rl)  # commit signature (0xA, 0)
    # Different PC triggering a fresh region: no prediction.
    assert pf.observe(0xB, 3 * rl) == []


def test_pht_capacity_lru():
    pf = SmsPrefetcher(accumulation_entries=1, pht_entries=1)
    rl = region_lines(pf)
    pf.observe(0xA, 0)
    pf.observe(0xA, 1)
    pf.observe(0xB, rl + 0)
    pf.observe(0xB, rl + 2)
    pf.observe(0xC, 5 * rl)  # evictions push both footprints through PHT
    pf.flush_training()
    assert len(pf._pht) <= 1
