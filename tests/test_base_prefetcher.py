"""Tests for the prefetcher base class contract."""

import pytest

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate


def test_degree_validated():
    with pytest.raises(ValueError):
        BasePrefetcher(degree=0)


def test_observe_abstract():
    with pytest.raises(NotImplementedError):
        BasePrefetcher().observe(0, 0)


def test_candidates_helper_sets_owner():
    pf = BasePrefetcher()
    candidates = pf.candidates([1, 2], context="ctx")
    assert [c.line for c in candidates] == [1, 2]
    assert all(c.owner is pf for c in candidates)
    assert all(c.context == "ctx" for c in candidates)


def test_drain_metadata_traffic_resets():
    pf = BasePrefetcher()
    pf.pending_metadata_bytes = 192
    assert pf.drain_metadata_traffic() == 192
    assert pf.drain_metadata_traffic() == 0


def test_feedback_and_epoch_tick_default_noop():
    pf = BasePrefetcher()
    pf.feedback(PrefetchCandidate(1), "dram")
    pf.epoch_tick()


def test_energy_counters_default_zero():
    pf = BasePrefetcher()
    assert pf.metadata_llc_accesses == 0
    assert pf.metadata_dram_accesses == 0
