"""Differential and wiring tests for the batched simulation engine.

``repro.sim.batched`` promises *bit-identical* results to the scalar
engine in :mod:`repro.sim.single_core` -- same counters, cycles,
traffic, metadata accounting, partition history and KPIs.  These tests
pin that contract:

* a hypothesis differential over adversarial little traces (small
  address alphabets force back-to-back repeats, the case the batched
  engine handles with its run-length L1 streak path),
* the engine-selection plumbing (``engine=`` argument, ``REPRO_ENGINE``
  env knob, warn-once fallback for junk values),
* the bail-to-scalar fallback for configs outside the fast path, and
* warm-cache separation: batched results may never be served from a
  memo or disk entry produced by a different engine.

A golden-replay leg under the batched engine lives in
``test_golden_figures.py`` next to the scalar one.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest
from hypothesis import given, settings, strategies as st

from repro import config
from repro.cache import keys as cache_keys
from repro.experiments import common
from repro.sim.batched import _bail_reason, simulate_batched
from repro.sim.config import MachineConfig
from repro.sim.single_core import simulate
from repro.workloads.base import Trace


def result_summary(r):
    """Every externally observable field of a SimulationResult."""
    return {
        "counters": asdict(r.counters),
        "cycles": r.cycles,
        "instructions": r.instructions,
        "traffic": r.traffic,
        "meta_llc": r.metadata_llc_accesses,
        "meta_dram": r.metadata_dram_accesses,
        "final_cap": r.final_metadata_capacity,
        "part_hist": r.partition_history,
        "kpis": r.kpis(),
    }


# -- differential property ---------------------------------------------------
#
# Small alphabets are the point: with ~12 distinct lines and runs of up
# to 5, traces are saturated with consecutive repeats (the L1-streak
# fast path) *and* with conflict misses (MACHINE is the scaled-down
# test machine, so a dozen lines already exercises eviction, dirty
# writeback and Triage's metadata partition).


@st.composite
def little_traces(draw):
    n_pcs = draw(st.integers(min_value=1, max_value=6))
    n_lines = draw(st.integers(min_value=2, max_value=12))
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_pcs - 1),   # pc index
                st.integers(0, n_lines - 1),  # line index
                st.booleans(),                # write?
                st.integers(1, 5),            # run length (repeats!)
            ),
            min_size=8,
            max_size=60,
        )
    )
    pcs, addrs, writes = [], [], []
    for pc_i, line_i, write, run in steps:
        for _ in range(run):
            pcs.append(0x400000 + 4 * pc_i)
            addrs.append((line_i + 16) * 64)
            writes.append(write)
    return Trace(name="hyp", pcs=pcs, addrs=addrs, writes=writes,
                 category="irregular")


@pytest.mark.parametrize(
    "spec_name", ["none", "bo", "sms", "triage_dynamic", "triangel"]
)
@given(trace=little_traces(), warm_frac=st.sampled_from([0, 3]))
@settings(max_examples=15, deadline=None)
def test_batched_matches_scalar_bit_identical(spec_name, trace, warm_frac):
    warmup = len(trace) // warm_frac if warm_frac else 0
    kwargs = dict(
        machine=common.MACHINE,
        epoch_accesses=40,  # tiny epochs: boundaries land mid-streak
        warmup_accesses=warmup,
    )
    scalar = simulate(trace, common.make_spec(spec_name), engine="analytic",
                      **kwargs)
    batched = simulate_batched(trace, common.make_spec(spec_name), **kwargs)
    assert result_summary(batched) == result_summary(scalar)


def test_batched_matches_scalar_on_real_trace():
    # One real-workload leg with warmup and the default epoch length, so
    # the segment driver (no-repeat bulk path) is exercised end to end.
    trace = common.get_trace("mcf", 8_000)
    for spec_name in ("bo", "triage_512kb"):
        scalar = simulate(trace, common.make_spec(spec_name),
                          machine=common.MACHINE, warmup_accesses=2_000,
                          engine="analytic")
        batched = simulate_batched(trace, common.make_spec(spec_name),
                                   machine=common.MACHINE,
                                   warmup_accesses=2_000)
        assert result_summary(batched) == result_summary(scalar)


# -- engine selection --------------------------------------------------------


def test_simulate_engine_argument_dispatches(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    trace = common.get_trace("gcc_166", 2_000)
    via_arg = simulate(trace, "bo", machine=common.MACHINE, engine="batched")
    direct = simulate_batched(trace, "bo", machine=common.MACHINE)
    assert result_summary(via_arg) == result_summary(direct)


def test_simulate_rejects_unknown_engine():
    trace = common.get_trace("gcc_166", 500)
    with pytest.raises(ValueError, match="unknown engine"):
        simulate(trace, None, machine=common.MACHINE, engine="vectorised")


def test_engine_env_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert config.engine_env() == "analytic"
    monkeypatch.setenv("REPRO_ENGINE", "batched")
    assert config.engine_env() == "batched"
    monkeypatch.setenv("REPRO_ENGINE", " Batched ")
    assert config.engine_env() == "batched"  # trimmed + lowercased


def test_engine_env_invalid_warns_once_and_falls_back(monkeypatch, capsys):
    bogus = "warp-drive"
    monkeypatch.setenv("REPRO_ENGINE", bogus)
    config.forget_warnings("env")
    assert config.engine_env() == "analytic"
    assert "REPRO_ENGINE" in capsys.readouterr().err
    # Second read: warn-once, silent fallback.
    assert config.engine_env() == "analytic"
    assert capsys.readouterr().err == ""


# -- bail-to-scalar fallback -------------------------------------------------


def test_bail_reasons():
    assert _bail_reason(common.MACHINE) is None
    srrip = replace(common.MACHINE, llc_policy="srrip")
    assert "non-LRU" in _bail_reason(srrip)


def test_batched_bails_to_scalar_for_non_lru_llc():
    srrip = replace(common.MACHINE, llc_policy="srrip")
    trace = common.get_trace("gcc_166", 2_000)
    fell_back = simulate_batched(trace, "bo", machine=srrip)
    scalar = simulate(trace, "bo", machine=srrip, engine="analytic")
    assert result_summary(fell_back) == result_summary(scalar)


def test_batched_rejects_multicore_config():
    trace = common.get_trace("gcc_166", 500)
    with pytest.raises(ValueError, match="single-core"):
        simulate_batched(trace, None, machine=MachineConfig.multi_core(4))


# -- warm-cache separation ---------------------------------------------------


def test_spec_fingerprint_folds_engine(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    default = cache_keys.spec_fingerprint("bo")
    assert "engine" not in default  # analytic keys stay byte-stable
    batched = cache_keys.spec_fingerprint("bo", engine="batched")
    assert batched["engine"] == "batched"
    assert {k: v for k, v in batched.items() if k != "engine"} == default
    # Ambient env resolves identically to the explicit argument.
    monkeypatch.setenv("REPRO_ENGINE", "batched")
    assert cache_keys.spec_fingerprint("bo") == batched


def test_run_single_memo_separates_engines(monkeypatch):
    # The same cell under two engines must be two memo entries -- a
    # batched run may never be answered with a cached analytic result
    # (and vice versa), even though their values agree by contract.
    common.clear_caches()
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    common.run_single("gcc_166", "none", n=1_000)
    keys_analytic = set(common._RUN_CACHE)
    monkeypatch.setenv("REPRO_ENGINE", "batched")
    common.run_single("gcc_166", "none", n=1_000)
    assert len(common._RUN_CACHE) == len(keys_analytic) + 1
    (new_key,) = set(common._RUN_CACHE) - keys_analytic
    assert new_key[-1] == "batched"
    common.clear_caches()
