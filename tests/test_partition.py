"""Unit tests for the dynamic partition controller."""

import pytest

from repro.core.partition import PartitionController

KB = 1024


def controller(**kw):
    defaults = dict(
        capacities=(0, 128 * KB, 256 * KB),
        epoch_accesses=1000,
        sample_shift=0,  # sample everything: deterministic tests
        warmup_epochs=0,
        start_index=1,
    )
    defaults.update(kw)
    return PartitionController(**defaults)


def drive(ctl, stream):
    decisions = []
    for key in stream:
        decision = ctl.note_access(key)
        if decision is not None:
            decisions.append(decision)
    return decisions


def test_rejects_bad_capacities():
    with pytest.raises(ValueError):
        PartitionController(capacities=(0, 2, 1))
    with pytest.raises(ValueError):
        PartitionController(capacities=(1, 2, 3))


def test_no_reuse_shrinks_to_zero():
    ctl = controller(capacities=(0, 2 * KB, 4 * KB))
    # A pure compulsory stream: fresh key every access.
    stream = list(range(10_000))
    decisions = drive(ctl, stream)
    assert decisions[-1].capacity_bytes == 0


def test_modest_reuse_grows_from_zero():
    ctl = controller(start_index=0)
    # Cycle a small hot set: OPT hit rate is high at the small size.
    stream = [i % 500 for i in range(10_000)]
    decisions = drive(ctl, stream)
    assert decisions[-1].capacity_bytes >= 128 * KB


def test_epoch_cadence():
    ctl = controller(epoch_accesses=500)
    decisions = drive(ctl, [i % 100 for i in range(2500)])
    assert len(decisions) == 5


def test_warmup_holds_allocation():
    ctl = controller(warmup_epochs=3, start_index=2)
    decisions = drive(ctl, list(range(3000)))  # no reuse at all
    assert [d.capacity_bytes for d in decisions] == [256 * KB] * 3
    decisions = drive(ctl, list(range(3000, 9000)))
    assert decisions[-1].capacity_bytes < 256 * KB


def test_shrink_to_zero_needs_two_low_epochs():
    ctl = controller()
    # One dead epoch (all fresh keys)...
    drive(ctl, list(range(1000)))
    assert ctl.capacity_bytes == 128 * KB  # hysteresis holds
    # ...a second dead epoch pulls the plug.  (EMA decays: give it two.)
    drive(ctl, list(range(10_000, 13_000)))
    assert ctl.capacity_bytes == 0


def test_grow_to_max_when_large_sandbox_wins():
    # Small candidate sizes keep the sandboxes (and OPTgen's interval
    # scans) tiny; the capacities' ratio is what matters.
    ctl = controller(capacities=(0, 2 * KB, 4 * KB), epoch_accesses=500)
    small_cap = ctl.sandbox_small.capacity  # 512 entries
    # Working set between the two sandbox capacities: the large sandbox
    # hits, the small one thrashes.
    working = int(small_cap * 1.5)
    stream = [i % working for i in range(working * 10)]
    drive(ctl, stream)
    assert ctl.capacity_bytes == 4 * KB


def test_decisions_record_history():
    ctl = controller()
    drive(ctl, [i % 100 for i in range(3000)])
    assert len(ctl.decisions) == 3
    assert all(hasattr(d, "small_hit_rate") for d in ctl.decisions)


def test_sampling_reduces_sandbox_load():
    ctl = PartitionController(
        capacities=(0, 128 * KB, 256 * KB),
        epoch_accesses=1000,
        sample_shift=4,
    )
    drive(ctl, list(range(16_000)))
    sampled = ctl.sandbox_small.accesses
    assert 0 < sampled < 16_000
    assert sampled == pytest.approx(1000, rel=0.5)  # ~1/16
