"""Unit tests for Triage's training unit."""

import pytest

from repro.core.training_unit import TrainingUnit


def test_first_observation_returns_none():
    tu = TrainingUnit()
    assert tu.observe(0xA, 100) is None


def test_returns_previous_line_per_pc():
    tu = TrainingUnit()
    tu.observe(0xA, 100)
    assert tu.observe(0xA, 200) == 100
    assert tu.observe(0xA, 300) == 200


def test_pcs_are_independent():
    tu = TrainingUnit()
    tu.observe(0xA, 1)
    tu.observe(0xB, 2)
    assert tu.observe(0xA, 3) == 1
    assert tu.observe(0xB, 4) == 2


def test_capacity_evicts_lru_pc():
    tu = TrainingUnit(max_pcs=2)
    tu.observe(0xA, 1)
    tu.observe(0xB, 2)
    tu.observe(0xC, 3)  # evicts 0xA
    assert len(tu) == 2
    assert tu.observe(0xA, 9) is None


def test_recent_use_protects_from_eviction():
    tu = TrainingUnit(max_pcs=2)
    tu.observe(0xA, 1)
    tu.observe(0xB, 2)
    tu.observe(0xA, 3)  # refresh 0xA
    tu.observe(0xC, 4)  # evicts 0xB
    assert tu.observe(0xA, 5) == 3
    assert tu.observe(0xB, 6) is None


def test_peek_has_no_side_effects():
    tu = TrainingUnit()
    tu.observe(0xA, 1)
    assert tu.peek(0xA) == 1
    assert tu.peek(0xB) is None
    assert tu.observe(0xA, 2) == 1


def test_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TrainingUnit(max_pcs=0)
