"""Unit tests for the hybrid prefetcher."""

import pytest

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate
from repro.prefetchers.hybrid import HybridPrefetcher


class FakePrefetcher(BasePrefetcher):
    def __init__(self, name, lines):
        super().__init__()
        self.name = name
        self.lines = lines
        self.feedback_log = []

    def observe(self, pc, line, prefetch_hit=False):
        return self.candidates(list(self.lines))

    def feedback(self, candidate, source):
        self.feedback_log.append((candidate.line, source))


def test_requires_components():
    with pytest.raises(ValueError):
        HybridPrefetcher([])


def test_name_concatenates():
    hybrid = HybridPrefetcher([FakePrefetcher("a", []), FakePrefetcher("b", [])])
    assert hybrid.name == "a+b"


def test_candidates_merged_first_component_wins():
    a = FakePrefetcher("a", [1, 2])
    b = FakePrefetcher("b", [2, 3])
    hybrid = HybridPrefetcher([a, b])
    lines = [c.line for c in hybrid.observe(0, 0)]
    assert lines == [1, 2, 3]


def test_feedback_routes_to_owner():
    a = FakePrefetcher("a", [1])
    b = FakePrefetcher("b", [2])
    hybrid = HybridPrefetcher([a, b])
    for candidate in hybrid.observe(0, 0):
        hybrid.feedback(candidate, "dram")
    assert a.feedback_log == [(1, "dram")]
    assert b.feedback_log == [(2, "dram")]


def test_metadata_traffic_summed():
    a = FakePrefetcher("a", [])
    b = FakePrefetcher("b", [])
    a.pending_metadata_bytes = 64
    b.pending_metadata_bytes = 128
    hybrid = HybridPrefetcher([a, b])
    assert hybrid.drain_metadata_traffic() == 192
    assert hybrid.drain_metadata_traffic() == 0


def test_degree_is_component_max():
    a = FakePrefetcher("a", [])
    a.degree = 4
    b = FakePrefetcher("b", [])
    hybrid = HybridPrefetcher([a, b])
    assert hybrid.degree == 4
