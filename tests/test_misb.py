"""Unit tests for MISB's metadata caching and traffic accounting."""

from repro.prefetchers.misb import SP_ENTRIES_PER_LINE, MisbPrefetcher, _MetadataCache


def feed(pf, pc, lines):
    return [[c.line for c in pf.observe(pc, line)] for line in lines]


def test_metadata_cache_lru_and_dirty():
    cache = _MetadataCache(capacity=2)
    assert not cache.probe(1)
    cache.install(1, dirty=True)
    cache.install(2)
    assert cache.probe(1)  # 2 is now LRU
    evicted = cache.install(3)
    assert evicted is None  # 2 was clean
    evicted = cache.install(4)  # evicts 1 (dirty)
    assert evicted == 1


def test_metadata_cache_hit_stats():
    cache = _MetadataCache(capacity=4)
    cache.install(1)
    cache.probe(1)
    cache.probe(2)
    assert cache.hits == 1
    assert cache.misses == 1


def test_misb_predicts_like_isb():
    pf = MisbPrefetcher(degree=1)
    chain = [10, 77, 3, 520]
    feed(pf, 0xA, chain)
    results = feed(pf, 0xA, chain)
    assert results[1] == [3]
    assert results[2] == [520]


def test_misb_generates_offchip_traffic_when_cache_small():
    pf = MisbPrefetcher(degree=1, onchip_bytes=256)  # tiny metadata cache
    import random

    rnd = random.Random(1)
    chain = [rnd.randrange(1 << 32) for _ in range(2000)]
    feed(pf, 0xA, chain)
    feed(pf, 0xA, chain)
    assert pf.metadata_dram_accesses > 0
    assert pf.drain_metadata_traffic() > 0
    assert pf.drain_metadata_traffic() == 0  # drained


def test_misb_large_cache_cuts_traffic():
    import random

    rnd = random.Random(2)
    chain = [rnd.randrange(1 << 32) for _ in range(2000)]
    small = MisbPrefetcher(onchip_bytes=512)
    large = MisbPrefetcher(onchip_bytes=1 << 20)
    for pf in (small, large):
        feed(pf, 0xA, chain)
        feed(pf, 0xA, chain)
    assert large.metadata_dram_accesses < small.metadata_dram_accesses


def test_sp_lines_pack_structural_neighbors():
    """Consecutive structural addresses share one SP cache line, which is
    where MISB's metadata-prefetching advantage comes from."""
    assert SP_ENTRIES_PER_LINE == 16
    pf = MisbPrefetcher(degree=1)
    chain = list(range(100, 116))
    feed(pf, 0xA, chain)
    sp_lines = {pf._maps._ps[x] // SP_ENTRIES_PER_LINE for x in chain}
    assert len(sp_lines) <= 2
