"""Integration tests for the single-core simulator."""

import pytest

from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.sim.config import MachineConfig
from repro.sim.single_core import simulate, triage_components
from repro.prefetchers.hybrid import HybridPrefetcher
from repro.prefetchers.best_offset import BestOffsetPrefetcher
from repro.workloads.base import Trace
from repro.workloads.irregular import chain_trace
from repro.workloads.regular import stream_trace

KB = 1024
MACHINE = MachineConfig.scaled(16)  # tiny machine: LLC 128KB, L2 32KB


def small_chain_trace(n=30_000, seed=1):
    return chain_trace(
        "chain", n, seed,
        hot_lines=4_000, cold_lines=4_000, hot_fraction=0.8,
        noise=0.0, sequential_frac=0.0,
    )


def triage_cfg(**kw):
    defaults = dict(metadata_capacity=32 * KB, capacities=(0, 16 * KB, 32 * KB),
                    epoch_accesses=2000)
    defaults.update(kw)
    return TriageConfig(**defaults)


def test_baseline_counts_are_consistent():
    trace = small_chain_trace()
    result = simulate(trace, None, machine=MACHINE)
    c = result.counters
    assert c.accesses == len(trace)
    assert c.accesses == c.l1_hits + c.l2_hits + c.llc_hits + c.dram_accesses
    assert result.cycles > 0
    assert result.prefetcher == "none"


def test_triage_speeds_up_temporal_workload():
    trace = small_chain_trace()
    base = simulate(trace, None, machine=MACHINE)
    triage = simulate(trace, triage_cfg(), machine=MACHINE)
    assert triage.speedup_over(base) > 1.05
    assert triage.coverage > 0.2
    assert triage.useful_prefetches > 0


def test_triage_charges_llc_capacity():
    trace = small_chain_trace()
    charged = simulate(trace, triage_cfg(), machine=MACHINE)
    free = simulate(
        trace, triage_cfg(), machine=MACHINE, charge_metadata_to_llc=False
    )
    # The free store never does worse: same coverage, no capacity loss.
    assert free.cycles <= charged.cycles * 1.02


def test_bo_covers_stream_workload():
    trace = stream_trace("s", 20_000, seed=1, n_streams=2)
    from dataclasses import replace

    machine = replace(MACHINE, l1_prefetcher="none")
    base = simulate(trace, None, machine=machine)
    bo = simulate(trace, "bo", machine=machine)
    assert bo.coverage > 0.8
    assert bo.speedup_over(base) > 1.0


def test_l1_stride_prefetcher_covers_stream_in_baseline():
    trace = stream_trace("s", 20_000, seed=1, n_streams=2)
    with_stride = simulate(trace, None, machine=MACHINE)
    from dataclasses import replace

    without = simulate(trace, None, machine=replace(MACHINE, l1_prefetcher="none"))
    assert with_stride.cycles < without.cycles
    assert with_stride.counters.l1pf_useful > 0


def test_warmup_excludes_early_stats():
    trace = small_chain_trace()
    full = simulate(trace, None, machine=MACHINE)
    warmed = simulate(trace, None, machine=MACHINE, warmup_accesses=10_000)
    assert warmed.counters.accesses == len(trace) - 10_000
    assert warmed.instructions < full.instructions
    # Warm caches: the measured region has a lower miss fraction.
    warm_rate = warmed.counters.dram_accesses / warmed.counters.accesses
    cold_rate = full.counters.dram_accesses / full.counters.accesses
    assert warm_rate <= cold_rate + 0.01


def test_multicore_config_rejected():
    trace = small_chain_trace(n=1000)
    with pytest.raises(ValueError):
        simulate(trace, None, machine=MachineConfig.multi_core(2))


def test_triage_components_finds_nested():
    triage = TriagePrefetcher(triage_cfg())
    hybrid = HybridPrefetcher([BestOffsetPrefetcher(), triage])
    assert triage_components(hybrid) == [triage]
    assert triage_components(None) == []
    assert triage_components(BestOffsetPrefetcher()) == []


def test_dynamic_partition_resizes_llc():
    # A stream workload should drive the dynamic allocation to zero,
    # restoring all LLC ways to data.
    trace = stream_trace("s", 30_000, seed=1, n_streams=2)
    pf = TriagePrefetcher(
        triage_cfg(metadata_capacity=None, dynamic=True,
                   partition_warmup_epochs=0, partition_start=2)
    )
    result = simulate(trace, pf, machine=MACHINE)
    assert result.final_metadata_capacity == 0
    assert result.partition_history[-1] == 0


def test_deterministic_simulation():
    trace = small_chain_trace(n=10_000)
    a = simulate(trace, triage_cfg(), machine=MACHINE)
    b = simulate(trace, triage_cfg(), machine=MACHINE)
    assert a.cycles == b.cycles
    assert a.counters == b.counters


def test_oversized_metadata_store_rejected():
    trace = small_chain_trace(n=1000)
    with pytest.raises(ValueError):
        simulate(trace, "triage_1mb", machine=MACHINE)  # 1MB > tiny LLC
