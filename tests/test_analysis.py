"""Tests for the analysis toolkit."""

import pytest

from repro.analysis import (
    metadata_footprint,
    pair_stability_profile,
    reuse_distance_histogram,
    working_set_lines,
)
from repro.workloads.base import Trace
from repro.workloads.irregular import chain_trace, shuffled_reuse_trace


def make_trace(lines, pc=0x400):
    return Trace("t", [pc] * len(lines), [l * 64 for l in lines],
                 [False] * len(lines))


def test_working_set_lines():
    assert working_set_lines(make_trace([1, 2, 3, 1, 2])) == 3


def test_reuse_distance_cold_and_buckets():
    # 1,2,3,1: 1's reuse has 2 distinct lines in between.
    hist = reuse_distance_histogram(make_trace([1, 2, 3, 1]),
                                    bucket_edges=(1, 4))
    assert hist["cold"] == 3
    assert hist.get("<=4", 0) == 1


def test_reuse_distance_immediate_reuse():
    hist = reuse_distance_histogram(make_trace([5, 5, 5]), bucket_edges=(1,))
    assert hist["cold"] == 1
    assert hist["<=1"] == 2


def test_reuse_distance_exceeds_buckets():
    lines = list(range(10)) + [0]
    hist = reuse_distance_histogram(make_trace(lines), bucket_edges=(2, 4))
    assert hist[">4"] == 1


def test_reuse_distance_total_conserved():
    trace = chain_trace("c", 3_000, seed=1, hot_lines=300, cold_lines=300)
    hist = reuse_distance_histogram(trace)
    assert sum(hist.values()) == len(trace)


def test_metadata_footprint_counts_pairs():
    stats = metadata_footprint(make_trace([1, 2, 3]))
    # Pairs trained: (1->2), (2->3): triggers {1, 2}.
    assert stats["entries"] == 2
    assert stats["bytes"] == 8


def test_metadata_footprint_skew_on_chain_workload():
    trace = chain_trace(
        "c", 30_000, seed=1, hot_lines=500, cold_lines=8_000,
        hot_fraction=0.8,
    )
    stats = metadata_footprint(trace)
    assert stats["entries"] > 10  # smoke
    assert 0.0 < stats["share_reused_gt5"] < 0.5  # skew: small hot head


def test_pair_stability_extremes():
    chain = chain_trace(
        "c", 10_000, seed=1, hot_lines=500, cold_lines=0, cold_chains=0,
        hot_fraction=1.0, noise=0.0, concurrency=1,
    )
    shuffled = shuffled_reuse_trace("s", 10_000, seed=1, n_lines=800)
    assert pair_stability_profile(chain) > 0.9
    assert pair_stability_profile(shuffled) < 0.1


def test_pair_stability_empty_default():
    assert pair_stability_profile(make_trace([1])) == 1.0
