"""Unit tests for the PC-stride prefetcher."""

from repro.prefetchers.stride import StridePrefetcher


def feed(pf, pc, lines):
    out = []
    for line in lines:
        out.append([c.line for c in pf.observe(pc, line)])
    return out


def test_learns_constant_stride():
    pf = StridePrefetcher(degree=1)
    results = feed(pf, 0x400, [10, 12, 14, 16, 18])
    # After confidence builds, it prefetches line + stride.
    assert results[-1] == [20]


def test_no_prefetch_before_confidence():
    pf = StridePrefetcher(degree=1)
    results = feed(pf, 0x400, [10, 12])
    assert results == [[], []]


def test_stride_change_resets():
    pf = StridePrefetcher(degree=1)
    feed(pf, 0x400, [10, 12, 14, 16])
    results = feed(pf, 0x400, [30, 33, 36, 39])
    assert results[-1] == [42]


def test_degree_extends_prefetch_run():
    pf = StridePrefetcher(degree=3)
    results = feed(pf, 0x400, [10, 12, 14, 16])
    assert results[-1] == [18, 20, 22]


def test_distinct_pcs_tracked_independently():
    pf = StridePrefetcher(degree=1)
    feed(pf, 0xA, [100, 101, 102, 103])
    feed(pf, 0xB, [500, 510, 520, 530])
    assert feed(pf, 0xA, [104])[-1] == [105]
    assert feed(pf, 0xB, [540])[-1] == [550]


def test_zero_stride_ignored():
    pf = StridePrefetcher(degree=1)
    results = feed(pf, 0x400, [10, 10, 10, 10])
    assert all(r == [] for r in results)


def test_table_capacity_lru():
    pf = StridePrefetcher(degree=1, table_size=2)
    feed(pf, 0xA, [10, 12, 14, 16])
    feed(pf, 0xB, [100, 101])
    feed(pf, 0xC, [200, 202])  # evicts 0xA
    # 0xA must relearn from scratch.
    assert feed(pf, 0xA, [18])[-1] == []
