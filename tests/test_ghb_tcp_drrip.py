"""Tests for the related-work baselines: GHB PC/DC, TCP, DRRIP."""

from repro.prefetchers.ghb_delta import GhbDeltaPrefetcher
from repro.prefetchers.tcp import TagCorrelatingPrefetcher
from repro.replacement.drrip import DrripPolicy


def feed(pf, pc, lines):
    return [[c.line for c in pf.observe(pc, line)] for line in lines]


# -- GHB PC/DC -----------------------------------------------------------------


def test_ghb_delta_learns_constant_stride():
    pf = GhbDeltaPrefetcher(degree=2)
    results = feed(pf, 0xA, [10, 13, 16, 19, 22, 25])
    assert results[-1] == [28, 31]


def test_ghb_delta_learns_repeating_pattern():
    pf = GhbDeltaPrefetcher(degree=2)
    # Deltas repeat +1,+1,+6: after history builds, the pair (+1,+6)
    # predicts +1,+1.
    lines = [0]
    for _ in range(6):
        lines += [lines[-1] + 1, lines[-1] + 2, lines[-1] + 8]
    results = feed(pf, 0xA, lines)
    assert results[-1] == [lines[-1] + 1, lines[-1] + 2]


def test_ghb_delta_cannot_learn_pointer_chains():
    import random

    rnd = random.Random(4)
    chain = [rnd.randrange(1 << 30) for _ in range(200)]
    pf = GhbDeltaPrefetcher(degree=1)
    feed(pf, 0xA, chain)
    second_pass = feed(pf, 0xA, chain)
    correct = sum(
        1
        for i, preds in enumerate(second_pass[:-1])
        if preds and preds[0] == chain[i + 1]
    )
    # Random deltas never repeat: delta correlation finds ~nothing.
    assert correct < 10


def test_ghb_delta_pc_capacity():
    pf = GhbDeltaPrefetcher(max_pcs=2)
    feed(pf, 0xA, [1, 2, 3, 4])
    feed(pf, 0xB, [10, 20])
    feed(pf, 0xC, [5, 6])
    assert len(pf._history) <= 2


# -- TCP -----------------------------------------------------------------------


def test_tcp_learns_tag_transitions():
    pf = TagCorrelatingPrefetcher(degree=1, set_bits=4)
    set_idx = 3
    seq = [(t << 4) | set_idx for t in (1, 5, 9, 1, 5, 9)]
    results = feed(pf, 0, seq)
    # Second time around, (1,5) predicts tag 9 in the same set.
    assert results[-2] == [(9 << 4) | set_idx] or results[-1]


def test_tcp_generalizes_across_sets():
    pf = TagCorrelatingPrefetcher(degree=1, set_bits=4)
    # Train the (1,5)->9 transition in set 0 ...
    feed(pf, 0, [(1 << 4), (5 << 4), (9 << 4)])
    # ... then replay tags 1,5 in set 7: TCP predicts tag 9 *in set 7*.
    results = feed(pf, 0, [(1 << 4) | 7, (5 << 4) | 7])
    assert results[-1] == [(9 << 4) | 7]


def test_tcp_table_bounded():
    pf = TagCorrelatingPrefetcher(table_entries=4, set_bits=2)
    feed(pf, 0, list(range(0, 400, 4)))
    assert len(pf._table) <= 4


# -- DRRIP -----------------------------------------------------------------------


def test_drrip_leader_sets_disjoint():
    policy = DrripPolicy(64, 4)
    assert not (policy._srrip_leaders & policy._brrip_leaders)
    assert policy._srrip_leaders and policy._brrip_leaders


def test_drrip_psel_moves_toward_better_leader():
    policy = DrripPolicy(64, 4)
    start = policy.psel
    srrip_leader = next(iter(policy._srrip_leaders))
    for _ in range(20):
        policy.on_fill(srrip_leader, 0)  # misses in SRRIP leaders
    assert policy.psel < start


def test_drrip_brrip_inserts_mostly_distant():
    policy = DrripPolicy(64, 4, seed=1)
    policy.psel = 0  # force followers to BRRIP
    follower = next(
        s for s in range(64)
        if s not in policy._srrip_leaders and s not in policy._brrip_leaders
    )
    distant = 0
    for _ in range(64):
        policy.on_fill(follower, 0)
        if policy._rrpv[follower][0] == policy.max_rrpv:
            distant += 1
    assert distant > 48  # ~ (1 - 1/32) of fills


def test_drrip_works_inside_cache():
    from repro.memory.cache import Cache

    cache = Cache("d", 4096, 4, policy="drrip")
    for line in range(100):
        if not cache.access(line).hit:
            cache.fill(line)
    assert cache.occupancy() <= 64
