"""Unit tests for address arithmetic."""

from repro.memory.address import (
    LINE_SIZE,
    line_addr,
    line_base,
    region_id,
    region_offset,
    set_index,
    tag_bits,
)


def test_line_addr_strips_offset():
    assert line_addr(0) == 0
    assert line_addr(63) == 0
    assert line_addr(64) == 1
    assert line_addr(0x12345) == 0x12345 >> 6


def test_line_base_is_aligned():
    for addr in (0, 1, 63, 64, 1000, 0xDEADBEEF):
        base = line_base(addr)
        assert base % LINE_SIZE == 0
        assert base <= addr < base + LINE_SIZE


def test_set_index_wraps_power_of_two():
    assert set_index(0, 16) == 0
    assert set_index(15, 16) == 15
    assert set_index(16, 16) == 0
    assert set_index(0x12345, 2048) == 0x12345 % 2048


def test_tag_bits_drop_set_index():
    line = 0b1011_0110_1010
    assert tag_bits(line, 16) == line >> 4
    assert tag_bits(line, 1) == line


def test_tag_and_set_reconstruct_line():
    num_sets = 256
    for line in (0, 1, 255, 256, 123456789):
        reconstructed = (tag_bits(line, num_sets) << 8) | set_index(line, num_sets)
        assert reconstructed == line


def test_region_helpers():
    region_size = 2048
    assert region_id(0, region_size) == 0
    assert region_id(2047, region_size) == 0
    assert region_id(2048, region_size) == 1
    assert region_offset(0, region_size) == 0
    assert region_offset(64, region_size) == 1
    assert region_offset(2047, region_size) == 31
