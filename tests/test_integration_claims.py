"""End-to-end integration tests for the paper's core qualitative claims,
on miniature workloads so they run in seconds.

These are the invariants the full benchmark suite measures at scale; here
they guard against regressions in the machinery itself.
"""

from dataclasses import replace
from functools import lru_cache

from repro.core.triage import TriageConfig
from repro.prefetchers.misb import MisbPrefetcher
from repro.sim.config import MachineConfig
from repro.sim.single_core import simulate
from repro.workloads.irregular import chain_trace, shuffled_reuse_trace
from repro.workloads.regular import stream_trace

KB = 1024
MACHINE = MachineConfig.scaled(16)  # 128 KB LLC, 32 KB L2, 4 KB L1


@lru_cache(maxsize=None)
def _chain_cached(n, items):
    return chain_trace("c", n, seed=1, **dict(items))


def chain(n=28_000, **kw):
    params = dict(
        hot_lines=3_000, cold_lines=6_000, hot_fraction=0.75,
        noise=0.01, sequential_frac=0.1,
    )
    params.update(kw)
    return _chain_cached(n, tuple(sorted(params.items())))


def triage(capacity=32 * KB, **kw):
    return TriageConfig(
        metadata_capacity=capacity, capacities=(0, 16 * KB, 32 * KB),
        epoch_accesses=2000, **kw,
    )


def test_claim_triage_beats_bo_on_irregular():
    trace = chain()
    base = simulate(trace, None, machine=MACHINE)
    t = simulate(trace, triage(), machine=MACHINE)
    bo = simulate(trace, "bo", machine=MACHINE)
    assert t.speedup_over(base) > bo.speedup_over(base)
    assert t.coverage > bo.coverage
    assert t.accuracy > bo.accuracy


def test_claim_triage_traffic_far_below_misb():
    trace = chain()
    base = simulate(trace, None, machine=MACHINE)
    t = simulate(trace, triage(), machine=MACHINE)
    misb = simulate(trace, MisbPrefetcher(onchip_bytes=3 * KB), machine=MACHINE)
    assert t.traffic_overhead_vs(base) < misb.traffic_overhead_vs(base)
    assert t.traffic["metadata"] == 0  # no off-chip metadata, ever
    assert misb.traffic["metadata"] > 0


def test_claim_metadata_energy_all_on_chip():
    trace = chain()
    t = simulate(trace, triage(), machine=MACHINE)
    assert t.metadata_llc_accesses > 0
    assert t.metadata_dram_accesses == 0


def test_claim_hawkeye_beats_lru_at_small_store():
    trace = chain(hot_lines=2_000, cold_lines=12_000, hot_fraction=0.6)
    base = simulate(trace, None, machine=MACHINE)
    small = 8 * KB  # far smaller than the metadata demand
    hawkeye = simulate(
        trace, triage(capacity=small), machine=MACHINE,
        charge_metadata_to_llc=False,
    )
    lru = simulate(
        trace, triage(capacity=small, replacement="lru"), machine=MACHINE,
        charge_metadata_to_llc=False,
    )
    assert hawkeye.coverage >= lru.coverage
    assert hawkeye.speedup_over(base) >= lru.speedup_over(base) - 0.01


def test_claim_temporal_cannot_cover_compulsory_misses():
    trace = stream_trace("s", 20_000, seed=1, n_streams=2)
    machine = replace(MACHINE, l1_prefetcher="none")
    t = simulate(trace, triage(), machine=machine)
    assert t.coverage < 0.02


def test_claim_unstable_pairs_yield_no_coverage():
    trace = shuffled_reuse_trace("b", 30_000, seed=1, n_lines=4_000)
    t = simulate(trace, triage(), machine=MACHINE)
    assert t.coverage < 0.15


def test_claim_capacity_loss_vs_prefetch_benefit():
    """Figure 7 in miniature: Triage with a free store beats Triage that
    pays LLC ways, which still beats no prefetching; halving the cache
    without prefetching loses."""
    trace = chain()
    base = simulate(trace, None, machine=MACHINE)
    free = simulate(trace, triage(), machine=MACHINE, charge_metadata_to_llc=False)
    paid = simulate(trace, triage(), machine=MACHINE)
    half = simulate(
        trace, None,
        machine=replace(MACHINE, llc_size_per_core=MACHINE.llc_size_per_core // 2),
    )
    assert free.speedup_over(base) >= paid.speedup_over(base) - 0.02
    assert paid.speedup_over(base) > 1.0
    assert half.speedup_over(base) < 1.0


def test_claim_degree_raises_coverage_and_metadata_energy():
    trace = chain()
    d1 = simulate(trace, triage(), machine=MACHINE, degree=1)
    d4 = simulate(trace, triage(degree=4), machine=MACHINE)
    assert d4.coverage >= d1.coverage - 0.02
    assert d4.metadata_llc_accesses > d1.metadata_llc_accesses
