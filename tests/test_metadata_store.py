"""Unit tests for Triage's on-chip metadata store."""

import pytest

from repro.core.metadata_store import (
    ENTRIES_PER_LINE,
    ENTRY_BYTES,
    MetadataStore,
)


def test_geometry_from_capacity():
    store = MetadataStore(capacity_bytes=64 * 1024)
    assert store.capacity_entries == 64 * 1024 // ENTRY_BYTES
    assert store.num_sets == store.capacity_entries // ENTRIES_PER_LINE


def test_lookup_miss_then_update_then_hit():
    store = MetadataStore(capacity_bytes=4096)
    assert store.lookup(10) is None
    store.update(10, 999)
    assert store.lookup(10) == 999


def test_successor_roundtrip_via_compressed_tags():
    store = MetadataStore(capacity_bytes=4096, use_compressed_tags=True)
    successor = (0x3F << 11) | 0x2A5  # non-trivial tag + set_id
    store.update(1, successor)
    assert store.lookup(1) == successor


def test_uncompressed_mode():
    store = MetadataStore(capacity_bytes=4096, use_compressed_tags=False)
    store.update(1, 0xDEADBEEF)
    assert store.lookup(1) == 0xDEADBEEF


def test_confidence_protects_then_replaces():
    store = MetadataStore(capacity_bytes=4096)
    store.update(5, 100)  # entry (5 -> 100), confidence 1
    store.update(5, 200)  # disagreement: confidence 0, keeps 100
    assert store.lookup(5) == 100
    store.update(5, 200)  # second disagreement: replace
    assert store.lookup(5) == 200


def test_confidence_rearms_on_agreement():
    store = MetadataStore(capacity_bytes=4096)
    store.update(5, 100)
    store.update(5, 200)  # conf -> 0
    store.update(5, 100)  # agreement re-arms
    store.update(5, 300)  # one disagreement only drops confidence
    assert store.lookup(5) == 100


def test_capacity_bound_and_eviction():
    store = MetadataStore(capacity_bytes=ENTRY_BYTES * ENTRIES_PER_LINE)  # 1 set
    for trigger in range(ENTRIES_PER_LINE + 4):
        store.update(trigger * store.num_sets if store.num_sets else trigger, trigger)
    assert store.occupancy() <= ENTRIES_PER_LINE
    assert store.evictions >= 4


def test_zero_capacity_discards_everything():
    store = MetadataStore(capacity_bytes=0)
    store.update(1, 2)
    assert store.lookup(1) is None
    assert store.occupancy() == 0


def test_unbounded_store():
    store = MetadataStore(capacity_bytes=None, use_compressed_tags=False)
    for trigger in range(10_000):
        store.update(trigger, trigger + 1)
    assert store.occupancy() == 10_000
    assert store.lookup(1234) == 1235
    with pytest.raises(ValueError):
        store.resize(1024)
    with pytest.raises(ValueError):
        _ = store.capacity_entries


def test_resize_preserves_entries_up_to_capacity():
    store = MetadataStore(capacity_bytes=8192)
    for trigger in range(100):
        store.update(trigger, trigger + 1)
    store.resize(16384)
    assert store.lookup(50) == 51
    store.resize(1024)
    assert store.occupancy() <= 1024 // ENTRY_BYTES


def test_llc_access_accounting():
    store = MetadataStore(capacity_bytes=4096)
    store.lookup(1)
    store.update(1, 2)
    assert store.llc_accesses == 2


def test_reuse_tracking():
    store = MetadataStore(capacity_bytes=4096, track_reuse=True)
    store.update(1, 2)
    store.lookup(1)
    store.lookup(1)
    assert store.reuse_counts[1] == 2


def test_lru_policy_variant():
    store = MetadataStore(capacity_bytes=4096, policy="lru")
    store.update(1, 2)
    assert store.lookup(1) == 2


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        MetadataStore(capacity_bytes=4096, policy="fifo")


def test_record_prefetch_outcome_redundant_ignored():
    store = MetadataStore(capacity_bytes=4096)
    # Redundant outcomes must not feed the Hawkeye sampler.
    policy = store._policy
    before = sum(s.accesses for s in policy._samplers.values())
    store.record_prefetch_outcome(1, pc=5, redundant=True)
    after = sum(s.accesses for s in policy._samplers.values())
    assert before == after
    store.record_prefetch_outcome(1, pc=5, redundant=False)
    final = sum(s.accesses for s in policy._samplers.values())
    assert final == after + 1


# -- policy="reuse" (Triangel family) ----------------------------------------


def test_reuse_policy_variant_evicts_never_reused_first():
    store = MetadataStore(capacity_bytes=4096, policy="reuse")
    num_sets = store.num_sets
    # Fill set 0 completely; reuse (look up) every entry except one.
    triggers = [w * num_sets for w in range(ENTRIES_PER_LINE)]
    for t in triggers:
        store.update(t, t + 1)
    cold = triggers[5]
    for t in triggers:
        if t != cold:
            store.lookup(t)
    # The next insert into set 0 must displace the never-reused entry.
    newcomer = ENTRIES_PER_LINE * num_sets
    store.update(newcomer, newcomer + 1)
    assert not store.contains(cold)
    assert store.contains(newcomer)
    for t in triggers:
        if t != cold:
            assert store.contains(t)


# -- index_mode="nonuniform" (Trimma-style near/far) -------------------------


def test_nonuniform_near_hits_skip_the_llc():
    store = MetadataStore(capacity_bytes=4096, index_mode="nonuniform")
    store.update(1, 2)
    assert store.lookup(1) == 2  # far hit: charged, promotes to near
    charged = store.llc_accesses
    assert store.lookup(1) == 2  # near hit: free
    assert store.llc_accesses == charged
    assert store.near_hits == 1
    assert store.lookup_hits == 2


def test_nonuniform_near_is_lru_bounded():
    store = MetadataStore(
        capacity_bytes=64 * 1024, index_mode="nonuniform", near_entries=2
    )
    for t in (1, 2, 3):
        store.update(t, t + 10)
        store.lookup(t)  # promote each into the near level
    assert len(store._near) == 2
    charged = store.llc_accesses
    store.lookup(1)  # evicted from near (LRU): must fall through to far
    assert store.llc_accesses == charged + 1


def test_nonuniform_eviction_invalidates_near_copy():
    store = MetadataStore(capacity_bytes=4096, index_mode="nonuniform")
    num_sets = store.num_sets
    triggers = [w * num_sets for w in range(ENTRIES_PER_LINE)]
    for t in triggers:
        store.update(t, t + 1)
    store.lookup(triggers[0])  # near-resident
    # Overflow set 0: some resident entry is evicted; if it was the
    # near-resident one its near copy must go too.
    newcomer = ENTRIES_PER_LINE * num_sets
    store.update(newcomer, newcomer + 1)
    for trigger in store._near:
        assert store.contains(trigger)


def test_nonuniform_resize_clears_near_level():
    store = MetadataStore(capacity_bytes=4096, index_mode="nonuniform")
    store.update(1, 2)
    store.lookup(1)
    assert store._near
    store.resize(8192)
    assert not store._near


def test_uniform_mode_never_touches_near_level():
    store = MetadataStore(capacity_bytes=4096, index_mode="uniform")
    store.update(1, 2)
    store.lookup(1)
    store.lookup(1)
    assert store.near_hits == 0
    assert not store._near


def test_unknown_index_mode_rejected():
    with pytest.raises(ValueError):
        MetadataStore(capacity_bytes=4096, index_mode="diagonal")
