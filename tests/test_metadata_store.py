"""Unit tests for Triage's on-chip metadata store."""

import pytest

from repro.core.metadata_store import (
    ENTRIES_PER_LINE,
    ENTRY_BYTES,
    MetadataStore,
)


def test_geometry_from_capacity():
    store = MetadataStore(capacity_bytes=64 * 1024)
    assert store.capacity_entries == 64 * 1024 // ENTRY_BYTES
    assert store.num_sets == store.capacity_entries // ENTRIES_PER_LINE


def test_lookup_miss_then_update_then_hit():
    store = MetadataStore(capacity_bytes=4096)
    assert store.lookup(10) is None
    store.update(10, 999)
    assert store.lookup(10) == 999


def test_successor_roundtrip_via_compressed_tags():
    store = MetadataStore(capacity_bytes=4096, use_compressed_tags=True)
    successor = (0x3F << 11) | 0x2A5  # non-trivial tag + set_id
    store.update(1, successor)
    assert store.lookup(1) == successor


def test_uncompressed_mode():
    store = MetadataStore(capacity_bytes=4096, use_compressed_tags=False)
    store.update(1, 0xDEADBEEF)
    assert store.lookup(1) == 0xDEADBEEF


def test_confidence_protects_then_replaces():
    store = MetadataStore(capacity_bytes=4096)
    store.update(5, 100)  # entry (5 -> 100), confidence 1
    store.update(5, 200)  # disagreement: confidence 0, keeps 100
    assert store.lookup(5) == 100
    store.update(5, 200)  # second disagreement: replace
    assert store.lookup(5) == 200


def test_confidence_rearms_on_agreement():
    store = MetadataStore(capacity_bytes=4096)
    store.update(5, 100)
    store.update(5, 200)  # conf -> 0
    store.update(5, 100)  # agreement re-arms
    store.update(5, 300)  # one disagreement only drops confidence
    assert store.lookup(5) == 100


def test_capacity_bound_and_eviction():
    store = MetadataStore(capacity_bytes=ENTRY_BYTES * ENTRIES_PER_LINE)  # 1 set
    for trigger in range(ENTRIES_PER_LINE + 4):
        store.update(trigger * store.num_sets if store.num_sets else trigger, trigger)
    assert store.occupancy() <= ENTRIES_PER_LINE
    assert store.evictions >= 4


def test_zero_capacity_discards_everything():
    store = MetadataStore(capacity_bytes=0)
    store.update(1, 2)
    assert store.lookup(1) is None
    assert store.occupancy() == 0


def test_unbounded_store():
    store = MetadataStore(capacity_bytes=None, use_compressed_tags=False)
    for trigger in range(10_000):
        store.update(trigger, trigger + 1)
    assert store.occupancy() == 10_000
    assert store.lookup(1234) == 1235
    with pytest.raises(ValueError):
        store.resize(1024)
    with pytest.raises(ValueError):
        _ = store.capacity_entries


def test_resize_preserves_entries_up_to_capacity():
    store = MetadataStore(capacity_bytes=8192)
    for trigger in range(100):
        store.update(trigger, trigger + 1)
    store.resize(16384)
    assert store.lookup(50) == 51
    store.resize(1024)
    assert store.occupancy() <= 1024 // ENTRY_BYTES


def test_llc_access_accounting():
    store = MetadataStore(capacity_bytes=4096)
    store.lookup(1)
    store.update(1, 2)
    assert store.llc_accesses == 2


def test_reuse_tracking():
    store = MetadataStore(capacity_bytes=4096, track_reuse=True)
    store.update(1, 2)
    store.lookup(1)
    store.lookup(1)
    assert store.reuse_counts[1] == 2


def test_lru_policy_variant():
    store = MetadataStore(capacity_bytes=4096, policy="lru")
    store.update(1, 2)
    assert store.lookup(1) == 2


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        MetadataStore(capacity_bytes=4096, policy="fifo")


def test_record_prefetch_outcome_redundant_ignored():
    store = MetadataStore(capacity_bytes=4096)
    # Redundant outcomes must not feed the Hawkeye sampler.
    policy = store._policy
    before = sum(s.accesses for s in policy._samplers.values())
    store.record_prefetch_outcome(1, pc=5, redundant=True)
    after = sum(s.accesses for s in policy._samplers.values())
    assert before == after
    store.record_prefetch_outcome(1, pc=5, redundant=False)
    final = sum(s.accesses for s in policy._samplers.values())
    assert final == after + 1
