"""Tests for the named SPEC/CloudSuite workload registries."""

import pytest

from repro.workloads import cloudsuite, mixes, spec


def test_all_benchmarks_build():
    for name in spec.benchmark_names():
        trace = spec.make_trace(name, n_accesses=2000, seed=1, scale=16)
        assert len(trace) == 2000, name
        assert trace.mlp >= 1.0


def test_irregular_and_regular_lists_are_registered():
    names = set(spec.benchmark_names())
    assert set(spec.IRREGULAR_SPEC) <= names
    assert set(spec.REGULAR_SPEC) <= names
    assert set(spec.MEMORY_BOUND) <= names


def test_unknown_benchmark_rejected():
    with pytest.raises(ValueError):
        spec.make_trace("quake3")


def test_scale_shrinks_working_set():
    big = spec.make_trace("mcf", n_accesses=20_000, seed=1, scale=1)
    small = spec.make_trace("mcf", n_accesses=20_000, seed=1, scale=16)
    assert len(set(small.addrs)) < len(set(big.addrs))


def test_irregular_category_tagged():
    trace = spec.make_trace("mcf", n_accesses=1000, scale=16)
    assert trace.category == "irregular"
    trace = spec.make_trace("libquantum", n_accesses=1000, scale=16)
    assert trace.category == "regular"


def test_cloudsuite_benchmarks_build():
    for name in cloudsuite.CLOUDSUITE:
        trace = cloudsuite.make_trace(name, n_accesses=2000, seed=1, scale=16)
        assert len(trace) == 2000
        assert trace.category == "server"


def test_cloudsuite_unknown_rejected():
    with pytest.raises(ValueError):
        cloudsuite.make_trace("memcached")


def test_mix_names_deterministic():
    a = mixes.mix_names(4, seed=7)
    b = mixes.mix_names(4, seed=7)
    assert a == b
    assert len(a) == 4


def test_irregular_only_mixes_draw_from_irregular_pool():
    names = mixes.mix_names(16, seed=3, irregular_only=True)
    assert set(names) <= set(spec.IRREGULAR_SPEC)


def test_make_mix_builds_disjoint_arenas():
    traces = mixes.make_mix(2, seed=5, n_accesses_per_core=2000, scale=16,
                            names=["mcf", "mcf"])
    # Same benchmark on two cores: address spaces must not overlap.
    a = {addr >> 6 for addr in traces[0].addrs}
    b = {addr >> 6 for addr in traces[1].addrs}
    assert not (a & b)


def test_make_mix_validates_names():
    with pytest.raises(ValueError):
        mixes.make_mix(2, seed=1, names=["mcf"])
