"""Tests for the analytic timing model."""

import pytest

from repro.memory.dram import DramModel
from repro.sim.config import MachineConfig
from repro.sim.timing import EpochLoad, core_cycles, resolve_epoch


CONFIG = MachineConfig()
DRAM = DramModel()


def load(instr=1000, l2=0, llc=0, dram=0, mlp=1.0):
    return EpochLoad(
        instructions=instr, l2_hits=l2, llc_hits=llc, dram_accesses=dram, mlp=mlp
    )


def test_cpu_only_epoch():
    cycles = core_cycles(load(instr=1000), CONFIG, 170.0)
    assert cycles == pytest.approx(1000 * CONFIG.base_cpi)


def test_memory_stalls_add_up():
    l = load(l2=10, llc=5, dram=2)
    cycles = core_cycles(l, CONFIG, 170.0)
    expected = 1000 * 0.25 + (10 * 11 + 5 * 20 + 2 * 170)
    assert cycles == pytest.approx(expected)


def test_mlp_divides_stalls():
    serial = core_cycles(load(dram=10, mlp=1.0), CONFIG, 170.0)
    parallel = core_cycles(load(dram=10, mlp=2.0), CONFIG, 170.0)
    assert parallel < serial
    assert (serial - 250) == pytest.approx(2 * (parallel - 250))


def test_extra_llc_latency_applies():
    from dataclasses import replace

    slow = replace(CONFIG, extra_llc_latency=6)
    a = core_cycles(load(llc=100), CONFIG, 170.0)
    b = core_cycles(load(llc=100), slow, 170.0)
    assert b - a == pytest.approx(600)


def test_resolve_epoch_low_traffic_uses_base_latency():
    cycles = resolve_epoch([load(dram=10)], epoch_bytes=640, config=CONFIG, dram=DRAM)
    expected = core_cycles(load(dram=10), CONFIG, 170.0)
    assert cycles[0] == pytest.approx(expected, rel=0.01)


def test_resolve_epoch_inflates_under_pressure():
    light = resolve_epoch([load(dram=100)], 100 * 64, CONFIG, DRAM)[0]
    # Same work, but with enormous co-running traffic on the bus.
    heavy = resolve_epoch([load(dram=100)], 100 * 64 * 200, CONFIG, DRAM)[0]
    assert heavy > light


def test_bandwidth_wall_floors_cycles():
    """Even a fully-covered epoch cannot beat bytes / bandwidth."""
    bytes_moved = 1_000_000
    cycles = resolve_epoch([load(instr=10, dram=0)], bytes_moved, CONFIG, DRAM)[0]
    assert cycles >= bytes_moved / CONFIG.dram_bandwidth_bytes_per_cycle - 1


def test_resolve_epoch_multicore_shares_bus():
    loads = [load(dram=500) for _ in range(8)]
    together = resolve_epoch(loads, 8 * 500 * 64, CONFIG, DRAM)
    alone = resolve_epoch([load(dram=500)], 500 * 64, CONFIG, DRAM)
    assert together[0] > alone[0]  # contention slows everyone


def test_resolve_epoch_empty():
    assert resolve_epoch([], 0, CONFIG, DRAM) == []
