"""Hierarchy with non-LRU LLC policies and multi-level interactions."""

import pytest

from repro.memory.hierarchy import CacheHierarchy
from repro.sim.config import MachineConfig
from repro.sim.single_core import simulate
from repro.workloads.irregular import chain_trace


@pytest.mark.parametrize("policy", ["lru", "srrip", "drrip", "hawkeye", "random"])
def test_hierarchy_runs_with_each_llc_policy(policy):
    h = CacheHierarchy(
        n_cores=1, l1_size=512, l1_ways=2, l2_size=1024, l2_ways=2,
        llc_size_per_core=4096, llc_ways=4, llc_policy=policy,
    )
    for line in range(300):
        h.access(0, 1, (line % 120) * 64)
    c = h.counters[0]
    assert c.accesses == 300
    assert c.accesses == c.l1_hits + c.l2_hits + c.llc_hits + c.dram_accesses


@pytest.mark.parametrize("policy", ["lru", "drrip", "hawkeye"])
def test_simulate_with_llc_policy(policy):
    from dataclasses import replace

    machine = replace(MachineConfig.scaled(16), llc_policy=policy)
    trace = chain_trace("p", 8_000, seed=1, hot_lines=1_000, cold_lines=1_000)
    result = simulate(trace, None, machine=machine)
    assert result.cycles > 0


def test_hawkeye_llc_beats_lru_on_scan_mixed_with_reuse():
    """Hawkeye's raison d'etre: protect the reused set from the scan."""
    from dataclasses import replace

    hot = [i * 64 for i in range(48)]
    accesses = []
    scan = 1000
    for _ in range(200):
        accesses.extend(hot)
        accesses.extend(range(scan * 64, (scan + 64) * 64, 64))
        scan += 64
    from repro.workloads.base import Trace

    trace = Trace("scanmix", [0x4] * len(accesses), accesses,
                  [False] * len(accesses))
    results = {}
    for policy in ("lru", "hawkeye"):
        machine = replace(
            MachineConfig.scaled(16), llc_policy=policy, l1_prefetcher="none"
        )
        results[policy] = simulate(trace, None, machine=machine)
    assert (
        results["hawkeye"].counters.dram_accesses
        <= results["lru"].counters.dram_accesses
    )
