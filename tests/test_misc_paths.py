"""Coverage for less-travelled paths across modules."""

import pytest

from repro.core.metadata_store import MetadataStore
from repro.core.partition import PartitionController
from repro.memory.cache import Cache
from repro.replacement.lru import LruPolicy
from repro.replacement.optgen import OptGen
from repro.workloads.base import Trace, interleave


def test_interleave_weights_hints_by_length():
    a = Trace("a", [1] * 3, [64] * 3, [False] * 3, mlp=1.0, instr_per_access=2.0)
    b = Trace("b", [2] * 1, [128], [False], mlp=5.0, instr_per_access=6.0)
    merged = interleave([a, b])
    assert merged.mlp == pytest.approx((1.0 * 3 + 5.0 * 1) / 4)
    assert merged.instr_per_access == pytest.approx((2.0 * 3 + 6.0) / 4)


def test_interleave_majority_category():
    a = Trace("a", [1] * 2, [64] * 2, [False] * 2, category="server")
    b = Trace("b", [2], [128], [False], category="regular")
    assert interleave([a, b]).category == "server"


def test_trace_head_keeps_hints():
    trace = Trace("t", [1, 2], [64, 128], [False, True], mlp=3.0,
                  instr_per_access=7.0, metadata={"k": 1})
    head = trace.head(1)
    assert head.mlp == 3.0
    assert head.instr_per_access == 7.0
    assert head.metadata == {"k": 1}


def test_optgen_prune_keeps_correctness():
    og = OptGen(2, history_mult=2)  # window 4, prune threshold small
    for i in range(200):
        og.access(i)  # floods last-access map, triggers pruning
    og.access(199)
    assert og.hits >= 1  # the most recent key still hits


def test_cache_accepts_policy_instance():
    policy = LruPolicy(16, 2)
    cache = Cache("inst", 2048, 2, policy=policy)
    assert cache.policy is policy
    cache.fill(1)
    assert cache.access(1).hit


def test_metadata_store_lru_observe_is_noop():
    store = MetadataStore(capacity_bytes=4096, policy="lru")
    store.observe_access(1, 2)  # no Hawkeye sampler: must not raise
    store.record_prefetch_outcome(1, 2, redundant=False)


def test_partition_decision_changed_flag():
    ctl = PartitionController(
        capacities=(0, 2048, 4096), epoch_accesses=100,
        sample_shift=0, warmup_epochs=0, start_index=1,
    )
    decisions = []
    for i in range(600):
        d = ctl.note_access(i)  # no reuse: will shrink
        if d:
            decisions.append(d)
    changed = [d for d in decisions if d.changed]
    assert changed, "shrinking should be reported as a change"
    assert changed[0].capacity_bytes < 2048 or changed[0].capacity_bytes == 0


def test_store_pair_stability_bounds():
    store = MetadataStore(capacity_bytes=8192)
    assert store.pair_stability() == 1.0  # no evidence yet
    for i in range(200):
        store.update(5, 100)  # agreements
    assert store.pair_stability() == 1.0
    for i in range(400):
        store.update(5, 100 + i)  # conflicts
    assert store.pair_stability() < 0.5
