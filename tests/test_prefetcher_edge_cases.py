"""Edge-case tests across the prefetcher zoo."""

from repro.prefetchers.best_offset import BestOffsetPrefetcher
from repro.prefetchers.isb import STREAM_GRANULE, IsbPrefetcher
from repro.prefetchers.misb import MisbPrefetcher
from repro.prefetchers.sms import SmsPrefetcher
from repro.prefetchers.stms import StmsPrefetcher


def feed(pf, pc, lines):
    return [[c.line for c in pf.observe(pc, line)] for line in lines]


def test_isb_stream_boundary_not_crossed():
    pf = IsbPrefetcher(degree=4)
    chain = list(range(1000, 1000 + STREAM_GRANULE + 8))
    feed(pf, 0xA, chain)
    # Probe the element just before the granule boundary: the structural
    # walk must stop there rather than wander into a foreign stream.
    probe = chain[STREAM_GRANULE - 3]
    struct = pf._ps[probe]
    candidates = feed(pf, 0xB, [probe])[-1]
    max_walk = STREAM_GRANULE - (struct % STREAM_GRANULE) - 1
    assert len(candidates) <= max(0, min(4, max_walk))


def test_isb_long_chain_spans_multiple_granules():
    pf = IsbPrefetcher(degree=1)
    chain = list(range(5000, 5000 + 2 * STREAM_GRANULE))
    feed(pf, 0xA, chain)
    results = feed(pf, 0xA, chain)
    predicted = sum(1 for r in results if r)
    # All but the per-granule boundary elements predict.
    assert predicted >= len(chain) - 2 * (len(chain) // STREAM_GRANULE) - 2


def test_misb_offchip_metadata_persists_across_evictions():
    pf = MisbPrefetcher(onchip_bytes=256)
    chain = [x * 977 for x in range(500)]
    feed(pf, 0xA, chain)
    feed(pf, 0xA, chain)
    before = pf.metadata_dram_accesses
    feed(pf, 0xA, chain)
    # Third pass still pays off-chip reads (tiny cache, big footprint)
    # but predictions work: the mappings were never lost.
    assert pf.metadata_dram_accesses > before
    third = feed(pf, 0xA, chain[:10])
    assert any(third)


def test_bo_negative_offset_protection():
    pf = BestOffsetPrefetcher(degree=1, offsets=[1])
    # Tiny line addresses: candidates must never go negative.
    for line in range(5):
        for c in pf.observe(0, line):
            assert c.line >= 0


def test_stms_degree_capped_by_history_tail():
    pf = StmsPrefetcher(degree=8)
    feed(pf, 0, [1, 2, 3])
    result = feed(pf, 0, [2])[-1]
    assert result == [3]  # only one successor exists


def test_sms_region_reentry_uses_fresh_filter_entry():
    pf = SmsPrefetcher(filter_entries=2, accumulation_entries=2)
    rl = pf.region_lines
    pf.observe(0xA, 0)          # region 0 enters the filter
    pf.observe(0xA, 1 * rl)     # region 1
    pf.observe(0xA, 2 * rl)     # region 2 evicts region 0's filter entry
    # Region 0 again: treated as a fresh first access, not a promotion.
    pf.observe(0xA, 1)
    assert 0 in pf._filter or 0 in pf._accumulation