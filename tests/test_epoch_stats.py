"""Regression tests for epoch statistics.

Two historical bugs are pinned here:

* the per-epoch ``coverage`` column was computed from cumulative
  counters, so every row reported the running average instead of the
  epoch's own coverage;
* warmup epochs were resolved and sampled like measured ones, polluting
  the epoch time-series and leaving warmup entries in ``dram.epoch_log``
  (which ``_register_dram_metrics`` folds into the session registry).
"""

from repro.obs import ObsSession
from repro.sim.config import MachineConfig
from repro.sim.multi_core import simulate_multicore
from repro.sim.single_core import simulate
from repro.workloads.base import HEAP_BASE, Trace, pc_of


def _trace(addr_lines, name="t"):
    n = len(addr_lines)
    return Trace(
        name=name,
        pcs=[pc_of(0)] * n,
        addrs=[HEAP_BASE + line * 64 for line in addr_lines],
        writes=[False] * n,
    )


def _machine():
    # Small caches so a modest stream actually misses; no L1 prefetcher
    # so coverage is entirely the L2 prefetcher's.
    return MachineConfig.scaled(factor=4, l1_prefetcher="none")


def test_epoch_coverage_is_per_epoch_not_cumulative():
    # Phase 1: a sequential stream the stride prefetcher covers well.
    # Phase 2: a 16-line hot loop -- every access hits L1, so each late
    # epoch has neither prefetch hits nor L2 misses and its *own*
    # coverage is exactly 0, while the cumulative ratio stays high.
    lines = list(range(30_000)) + [30_000 + (i % 16) for i in range(30_000)]
    session = ObsSession()
    result = simulate(
        _trace(lines, name="phase-shift"),
        "stride",
        machine=_machine(),
        epoch_accesses=5_000,
        obs=session,
    )
    coverages = [row["coverage"] for row in session.sampler.rows]
    c = result.counters
    cumulative = c.l2_prefetch_hits / (c.l2_prefetch_hits + c.l2_demand_misses)
    assert cumulative > 0.2  # sanity: phase 1 was genuinely covered
    assert max(coverages[:6]) > 0.2  # streaming epochs show their coverage
    assert coverages[-1] == 0.0  # hot-loop epochs show theirs, not the average


def test_warmup_run_reports_only_measured_epochs():
    session = ObsSession()
    simulate(
        _trace(list(range(30_000)), name="stream"),
        "stride",
        machine=_machine(),
        epoch_accesses=5_000,
        warmup_accesses=10_000,
        obs=session,
    )
    rows = session.sampler.rows
    # 20k measured accesses / 5k per epoch; warmup epochs must not appear.
    assert len(rows) == 4
    assert [row["epoch"] for row in rows] == [0, 1, 2, 3]
    # access_idx counts from the warmup boundary, never into the warmup.
    assert all(row["access_idx"] <= 20_000 for row in rows)
    # The folded DRAM queue penalty covers exactly the sampled epochs --
    # no warmup entries left behind in dram.epoch_log.
    folded = session.registry.counter("dram.queue_penalty_cycles").value
    assert folded == int(sum(r["dram_queue_penalty_cycles"] for r in rows))


def test_warmup_multicore_reports_only_measured_epochs():
    traces = [_trace(list(range(20_000)), name=f"s{i}") for i in range(2)]
    session = ObsSession()
    simulate_multicore(
        traces,
        "stride",
        machine=MachineConfig.multi_core(2, l1_prefetcher="none"),
        accesses_per_core=12_000,
        epoch_accesses=4_000,
        warmup_accesses_per_core=8_000,
        obs=session,
    )
    rows = session.sampler.rows
    assert len(rows) == 3  # 12k measured steps / 4k per epoch
    assert [row["epoch"] for row in rows] == [0, 1, 2]
    folded = session.registry.counter("dram.queue_penalty_cycles").value
    assert folded == int(sum(r["dram_queue_penalty_cycles"] for r in rows))
