"""Unit tests for the Markov prefetcher."""

from repro.prefetchers.markov import MarkovPrefetcher


def feed(pf, lines):
    return [[c.line for c in pf.observe(0, line)] for line in lines]


def test_learns_global_successors():
    pf = MarkovPrefetcher(degree=1)
    feed(pf, [1, 2, 3, 1])
    assert feed(pf, [9])[-1] == []  # 9 never seen as trigger... trains (1,9)
    assert feed(pf, [2])[-1] == [3]


def test_most_recent_successor_first():
    pf = MarkovPrefetcher(degree=2)
    feed(pf, [1, 2, 1, 3, 1])
    # Observing 0 trains (1 -> 0); 1's successors are now [0, 3, 2] and
    # the next query returns the two most recent.
    assert feed(pf, [0, 1])[-1] == [0, 3]


def test_successor_list_caps():
    pf = MarkovPrefetcher(degree=8, successors_per_entry=2)
    feed(pf, [1, 2, 1, 3, 1, 4, 1, 5, 1])
    candidates = feed(pf, [0, 1])[-1]
    assert len(candidates) <= 2


def test_table_capacity_lru():
    pf = MarkovPrefetcher(degree=1, table_entries=2)
    feed(pf, [1, 2, 3, 4])  # pairs (1,2),(2,3),(3,4) but only 2 entries
    assert len(pf._table) <= 2


def test_self_loop_not_recorded():
    pf = MarkovPrefetcher(degree=1)
    feed(pf, [1, 1, 1])
    assert feed(pf, [1])[-1] == []
