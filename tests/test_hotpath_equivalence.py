"""Hot-path equivalence goldens: the optimized engine must be bit-identical.

PR 5 rewrote the cache fill/replacement hot path (free-way freelist,
policy-owned ``victim()``, ``__slots__`` records).  These goldens were
generated from the *pre-optimization* engine, so any numeric drift here
means the fast path changed simulation semantics -- exactly what the
rewrite promised not to do.

The committed golden covers the full :class:`SimulationResult` surface
(cycles, every counter, per-category traffic, metadata accesses and the
dynamic-partition history) for a grid of representative configurations:
the pure-LRU demand path, a best-offset run, and Triage with both a
fixed and a dynamically partitioned Hawkeye metadata store.

Regenerate (only when a change alters results *intentionally*) with::

    PYTHONPATH=src python tests/test_hotpath_equivalence.py --regen
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import asdict
from pathlib import Path

import pytest

from repro import cache
from repro.experiments import common

GOLDEN_PATH = Path(__file__).resolve().parent / "goldens" / "simresult_hotpath.json"

#: Short traces keep the grid under a few seconds yet long enough to
#: exercise warmup, epoch rollover, LLC eviction pressure and at least
#: one dynamic-partition decision.
N_ACCESSES = 12_000

#: (benchmark, prefetcher) cells; all use the default LRU LLC plus (for
#: the Triage rows) the Hawkeye-managed metadata store.
CELLS = [
    ("mcf", "none"),
    ("mcf", "bo"),
    ("mcf", "triage_1mb"),
    ("mcf", "triage_dynamic"),
    ("omnetpp", "triage_dynamic"),
]

REL_TOL = 1e-12  # bit-identical up to float formatting in JSON


def result_fingerprint(result) -> dict:
    """Every numeric field of a SimulationResult, JSON-friendly."""
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "counters": asdict(result.counters),
        "traffic": dict(result.traffic),
        "metadata_llc_accesses": result.metadata_llc_accesses,
        "metadata_dram_accesses": result.metadata_dram_accesses,
        "final_metadata_capacity": result.final_metadata_capacity,
        "partition_history": list(result.partition_history),
    }


def compute_grid() -> dict:
    common.clear_caches()
    try:
        return {
            f"{bench}/{pf}": result_fingerprint(
                common.run_single(bench, pf, n=N_ACCESSES)
            )
            for bench, pf in CELLS
        }
    finally:
        common.clear_caches()


def assert_cell_equal(got: dict, want: dict, where: str) -> None:
    assert set(got) == set(want), f"{where}: field set changed"
    for key, want_value in want.items():
        got_value = got[key]
        if isinstance(want_value, dict):
            assert set(got_value) == set(want_value), f"{where}.{key}: keys changed"
            for sub, want_sub in want_value.items():
                assert math.isclose(
                    got_value[sub], want_sub, rel_tol=REL_TOL, abs_tol=0.0
                ), f"{where}.{key}.{sub}: {got_value[sub]!r} != {want_sub!r}"
        elif isinstance(want_value, list):
            assert got_value == want_value, f"{where}.{key}: {got_value!r} != {want_value!r}"
        elif isinstance(want_value, float):
            assert math.isclose(
                got_value, want_value, rel_tol=REL_TOL, abs_tol=0.0
            ), f"{where}.{key}: {got_value!r} != {want_value!r}"
        else:
            assert got_value == want_value, f"{where}.{key}: {got_value!r} != {want_value!r}"


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    cache.configure(None)
    yield
    cache.configure(None)


def test_simulation_results_match_pre_optimization_golden():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["n_accesses"] == N_ACCESSES
    grid = compute_grid()
    assert set(grid) == set(golden["cells"]), "cell grid changed; regenerate"
    for cell, want in golden["cells"].items():
        assert_cell_equal(grid[cell], want, cell)


def regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    payload = {"n_accesses": N_ACCESSES, "cells": compute_grid()}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(payload['cells'])} cells)")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
        sys.exit(2)
