"""Tests for the prefetcher factory."""

import pytest

from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.prefetchers import (
    BasePrefetcher,
    BestOffsetPrefetcher,
    HybridPrefetcher,
    MisbPrefetcher,
    SmsPrefetcher,
)
from repro.prefetchers.triangel import TriangelConfig, TriangelPrefetcher
from repro.sim.factory import is_registered, make_prefetcher


def test_none_specs():
    assert make_prefetcher(None) is None
    assert make_prefetcher("none") is None
    assert make_prefetcher("") is None


def test_simple_names():
    assert isinstance(make_prefetcher("bo"), BestOffsetPrefetcher)
    assert isinstance(make_prefetcher("sms"), SmsPrefetcher)
    assert isinstance(make_prefetcher("misb"), MisbPrefetcher)


def test_degree_propagates():
    pf = make_prefetcher("bo", degree=4)
    assert pf.degree == 4


def test_triage_variants():
    pf = make_prefetcher("triage_512kb")
    assert isinstance(pf, TriagePrefetcher)
    assert pf.metadata_capacity_bytes == 512 * 1024
    dyn = make_prefetcher("triage_dynamic")
    assert dyn.controller is not None
    lru = make_prefetcher("triage_lru")
    assert lru.config.replacement == "lru"
    ideal = make_prefetcher("triage_ideal")
    assert ideal.store.unbounded


def test_triangel_variants():
    pf = make_prefetcher("triangel")
    assert isinstance(pf, TriangelPrefetcher)
    assert pf.config.replacement == "reuse"
    assert make_prefetcher("triangel_512kb").metadata_capacity_bytes == 512 * 1024
    assert make_prefetcher("triangel_dynamic").controller is not None
    degen = make_prefetcher("triangel_nosample")
    assert degen.config.sampling is False
    assert degen.config.lookahead == 1
    assert degen.config.replacement == "hawkeye"


def test_triangel_config_builds_triangel_not_triage():
    """Subclass dispatch: a TriangelConfig must never silently build the
    parent TriagePrefetcher (isinstance order in the factory)."""
    pf = make_prefetcher(TriangelConfig(metadata_capacity=4096))
    assert type(pf) is TriangelPrefetcher
    assert type(make_prefetcher(TriageConfig(metadata_capacity=4096))) is (
        TriagePrefetcher
    )


def test_is_registered():
    assert is_registered("triangel")
    assert is_registered("triage_1mb")
    assert is_registered("bo+triangel_dynamic")
    assert is_registered("none")
    assert is_registered("")
    assert not is_registered("teleporting_prefetcher")
    assert not is_registered("bo+teleporting_prefetcher")
    assert not is_registered("+")
    assert not is_registered(42)


def test_hybrid_parsing():
    pf = make_prefetcher("bo+triage")
    assert isinstance(pf, HybridPrefetcher)
    assert pf.name == "bo+triage"
    assert len(pf.components) == 2


def test_instance_passthrough():
    instance = BestOffsetPrefetcher()
    assert make_prefetcher(instance) is instance


def test_triage_config_passthrough():
    pf = make_prefetcher(TriageConfig(metadata_capacity=4096))
    assert isinstance(pf, TriagePrefetcher)


def test_callable_factory():
    pf = make_prefetcher(lambda: BestOffsetPrefetcher())
    assert isinstance(pf, BestOffsetPrefetcher)
    assert make_prefetcher(lambda: None) is None


def test_callable_returning_junk_rejected():
    with pytest.raises(TypeError):
        make_prefetcher(lambda: 42)


def test_unknown_name_rejected():
    with pytest.raises(ValueError):
        make_prefetcher("teleporting_prefetcher")


def test_non_string_spec_rejected():
    with pytest.raises(TypeError):
        make_prefetcher(3.14)
