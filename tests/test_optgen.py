"""Unit tests for OPTgen."""

import pytest

from repro.replacement.optgen import OptGen


def test_first_access_is_compulsory():
    og = OptGen(4)
    assert og.access(1) is None
    assert og.compulsory == 1


def test_reuse_within_capacity_hits():
    og = OptGen(4)
    og.access(1)
    assert og.access(1) is True
    assert og.hits == 1


def test_cycling_beyond_capacity_misses_partially():
    """Cycling over 2x capacity keys: OPT keeps exactly `capacity` of
    them, so the steady-state hit rate is 1/2."""
    og = OptGen(4)
    for _ in range(50):
        for key in range(8):
            og.access(key)
    assert og.demand_hit_rate() == pytest.approx(0.5, abs=0.05)


def test_capacity_covers_everything():
    og = OptGen(16)
    for _ in range(10):
        for key in range(8):
            og.access(key)
    assert og.misses == 0
    assert og.hits == 72


def test_window_expires_old_accesses():
    og = OptGen(2, history_mult=2)  # window of 4
    og.access(1)
    for key in range(100, 120):
        og.access(key)
    # 1's previous access fell out of the window: compulsory again.
    assert og.access(1) is None


def test_occupancy_blocks_overlapping_intervals():
    """Two long overlapping intervals cannot both hit at capacity 1."""
    og = OptGen(1)
    og.access(1)
    og.access(2)
    assert og.access(1) is True  # occupies [t0, t2)
    assert og.access(2) is False  # interval [t1, t3) crosses full quantum


def test_hit_rate_definitions():
    og = OptGen(4)
    assert og.hit_rate() == 0.0
    og.access(1)
    og.access(1)
    assert og.hit_rate() == pytest.approx(0.5)
    assert og.demand_hit_rate() == pytest.approx(1.0)


def test_reset_stats_keeps_state():
    og = OptGen(4)
    og.access(1)
    og.reset_stats()
    assert og.accesses == 0
    assert og.access(1) is True  # history retained


def test_bad_capacity_rejected():
    with pytest.raises(ValueError):
        OptGen(0)


def test_larger_capacity_never_hits_less():
    import random

    rnd = random.Random(7)
    keys = [rnd.randrange(40) for _ in range(2000)]
    small, large = OptGen(8), OptGen(16)
    for key in keys:
        small.access(key)
        large.access(key)
    assert large.hits >= small.hits
