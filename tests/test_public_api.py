"""Public-API hygiene: exports resolve, top level works, docs exist."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.experiments",
    "repro.memory",
    "repro.prefetchers",
    "repro.replacement",
    "repro.sim",
    "repro.sim.queued",
    "repro.workloads",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_packages_are_documented(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_top_level_quickstart_surface():
    import repro

    assert callable(repro.simulate)
    assert callable(repro.simulate_multicore)
    assert repro.TriageConfig is not None
    assert repro.MachineConfig is not None
    assert repro.__version__


def test_top_level_round_trip():
    from repro import MachineConfig, TriageConfig, simulate
    from repro.workloads import spec

    trace = spec.make_trace("mcf", n_accesses=3_000, seed=1, scale=16)
    machine = MachineConfig.scaled(16)
    config = TriageConfig(
        metadata_capacity=16 * 1024, capacities=(0, 8 * 1024, 16 * 1024)
    )
    result = simulate(trace, config, machine=machine)
    assert result.cycles > 0
