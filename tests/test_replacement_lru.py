"""Unit tests for LRU / Random / SRRIP replacement.

``victim()`` follows the allocation-free contract: the policy picks from
its own per-way state over ways ``0..num_ways-1`` (the owner guarantees
the set is full), with ties breaking toward the lowest way.
"""

import random

from repro.replacement.lru import LruPolicy
from repro.replacement.random_policy import RandomPolicy
from repro.replacement.srrip import SrripPolicy


def test_lru_victims_oldest():
    lru = LruPolicy(1, 4)
    for way in range(4):
        lru.on_fill(0, way)
    assert lru.victim(0) == 0
    lru.on_hit(0, 0)
    assert lru.victim(0) == 1


def test_lru_eviction_resets_recency():
    lru = LruPolicy(1, 2)
    lru.on_fill(0, 0)
    lru.on_fill(0, 1)
    lru.on_evict(0, 0)
    lru.on_fill(0, 0)
    assert lru.victim(0) == 1


def test_lru_ties_break_toward_lowest_way():
    lru = LruPolicy(1, 4)
    lru.on_fill(0, 0)  # ways 1..3 share the never-touched timestamp
    assert lru.victim(0) == 1
    lru.on_fill(0, 1)
    assert lru.victim(0) == 2


def test_lru_resize_grows():
    lru = LruPolicy(2, 2)
    lru.on_fill(0, 0)
    lru.resize_ways(4)
    lru.on_fill(0, 3)
    # Ways 1 and 2 were never touched; the tie breaks to way 1.
    assert lru.victim(0) == 1
    lru.on_fill(0, 1)
    lru.on_fill(0, 2)
    assert lru.victim(0) == 0


def test_lru_resize_shrink_truncates_recency():
    lru = LruPolicy(1, 4)
    for way in range(4):
        lru.on_fill(0, way)
    lru.on_hit(0, 0)
    lru.on_hit(0, 1)  # ways 2 and 3 are now the stalest
    lru.resize_ways(2)
    # Victims must come from the surviving ways: without truncation the
    # (staler) timestamps of disabled ways 2/3 would win the min.
    assert lru.victim(0) == 0


def test_lru_shrink_then_grow_forgets_stale_timestamps():
    lru = LruPolicy(1, 4)
    for way in range(4):
        lru.on_fill(0, way)
    lru.on_hit(0, 2)
    lru.on_hit(0, 3)  # ways 2 and 3 most recently used
    lru.resize_ways(2)
    lru.resize_ways(4)
    # Re-enabled ways come back as never-touched; their pre-shrink
    # timestamps must not resurface as fake recency.
    assert lru.victim(0) == 2


def test_random_is_deterministic_and_in_range():
    rnd1 = RandomPolicy(4, 4)
    rnd2 = RandomPolicy(4, 4)
    picks1 = [rnd1.victim(0) for _ in range(20)]
    picks2 = [rnd2.victim(0) for _ in range(20)]
    assert picks1 == picks2
    assert set(picks1) <= {0, 1, 2, 3}


def test_lru_victim_matches_reference_scan():
    """Randomized agreement with the pre-optimization victim scan.

    The old hot path computed ``min(candidates, key=lambda w: touch[w])``
    over the occupied ways in ascending order; the optimized
    ``index(min(...))`` form must pick the identical way on every state,
    including ties between never-touched (or evicted) ways.
    """
    rng = random.Random(1234)
    for _ in range(50):
        ways = rng.choice([2, 4, 8, 16])
        lru = LruPolicy(4, ways)
        for _ in range(200):
            op = rng.random()
            set_idx = rng.randrange(4)
            way = rng.randrange(ways)
            if op < 0.45:
                lru.on_fill(set_idx, way)
            elif op < 0.8:
                lru.on_hit(set_idx, way)
            else:
                lru.on_evict(set_idx, way)  # resets to -1: creates ties
            touches = lru._last_touch[set_idx]
            reference = min(range(ways), key=lambda w: touches[w])
            assert lru.victim(set_idx) == reference


def test_srrip_hit_promotes():
    srrip = SrripPolicy(1, 2)
    srrip.on_fill(0, 0)
    srrip.on_fill(0, 1)
    srrip.on_hit(0, 0)
    # Way 1 still has the long re-reference interval; way 0 was promoted.
    assert srrip.victim(0) == 1


def test_srrip_ages_until_victim_found():
    srrip = SrripPolicy(1, 2)
    srrip.on_fill(0, 0)
    srrip.on_hit(0, 0)
    srrip.on_fill(0, 1)
    assert srrip.victim(0) == 1  # inserted at max-1, ages to max before way 0


def test_srrip_scan_resistance():
    """A one-time scan should not displace a re-referenced line."""
    srrip = SrripPolicy(1, 4)
    srrip.on_fill(0, 0)
    srrip.on_hit(0, 0)  # hot line at RRPV 0
    for way in (1, 2, 3):
        srrip.on_fill(0, way)  # scan fills at distant RRPV
    assert srrip.victim(0) != 0
