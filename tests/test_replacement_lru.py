"""Unit tests for LRU / Random / SRRIP replacement."""

from repro.replacement.lru import LruPolicy
from repro.replacement.random_policy import RandomPolicy
from repro.replacement.srrip import SrripPolicy


def test_lru_victims_oldest():
    lru = LruPolicy(1, 4)
    for way in range(4):
        lru.on_fill(0, way)
    assert lru.victim(0, [0, 1, 2, 3]) == 0
    lru.on_hit(0, 0)
    assert lru.victim(0, [0, 1, 2, 3]) == 1


def test_lru_eviction_resets_recency():
    lru = LruPolicy(1, 2)
    lru.on_fill(0, 0)
    lru.on_fill(0, 1)
    lru.on_evict(0, 0)
    lru.on_fill(0, 0)
    assert lru.victim(0, [0, 1]) == 1


def test_lru_candidate_restriction():
    lru = LruPolicy(1, 4)
    for way in range(4):
        lru.on_fill(0, way)
    # Way 0 is oldest overall but excluded from candidates.
    assert lru.victim(0, [2, 3]) == 2


def test_lru_resize_grows():
    lru = LruPolicy(2, 2)
    lru.on_fill(0, 0)
    lru.resize_ways(4)
    lru.on_fill(0, 3)
    assert lru.victim(0, [0, 3]) == 0


def test_random_is_deterministic_and_in_candidates():
    rnd1 = RandomPolicy(4, 4)
    rnd2 = RandomPolicy(4, 4)
    picks1 = [rnd1.victim(0, [1, 2, 3]) for _ in range(20)]
    picks2 = [rnd2.victim(0, [1, 2, 3]) for _ in range(20)]
    assert picks1 == picks2
    assert set(picks1) <= {1, 2, 3}


def test_srrip_hit_promotes():
    srrip = SrripPolicy(1, 2)
    srrip.on_fill(0, 0)
    srrip.on_fill(0, 1)
    srrip.on_hit(0, 0)
    # Way 1 still has the long re-reference interval; way 0 was promoted.
    assert srrip.victim(0, [0, 1]) == 1


def test_srrip_ages_until_victim_found():
    srrip = SrripPolicy(1, 2)
    srrip.on_fill(0, 0)
    srrip.on_hit(0, 0)
    srrip.on_fill(0, 1)
    victim = srrip.victim(0, [0, 1])
    assert victim == 1  # inserted at max-1, ages to max before way 0


def test_srrip_scan_resistance():
    """A one-time scan should not displace a re-referenced line."""
    srrip = SrripPolicy(1, 4)
    srrip.on_fill(0, 0)
    srrip.on_hit(0, 0)  # hot line at RRPV 0
    for way in (1, 2, 3):
        srrip.on_fill(0, way)  # scan fills at distant RRPV
    assert srrip.victim(0, [0, 1, 2, 3]) != 0
