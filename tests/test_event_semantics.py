"""Semantics of HierarchyEvent and the training-stream contract."""

from repro.memory.hierarchy import CacheHierarchy, HierarchyEvent


def test_event_training_stream_membership():
    assert HierarchyEvent(0, 0, 0, "llc").trains_l2_prefetcher
    assert HierarchyEvent(0, 0, 0, "dram").trains_l2_prefetcher
    assert not HierarchyEvent(0, 0, 0, "l1").trains_l2_prefetcher
    assert not HierarchyEvent(0, 0, 0, "l2").trains_l2_prefetcher
    assert HierarchyEvent(0, 0, 0, "l2", prefetch_hit_kind="l2").trains_l2_prefetcher
    assert HierarchyEvent(0, 0, 0, "l2", prefetch_hit_kind="l1").trains_l2_prefetcher


def test_event_l2_prefetch_hit_property():
    assert HierarchyEvent(0, 0, 0, "l2", prefetch_hit_kind="l2").l2_prefetch_hit
    assert not HierarchyEvent(0, 0, 0, "l2", prefetch_hit_kind="l1").l2_prefetch_hit
    assert not HierarchyEvent(0, 0, 0, "l2").l2_prefetch_hit


def test_training_stream_sequence_matches_paper_figure4():
    """Fig 4: the prefetcher sees L2 misses and L2 prefetch hits, and
    nothing else."""
    h = CacheHierarchy(
        n_cores=1, l1_size=512, l1_ways=2, l2_size=2048, l2_ways=2,
        llc_size_per_core=8192, llc_ways=4,
    )
    observed = []
    # Distinct L2 sets so fills never evict the prefetched line.
    script = [0x1000, 0x1000, 0x2040, 0x1000]
    h.prefetch(0, line=0x3080 >> 6, kind="l2")
    script.append(0x3080)
    for addr in script:
        event = h.access(0, 1, addr)
        if event.trains_l2_prefetcher:
            observed.append((event.line, event.hit_level, event.prefetch_hit_kind))
    # Miss on 0x1000, miss on 0x2040, prefetch-hit on 0x3080; the L1 hit
    # on the second 0x1000 and the L1/L2 re-hit never train.
    assert (0x1000 >> 6, "dram", None) in observed
    assert (0x2040 >> 6, "dram", None) in observed
    assert any(line == 0x3080 >> 6 and kind == "l2" for line, _, kind in observed)
    assert len(observed) == 3
