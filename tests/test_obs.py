"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro import obs
from repro.core.triage import TriageConfig
from repro.obs.events import TraceEventStream
from repro.obs.manifest import (
    RUN_LOG,
    RunManifest,
    build_manifest,
    drain_run_log,
)
from repro.obs.profiling import PhaseTimer
from repro.obs.registry import (
    NULL_INSTRUMENT,
    Counter,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import load_run_dir, render_report
from repro.obs.sampler import EpochSampler
from repro.sim.config import MachineConfig
from repro.sim.single_core import simulate
from repro.workloads.irregular import chain_trace

KB = 1024
MACHINE = MachineConfig.scaled(16)

#: The only traffic categories a result may carry, obs on or off.
TRAFFIC_CATEGORIES = {"demand", "prefetch", "writeback", "metadata"}


@pytest.fixture(autouse=True)
def _no_global_session():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


def small_trace(n=12_000, seed=1):
    trace = chain_trace(
        "chain", n, seed,
        hot_lines=3_000, cold_lines=3_000, hot_fraction=0.8,
        noise=0.0, sequential_frac=0.0,
    )
    trace.metadata["seed"] = seed
    return trace


def triage_cfg():
    return TriageConfig(
        dynamic=True,
        capacities=(0, 16 * KB, 32 * KB),
        epoch_accesses=2_000,
        partition_warmup_epochs=1,
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("triage.meta_store.evictions")
        b = reg.counter("triage.meta_store.evictions")
        assert a is b
        a.inc(3)
        assert reg.as_dict() == {"triage.meta_store.evictions": 3}

    def test_rejects_bad_names(self):
        reg = MetricsRegistry()
        for bad in ("", "Upper.case", "double..dot", ".lead", "trail.", "sp ace"):
            with pytest.raises(ValueError, match="bad metric name"):
                reg.counter(bad)

    def test_rejects_type_conflict(self):
        reg = MetricsRegistry()
        reg.counter("dram.accesses")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("dram.accesses")

    def test_names_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("triage.meta_store.hits")
        reg.counter("triage.partition.changes")
        reg.gauge("dram.utilization")
        assert reg.names("triage") == [
            "triage.meta_store.hits",
            "triage.partition.changes",
        ]
        # "tri" is not a dotted segment boundary.
        assert reg.names("tri") == []

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(5)
        reg.gauge("a.g").set(2.5)
        reg.reset()
        assert len(reg) == 2
        assert reg.as_dict() == {"a.b": 0, "a.g": 0.0}

    def test_disabled_registry_hands_out_nulls(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x.y")
        assert c is NULL_INSTRUMENT
        c.inc(10)
        c.set(3)
        c.observe(7)
        assert c.dump() == 0
        assert len(reg) == 0
        assert reg.as_dict() == {}


class TestHistogram:
    def test_log2_bucketing(self):
        h = Histogram("h")
        for v in (0, 1, 2, 3, 4, 7, 8, 1023):
            h.observe(v)
        dump = h.dump()
        # bucket upper bounds: 0 -> zeros, 1 -> {1}, 3 -> {2,3}, 7 -> {4..7}
        assert dump["buckets"] == {"0": 1, "1": 1, "3": 2, "7": 2, "15": 1, "1023": 1}
        assert dump["count"] == 8
        assert h.mean == pytest.approx(sum((0, 1, 2, 3, 4, 7, 8, 1023)) / 8)

    def test_overflow_lands_in_last_bucket(self):
        h = Histogram("h", buckets=4)
        h.observe(10**9)
        assert h.counts[-1] == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Histogram("h").observe(-1)


# ---------------------------------------------------------------------------
# trace events
# ---------------------------------------------------------------------------


class TestEvents:
    def test_severity_floor(self):
        stream = TraceEventStream(min_severity="info")
        assert not stream.emit("meta_store.evict", "debug")
        assert stream.emit("partition.decision", "info")
        assert stream.filtered == 1
        assert stream.emitted == 1

    def test_category_prefix_filter(self):
        stream = TraceEventStream(categories=["partition"])
        assert stream.emit("partition.decision")
        assert stream.emit("partition")
        assert not stream.emit("partitioning.other")
        assert not stream.emit("hawkeye.flip")
        assert len(stream) == 2

    def test_ring_is_bounded_but_counts_all(self):
        stream = TraceEventStream(capacity=4)
        for i in range(10):
            stream.emit("c", value=i)
        assert len(stream) == 4
        assert stream.emitted == 10
        assert [e.fields["value"] for e in stream.events()] == [6, 7, 8, 9]

    def test_unknown_severity_raises(self):
        with pytest.raises(ValueError, match="unknown severity"):
            TraceEventStream().emit("c", "fatal")

    def test_jsonl_round_trip(self, tmp_path):
        stream = TraceEventStream()
        stream.emit("partition.decision", "info", capacity_bytes=32768)
        path = stream.write_jsonl(tmp_path / "events.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == [
            {
                "seq": 0,
                "category": "partition.decision",
                "severity": "info",
                "capacity_bytes": 32768,
            }
        ]


# ---------------------------------------------------------------------------
# epoch sampler
# ---------------------------------------------------------------------------


class TestSampler:
    def test_sample_shape_and_columns(self):
        s = EpochSampler()
        s.sample(epoch=0, meta_ways=8)
        s.sample(epoch=1, meta_ways=4, coverage=0.5)
        assert len(s) == 2
        assert s.columns() == ["epoch", "meta_ways", "coverage"]
        assert s.column("coverage") == [None, 0.5]

    def test_probes_evaluated_per_sample(self):
        s = EpochSampler()
        box = {"v": 1}
        s.add_probe("probe", lambda: box["v"])
        s.sample(epoch=0)
        box["v"] = 2
        s.sample(epoch=1)
        assert s.column("probe") == [1, 2]
        with pytest.raises(ValueError, match="duplicate probe"):
            s.add_probe("probe", lambda: 0)

    def test_jsonl_and_csv_export(self, tmp_path):
        s = EpochSampler()
        s.sample(epoch=0, meta_ways=8)
        s.sample(epoch=1, meta_ways=4)
        rows = [
            json.loads(line)
            for line in s.to_jsonl(tmp_path / "e.jsonl").read_text().splitlines()
        ]
        assert rows == [{"epoch": 0, "meta_ways": 8}, {"epoch": 1, "meta_ways": 4}]
        csv_lines = s.to_csv(tmp_path / "e.csv").read_text().splitlines()
        assert csv_lines[0] == "epoch,meta_ways"
        assert csv_lines[1:] == ["0,8", "1,4"]


# ---------------------------------------------------------------------------
# manifests
# ---------------------------------------------------------------------------


class TestManifest:
    def test_round_trip_through_disk(self, tmp_path):
        manifest = build_manifest(
            kind="single",
            workloads=["mcf"],
            prefetcher="triage",
            config=MACHINE,
            seeds=[1],
            trace_length=1000,
            warmup=0,
            instructions=2000.0,
            cycles=5000.0,
            wall_time_s=0.1,
            extra={"engine": "analytic"},
        )
        drain_run_log()  # don't leak into other tests
        path = manifest.write(tmp_path / "manifest.json")
        back = RunManifest.read(path)
        assert back == manifest
        assert back.config["llc_size_per_core"] == MACHINE.llc_size_per_core
        assert back.extra["engine"] == "analytic"

    def test_from_dict_routes_unknown_keys_to_extra(self):
        m = RunManifest.from_dict(
            {"kind": "single", "workloads": ["x"], "prefetcher": "none",
             "config": {}, "future_field": 42}
        )
        assert m.extra == {"future_field": 42}

    def test_run_log_is_drained(self):
        drain_run_log()
        build_manifest(
            kind="single", workloads=["a"], prefetcher="none", config={},
            seeds=[], trace_length=0, warmup=0, instructions=0,
            cycles=0, wall_time_s=0,
        )
        assert len(RUN_LOG) == 1
        drained = drain_run_log()
        assert [m.workloads for m in drained] == [["a"]]
        assert len(RUN_LOG) == 0


# ---------------------------------------------------------------------------
# profiling
# ---------------------------------------------------------------------------


class TestProfiling:
    def test_phase_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("trace_gen"):
            pass
        timer.add("l2_stream", 1.5, calls=10)
        timer.add("l2_stream", 0.5, calls=5)
        assert timer.calls["l2_stream"] == 15
        assert timer.seconds["l2_stream"] == pytest.approx(2.0)
        assert timer.total_seconds >= 2.0
        table = timer.table()
        assert "l2_stream" in table and "trace_gen" in table


# ---------------------------------------------------------------------------
# simulator integration
# ---------------------------------------------------------------------------


class TestSimulatorIntegration:
    def test_disabled_path_adds_no_keys(self):
        trace = small_trace()
        result = simulate(trace, triage_cfg(), machine=MACHINE)
        # Hot-path dicts keep exactly the standard categories.
        assert set(result.traffic) == TRAFFIC_CATEGORIES
        # The manifest is always attached (provenance is free).
        assert result.manifest is not None
        assert result.manifest.kind == "single"
        assert result.manifest.seeds == [1]
        assert result.manifest.trace_length == len(trace)
        # But no metric dump rides along when observability is off.
        assert result.manifest.metrics == {}
        drain_run_log()

    def test_enabled_run_samples_way_split_and_events(self, tmp_path):
        trace = small_trace()
        with obs.session(out_dir=tmp_path) as session:
            result = simulate(
                trace, triage_cfg(), machine=MACHINE, epoch_accesses=2_000
            )
            rows = session.sampler.rows
            assert rows, "expected epoch samples"
            for key in ("run", "epoch", "c0.meta_ways", "c0.meta_hit_rate",
                        "llc_data_ways", "dram_utilization", "coverage"):
                assert key in rows[0], key
            # Epochs are numbered consecutively for the single run.
            assert [r["epoch"] for r in rows] == list(range(len(rows)))
            # The dynamic controller emits partition decisions.
            assert session.events.events("partition.decision")
            # Counters were registered and the manifest carries the dump.
            assert session.registry.get("sim.runs").value == 1
            assert session.registry.get("triage.meta_store.lookups").value > 0
            assert result.manifest.metrics["sim.accesses"] == len(trace)
            paths = session.flush()
        assert (tmp_path / "epochs.csv").exists()
        data = load_run_dir(tmp_path)
        assert len(data["epochs"]) == len(rows)
        assert data["manifests"][0]["prefetcher"] == result.prefetcher
        assert paths["metrics"].exists()
        drain_run_log()

    def test_flush_report_round_trip(self, tmp_path):
        trace = small_trace()
        with obs.session(out_dir=tmp_path) as session:
            simulate(trace, triage_cfg(), machine=MACHINE, epoch_accesses=2_000)
            session.flush()
        report = render_report(tmp_path)
        assert "Run manifests" in report
        assert "Epoch time-series" in report
        assert "c0.meta_ways" in report
        assert "Trace events" in report
        drain_run_log()

    def test_explicit_session_beats_global(self, tmp_path):
        trace = small_trace(n=6_000)
        explicit = obs.ObsSession()
        with obs.session(out_dir=tmp_path) as global_session:
            simulate(trace, None, machine=MACHINE, obs=explicit)
        assert len(global_session.sampler) == 0
        assert len(explicit.sampler) > 0
        drain_run_log()

    def test_profile_phase_attribution(self):
        trace = small_trace(n=6_000)
        session = obs.ObsSession(profile=True)
        simulate(trace, triage_cfg(), machine=MACHINE, obs=session)
        phases = {name for name, *_ in session.profiler.sorted_phases()}
        assert "l2_stream" in phases
        assert "l2_prefetcher" in phases
        assert "metadata_store" in phases
        drain_run_log()


# ---------------------------------------------------------------------------
# event ring capacity configuration (REPRO_OBS_EVENTS)
# ---------------------------------------------------------------------------


class TestEventCapacityConfig:
    def test_env_sets_default_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_EVENTS", "16")
        assert TraceEventStream().capacity == 16

    def test_enable_capacity_kwarg(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_EVENTS", "16")
        session = obs.enable(capacity=4)  # explicit beats the environment
        try:
            assert session.events.capacity == 4
        finally:
            obs.disable()

    def test_event_capacity_kwarg_still_works(self):
        assert obs.ObsSession(event_capacity=7).events.capacity == 7

    def test_both_capacity_spellings_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            obs.ObsSession(capacity=4, event_capacity=8)

    def test_invalid_env_warns_once_and_falls_back(self, monkeypatch, capsys):
        from repro import config
        from repro.obs.events import DEFAULT_CAPACITY

        monkeypatch.setenv("REPRO_OBS_EVENTS", "banana")
        monkeypatch.setattr(config, "_WARNED", set())
        assert TraceEventStream().capacity == DEFAULT_CAPACITY
        assert TraceEventStream().capacity == DEFAULT_CAPACITY
        err = capsys.readouterr().err
        assert err.count("REPRO_OBS_EVENTS") == 1  # warn-once

    def test_zero_env_ignored(self, monkeypatch):
        from repro import config
        from repro.obs.events import DEFAULT_CAPACITY

        monkeypatch.setenv("REPRO_OBS_EVENTS", "0")
        monkeypatch.setattr(config, "_WARNED", set())
        assert TraceEventStream().capacity == DEFAULT_CAPACITY

    def test_explicit_invalid_capacity_still_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceEventStream(capacity=0)


# ---------------------------------------------------------------------------
# report: partial artifacts, events tail, machine fingerprint stamping
# ---------------------------------------------------------------------------


class TestReportRobustness:
    def _flushed_dir(self, tmp_path):
        trace = small_trace()
        with obs.session(out_dir=tmp_path) as session:
            simulate(trace, triage_cfg(), machine=MACHINE, epoch_accesses=2_000)
            session.flush()
        drain_run_log()
        return tmp_path

    def test_render_survives_partially_missing_artifacts(self, tmp_path):
        full = self._flushed_dir(tmp_path)
        for missing in ("events.jsonl", "manifests.jsonl", "metrics.json",
                        "epochs.jsonl"):
            (full / missing).unlink()
            report = render_report(full)  # must not raise
            assert "Epoch time-series" in report
        # Everything gone: still renders the empty-epochs placeholder.
        assert "no epoch samples" in render_report(full)

    def test_events_tail_zero_suppresses_tail_dump(self, tmp_path):
        full = self._flushed_dir(tmp_path)
        assert "last events:" in render_report(full, events_tail=8)
        assert "last events:" not in render_report(full, events_tail=0)

    def test_report_cli_events_tail_and_json(self, tmp_path, capsys):
        from repro.__main__ import main

        full = self._flushed_dir(tmp_path)
        assert main(["report", str(full), "--events-tail", "0"]) == 0
        assert "last events:" not in capsys.readouterr().out
        assert main(["report", str(full), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifests"] and payload["epochs"]
        assert payload["manifests"][0]["host"]["cpu_count"] >= 1

    def test_manifest_carries_machine_fingerprint(self):
        from repro.obs.manifest import machine_fingerprint

        trace = small_trace(n=6_000)
        result = simulate(trace, None, machine=MACHINE)
        assert result.manifest.host == machine_fingerprint()
        assert machine_fingerprint() == machine_fingerprint()
        drain_run_log()


# ---------------------------------------------------------------------------
# PhaseTimer spread statistics
# ---------------------------------------------------------------------------


class TestPhaseSpread:
    def test_mean_min_max_tracked(self):
        timer = PhaseTimer()
        timer.add("l2", 1.0)
        timer.add("l2", 3.0)
        timer.add("dram", 2.0)
        name, secs, calls, mean, lo, hi = timer.sorted_phases()[0]
        assert (name, secs, calls) == ("l2", 4.0, 2)
        assert mean == pytest.approx(2.0)
        assert (lo, hi) == (1.0, 3.0)

    def test_batched_add_uses_per_call_average(self):
        timer = PhaseTimer()
        timer.add("x", 10.0, calls=4)
        _, _, calls, mean, lo, hi = timer.sorted_phases()[0]
        assert calls == 4
        assert mean == lo == hi == pytest.approx(2.5)

    def test_sort_is_stable_on_ties(self):
        timer = PhaseTimer()
        timer.add("zeta", 1.0)
        timer.add("alpha", 1.0)
        assert [p[0] for p in timer.sorted_phases()] == ["alpha", "zeta"]

    def test_table_shows_spread_columns(self):
        timer = PhaseTimer()
        timer.add("l2", 1.0)
        table = timer.table()
        for column in ("mean", "min", "max", "share", "calls"):
            assert column in table
