"""Unit tests for the Best-Offset prefetcher."""

from repro.prefetchers.best_offset import BestOffsetPrefetcher


def test_learns_dominant_offset():
    pf = BestOffsetPrefetcher(degree=1, offsets=[1, 2, 4])
    line = 0
    for _ in range(3000):
        line += 4
        pf.observe(0, line)
    assert pf.best_offset == 4
    assert pf.prefetching_on


def test_prefetch_target_uses_best_offset():
    pf = BestOffsetPrefetcher(degree=1, offsets=[1, 3])
    line = 0
    for _ in range(2000):
        line += 3
        pf.observe(0, line)
    candidates = pf.observe(0, line + 3)
    assert candidates[0].line == line + 6


def test_degree_multiplies_offset():
    pf = BestOffsetPrefetcher(degree=3, offsets=[1])
    for line in range(1000):
        pf.observe(0, line)
    candidates = pf.observe(0, 2000)
    assert [c.line for c in candidates] == [2001, 2002, 2003]


def test_random_stream_disables_prefetching():
    import random

    rnd = random.Random(3)
    pf = BestOffsetPrefetcher(degree=1, offsets=[1, 2, 4])
    for _ in range(40000):
        pf.observe(0, rnd.randrange(1 << 40))
    assert not pf.prefetching_on
    assert pf.observe(0, rnd.randrange(1 << 40)) == []


def test_round_ends_at_score_max():
    pf = BestOffsetPrefetcher(degree=1, offsets=[1])
    for line in range(100):
        pf.observe(0, line)
    # SCORE_MAX is 31: after ~31 tests of offset 1 the round resets.
    assert pf._scores == [0] or max(pf._scores) < pf.SCORE_MAX


def test_rr_table_is_direct_mapped():
    pf = BestOffsetPrefetcher(rr_table_bits=2)  # 4 entries
    pf._rr_insert(1)
    pf._rr_insert(5)  # maps to a different slot than 1? hash-dependent
    assert pf._rr_contains(5)
