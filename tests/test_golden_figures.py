"""Golden regression tests for the figure harnesses.

Small checked-in JSON summaries of Figure 5 and Figure 11 at a reduced
test scale, asserted cell-by-cell against a fresh harness run.  The
simulation is deterministic, so any drift here means a code change
*silently* altered reported results -- exactly what a performance-
oriented PR must not do.  If a change alters results **intentionally**
(a modeling fix, a new default), regenerate with::

    PYTHONPATH=src python tests/test_golden_figures.py --regen

and explain the delta in the commit message.

These tests deliberately honor an ambient ``REPRO_JOBS`` (the CI matrix
runs them with 2 worker processes), so in that leg they double as an
end-to-end check that parallel fan-out reproduces the serial goldens.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

import pytest

from repro import cache
from repro.experiments import common
from repro.experiments import ext_engine_validation as ext_engines
from repro.experiments import ext_triangel_headtohead as ext_triangel
from repro.experiments import fig05_irregular_speedup as fig05
from repro.experiments import fig11_offchip_comparison as fig11

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

#: Trace length for golden runs: big enough for warmup + steady-state
#: epochs, small enough to keep both figures under ~10 s of test time.
GOLDEN_N = 4_000

FIGURES = {
    "fig05": fig05,
    "fig11": fig11,
    "ext_triangel": ext_triangel,
    "ext_engines": ext_engines,
}

#: Cross-platform slack for libm differences (exp/log in geomeans); any
#: real modeling change moves results orders of magnitude more.
REL_TOL = 1e-9
ABS_TOL = 1e-12


def compute_summary(module) -> dict:
    """One figure's table at golden scale, as JSON-friendly data."""
    common.clear_caches()
    saved = common.N_SINGLE_QUICK
    common.N_SINGLE_QUICK = GOLDEN_N
    try:
        table = module.run(quick=True)
    finally:
        common.N_SINGLE_QUICK = saved
        common.clear_caches()
    return {
        "n_accesses": GOLDEN_N,
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
    }


def assert_matches_golden(summary: dict, golden: dict, name: str) -> None:
    assert summary["n_accesses"] == golden["n_accesses"], (
        f"{name}: golden was generated at n={golden['n_accesses']}; "
        f"regenerate after changing GOLDEN_N"
    )
    assert summary["headers"] == golden["headers"], f"{name}: headers changed"
    assert len(summary["rows"]) == len(golden["rows"]), f"{name}: row count changed"
    for row_idx, (got_row, want_row) in enumerate(
        zip(summary["rows"], golden["rows"])
    ):
        assert len(got_row) == len(want_row)
        for col_idx, (got, want) in enumerate(zip(got_row, want_row)):
            where = (
                f"{name} row {row_idx} ({want_row[0]!r}), "
                f"column {golden['headers'][col_idx]!r}"
            )
            if isinstance(want, (int, float)) and not isinstance(want, bool):
                assert isinstance(got, (int, float)), where
                assert math.isclose(
                    got, want, rel_tol=REL_TOL, abs_tol=ABS_TOL
                ), f"{where}: {got!r} != golden {want!r}"
            else:
                assert got == want, f"{where}: {got!r} != golden {want!r}"


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    """Goldens must come from fresh simulation, never a stale disk tier."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    cache.configure(None)
    yield
    cache.configure(None)


@pytest.mark.parametrize("name", sorted(FIGURES))
def test_figure_reproduces_golden(name):
    golden_path = GOLDEN_DIR / f"{name}.json"
    golden = json.loads(golden_path.read_text())
    summary = compute_summary(FIGURES[name])
    assert_matches_golden(summary, golden, name)


def test_fig05_reproduces_golden_under_batched_engine(monkeypatch):
    # The batched engine must replay the *same* golden as the scalar
    # engine -- bit-identical KPIs are its contract, so it gets no
    # golden file of its own.
    golden = json.loads((GOLDEN_DIR / "fig05.json").read_text())
    monkeypatch.setenv("REPRO_ENGINE", "batched")
    summary = compute_summary(FIGURES["fig05"])
    assert_matches_golden(summary, golden, "fig05[batched]")


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, module in sorted(FIGURES.items()):
        summary = compute_summary(module)
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(summary, indent=1) + "\n")
        print(f"wrote {path} ({len(summary['rows'])} rows)")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
        sys.exit(2)
