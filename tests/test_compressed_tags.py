"""Unit tests for Triage's compressed-tag table."""

import pytest

from repro.core.compressed_tags import CompressedTagTable


def test_round_trip():
    table = CompressedTagTable(bits=4)
    compact = table.compress(0xABCDE)
    assert table.expand(compact) == 0xABCDE


def test_same_tag_same_id():
    table = CompressedTagTable(bits=4)
    assert table.compress(7) == table.compress(7)
    assert len(table) == 1


def test_capacity_and_recycling():
    table = CompressedTagTable(bits=2)  # 4 ids
    ids = [table.compress(tag) for tag in range(4)]
    assert len(set(ids)) == 4
    assert table.recycled == 0
    table.compress(99)  # recycles the LRU id (tag 0)
    assert table.recycled == 1
    assert table.expand(ids[0]) == 99  # stale references now decompress wrong
    assert len(table) == 4


def test_recent_use_protects_id():
    table = CompressedTagTable(bits=2)
    for tag in range(4):
        table.compress(tag)
    table.compress(0)  # refresh tag 0
    table.compress(99)  # should recycle tag 1's id, not tag 0's
    assert table.expand(table.compress(0)) == 0
    compact_99 = table.compress(99)
    assert table.expand(compact_99) == 99


def test_expand_unknown_id():
    table = CompressedTagTable(bits=4)
    assert table.expand(3) is None


def test_rejects_bad_bits():
    with pytest.raises(ValueError):
        CompressedTagTable(bits=0)
