"""Unit tests for the utility-aware partition controller (extension)."""

import pytest

from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.core.utility_partition import UtilityPartitionController

KB = 1024


def controller(**kw):
    defaults = dict(
        capacities=(0, 2 * KB, 4 * KB),
        llc_data_bytes=64 * KB,
        epoch_accesses=800,
        sample_shift=0,
        warmup_epochs=0,
        start_index=1,
    )
    defaults.update(kw)
    return UtilityPartitionController(**defaults)


def drive(ctl, meta_keys, data_keys=()):
    data = list(data_keys)
    decisions = []
    for i, key in enumerate(meta_keys):
        if data:
            ctl.note_data_access(data[i % len(data)])
        decision = ctl.note_access(key)
        if decision is not None:
            decisions.append(decision)
    return decisions


def test_validates_capacities():
    with pytest.raises(ValueError):
        UtilityPartitionController(capacities=(0, 2, 1))
    with pytest.raises(ValueError):
        UtilityPartitionController(
            capacities=(0, 1 * KB, 64 * KB), llc_data_bytes=64 * KB
        )


def test_no_metadata_reuse_gives_store_back():
    ctl = controller()
    drive(ctl, meta_keys=range(4000))
    assert ctl.capacity_bytes == 0


def test_metadata_reuse_with_idle_data_grows():
    ctl = controller()
    # Hot metadata (cycling triggers), data side sees only fresh lines:
    # shrinking data costs nothing, prefetching gains a lot.
    meta = [i % 700 for i in range(6000)]
    data = range(10**6, 10**6 + 6000)
    drive(ctl, meta, data)
    assert ctl.capacity_bytes == 4 * KB


def test_valuable_data_blocks_metadata_growth():
    ctl = controller(usefulness=0.5)
    # Weak metadata reuse, but the data side's working set exactly fits
    # the full LLC and thrashes at reduced capacity.
    full_lines = ctl.data_sandboxes[0].capacity
    data = [i % full_lines for i in range(6000)]
    meta = list(range(6000))  # no metadata reuse at all
    drive(ctl, meta, data)
    assert ctl.capacity_bytes == 0


def test_triage_integration():
    config = TriageConfig(
        dynamic=True,
        partition_policy="utility",
        capacities=(0, 2 * KB, 4 * KB),
        llc_data_bytes=64 * KB,
        epoch_accesses=500,
        partition_warmup_epochs=0,
    )
    pf = TriagePrefetcher(config)
    assert isinstance(pf.controller, UtilityPartitionController)
    for line in range(3000):  # compulsory stream
        pf.observe(0xA, line)
    assert pf.metadata_capacity_bytes == 0


def test_unknown_partition_policy_rejected():
    with pytest.raises(ValueError):
        TriagePrefetcher(TriageConfig(dynamic=True, partition_policy="magic"))
