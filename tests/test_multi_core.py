"""Integration tests for the multi-core simulator."""

import pytest

from repro.core.triage import TriageConfig
from repro.sim.config import MachineConfig
from repro.sim.multi_core import simulate_multicore
from repro.workloads.irregular import chain_trace
from repro.workloads.regular import stream_trace

KB = 1024
SCALE = 16


def machine(n_cores):
    return MachineConfig.scaled(SCALE, n_cores=n_cores)


def chain(seed, arena):
    return chain_trace(
        f"chain{arena}", 16_000, seed,
        hot_lines=2_500, cold_lines=2_500, hot_fraction=0.8,
        noise=0.0, sequential_frac=0.0, arena=arena,
    )


def triage_factory():
    return TriageConfig(
        metadata_capacity=16 * KB, capacities=(0, 8 * KB, 16 * KB),
        epoch_accesses=2000,
    )


def test_core_count_must_match_machine():
    with pytest.raises(ValueError):
        simulate_multicore([chain(1, 50)], None, machine=machine(2))
    with pytest.raises(ValueError):
        simulate_multicore([], None)


def test_two_core_run_produces_per_core_results():
    traces = [chain(1, 50), chain(2, 52)]
    result = simulate_multicore(traces, None, machine=machine(2))
    assert result.n_cores == 2
    assert all(r.cycles > 0 for r in result.per_core)
    assert result.total_traffic_bytes > 0


def test_triage_helps_multicore_chains():
    traces = [chain(1, 50), chain(2, 52)]
    base = simulate_multicore(traces, None, machine=machine(2))
    triage = simulate_multicore(
        traces, triage_factory, machine=machine(2)
    )
    assert triage.speedup_over(base) > 1.03
    assert all(r.counters.l2_prefetch_hits > 0 for r in triage.per_core)


def test_traces_restart_when_exhausted():
    traces = [chain(1, 50).head(2000), chain(2, 52)]
    result = simulate_multicore(
        traces, None, machine=machine(2), accesses_per_core=8000
    )
    # Core 0's 2000-access trace looped 4x; counters reflect all 8000.
    assert result.per_core[0].counters.accesses == 8000


def test_warmup_resets_multicore_stats():
    traces = [chain(1, 50), chain(2, 52)]
    result = simulate_multicore(
        traces, None, machine=machine(2),
        accesses_per_core=6000, warmup_accesses_per_core=6000,
    )
    assert all(r.counters.accesses == 6000 for r in result.per_core)


def test_shared_bandwidth_hurts_at_scale():
    """A bandwidth-hungry workload slows down when 8 cores share the bus."""

    def stream(seed, arena):
        return stream_trace(
            f"s{arena}", 16_000, seed=seed, n_streams=2, arena=arena, mlp=8.0
        )

    solo = simulate_multicore([stream(1, 50)], None, machine=machine(1))
    many_traces = [stream(i + 1, 50 + 2 * i) for i in range(8)]
    many = simulate_multicore(many_traces, None, machine=machine(8))
    assert many.per_core[0].cycles > solo.per_core[0].cycles * 1.2


def test_percore_dynamic_partitions_are_independent():
    """An irregular core earns metadata ways; a streaming core gives
    its allocation back."""
    traces = [
        chain(1, 50),
        stream_trace("s", 16_000, seed=2, n_streams=2, arena=60),
    ]

    def dyn():
        return TriageConfig(
            dynamic=True, capacities=(0, 8 * KB, 16 * KB),
            epoch_accesses=1000, partition_warmup_epochs=0,
        )

    result = simulate_multicore(traces, dyn, machine=machine(2))
    irregular_cap = result.per_core[0].final_metadata_capacity
    stream_cap = result.per_core[1].final_metadata_capacity
    assert stream_cap == 0
    assert irregular_cap >= 8 * KB
