"""Parallel execution must be invisible in the numbers.

Property-style checks that the process-pool sweep engine
(:mod:`repro.sim.parallel`) and the persistent cache tier change *only*
wall-clock time, never results:

* ``n_jobs=1`` vs ``n_jobs=4`` produce bit-identical
  :class:`~repro.sim.stats.SimulationResult` records across seeds and
  prefetcher types (string names and ``TriageConfig`` specs);
* a cold-cache run and the warm-cache rerun agree exactly, and the warm
  rerun makes **zero** ``simulate()`` calls;
* worker observability (metrics registry) merges into the parent
  session deterministically -- equal to what the serial run records;
* ``experiments.common.warm_grid`` primes the memo cache with results
  identical to the serial ``run_single`` path, and
  ``common.clear_caches()`` actually empties the process tier.
"""

from __future__ import annotations

import pytest

from repro import cache, obs
from repro.core.triage import TriageConfig
from repro.experiments import common
from repro.prefetchers.triangel import TriangelConfig
from repro.sim import parallel
from repro.sim.sweep import sweep

KB = 1024

#: Small but non-trivial: long enough for warmup + measured epochs.
N_ACCESSES = 3_000

#: A scale-4 Triage (the factory's full-size configs don't fit the
#: scaled machine) plus its Triangel successor and two on-chip
#: prefetchers -- four prefetcher *types* through the parallel path.
TRIAGE = TriageConfig(
    metadata_capacity=(1024 * KB) // 4,
    capacities=(0, (512 * KB) // 4, (1024 * KB) // 4),
)
TRIANGEL = TriangelConfig(
    metadata_capacity=(1024 * KB) // 4,
    capacities=(0, (512 * KB) // 4, (1024 * KB) // 4),
)
GRID = {"bo": "bo", "triage": TRIAGE, "sms": "sms", "triangel": TRIANGEL}
BENCHES = ["mcf", "omnetpp"]


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    """No ambient cache/jobs/obs; process memos reset around each test."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    cache.configure(None)
    common.clear_caches()
    obs.disable()
    yield
    cache.configure(None)
    common.clear_caches()
    obs.disable()


def _records_equal(a, b) -> None:
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.workload == right.workload
        assert left.config == right.config
        assert left.result == right.result, (left.workload, left.config)
        assert left.baseline == right.baseline, left.workload


@pytest.mark.parametrize("seed", [1, 2])
def test_parallel_sweep_is_bit_identical_to_serial(seed):
    serial = sweep(BENCHES, GRID, n_accesses=N_ACCESSES, seed=seed, n_jobs=1)
    common.clear_caches()  # no trace-memo sharing between the two runs
    fanned = sweep(BENCHES, GRID, n_accesses=N_ACCESSES, seed=seed, n_jobs=4)
    _records_equal(serial, fanned)


def test_instance_specs_fall_back_to_serial_and_still_match():
    """Unpicklable/stateful specs run in-process even with n_jobs>1."""
    from repro.prefetchers.best_offset import BestOffsetPrefetcher

    grid = {"bo_factory": lambda: BestOffsetPrefetcher()}
    serial = sweep(BENCHES, grid, n_accesses=N_ACCESSES, n_jobs=1)
    common.clear_caches()
    fanned = sweep(BENCHES, grid, n_accesses=N_ACCESSES, n_jobs=4)
    _records_equal(serial, fanned)


def test_cold_vs_warm_cache_agree_exactly(tmp_path):
    cold = sweep(
        BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=4, cache_dir=tmp_path
    )
    common.clear_caches()
    warm = sweep(
        BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=1, cache_dir=tmp_path
    )
    _records_equal(cold, warm)


def test_warm_cache_run_makes_zero_simulate_calls(tmp_path, monkeypatch):
    sweep(BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=1, cache_dir=tmp_path)
    common.clear_caches()

    calls = []
    real = parallel.simulate

    def counting_simulate(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(parallel, "simulate", counting_simulate)
    warm = sweep(
        BENCHES, GRID, n_accesses=N_ACCESSES, n_jobs=1, cache_dir=tmp_path
    )
    assert calls == []  # every cell (baselines included) came from disk
    assert len(warm) == len(BENCHES) * len(GRID)
    store = cache.get_cache()
    assert store.hits >= len(BENCHES) * (len(GRID) + 1)


def test_worker_observability_merges_deterministically():
    dynamic = TriageConfig(
        metadata_capacity=(1024 * KB) // 4,
        capacities=(0, (512 * KB) // 4, (1024 * KB) // 4),
        dynamic=True,
        epoch_accesses=500,
    )
    grid = {"bo": "bo", "triage": dynamic}

    session = obs.enable()
    sweep(["mcf"], grid, n_accesses=N_ACCESSES, n_jobs=1)
    serial_metrics = session.registry.as_dict()
    serial_epochs = len(session.sampler.rows)
    serial_manifests = len(session.manifests)
    obs.disable()
    common.clear_caches()

    session = obs.enable()
    sweep(["mcf"], grid, n_accesses=N_ACCESSES, n_jobs=3)
    assert session.registry.as_dict() == serial_metrics
    assert len(session.sampler.rows) == serial_epochs
    assert len(session.manifests) == serial_manifests
    obs.disable()


@pytest.mark.parametrize("prefetcher", ["none", "bo", "triage_dynamic"])
def test_warm_grid_matches_serial_run_single(prefetcher):
    common.warm_grid(["mcf"], [prefetcher], n=N_ACCESSES, n_jobs=2)
    warmed = common.run_single("mcf", prefetcher, n=N_ACCESSES)

    common.clear_caches()
    serial = common.run_single("mcf", prefetcher, n=N_ACCESSES)
    assert warmed == serial


def test_clear_caches_empties_every_process_memo():
    common.run_single("mcf", "bo", n=N_ACCESSES)
    assert common._RUN_CACHE and common._TRACE_CACHE
    common.clear_caches()
    assert not common._RUN_CACHE
    assert not common._TRACE_CACHE
    assert not common._MIX_CACHE
    assert not parallel._TRACE_MEMO


def test_run_cells_preserves_input_order():
    cells = [
        parallel.run_single_cell(
            bench=bench, prefetcher="bo", n=N_ACCESSES, seed=1
        )
        for bench in ("mcf", "omnetpp", "libquantum")
    ]
    results = parallel.run_cells(cells, n_jobs=3)
    assert [r.workload for r in results] == ["mcf", "omnetpp", "libquantum"]
