"""Tests for the experiment infrastructure (tables, specs, caching)."""

import pytest

from repro.experiments import common
from repro.core.triage import TriagePrefetcher
from repro.prefetchers.hybrid import HybridPrefetcher


def test_experiment_table_render_and_access():
    table = common.ExperimentTable("T", ["a", "b"])
    table.add("x", 1.234567)
    table.add("y", 2)
    table.notes.append("hello")
    text = str(table)
    assert "== T ==" in text
    assert "1.235" in text
    assert "note: hello" in text
    assert table.column("b") == [1.234567, 2]
    assert table.row("y") == ["y", 2]
    with pytest.raises(KeyError):
        table.row("z")


def test_experiment_table_csv():
    table = common.ExperimentTable("T", ["a", "b"])
    table.add("x", 1.5)
    csv_text = table.to_csv()
    assert csv_text.splitlines() == ["a,b", "x,1.5"]


def test_make_spec_builds_fresh_instances():
    a = common.make_spec("triage_1mb")
    b = common.make_spec("triage_1mb")
    assert a is not b
    assert isinstance(a, TriagePrefetcher)
    assert a.metadata_capacity_bytes == common.CAP_LARGE


def test_make_spec_scaled_capacities():
    pf = common.make_spec("triage_1mb", scale=common.MULTI_SCALE)
    assert pf.metadata_capacity_bytes == (1024 * 1024) // common.MULTI_SCALE


def test_make_spec_hybrid_and_custom_geometry():
    hybrid = common.make_spec("bo+triage_dynamic")
    assert isinstance(hybrid, HybridPrefetcher)
    custom = common.make_spec("triage@8192:lru:8")
    assert custom.metadata_capacity_bytes == 8192
    assert custom.config.replacement == "lru"
    assert custom.config.tag_bits == 8


def test_make_spec_unknown_rejected():
    with pytest.raises(ValueError):
        common.make_spec("hal9000")


def test_labels_cover_headline_configs():
    for name in ("bo", "sms", "misb", "triage_1mb", "triage_dynamic"):
        assert common.label(name) != name  # has a paper-facing label


def test_pct():
    assert common.pct(1.235) == pytest.approx(23.5)


def test_run_single_is_memoized():
    r1 = common.run_single("mcf", "none", n=4000)
    r2 = common.run_single("mcf", "none", n=4000)
    assert r1 is r2


def test_run_single_distinct_configs_not_conflated():
    base = common.run_single("mcf", "none", n=4000)
    other = common.run_single("mcf", "none", n=4000, seed=2)
    assert base is not other


def test_capacities_for_scale():
    assert common.capacities_for_scale(4) == (0, 128 * 1024, 256 * 1024)
    assert common.capacities_for_scale(8) == (0, 64 * 1024, 128 * 1024)
