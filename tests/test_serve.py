"""The serving layer's robustness contract, provoked edge by edge.

The acceptance bar for :mod:`repro.serve` is absolute: every submitted
request is either answered *correctly* (at some ladder tier) or rejected
*explicitly* (``ServiceOverloaded`` / ``DeadlineExceeded`` /
``ServiceClosed``) -- never silently dropped, never answered from
half-applied session state.  These tests pin the edges where that
contract is easiest to break:

* admission exactly at the queue watermark (full-but-not-over accepted,
  one past shed);
* deadlines expiring while *queued* vs while *executing* -- the second
  must provably leave session state untouched;
* a circuit breaker's half-open probe failing (cooldown backs off
  exponentially) and later succeeding (breaker closes, cooldown resets);
* the degradation ladder stepping down under pressure and recovering
  upward only after the hysteresis streak;
* session-table LRU + idle-TTL eviction, with ``serve.session_evict``
  events;
* chaos acceptance: under injected worker crashes and slow replies, a
  loadtest finishes with zero unhandled exceptions, and an oracle replay
  of every served response reproduces its prefetch lines exactly.

Everything runs on the virtual-time loop, so timings in these tests are
exact, not flaky-sleep approximations.
"""

from __future__ import annotations

import asyncio
from collections import defaultdict

import pytest

from repro import faults
from repro.serve import (
    DeadlineExceeded,
    DegradeController,
    LadderConfig,
    LoadgenConfig,
    PrefetchService,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    SessionTable,
    TenantBudget,
    Tier,
    default_ladder,
    passthrough_tier,
    run_loadtest,
    run_virtual,
)
from repro.serve.loadgen import SHAPES, _arrival_schedule

BATCH = [(0x400000 + i * 4, 0x10000 + i) for i in range(8)]

#: A free tier with the *full* modeled cost: service-time math stays
#: exact while tests that don't care about engines skip building them.
NULL_TIER = Tier("null", 1.0, lambda budget: None, "test tier")


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    faults.reset()
    yield
    faults.reset()


def make_service(ladder=None, **overrides) -> PrefetchService:
    kwargs = dict(
        n_workers=1,
        queue_watermark=4,
        base_service_s=0.01,
        per_access_s=0.0,
    )
    kwargs.update(overrides)
    config = ServiceConfig(**kwargs)
    return PrefetchService(
        config=config, ladder=ladder or [NULL_TIER], emit=lambda *a, **k: None
    )


class TestVirtualTime:
    def test_sleep_advances_clock_exactly(self):
        async def clock():
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            await asyncio.sleep(123.456)
            return loop.time() - t0

        assert run_virtual(clock()) == pytest.approx(123.456)

    def test_deadlocked_await_raises_instead_of_hanging(self):
        async def hang():
            await asyncio.get_running_loop().create_future()

        with pytest.raises(RuntimeError, match="no timers"):
            run_virtual(hang())


class TestAdmissionControl:
    def test_queue_exactly_at_watermark_accepts_one_past_sheds(self):
        async def scenario():
            service = make_service(base_service_s=1.0)
            await service.start()
            loop = asyncio.get_running_loop()
            first = loop.create_task(
                service.submit("t0", BATCH, deadline_s=100.0)
            )
            await asyncio.sleep(0.001)  # worker now executing t0
            assert service._queue.qsize() == 0
            waiters = [
                loop.create_task(
                    service.submit(f"t{i + 1}", BATCH, deadline_s=100.0)
                )
                for i in range(4)
            ]
            await asyncio.sleep(0.001)
            # Exactly at the watermark: all four accepted, none shed.
            assert service._queue.qsize() == 4
            assert service.counters["shed_overload"] == 0
            assert not service.ready()["ready"]  # queue at watermark
            with pytest.raises(ServiceOverloaded):
                await service.submit("t9", BATCH, deadline_s=100.0)
            assert service.counters["shed_overload"] == 1
            responses = await asyncio.gather(first, *waiters)
            assert [r.tenant for r in responses] == [
                f"t{i}" for i in range(5)
            ]
            await service.stop()
            assert service.counters["served"] == 5

        run_virtual(scenario())

    def test_submit_before_start_and_after_stop_is_closed(self):
        async def scenario():
            service = make_service()
            with pytest.raises(ServiceClosed):
                await service.submit("t", BATCH)
            await service.start()
            await service.submit("t", BATCH)
            await service.stop()
            with pytest.raises(ServiceClosed):
                await service.submit("t", BATCH)
            assert service.counters["rejected_closed"] == 2

        run_virtual(scenario())

    def test_oversized_batch_rejected(self):
        async def scenario():
            service = make_service(batch_limit=4)
            await service.start()
            with pytest.raises(ValueError, match="batch_limit"):
                await service.submit("t", BATCH)
            await service.stop()

        run_virtual(scenario())


class TestDeadlines:
    def test_deadline_expiring_while_queued(self):
        async def scenario():
            service = make_service(base_service_s=0.5)
            await service.start()
            loop = asyncio.get_running_loop()
            slow = loop.create_task(
                service.submit("a", BATCH, deadline_s=10.0)
            )
            await asyncio.sleep(0.001)  # worker busy with 'a' for 0.5s
            with pytest.raises(DeadlineExceeded, match="while queued"):
                await service.submit("b", BATCH, deadline_s=0.2)
            await slow
            await service.stop()
            assert service.counters["shed_deadline_queued"] == 1
            assert service.counters["served"] == 1
            # 'b' was rejected before execution: no session was created.
            assert service.sessions.get("b") is None

        run_virtual(scenario())

    def test_deadline_expiring_while_executing_leaves_session_untouched(self):
        async def scenario():
            service = make_service(base_service_s=0.5)
            await service.start()
            with pytest.raises(DeadlineExceeded, match="while executing"):
                await service.submit("t", BATCH, deadline_s=0.2)
            await service.stop()
            assert service.counters["shed_deadline_executing"] == 1
            # The deadline gate precedes session mutation: no session.
            assert service.sessions.get("t") is None

        run_virtual(scenario())


class TestCircuitBreaker:
    def test_half_open_probe_failure_backs_off_then_recovery_closes(self):
        async def scenario():
            service = make_service(
                breaker_threshold=2,
                breaker_cooldown_s=0.5,
                breaker_backoff=2.0,
                max_retries=3,
            )
            await service.start()
            breaker = service._breakers[0]
            # Every attempt crashes (rate 1.0 up to attempt 10): two
            # failures trip the breaker, each half-open probe fails and
            # doubles the cooldown, and retry exhaustion surfaces as an
            # explicit overload rejection.
            faults.configure("serve_worker_crash:1.0:10", seed=1)
            with pytest.raises(ServiceOverloaded, match="retries"):
                await service.submit("t", BATCH, deadline_s=60.0)
            assert breaker.state == "open"
            assert breaker.trips == 3  # threshold trip + 2 failed probes
            assert breaker.probes_failed == 2
            assert breaker._cooldown_s == pytest.approx(2.0)  # 0.5 * 2 * 2
            assert service.counters["worker_failures"] == 4
            assert service.counters["retries"] == 3

            # Faults disarmed: the next half-open probe succeeds, the
            # breaker closes and the cooldown resets to its base.
            faults.reset()
            response = await service.submit("t", BATCH, deadline_s=60.0)
            assert response.tier == "null"
            assert breaker.state == "closed"
            assert breaker._cooldown_s == pytest.approx(0.5)
            await service.stop()

        run_virtual(scenario())

    def test_open_breaker_blocks_worker_for_cooldown(self):
        from repro.serve.service import CircuitBreaker

        breaker = CircuitBreaker("w", threshold=1, cooldown_s=2.0)
        breaker.record_failure(now=10.0)
        assert breaker.state == "open"
        assert breaker.blocked_for(11.0) == pytest.approx(1.0)
        # Cooldown elapsed: transitions to half-open, worker may probe.
        assert breaker.blocked_for(12.5) == 0.0
        assert breaker.state == "half_open"


class TestDegradeLadder:
    @staticmethod
    def controller(events):
        return DegradeController(
            config=LadderConfig(recover_intervals=2, latency_window=4),
            emit=lambda cat, sev, **fields: events.append((cat, fields)),
        )

    def test_steps_down_on_queue_and_latency_breach(self):
        events = []
        ctl = self.controller(events)
        assert ctl.tier.name == "triangel"
        assert ctl.decide(0.9, now=1.0) == ("triangel", "triage_degree1")
        for _ in range(4):
            ctl.note_latency(0.5)  # p95 far over the 100ms target
        assert ctl.decide(0.0, now=2.0) == ("triage_degree1", "stride")
        reasons = [fields["reason"] for _, fields in events]
        assert reasons == ["queue", "latency"]

    def test_recovers_upward_only_after_hysteresis_streak(self):
        events = []
        ctl = self.controller(events)
        ctl.decide(0.9, now=1.0)  # down to triage_degree1
        for _ in range(4):
            ctl.note_latency(0.001)  # healthy latencies flush the window
        assert ctl.decide(0.0, now=2.0) is None  # streak 1 of 2
        assert ctl.decide(0.0, now=3.0) == ("triage_degree1", "triangel")
        assert ctl.level == 0
        up = [f for _, f in events if f["reason"] == "recovered"]
        assert up and up[0]["to_tier"] == "triangel"

    def test_pressure_resets_the_healthy_streak(self):
        ctl = self.controller([])
        ctl.decide(0.9, now=1.0)
        assert ctl.decide(0.0, now=2.0) is None  # healthy, streak 1
        ctl.decide(0.5, now=3.0)  # neither healthy nor pressured: reset
        assert ctl.decide(0.0, now=4.0) is None  # streak restarts at 1
        assert ctl.decide(0.0, now=5.0) is not None

    def test_bottom_of_ladder_holds(self):
        ctl = DegradeController(
            ladder=[NULL_TIER, passthrough_tier()],
            config=LadderConfig(),
        )
        assert ctl.decide(1.0, now=1.0) is not None
        assert ctl.decide(1.0, now=2.0) is None  # already at the bottom
        assert ctl.tier.name == "passthrough"


class TestSessionTable:
    def test_lru_capacity_eviction_emits_event(self):
        events = []
        table = SessionTable(
            n_shards=1, max_sessions=2,
            emit=lambda cat, sev, **fields: events.append((cat, fields)),
        )
        table.get_or_create("a", now=1.0)
        table.get_or_create("b", now=2.0)
        table.get_or_create("a", now=3.0)  # touch: 'b' is now LRU
        table.get_or_create("c", now=4.0)
        assert "b" not in table
        assert "a" in table and "c" in table
        assert table.evictions["capacity"] == 1
        assert events[0][0] == "serve.session_evict"
        assert events[0][1]["tenant"] == "b"
        assert events[0][1]["reason"] == "capacity"

    def test_idle_ttl_sweep(self):
        events = []
        table = SessionTable(
            n_shards=2, max_sessions=8, idle_ttl_s=10.0,
            emit=lambda cat, sev, **fields: events.append((cat, fields)),
        )
        table.get_or_create("old", now=0.0)
        table.get_or_create("fresh", now=95.0)
        assert table.sweep_idle(now=100.0) == 1
        assert "old" not in table and "fresh" in table
        assert table.evictions["idle"] == 1
        assert events[0][1]["reason"] == "idle"

    def test_shard_placement_is_deterministic(self):
        a = SessionTable(n_shards=8, max_sessions=64)
        b = SessionTable(n_shards=8, max_sessions=64)
        for tenant in ("alpha", "beta", "gamma", "tenant-42"):
            assert a._shards.index(a._shard_of(tenant)) == b._shards.index(
                b._shard_of(tenant)
            )

    def test_service_monitor_sweeps_idle_sessions(self):
        async def scenario():
            service = make_service(
                session_idle_ttl_s=1.0, monitor_interval_s=0.25
            )
            await service.start()
            await service.submit("t", BATCH, deadline_s=10.0)
            assert service.sessions.get("t") is not None
            await asyncio.sleep(2.0)  # monitor ticks past the TTL
            assert service.sessions.get("t") is None
            await service.stop()

        run_virtual(scenario())


class TestEngineTiers:
    def test_real_tiers_produce_candidates_and_cache_engines(self):
        async def scenario():
            service = PrefetchService(
                config=ServiceConfig(n_workers=1, queue_watermark=8),
                emit=lambda *a, **k: None,
            )
            await service.start()
            # A recurring temporal pattern the full tier can learn.
            pattern = [(0x400, 0x100 + i) for i in range(16)]
            lines = 0
            for _ in range(6):
                response = await service.submit("t", pattern, deadline_s=10.0)
                assert response.tier == "triangel"
                lines += len(response.prefetch_lines)
            assert lines > 0
            session = service.sessions.get("t")
            assert session.tiers_built() == ["triangel"]
            assert session.seq == 6 * len(pattern)
            await service.stop()

        run_virtual(scenario())


class TestLoadgen:
    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown shape"):
            LoadgenConfig(shape="sawtooth")

    def test_arrival_schedule_is_deterministic_and_tracks_rate(self):
        cfg = LoadgenConfig(duration_s=10.0, base_rps=50.0, seed=3)
        a = _arrival_schedule(cfg)
        b = _arrival_schedule(cfg)
        assert a == b
        # Ramp integrates to ~1.05x base over the run.
        assert len(a) == pytest.approx(50.0 * 10.0 * 1.05, rel=0.02)
        assert all(0 <= t < cfg.duration_s for t, _ in a)
        assert {tenant for _, tenant in a} <= set(range(cfg.n_tenants))

    def test_loadtest_is_bit_deterministic(self):
        def go():
            faults.configure("serve_worker_crash:0.2,serve_slow_reply:0.1", seed=42)
            try:
                report = run_loadtest(
                    LoadgenConfig(
                        shape="spike", duration_s=10.0, base_rps=100.0,
                        n_tenants=4, trace_accesses=256, seed=5,
                    ),
                    ServiceConfig(n_workers=2, queue_watermark=8),
                )
            finally:
                faults.reset()
            return report.summary()

        assert go() == go()

    def test_every_shape_runs_clean(self):
        for shape in sorted(SHAPES):
            report = run_loadtest(
                LoadgenConfig(
                    shape=shape, duration_s=5.0, base_rps=40.0,
                    n_tenants=4, trace_accesses=256,
                ),
                ServiceConfig(n_workers=2, queue_watermark=8),
            )
            assert report.errors_unhandled == 0
            assert report.served + report.shed == report.requests
            kpis = report.kpis()
            assert kpis["p95_latency_ms"] >= kpis["p50_latency_ms"] >= 0


class TestChaosAcceptance:
    """The headline invariant: faults shed load, they never wrong an answer."""

    def test_faulted_loadtest_sheds_explicitly_never_fails(self):
        faults.configure("serve_worker_crash:0.2,serve_slow_reply:0.1", seed=42)
        try:
            report = run_loadtest(
                LoadgenConfig(
                    shape="ramp", duration_s=15.0, base_rps=80.0,
                    n_tenants=6, trace_accesses=512, seed=11,
                ),
                ServiceConfig(n_workers=4, queue_watermark=16),
            )
            crashes_fired = faults.FIRED.get("serve_worker_crash", 0)
        finally:
            faults.reset()
        assert report.errors_unhandled == 0
        assert report.served + report.shed == report.requests
        assert report.served > 0  # degraded, not dead
        assert crashes_fired > 0  # chaos was real

    def test_oracle_replay_of_served_responses_is_exact(self):
        """Replay every served batch through a fresh engine: identical lines.

        The ladder is pinned to one real tier so the oracle knows which
        engine to rebuild.  Responses are ordered by session sequence
        number -- if a rejected request had secretly mutated state, or a
        retry had double-applied, the replay would diverge.
        """
        tier = default_ladder()[1]  # triage_degree1: real temporal engine
        from repro.workloads import irregular

        trace = irregular.chain_trace(
            "oracle", 960, seed=9, hot_lines=500, cold_lines=2_000,
            hot_chains=4, cold_chains=8, pcs=4,
        )
        stream = [(pc, addr >> 6) for pc, addr, _ in trace]
        tenants = [f"t{i}" for i in range(4)]
        batches = {
            tenant: [stream[(i * 8) % len(stream):][:8] for i in range(30)]
            for tenant in tenants
        }

        async def scenario():
            service = PrefetchService(
                config=ServiceConfig(
                    n_workers=3, queue_watermark=16, max_retries=3
                ),
                ladder=[tier],
                emit=lambda *a, **k: None,
            )
            await service.start()
            served = []

            async def one(tenant, batch):
                try:
                    response = await service.submit(
                        tenant, batch, deadline_s=30.0
                    )
                except (ServiceOverloaded, DeadlineExceeded):
                    return
                served.append((tenant, batch, response))

            loop = asyncio.get_running_loop()
            tasks = []
            for round_idx in range(30):
                for tenant in tenants:
                    tasks.append(
                        loop.create_task(
                            one(tenant, batches[tenant][round_idx])
                        )
                    )
                await asyncio.sleep(0.02)
            await asyncio.gather(*tasks)
            await service.stop()
            return served

        faults.configure("serve_worker_crash:0.3,serve_slow_reply:0.1", seed=7)
        try:
            served = run_virtual(scenario())
        finally:
            faults.reset()
        assert served, "chaos shed every request; nothing to verify"

        by_tenant = defaultdict(list)
        for tenant, batch, response in served:
            assert response.tier == tier.name
            by_tenant[tenant].append((response.seq, batch, response))
        for tenant, items in by_tenant.items():
            items.sort(key=lambda item: item[0])
            engine = tier.build(TenantBudget())
            expected_seq = 0
            for seq, batch, response in items:
                expected_seq += len(batch)
                # Sequence numbers are gapless: every applied batch
                # produced a response, no batch applied twice.
                assert seq == expected_seq, (
                    f"{tenant}: response seq {seq} != replay seq "
                    f"{expected_seq} -- a shed request mutated state or "
                    "a retry double-applied"
                )
                golden, seen = [], set()
                for pc, line in batch:
                    for candidate in engine.observe(pc, line):
                        if candidate.line not in seen:
                            seen.add(candidate.line)
                            golden.append(candidate.line)
                assert golden == response.prefetch_lines, (
                    f"{tenant} seq {seq}: served lines diverge from "
                    "oracle replay"
                )


class TestCli:
    def test_serve_command_self_check(self, capsys):
        from repro.__main__ import main

        assert main(["serve", "--requests", "8"]) == 0
        out = capsys.readouterr().out
        assert "self-check" in out
        assert "ready: True" in out

    def test_loadtest_command_stamps_manifest(self, capsys):
        from repro.__main__ import main
        from repro.obs.manifest import drain_run_log

        drain_run_log()
        assert main(["loadtest", "--quick", "--rps", "20"]) == 0
        manifests = [m for m in drain_run_log() if m.kind == "serve"]
        assert len(manifests) == 1
        kpis = manifests[0].extra["kpis"]
        assert {"p50_latency_ms", "p95_latency_ms", "throughput_rps",
                "shed_rate_pct"} <= set(kpis)
        assert "repro loadtest: ramp" in capsys.readouterr().out
