"""Unit tests for the workload generators."""

import pytest

from repro.workloads.base import Trace, interleave, pc_of
from repro.workloads.irregular import (
    chain_trace,
    graph_walk_trace,
    shuffled_reuse_trace,
)
from repro.workloads.regular import (
    scan_footprint_trace,
    stream_trace,
    strided_trace,
)


def test_trace_validates_lengths():
    with pytest.raises(ValueError):
        Trace("t", [1], [1, 2], [False, False])


def test_trace_validates_mlp():
    with pytest.raises(ValueError):
        Trace("t", [1], [64], [False], mlp=0.5)


def test_trace_iteration_and_head():
    trace = Trace("t", [1, 2], [64, 128], [False, True])
    assert list(trace) == [(1, 64, False), (2, 128, True)]
    head = trace.head(1)
    assert len(head) == 1
    assert head.name == "t"


def test_trace_instruction_estimate():
    trace = Trace("t", [1], [64], [False], instr_per_access=4.0)
    assert trace.instructions == 4.0


def test_interleave_round_robin():
    a = Trace("a", [1, 1], [0, 64], [False, False])
    b = Trace("b", [2], [128], [False])
    merged = interleave([a, b], name="m")
    assert [x[1] for x in merged] == [0, 128, 64]
    assert len(merged) == 3


def test_interleave_requires_traces():
    with pytest.raises(ValueError):
        interleave([])


def test_chain_trace_deterministic():
    t1 = chain_trace("c", 5000, seed=3, hot_lines=1000, cold_lines=2000)
    t2 = chain_trace("c", 5000, seed=3, hot_lines=1000, cold_lines=2000)
    assert t1.addrs == t2.addrs
    assert t1.pcs == t2.pcs


def test_chain_trace_seed_changes_trace():
    t1 = chain_trace("c", 5000, seed=3, hot_lines=1000, cold_lines=2000)
    t2 = chain_trace("c", 5000, seed=4, hot_lines=1000, cold_lines=2000)
    assert t1.addrs != t2.addrs


def test_chain_trace_respects_length_and_alignment():
    trace = chain_trace("c", 3000, seed=1, hot_lines=500, cold_lines=500)
    assert len(trace) == 3000
    assert all(a % 64 == 0 for a in trace.addrs[:100])


def test_chain_trace_pc_streams_are_chain_walks():
    """Within one PC, consecutive accesses mostly follow fixed chain
    order: the same pair (a, b) recurs across traversals."""
    # pcs=24 gives every hot chain its own PC, so concurrent traversals
    # never interleave within one PC stream.
    trace = chain_trace(
        "c", 20_000, seed=1, hot_lines=2_000, cold_lines=0, cold_chains=0,
        hot_fraction=1.0, noise=0.0, write_frac=0.0, concurrency=2, pcs=24,
    )
    pairs = {}
    last_by_pc = {}
    for pc, addr, _ in trace:
        prev = last_by_pc.get(pc)
        if prev is not None:
            pairs.setdefault(prev, []).append(addr)
        last_by_pc[pc] = addr
    # For triggers seen several times, the successor is stable.
    stable = 0
    repeated = 0
    for successors in pairs.values():
        if len(successors) >= 3:
            repeated += 1
            if len(set(successors)) == 1:
                stable += 1
    assert repeated > 50
    assert stable / repeated > 0.8


def test_graph_trace_hits_node_set():
    trace = graph_walk_trace("g", 5000, seed=2, n_nodes=512)
    assert len(trace) == 5000
    assert len(set(trace.addrs)) <= 512


def test_shuffled_reuse_covers_working_set():
    trace = shuffled_reuse_trace("s", 6000, seed=2, n_lines=2000)
    assert len(set(trace.addrs)) == 2000


def test_stream_trace_is_sequential_per_pc():
    trace = stream_trace("st", 4000, seed=1, n_streams=2)
    per_pc = {}
    for pc, addr, _ in trace:
        per_pc.setdefault(pc, []).append(addr >> 6)
    for lines in per_pc.values():
        deltas = {b - a for a, b in zip(lines, lines[1:])}
        assert deltas == {1}


def test_strided_trace_constant_stride_per_pc():
    trace = strided_trace("sd", 4000, seed=1, strides=(3, 5))
    per_pc = {}
    for pc, addr, _ in trace:
        per_pc.setdefault(pc, []).append(addr >> 6)
    observed = sorted(
        {(b - a) for lines in per_pc.values() for a, b in zip(lines, lines[1:])}
    )
    assert observed == [3, 5]


def test_scan_trace_never_revisits_regions():
    trace = scan_footprint_trace("sc", 5000, seed=1)
    lines = [a >> 6 for a in trace.addrs]
    assert len(set(lines)) == len(lines)  # compulsory misses only


def test_pc_of_is_instruction_like():
    assert pc_of(0) != pc_of(1)
    assert pc_of(1) - pc_of(0) == 0x10
