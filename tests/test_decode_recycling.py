"""The tag-recycling failure mode, end to end through the store.

Paper Section 3.2 stores compressed tags in 4-byte entries.  When the
tag table recycles an id, entries still referencing it silently
decompress to the *new* owner's tag.  These tests pin down the exact
externally-visible behaviour so future refactors keep it honest.
"""

from repro.core.metadata_store import SET_ID_BITS, MetadataStore


def line_with(tag: int, set_id: int = 5) -> int:
    return (tag << SET_ID_BITS) | set_id


def test_recycled_tag_produces_wrong_but_wellformed_prediction():
    store = MetadataStore(capacity_bytes=1 << 16, tag_bits=2)  # 4 tag slots
    victims = [line_with(tag) for tag in range(1, 5)]
    store.update(10, victims[0])
    # Exhaust the tag table so victims[0]'s tag id gets recycled.
    for extra_tag in range(10, 14):
        store.update(100 + extra_tag, line_with(extra_tag))
    predicted = store.lookup(10)
    # The entry still exists and decodes, but to the recycled id's new
    # owner -- a wrong prefetch, not a crash.
    assert predicted is not None
    assert predicted != victims[0]
    assert predicted & ((1 << SET_ID_BITS) - 1) == 5  # set_id survives


def test_unrecycled_tags_decode_exactly():
    store = MetadataStore(capacity_bytes=1 << 16, tag_bits=10)
    successor = line_with(777, set_id=123)
    store.update(42, successor)
    assert store.lookup(42) == successor


def test_tag_table_shared_across_entries():
    """Two successors under the same tag share one table slot."""
    store = MetadataStore(capacity_bytes=1 << 16, tag_bits=10)
    store.update(1, line_with(99, 3))
    store.update(2, line_with(99, 7))
    assert len(store.tag_table) == 1
    assert store.lookup(1) == line_with(99, 3)
    assert store.lookup(2) == line_with(99, 7)


def test_expired_tag_reference_returns_none_when_id_unassigned():
    store = MetadataStore(capacity_bytes=1 << 16, tag_bits=2)
    store.update(10, line_with(1))
    # Manually strip the owner so expand() finds nothing (models a reset
    # tag table, e.g. after a partition flush).
    store.tag_table._tag_to_id.clear()
    store.tag_table._id_to_tag.clear()
    assert store.lookup(10) is None
