"""Resilient execution: retries, timeouts, pool recovery, checkpoints.

The parallel sweep engine (:mod:`repro.sim.parallel`) originally drove a
bare ``ProcessPoolExecutor.map``: one worker death aborted the whole
grid and an interrupted run lost every finished cell.  This module is
the fault-tolerance layer it now runs on:

* :class:`RetryPolicy` -- per-cell retries with exponential backoff and
  an optional per-cell wall-clock timeout (``REPRO_RETRIES`` /
  ``REPRO_CELL_TIMEOUT`` are the ambient knobs);
* :func:`run_resilient` -- the submit/``wait`` execution engine:
  input-order results, per-cell retry accounting, deadline enforcement,
  ``BrokenProcessPool`` recovery by pool respawn (only unfinished cells
  re-run), degradation to serial in-process execution after N
  consecutive pool failures, and graceful SIGINT/SIGTERM shutdown;
* :class:`SweepJournal` -- an append-only, crash-safe JSONL checkpoint
  of completed cell keys (plus their cached-result keys) kept under the
  cache root, so an interrupted grid resumes instead of restarting;
* :func:`graceful_shutdown` -- scoped signal handling that turns
  SIGINT/SIGTERM into a clean :class:`SweepInterrupted` at the next
  loop tick (completed work journaled, observability flushable).

Every recovery action is visible: the engine emits
``resilience.retry`` / ``resilience.cell_timeout`` /
``resilience.pool_respawn`` / ``resilience.serial_fallback`` /
``resilience.resume_skip`` trace events through whatever ``emit`` hook
the caller provides (the obs session's event stream, in practice).
All recovery paths are exercised deterministically by the seeded
fault-injection framework in :mod:`repro.faults`; see
``docs/resilience.md`` for the fault model and a cookbook.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro import config, faults

__all__ = [
    "CellFailed",
    "CellTimeout",
    "RetryPolicy",
    "SweepInterrupted",
    "SweepJournal",
    "graceful_shutdown",
    "positive_env",
    "run_resilient",
]

#: Default per-cell retry budget (re-executions after a failure).
DEFAULT_RETRIES = 2
#: Consecutive pool deaths tolerated before degrading to serial.
DEFAULT_MAX_POOL_FAILURES = 3
#: The engine's wait granularity: deadline checks and shutdown polls.
_WAIT_TICK_S = 0.05

#: Re-exported for existing callers; the implementation (and the
#: warn-once state) now lives in :mod:`repro.config`.
positive_env = config.positive_env


class CellTimeout(RuntimeError):
    """A cell exceeded its per-cell wall-clock budget."""


class CellFailed(RuntimeError):
    """A cell exhausted its retry budget; ``cause`` is the last error."""

    def __init__(self, index: int, cause: BaseException):
        super().__init__(f"cell {index} failed after retries: {cause!r}")
        self.index = index
        self.cause = cause


class SweepInterrupted(KeyboardInterrupt):
    """SIGINT/SIGTERM arrived; ``completed`` maps index -> finished output.

    Subclasses :class:`KeyboardInterrupt` so un-caught interrupts behave
    exactly like a plain Ctrl-C to callers above the sweep harness.
    """

    def __init__(self, completed: Dict[int, object], signum: Optional[int]):
        super().__init__(f"sweep interrupted by signal {signum}")
        self.completed = completed
        self.signum = signum


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry/timeout discipline for :func:`run_resilient`.

    ``retries`` is the number of *re*-executions allowed after failures
    (0 = fail fast, the pre-resilience behaviour).  Backoff before the
    k-th retry is ``min(backoff_base_s * 2**(k-1), backoff_max_s)``.
    ``cell_timeout_s`` bounds one cell's wall clock in the parallel path
    (a timed-out cell counts as one failure and is re-run; serial
    execution cannot preempt a cell and ignores it).  After
    ``max_pool_failures`` consecutive ``BrokenProcessPool`` deaths the
    engine stops respawning and finishes the grid serially in-process.
    """

    retries: int = DEFAULT_RETRIES
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    cell_timeout_s: Optional[float] = None
    max_pool_failures: int = DEFAULT_MAX_POOL_FAILURES

    def backoff_s(self, failure_count: int) -> float:
        if self.backoff_base_s <= 0 or failure_count <= 0:
            return 0.0
        return min(self.backoff_base_s * 2 ** (failure_count - 1), self.backoff_max_s)

    @classmethod
    def from_env(
        cls,
        retries: Optional[int] = None,
        cell_timeout: Optional[float] = None,
    ) -> "RetryPolicy":
        """Explicit arguments, else ``REPRO_RETRIES``/``REPRO_CELL_TIMEOUT``."""
        if retries is None:
            env = positive_env("REPRO_RETRIES", int, minimum=0)
            retries = DEFAULT_RETRIES if env is None else int(env)
        if cell_timeout is None:
            cell_timeout = positive_env("REPRO_CELL_TIMEOUT", float, minimum=1e-6)
        return cls(retries=max(0, int(retries)), cell_timeout_s=cell_timeout)


# -- graceful shutdown -------------------------------------------------------


class ShutdownGuard:
    """Latches the first SIGINT/SIGTERM seen while installed."""

    def __init__(self):
        self.triggered = False
        self.signum: Optional[int] = None

    def trip(self, signum, _frame=None) -> None:
        self.triggered = True
        self.signum = signum


@contextmanager
def graceful_shutdown():
    """Install SIGINT/SIGTERM latches for the duration of a sweep.

    Inside the block the first signal only *flags* the guard -- the
    execution loop notices at its next tick, journals what finished and
    raises :class:`SweepInterrupted`.  A second signal falls through to
    the previous (default) handler, so a stuck sweep can still be
    killed.  Off the main thread (where ``signal.signal`` is illegal)
    the guard is inert and signals behave as before.
    """
    guard = ShutdownGuard()
    previous = {}
    installed = threading.current_thread() is threading.main_thread()
    if installed:
        def _handler(signum, frame):
            if guard.triggered:  # second signal: restore + re-deliver
                handler = previous.get(signum, signal.SIG_DFL)
                signal.signal(signum, handler)
                raise KeyboardInterrupt
            guard.trip(signum, frame)

        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(signum, _handler)
        except ValueError:  # non-main thread after all
            installed = False
    try:
        yield guard
    finally:
        if installed:
            for signum, handler in previous.items():
                signal.signal(signum, handler)


# -- checkpoint journal ------------------------------------------------------


class SweepJournal:
    """Append-only JSONL checkpoint of a grid's completed cells.

    One line per completed cell: ``{"cell_key": ..., "result_key": ...,
    "unix": ...}``.  Appends are flushed and fsynced, so a crash can
    lose at most the line being written -- and a torn trailing line is
    skipped on load, never raised.  The journal lives under the cache
    root (``<root>/journal/<grid_key>.jsonl``) because resuming needs
    the cached results anyway; cells whose results cannot be cached are
    journaled with ``result_key: null`` and simply re-run on resume.
    """

    def __init__(self, path):
        self.path = Path(path)

    @classmethod
    def default_path(cls, cache_root, grid_key: str) -> Path:
        return Path(cache_root) / "journal" / f"{grid_key[:32]}.jsonl"

    def load(self) -> Dict[str, Dict[str, object]]:
        """Completed entries by cell key (malformed lines are skipped)."""
        entries: Dict[str, Dict[str, object]] = {}
        try:
            text = self.path.read_text()
        except OSError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                cell_key = entry["cell_key"]
            except Exception:
                continue  # torn/garbage line from a crash mid-append
            entries[str(cell_key)] = entry
        return entries

    def record(self, cell_key: str, result_key: Optional[str] = None) -> None:
        """Durably append one completed cell."""
        entry = {
            "cell_key": cell_key,
            "result_key": result_key,
            "unix": time.time(),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


# -- the execution engine ----------------------------------------------------

_UNSET = object()


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a pool whose workers may be wedged or mid-crash.

    A worker that dies abruptly mid-task (hard exit, segfault, OOM kill)
    can take the shared call-queue lock down with it, leaving its
    sibling workers blocked on that lock forever.  Those zombies park
    the executor's management thread in ``terminate_broken`` -- a busy
    loop feeding exit sentinels that are never consumed -- and the
    interpreter then hangs at exit on the ``concurrent.futures`` atexit
    join of that thread.  Kill the children first so every teardown
    path can actually finish.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            if proc.is_alive():
                proc.kill()
        except (OSError, ValueError):
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _noop_emit(category: str, severity: str = "info", **fields) -> None:
    return None


def run_resilient(
    payloads: Sequence[dict],
    worker_fn: Callable,
    run_local: Callable,
    n_jobs: int,
    policy: Optional[RetryPolicy] = None,
    emit: Optional[Callable] = None,
    on_complete: Optional[Callable[[int, object], None]] = None,
    fault_tokens: Optional[Sequence[str]] = None,
) -> List[object]:
    """Execute ``payloads``, resiliently, returning outputs in input order.

    ``worker_fn`` is the picklable per-payload callable run in pool
    workers; ``run_local(payload, attempt)`` is its in-process twin
    (serial mode, and the degraded path after repeated pool deaths).
    Workers receive their attempt number as ``payload["fault_attempt"]``
    and their identity as ``payload["fault_token"]`` so fault-injection
    decisions stay deterministic across retries.  ``emit`` is an
    obs-style event hook (``(category, severity, **fields)``);
    ``on_complete(index, output)`` fires as each cell finishes (in
    completion order -- this is the journaling hook).

    Raises :class:`CellFailed` when a cell exhausts its retry budget and
    :class:`SweepInterrupted` on SIGINT/SIGTERM (completed outputs
    attached).
    """
    policy = policy or RetryPolicy()
    emit = emit or _noop_emit
    on_complete = on_complete or (lambda index, output: None)
    n = len(payloads)
    tokens = list(fault_tokens) if fault_tokens is not None else [
        f"cell{i}" for i in range(n)
    ]
    results: List[object] = [_UNSET] * n
    failures = [0] * n   # cell-attributable failures, vs policy.retries
    attempts = [0] * n   # executions started, the fault-decision epoch

    def record(index: int, output: object) -> None:
        results[index] = output
        on_complete(index, output)

    def note_failure(index: int, exc: BaseException, kind: str) -> None:
        """Charge one failure; raise CellFailed when the budget is gone."""
        failures[index] += 1
        attempts[index] += 1
        if failures[index] > policy.retries:
            raise CellFailed(index, exc) from exc
        emit(
            "resilience.retry",
            "warn",
            cell=index,
            kind=kind,
            failure=failures[index],
            error=f"{type(exc).__name__}: {exc}",
        )
        delay = policy.backoff_s(failures[index])
        if delay:
            time.sleep(delay)

    def completed() -> Dict[int, object]:
        return {i: results[i] for i in range(n) if results[i] is not _UNSET}

    def run_serial(indices, guard) -> None:
        for index in indices:
            while True:
                if guard.triggered:
                    raise SweepInterrupted(completed(), guard.signum)
                payload = dict(payloads[index], fault_token=tokens[index])
                try:
                    output = run_local(payload, attempts[index])
                except Exception as exc:
                    note_failure(index, exc, kind="serial")
                    continue
                attempts[index] += 1
                record(index, output)
                break

    with graceful_shutdown() as guard:
        if n_jobs <= 1 or n <= 1:
            run_serial(range(n), guard)
            return results

        todo = deque(range(n))
        inflight: Dict[object, tuple] = {}  # future -> (index, deadline)
        pool: Optional[ProcessPoolExecutor] = None
        pool_failures = 0
        workers = min(n_jobs, n)
        try:
            while todo or inflight:
                if guard.triggered:
                    raise SweepInterrupted(completed(), guard.signum)
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=workers)

                broken = False
                while todo and not broken:
                    index = todo.popleft()
                    payload = dict(
                        payloads[index],
                        fault_token=tokens[index],
                        fault_attempt=attempts[index],
                    )
                    try:
                        faults.fire("pickle", tokens[index], attempts[index])
                        future = pool.submit(worker_fn, payload)
                    except BrokenProcessPool:
                        todo.appendleft(index)
                        broken = True
                    except Exception as exc:  # injected or real pickle error
                        note_failure(index, exc, kind="submit")
                        todo.append(index)
                    else:
                        # Deadline is assigned lazily, once the future is
                        # observed *running*: a cell queued behind busy
                        # workers must not burn its wall-clock budget.
                        inflight[future] = (index, None)

                done = set()
                if inflight and not broken:
                    done, _ = wait(
                        set(inflight),
                        timeout=_WAIT_TICK_S,
                        return_when=FIRST_COMPLETED,
                    )
                for future in done:
                    index, _deadline = inflight.pop(future)
                    try:
                        output = future.result()
                    except BrokenProcessPool:
                        todo.append(index)
                        broken = True
                    except Exception as exc:
                        note_failure(index, exc, kind="worker")
                        todo.append(index)
                    else:
                        attempts[index] += 1
                        pool_failures = 0
                        record(index, output)

                expired = False
                if not broken and policy.cell_timeout_s:
                    now = time.monotonic()
                    for future, (index, deadline) in list(inflight.items()):
                        if deadline is None:
                            if future.running():
                                inflight[future] = (
                                    index,
                                    now + policy.cell_timeout_s,
                                )
                            continue
                        if now < deadline or future.done():
                            continue
                        # Abandon it: a running pool future cannot be
                        # preempted, so the result (if any) is ignored
                        # and the cell is re-run.
                        inflight.pop(future)
                        future.cancel()
                        expired = True
                        timeout_exc = CellTimeout(
                            f"cell {index} exceeded {policy.cell_timeout_s}s"
                        )
                        emit(
                            "resilience.cell_timeout",
                            "warn",
                            cell=index,
                            timeout_s=policy.cell_timeout_s,
                        )
                        note_failure(index, timeout_exc, kind="timeout")
                        todo.append(index)
                if expired:
                    # The stuck workers cannot be preempted one by one,
                    # so replace the whole pool; other in-flight cells
                    # are re-queued *without* being charged a failure
                    # (their fault/attempt epoch stays put too, so
                    # injection decisions remain deterministic).
                    for _future, (index, _deadline) in inflight.items():
                        todo.append(index)
                    inflight.clear()
                    _discard_pool(pool)
                    pool = None
                    emit(
                        "resilience.pool_respawn",
                        "warn",
                        reason="cell_timeout",
                        remaining=len(todo),
                    )

                if broken:
                    for future, (index, _deadline) in inflight.items():
                        attempts[index] += 1  # the crasher re-rolls its fault
                        todo.append(index)
                    inflight.clear()
                    _discard_pool(pool)
                    pool = None
                    pool_failures += 1
                    if pool_failures >= policy.max_pool_failures:
                        emit(
                            "resilience.serial_fallback",
                            "warn",
                            reason="pool_failures",
                            consecutive=pool_failures,
                            remaining=len(todo),
                        )
                        print(
                            f"warning: process pool died {pool_failures} times in "
                            f"a row; finishing {len(todo)} cell(s) serially",
                            file=sys.stderr,
                        )
                        run_serial(list(todo), guard)
                        todo.clear()
                    else:
                        emit(
                            "resilience.pool_respawn",
                            "warn",
                            reason="pool_broken",
                            consecutive=pool_failures,
                            remaining=len(todo),
                        )
        finally:
            if pool is not None:
                _discard_pool(pool)
    return results
