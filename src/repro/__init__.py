"""Reproduction of "Temporal Prefetching Without the Off-Chip Metadata".

This package reimplements the Triage temporal prefetcher (Wu et al.,
MICRO-52, 2019) together with every substrate its evaluation depends on:

* a trace-driven three-level cache hierarchy with a bandwidth-aware DRAM
  model (:mod:`repro.memory`),
* cache replacement policies including Hawkeye/OPTgen
  (:mod:`repro.replacement`),
* the baseline prefetchers the paper compares against -- stride, Best
  Offset, SMS, Markov, STMS, Domino, ISB and MISB
  (:mod:`repro.prefetchers`),
* the Triage prefetcher itself (:mod:`repro.core`),
* synthetic SPEC2006-like and CloudSuite-like workload generators
  (:mod:`repro.workloads`),
* single-/multi-core simulators plus the timing, stats and energy models
  (:mod:`repro.sim`), and
* one experiment harness per figure of the paper
  (:mod:`repro.experiments`).

Quickstart::

    from repro import simulate
    from repro.workloads import spec

    trace = spec.make_trace("mcf", n_accesses=100_000, seed=1)
    baseline = simulate(trace, prefetcher=None)
    triage = simulate(trace, prefetcher="triage")
    print(triage.speedup_over(baseline))
"""

from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.sim.config import MachineConfig
from repro.sim.single_core import SimulationResult, simulate
from repro.sim.multi_core import MultiCoreResult, simulate_multicore

__all__ = [
    "MachineConfig",
    "MultiCoreResult",
    "SimulationResult",
    "TriageConfig",
    "TriagePrefetcher",
    "simulate",
    "simulate_multicore",
]

__version__ = "1.0.0"
