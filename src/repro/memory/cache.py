"""A set-associative, write-back cache with way partitioning.

This one model serves as L1D, L2 and LLC.  The LLC additionally supports
shrinking/growing its *active* ways at run time, which is how Triage's
way partitioning carves a metadata store out of the data array (paper
Section 3: "we partition the last-level cache by assigning separate ways
to data and metadata").
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Union

from repro.memory.address import LINE_SIZE
from repro.replacement.base import ReplacementPolicy


@dataclass(slots=True)
class CacheLine:
    """One resident cache line."""

    line: int  # full line address (byte address >> 6)
    dirty: bool = False
    #: None, or the prefetcher kind ("l1"/"l2") that brought the line in
    #: and has not yet seen a demand touch.
    prefetched: Optional[str] = None
    pc: int = 0  # PC of the filling access


@dataclass(slots=True)
class AccessOutcome:
    """What happened on a cache access or fill."""

    hit: bool
    #: Prefetcher kind if this was the first demand touch of a
    #: prefetched line, else None.
    prefetch_hit: Optional[str] = None
    evicted: Optional[CacheLine] = None  # victim displaced by a fill


#: Shared outcomes for the two overwhelmingly common cases.  Treat them
#: as immutable: :meth:`Cache.access` returns these instead of allocating
#: a fresh record per miss / plain hit.
_MISS = AccessOutcome(hit=False)
_PLAIN_HIT = AccessOutcome(hit=True)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class Cache:
    """Set-associative cache keyed by line address.

    Parameters
    ----------
    name:
        Label used in stats and error messages (``"L1D"``, ``"LLC"`` ...).
    size_bytes / ways / line_size:
        Geometry; ``size_bytes`` must divide evenly into power-of-two sets.
    policy:
        A replacement-policy name from :data:`repro.replacement.POLICIES`
        or an already-constructed :class:`ReplacementPolicy` (the latter is
        how Triage injects a shared Hawkeye predictor).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_size: int = LINE_SIZE,
        policy: Union[str, ReplacementPolicy] = "lru",
    ):
        num_sets = size_bytes // (line_size * ways)
        if num_sets <= 0 or not _is_pow2(num_sets):
            raise ValueError(
                f"{name}: geometry {size_bytes}B/{ways}-way/{line_size}B "
                f"yields {num_sets} sets (must be a positive power of two)"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.total_ways = ways
        self.active_ways = ways
        self.line_size = line_size
        self.num_sets = num_sets
        if isinstance(policy, str):
            # Local import avoids a cycle: repro.replacement re-exports us.
            from repro.replacement import make_policy

            self.policy = make_policy(policy, num_sets, ways)
        else:
            self.policy = policy
        # Policy hooks run on every access/fill; pre-bound methods avoid
        # re-creating a bound method per call.  The policy object is fixed
        # for the cache's lifetime (resize_ways mutates it in place), and
        # ``set_line_key`` is skipped entirely for policies that keep the
        # base no-op.
        self._policy_on_hit = self.policy.on_hit
        self._policy_on_fill = self.policy.on_fill
        self._policy_on_evict = self.policy.on_evict
        self._policy_victim = self.policy.victim
        self._policy_tracks_keys = (
            type(self.policy).set_line_key is not ReplacementPolicy.set_line_key
        )
        self._ways: List[List[Optional[CacheLine]]] = [
            [None] * ways for _ in range(num_sets)
        ]
        self._index: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
        # Per-set min-heap of free (active) ways: fills pop the lowest
        # free way in O(log ways) instead of scanning every way; an
        # ascending range is already a valid heap.
        self._free: List[List[int]] = [list(range(ways)) for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    # -- geometry helpers --------------------------------------------------

    def set_of(self, line: int) -> int:
        """Set index of a line address."""
        return line & (self.num_sets - 1)

    @property
    def active_size_bytes(self) -> int:
        """Capacity of the currently active ways."""
        return self.num_sets * self.active_ways * self.line_size

    # -- queries (no side effects) ----------------------------------------

    def contains(self, line: int) -> bool:
        """Return True if ``line`` is resident (no replacement update)."""
        return line in self._index[line & (self.num_sets - 1)]

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(idx) for idx in self._index)

    # -- access / fill / invalidate ----------------------------------------

    def access(self, line: int, pc: int = 0, is_write: bool = False) -> AccessOutcome:
        """Demand access: update replacement state on hit, never fill.

        On a miss the caller is expected to consult the next level and
        call :meth:`fill`.
        """
        set_idx = line & (self.num_sets - 1)
        way = self._index[set_idx].get(line)
        if way is None:
            self.misses += 1
            return _MISS
        self.hits += 1
        entry = self._ways[set_idx][way]
        if is_write:
            entry.dirty = True
        prefetch_hit = entry.prefetched
        self._policy_on_hit(set_idx, way, pc)
        if prefetch_hit is None:
            return _PLAIN_HIT
        entry.prefetched = None
        return AccessOutcome(True, prefetch_hit)

    def fill(
        self,
        line: int,
        pc: int = 0,
        dirty: bool = False,
        prefetched: Optional[str] = None,
    ) -> Optional[CacheLine]:
        """Install ``line``; return the victim (if a valid line was evicted).

        Filling a line that is already resident refreshes its replacement
        state and merges the dirty bit instead of duplicating it.
        """
        if self.active_ways == 0:
            return None  # fully partitioned away: nothing to install into
        set_idx = line & (self.num_sets - 1)
        index = self._index[set_idx]
        ways = self._ways[set_idx]
        existing = index.get(line)
        if existing is not None:
            if dirty:
                ways[existing].dirty = True
            self._policy_on_hit(set_idx, existing, pc)
            return None

        free = self._free[set_idx]
        victim: Optional[CacheLine] = None
        if free:
            way = heappop(free)
        else:
            way = self._policy_victim(set_idx, pc)
            victim = ways[way]
            del index[victim.line]
            self._policy_on_evict(set_idx, way)
        ways[way] = CacheLine(line, dirty, prefetched, pc)
        index[line] = way
        if self._policy_tracks_keys:
            self.policy.set_line_key(set_idx, way, line)
        self._policy_on_fill(set_idx, way, pc)
        return victim

    def invalidate(self, line: int) -> Optional[CacheLine]:
        """Drop ``line`` if resident; return it (caller handles writeback)."""
        set_idx = self.set_of(line)
        way = self._index[set_idx].pop(line, None)
        if way is None:
            return None
        entry = self._ways[set_idx][way]
        self._ways[set_idx][way] = None
        heappush(self._free[set_idx], way)
        self._policy_on_evict(set_idx, way)
        return entry

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit of a resident line; return whether it was found."""
        set_idx = line & (self.num_sets - 1)
        way = self._index[set_idx].get(line)
        if way is None:
            return False
        self._ways[set_idx][way].dirty = True
        return True

    # -- way partitioning ---------------------------------------------------

    def set_active_ways(self, n: int) -> List[CacheLine]:
        """Restrict the cache to its first ``n`` ways.

        Shrinking invalidates (and returns) every line in the deactivated
        ways -- the paper flushes dirty lines when the data partition
        shrinks, so callers should write back dirty victims.  Growing just
        re-enables the ways; they refill naturally.
        """
        if not 0 <= n <= self.total_ways:
            raise ValueError(f"{self.name}: active ways {n} out of range")
        evicted: List[CacheLine] = []
        if n < self.active_ways:
            for set_idx in range(self.num_sets):
                ways = self._ways[set_idx]
                index = self._index[set_idx]
                for way in range(n, self.active_ways):
                    entry = ways[way]
                    if entry is not None:
                        evicted.append(entry)
                        del index[entry.line]
                        ways[way] = None
                        self.policy.on_evict(set_idx, way)
                # Deactivated ways leave the freelist (free or just
                # evicted alike); filtering can break the heap shape,
                # so restore it.
                free = [w for w in self._free[set_idx] if w < n]
                heapify(free)
                self._free[set_idx] = free
        elif n > self.active_ways:
            # Re-enabled ways are empty by construction (the shrink that
            # deactivated them evicted their lines); they refill naturally.
            reenabled = range(self.active_ways, n)
            for free in self._free:
                for way in reenabled:
                    heappush(free, way)
        self.active_ways = n
        self.policy.resize_ways(n)
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Cache({self.name}, {self.size_bytes}B, {self.total_ways}-way, "
            f"{self.num_sets} sets, active_ways={self.active_ways})"
        )
