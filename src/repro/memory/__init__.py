"""Memory-system substrate: addresses, caches, DRAM and the hierarchy."""

from repro.memory.address import (
    LINE_SIZE,
    LINE_SHIFT,
    line_addr,
    line_base,
    region_id,
    region_offset,
    set_index,
    tag_bits,
)
from repro.memory.cache import Cache, CacheLine, AccessOutcome
from repro.memory.dram import DramModel, TrafficCounter
from repro.memory.hierarchy import CacheHierarchy, HierarchyEvent

__all__ = [
    "AccessOutcome",
    "Cache",
    "CacheHierarchy",
    "CacheLine",
    "DramModel",
    "HierarchyEvent",
    "LINE_SHIFT",
    "LINE_SIZE",
    "TrafficCounter",
    "line_addr",
    "line_base",
    "region_id",
    "region_offset",
    "set_index",
    "tag_bits",
]
