"""Address arithmetic shared by every cache-like structure.

All simulators in this package work on 64-bit byte addresses.  Caches and
prefetchers operate at cache-line granularity (64 bytes, the size used in
the paper's Table 1), so most helpers convert between byte addresses, line
addresses (byte address >> 6) and the set/tag split of a particular cache
geometry.
"""

LINE_SIZE = 64
LINE_SHIFT = 6  # log2(LINE_SIZE)


def line_addr(byte_addr: int) -> int:
    """Return the cache-line address (byte address divided by line size)."""
    return byte_addr >> LINE_SHIFT


def line_base(byte_addr: int) -> int:
    """Return the first byte address of the line containing ``byte_addr``."""
    return byte_addr & ~(LINE_SIZE - 1)


def set_index(line: int, num_sets: int) -> int:
    """Return the set index of ``line`` in a cache with ``num_sets`` sets.

    ``num_sets`` must be a power of two, which holds for every geometry in
    the paper's Table 1.
    """
    return line & (num_sets - 1)


def tag_bits(line: int, num_sets: int) -> int:
    """Return the tag of ``line`` for a cache with ``num_sets`` sets."""
    return line >> (num_sets.bit_length() - 1) if num_sets > 1 else line


def region_id(byte_addr: int, region_size: int) -> int:
    """Return the spatial-region id (used by SMS) for ``byte_addr``."""
    return byte_addr // region_size


def region_offset(byte_addr: int, region_size: int) -> int:
    """Return the line offset of ``byte_addr`` within its spatial region."""
    return (byte_addr % region_size) >> LINE_SHIFT
