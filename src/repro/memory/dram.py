"""DRAM traffic accounting and a bandwidth-aware latency model.

The paper's single-core simulator uses a fixed-latency memory that
"models memory bandwidth constraints accurately"; its multi-core runs use
ChampSim's contention model.  We reproduce the behaviour that matters to
the evaluation -- *latency grows with bandwidth utilization* -- with a
queueing-style inflation: per epoch, effective latency is

    base * (1 + u^2 / (1 - u))          (capped at ``max_inflation``)

where ``u`` is the fraction of peak bandwidth consumed that epoch.  At low
utilization this is the paper's fixed 85 ns; near saturation (the 16-core
mixes) high-traffic prefetchers like MISB pay heavily, which is exactly
the effect Figures 11/12/17 rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.memory.address import LINE_SIZE

#: Traffic categories tracked for every simulation.
CATEGORIES = ("demand", "prefetch", "writeback", "metadata")


@dataclass
class TrafficCounter:
    """Per-category byte counters for off-chip traffic."""

    bytes_by_category: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in CATEGORIES}
    )

    def add(self, category: str, nbytes: int = LINE_SIZE) -> None:
        """Record ``nbytes`` of traffic in ``category``."""
        if category not in self.bytes_by_category:
            raise ValueError(f"unknown traffic category {category!r}")
        self.bytes_by_category[category] += nbytes

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())

    def overhead_vs(self, baseline_bytes: int) -> float:
        """Traffic overhead relative to a baseline, as a fraction.

        The paper reports "traffic overhead" as extra traffic relative to
        a no-prefetching baseline (e.g. Triage 59.3%, MISB 156.4%).
        """
        if baseline_bytes <= 0:
            return 0.0
        return (self.total_bytes - baseline_bytes) / baseline_bytes

    def snapshot(self) -> Dict[str, int]:
        return dict(self.bytes_by_category)


class DramModel:
    """Fixed base latency plus utilization-driven queueing delay.

    Parameters mirror Table 1: 85 ns at 2 GHz is 170 cycles; 32 GB/s at
    2 GHz is 16 bytes/cycle (shared by all cores).
    """

    def __init__(
        self,
        base_latency_cycles: float = 170.0,
        bandwidth_bytes_per_cycle: float = 16.0,
        max_inflation: float = 8.0,
    ):
        if base_latency_cycles <= 0 or bandwidth_bytes_per_cycle <= 0:
            raise ValueError("latency and bandwidth must be positive")
        self.base_latency_cycles = base_latency_cycles
        self.bandwidth_bytes_per_cycle = bandwidth_bytes_per_cycle
        self.max_inflation = max_inflation
        #: Optional per-epoch observability log; the simulation engine
        #: sets this to a list when sampling is on, and the timing model
        #: appends one record per resolved epoch (see :meth:`record_epoch`).
        self.epoch_log = None

    def record_epoch(
        self,
        utilization: float,
        effective_latency: float,
        nbytes: float,
        dram_accesses: int,
    ) -> None:
        """Log one epoch's bandwidth state (no-op unless observing).

        ``queue_penalty_cycles`` is the latency added beyond the unloaded
        base across the epoch's DRAM accesses -- the quantity behind the
        bandwidth-crossover figures (11/12/17).
        """
        if self.epoch_log is None:
            return
        self.epoch_log.append(
            {
                "utilization": utilization,
                "effective_latency": effective_latency,
                "bytes": nbytes,
                "queue_penalty_cycles": (
                    (effective_latency - self.base_latency_cycles) * dram_accesses
                ),
            }
        )

    def utilization(self, bytes_transferred: float, cycles: float) -> float:
        """Fraction of peak bandwidth used over ``cycles`` (clamped to 1)."""
        if cycles <= 0:
            return 1.0 if bytes_transferred > 0 else 0.0
        return min(1.0, bytes_transferred / (self.bandwidth_bytes_per_cycle * cycles))

    def effective_latency(self, utilization: float) -> float:
        """Average memory latency at the given utilization."""
        u = min(max(utilization, 0.0), 0.995)
        inflation = 1.0 + (u * u) / (1.0 - u)
        return self.base_latency_cycles * min(inflation, self.max_inflation)

    def min_cycles_for_bytes(self, nbytes: float) -> float:
        """Cycles the bus needs to move ``nbytes`` (bandwidth floor)."""
        return nbytes / self.bandwidth_bytes_per_cycle
