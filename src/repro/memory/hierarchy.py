"""Three-level cache hierarchy (per-core L1D/L2, shared LLC, DRAM).

The geometry defaults to the paper's Table 1: 64 KB 4-way L1D, 512 KB
8-way private L2, 2 MB/core 16-way shared LLC, 64 B lines.  The hierarchy
is mechanical -- it moves lines and counts events; prefetcher logic lives
in the simulation engine, which trains on the L2 access stream (paper
Figure 4: "PC, Phys Addr of L2 Misses & Prefetch Hits") and injects
prefetches through :meth:`CacheHierarchy.prefetch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.memory.address import LINE_SIZE
from repro.memory.cache import Cache
from repro.memory.dram import TrafficCounter
from repro.replacement.base import ReplacementPolicy

#: Levels an access can be satisfied at.
LEVELS = ("l1", "l2", "llc", "dram")


@dataclass(slots=True)
class HierarchyEvent:
    """Outcome of one demand access, consumed by prefetcher training."""

    core: int
    pc: int
    line: int
    hit_level: str  # one of LEVELS
    #: Prefetcher kind ("l1"/"l2") if this was the first demand touch of
    #: a prefetched L2 line, else None.
    prefetch_hit_kind: Optional[str] = None
    is_write: bool = False

    @property
    def l2_prefetch_hit(self) -> bool:
        """Demand hit on a line the *L2* prefetcher brought in."""
        return self.prefetch_hit_kind == "l2"

    @property
    def trains_l2_prefetcher(self) -> bool:
        """True when this event is part of the L2 miss + prefetch-hit stream.

        The per-access simulation engines inline this condition (a
        property costs a call frame per access); keep them in sync.
        """
        return self.hit_level in ("llc", "dram") or self.prefetch_hit_kind is not None


@dataclass(slots=True)
class CoreCounters:
    """Per-core demand/prefetch statistics.

    ``l2_prefetch_hits``/``prefetches_*`` cover the L2 prefetcher under
    evaluation; the baseline L1 stride prefetcher (Table 1) is tracked
    separately in the ``l1pf_*`` fields so it never pollutes coverage or
    accuracy numbers.
    """

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l2_prefetch_hits: int = 0  # useful L2 prefetches (first demand touch)
    llc_hits: int = 0
    dram_accesses: int = 0
    prefetches_issued: int = 0
    prefetches_redundant: int = 0
    prefetch_fills_from_llc: int = 0
    prefetch_fills_from_dram: int = 0
    l1pf_useful: int = 0
    l1pf_issued: int = 0
    l1pf_redundant: int = 0
    l1pf_fills_from_dram: int = 0

    @property
    def l2_demand_misses(self) -> int:
        return self.llc_hits + self.dram_accesses


class CacheHierarchy:
    """Private L1D/L2 per core over a shared, way-partitionable LLC."""

    def __init__(
        self,
        n_cores: int = 1,
        l1_size: int = 64 * 1024,
        l1_ways: int = 4,
        l2_size: int = 512 * 1024,
        l2_ways: int = 8,
        llc_size_per_core: int = 2 * 1024 * 1024,
        llc_ways: int = 16,
        llc_policy: Union[str, ReplacementPolicy] = "lru",
        traffic: Optional[TrafficCounter] = None,
    ):
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self.n_cores = n_cores
        self.l1s = [
            Cache(f"L1D{c}", l1_size, l1_ways, policy="lru") for c in range(n_cores)
        ]
        self.l2s = [
            Cache(f"L2_{c}", l2_size, l2_ways, policy="lru") for c in range(n_cores)
        ]
        self.llc = Cache(
            "LLC", llc_size_per_core * n_cores, llc_ways, policy=llc_policy
        )
        self.traffic = traffic if traffic is not None else TrafficCounter()
        self.counters = [CoreCounters() for _ in range(n_cores)]

    # -- demand path ---------------------------------------------------------

    def access(
        self, core: int, pc: int, addr: int, is_write: bool = False
    ) -> HierarchyEvent:
        """Issue one demand access (byte address) from ``core``."""
        line = addr >> 6
        counters = self.counters[core]
        counters.accesses += 1
        l1 = self.l1s[core]
        l2 = self.l2s[core]

        if l1.access(line, pc, is_write).hit:
            counters.l1_hits += 1
            return HierarchyEvent(core, pc, line, "l1", None, is_write)

        l2_outcome = l2.access(line, pc, is_write)
        if l2_outcome.hit:
            counters.l2_hits += 1
            if l2_outcome.prefetch_hit == "l2":
                counters.l2_prefetch_hits += 1
            elif l2_outcome.prefetch_hit == "l1":
                counters.l1pf_useful += 1
            self._fill_l1(core, line, pc, is_write)
            return HierarchyEvent(
                core, pc, line, "l2", l2_outcome.prefetch_hit, is_write
            )

        llc_outcome = self.llc.access(line, pc)
        if llc_outcome.hit:
            counters.llc_hits += 1
            hit_level = "llc"
        else:
            counters.dram_accesses += 1
            self.traffic.add("demand", LINE_SIZE)
            self._fill_llc(line, pc)
            hit_level = "dram"
        self._fill_l2(core, line, pc, is_write)
        self._fill_l1(core, line, pc, is_write)
        return HierarchyEvent(core, pc, line, hit_level, None, is_write)

    # -- prefetch path ---------------------------------------------------------

    def prefetch(self, core: int, line: int, pc: int = 0, kind: str = "l2") -> str:
        """Insert a prefetch for ``line`` into ``core``'s L2.

        ``kind`` labels which prefetcher issued it ("l2" for the
        prefetcher under evaluation, "l1" for the baseline stride
        prefetcher).  Returns where the data came from: ``"redundant"``
        (already in L2, dropped), ``"llc"`` (on-chip move, no DRAM
        traffic) or ``"dram"`` (off-chip fetch, counted as prefetch
        traffic).
        """
        counters = self.counters[core]
        l2 = self.l2s[core]
        if l2.contains(line):
            if kind == "l2":
                counters.prefetches_redundant += 1
            else:
                counters.l1pf_redundant += 1
            return "redundant"
        if kind == "l2":
            counters.prefetches_issued += 1
        else:
            counters.l1pf_issued += 1
        if self.llc.contains(line):
            if kind == "l2":
                counters.prefetch_fills_from_llc += 1
            self._fill_l2(core, line, pc, is_write=False, prefetched=kind)
            return "llc"
        if kind == "l2":
            counters.prefetch_fills_from_dram += 1
        else:
            counters.l1pf_fills_from_dram += 1
        self.traffic.add("prefetch", LINE_SIZE)
        self._fill_llc(line, pc)
        self._fill_l2(core, line, pc, is_write=False, prefetched=kind)
        return "dram"

    # -- LLC way partitioning -----------------------------------------------

    def resize_llc_data_ways(self, data_ways: int) -> None:
        """Shrink or grow the LLC's data partition (Triage metadata takes
        the remainder).  Dirty lines flushed by a shrink are written back.
        """
        evicted = self.llc.set_active_ways(data_ways)
        for victim in evicted:
            if victim.dirty:
                self.traffic.add("writeback", LINE_SIZE)

    # -- internals ---------------------------------------------------------

    def _fill_l1(self, core: int, line: int, pc: int, is_write: bool) -> None:
        victim = self.l1s[core].fill(line, pc, dirty=is_write)
        if victim is not None and victim.dirty:
            # Write-back to L2; L2 holds the line in an inclusive-ish
            # hierarchy, but guard for the rare partition-resize race.
            if not self.l2s[core].mark_dirty(victim.line):
                if not self.llc.mark_dirty(victim.line):
                    self.traffic.add("writeback", LINE_SIZE)

    def _fill_l2(
        self,
        core: int,
        line: int,
        pc: int,
        is_write: bool,
        prefetched: Optional[str] = None,
    ) -> None:
        victim = self.l2s[core].fill(line, pc, dirty=is_write, prefetched=prefetched)
        if victim is not None and victim.dirty:
            if not self.llc.mark_dirty(victim.line):
                self.traffic.add("writeback", LINE_SIZE)

    def _fill_llc(self, line: int, pc: int) -> None:
        victim = self.llc.fill(line, pc)
        if victim is not None and victim.dirty:
            self.traffic.add("writeback", LINE_SIZE)
