"""The in-process prefetch serving layer (``repro.serve``).

An asyncio service that accepts sessionized access streams from many
concurrent tenants, batches them through the existing prefetch engines,
and returns prefetch decisions -- staying *robust* under overload via
admission control, deadlines, per-worker circuit breakers and a graceful
degradation ladder.  See ``docs/serving.md`` for the architecture tour
and ``repro loadtest --help`` for driving it from the CLI.
"""

from repro.serve.degrade import (
    DegradeController,
    LadderConfig,
    Tier,
    default_ladder,
    passthrough_tier,
)
from repro.serve.loadgen import (
    SHAPES,
    LoadgenConfig,
    LoadtestReport,
    run_loadtest,
)
from repro.serve.service import (
    CircuitBreaker,
    DeadlineExceeded,
    PrefetchService,
    Request,
    Response,
    ServeError,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
)
from repro.serve.session import SessionTable, TenantBudget, TenantSession
from repro.serve.vtime import VirtualTimeLoop, run_virtual

__all__ = [
    "CircuitBreaker",
    "DeadlineExceeded",
    "DegradeController",
    "LadderConfig",
    "LoadgenConfig",
    "LoadtestReport",
    "PrefetchService",
    "Request",
    "Response",
    "SHAPES",
    "ServeError",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceOverloaded",
    "SessionTable",
    "TenantBudget",
    "TenantSession",
    "Tier",
    "VirtualTimeLoop",
    "default_ladder",
    "passthrough_tier",
    "run_loadtest",
    "run_virtual",
]
