"""Graceful-degradation ladder for the prefetch service.

When the serving layer is overloaded, the right failure mode is not
timeouts for everyone -- it is cheaper answers for everyone.  The paper
makes temporal prefetching affordable by keeping metadata on chip; this
module makes it *survivable* by trading answer quality for service time
under pressure, one rung at a time:

====================  ================================================
tier                  what a request costs / returns
====================  ================================================
``triangel``          the full Triangel family: sampling-gated
                      allocation, lookahead-2 runahead walks (the most
                      accurate and the most expensive tier)
``triage_degree1``    degree-1 Triage on half the metadata budget --
                      the paper's own baseline configuration
``stride``            a PC-stride table: no temporal metadata at all,
                      but still catches regular streams
``passthrough``       no prefetcher; the request is acknowledged with
                      zero candidates (pure load shedding of *work*,
                      not of *requests*)
====================  ================================================

:class:`DegradeController` walks this ladder from queue depth and a
rolling p95 of request latency: one rung down the moment either signal
breaches, one rung back up only after ``recover_intervals`` consecutive
healthy decision intervals (hysteresis, so the ladder does not flap).
Every transition is emitted as a ``serve.degrade`` trace event.

Sessions cache one built engine per tier (see
:class:`repro.serve.session.TenantSession`), so flapping between tiers
does not rebuild prefetchers -- a tenant's Triangel metadata survives a
dip to ``stride`` and is warm again after recovery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from repro.core.triage import TriageConfig
from repro.prefetchers.base import BasePrefetcher
from repro.prefetchers.triangel import TriangelConfig
from repro.serve.session import TenantBudget
from repro.sim.factory import make_prefetcher

KB = 1024

__all__ = [
    "Tier",
    "LadderConfig",
    "DegradeController",
    "default_ladder",
    "passthrough_tier",
]


@dataclass(frozen=True)
class Tier:
    """One rung of the ladder: a named engine recipe plus its cost.

    ``cost`` scales the service's modeled per-request execution time
    (1.0 = the full tier), so degraded tiers genuinely drain the queue
    faster.  ``build`` constructs a fresh engine for one tenant under
    its budget; ``None`` means pass-through (no candidates).
    """

    name: str
    cost: float
    build: Callable[[TenantBudget], Optional[BasePrefetcher]]
    description: str = ""


def _build_triangel(budget: TenantBudget) -> Optional[BasePrefetcher]:
    return make_prefetcher(
        TriangelConfig(
            degree=2,
            metadata_capacity=budget.metadata_bytes,
            epoch_accesses=budget.epoch_accesses,
        )
    )


def _build_triage_degree1(budget: TenantBudget) -> Optional[BasePrefetcher]:
    # Half the tenant's metadata budget: the degraded tier is cheaper in
    # state as well as in time.
    return make_prefetcher(
        TriageConfig(
            degree=1,
            metadata_capacity=max(budget.metadata_bytes // 2, 4 * KB),
            epoch_accesses=budget.epoch_accesses,
        )
    )


def _build_stride(budget: TenantBudget) -> Optional[BasePrefetcher]:
    return make_prefetcher("stride", degree=1)


def _build_passthrough(budget: TenantBudget) -> Optional[BasePrefetcher]:
    return None


def default_ladder() -> List[Tier]:
    """The full ladder, most capable first (index = degradation level)."""
    return [
        Tier(
            "triangel", 1.0, _build_triangel,
            "full Triangel: sampling, lookahead-2 runahead, reuse-aware "
            "replacement",
        ),
        Tier(
            "triage_degree1", 0.6, _build_triage_degree1,
            "degree-1 Triage on half the metadata budget",
        ),
        Tier(
            "stride", 0.25, _build_stride,
            "PC-stride only: no temporal metadata",
        ),
        passthrough_tier(),
    ]


def passthrough_tier() -> Tier:
    return Tier(
        "passthrough", 0.05, _build_passthrough,
        "acknowledge with zero candidates",
    )


@dataclass
class LadderConfig:
    """Thresholds and hysteresis for :class:`DegradeController`.

    ``queue_high``/``queue_low`` are queue-fill fractions (depth over
    watermark); ``p95_target_s`` is the latency SLO the ladder defends.
    A decision interval breaching either high signal steps one rung
    down; ``recover_intervals`` consecutive intervals below *both* low
    signals step one rung up.
    """

    p95_target_s: float = 0.100
    queue_high: float = 0.75
    queue_low: float = 0.25
    recover_intervals: int = 4
    latency_window: int = 256
    interval_s: float = 0.25


class DegradeController:
    """Walks the tier ladder from queue depth + rolling p95 latency."""

    def __init__(
        self,
        ladder: Optional[Sequence[Tier]] = None,
        config: Optional[LadderConfig] = None,
        emit: Optional[Callable] = None,
    ):
        self.ladder: List[Tier] = list(ladder) if ladder is not None else default_ladder()
        if not self.ladder:
            raise ValueError("ladder needs at least one tier")
        self.config = config or LadderConfig()
        self.emit = emit
        self.level = 0
        self.transitions = 0
        self._healthy_streak = 0
        self._latencies: Deque[float] = deque(maxlen=self.config.latency_window)

    @property
    def tier(self) -> Tier:
        return self.ladder[self.level]

    def note_latency(self, seconds: float) -> None:
        """Record one completed request's latency (queue wait included)."""
        self._latencies.append(seconds)

    def p95_s(self) -> float:
        """Rolling p95 over the latency window (0.0 when empty)."""
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        idx = int(round(0.95 * (len(ordered) - 1)))
        return ordered[idx]

    def decide(
        self, queue_fill: float, now: float = 0.0
    ) -> Optional[Tuple[str, str]]:
        """One decision interval; returns ``(from, to)`` on a transition.

        ``queue_fill`` is current depth over the admission watermark.
        """
        cfg = self.config
        p95 = self.p95_s()
        pressured = queue_fill >= cfg.queue_high or p95 > cfg.p95_target_s
        healthy = queue_fill <= cfg.queue_low and p95 <= cfg.p95_target_s
        if pressured:
            self._healthy_streak = 0
            if self.level < len(self.ladder) - 1:
                return self._step(
                    self.level + 1,
                    "queue" if queue_fill >= cfg.queue_high else "latency",
                    queue_fill, p95, now,
                )
            return None
        if not healthy:
            self._healthy_streak = 0
            return None
        self._healthy_streak += 1
        if self.level > 0 and self._healthy_streak >= cfg.recover_intervals:
            self._healthy_streak = 0
            return self._step(self.level - 1, "recovered", queue_fill, p95, now)
        return None

    def _step(
        self, to_level: int, reason: str, queue_fill: float, p95: float, now: float
    ) -> Tuple[str, str]:
        frm, to = self.ladder[self.level].name, self.ladder[to_level].name
        self.level = to_level
        self.transitions += 1
        if self.emit is not None:
            self.emit(
                "serve.degrade",
                "info",
                from_tier=frm,
                to_tier=to,
                reason=reason,
                queue_fill=round(queue_fill, 4),
                p95_s=round(p95, 6),
                t=round(now, 6),
            )
        return frm, to
