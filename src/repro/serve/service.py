"""The asyncio prefetch service: robust by construction.

:class:`PrefetchService` accepts sessionized access batches from many
concurrent tenants and returns prefetch decisions computed by the
tenant's budgeted engine (:mod:`repro.serve.session`) at the ladder's
current tier (:mod:`repro.serve.degrade`).  Robustness machinery, in the
order a request meets it:

1. **Admission control / backpressure** -- the request queue is bounded
   at ``queue_watermark``; a submit finding it full is rejected
   *immediately* with :class:`ServiceOverloaded` (the 429 of this
   in-process world).  Shedding at the door is what keeps latency
   bounded for the requests that are admitted.
2. **Deadlines** -- every request carries an absolute deadline on the
   event-loop clock.  Workers reject expired requests when dequeuing
   (``deadline_queued``) and re-check after the modeled execution time,
   *before* touching session state (``deadline_executing``) -- so a
   deadline rejection is never a half-applied batch.
3. **Circuit breakers** -- each backend worker owns a
   :class:`CircuitBreaker`.  Consecutive failures trip it open; an open
   breaker takes the worker off the queue for a cooldown, then
   half-opens and risks one probe request.  A failed probe re-opens with
   exponential backoff (capped); a successful one closes the breaker.
4. **Retries** -- a worker failure (e.g. the ``serve_worker_crash``
   fault) re-enqueues the request with an incremented attempt counter.
   :mod:`repro.faults` sites stop firing at ``max_attempt``, so
   ``max_retries >= DEFAULT_MAX_ATTEMPT`` guarantees convergence: every
   admitted request is eventually answered or explicitly rejected.
5. **Degradation** -- a monitor task periodically feeds queue fill and
   rolling p95 latency to the :class:`~repro.serve.degrade.DegradeController`
   and sweeps idle sessions.

The *only* ways a request resolves: a correct :class:`Response` at some
tier, :class:`ServiceOverloaded`, :class:`DeadlineExceeded`, or
:class:`ServiceClosed`.  Anything else escaping is a bug, and the chaos
acceptance test treats it as one.

Time: all waiting goes through ``loop.time()`` / ``asyncio.sleep``, so
running under :class:`repro.serve.vtime.VirtualTimeLoop` makes the whole
service -- queue waits, breaker cooldowns, p95s -- deterministic.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.serve.degrade import DegradeController, LadderConfig, Tier
from repro.serve.session import SessionTable, TenantBudget

__all__ = [
    "ServeError",
    "ServiceOverloaded",
    "DeadlineExceeded",
    "ServiceClosed",
    "ServiceConfig",
    "CircuitBreaker",
    "Request",
    "Response",
    "PrefetchService",
]


class ServeError(RuntimeError):
    """Base class of every explicit service rejection."""


class ServiceOverloaded(ServeError):
    """Admission control shed this request (the 429 analogue)."""


class DeadlineExceeded(ServeError):
    """The request's deadline expired before it could be answered."""


class ServiceClosed(ServeError):
    """The service is not accepting requests (not started or draining)."""


@dataclass
class ServiceConfig:
    """Tunables for :class:`PrefetchService` (all times in seconds)."""

    n_workers: int = 4
    #: Maximum queued requests; submits beyond this are shed.
    queue_watermark: int = 64
    default_deadline_s: float = 0.5
    #: Re-enqueues after worker failures; >= faults.DEFAULT_MAX_ATTEMPT
    #: so deterministic fault sites are guaranteed to converge.
    max_retries: int = 3
    #: Largest accepted batch (accesses per request).
    batch_limit: int = 512
    # Modeled execution time: (base + per_access * len(batch)) * tier.cost.
    base_service_s: float = 0.004
    per_access_s: float = 0.00005
    #: Stall injected by the ``serve_slow_reply`` fault site.
    slow_reply_s: float = 0.4
    # Circuit breaker: consecutive failures to trip, base cooldown,
    # exponential backoff on failed probes, cooldown cap.
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    breaker_backoff: float = 2.0
    breaker_cooldown_max_s: float = 30.0
    #: Monitor cadence: degradation decisions + idle-session sweeps.
    monitor_interval_s: float = 0.25
    # Session table geometry (see SessionTable).
    session_shards: int = 8
    max_sessions: int = 1024
    session_idle_ttl_s: float = 120.0
    budget: TenantBudget = field(default_factory=TenantBudget)


class CircuitBreaker:
    """Per-worker breaker: closed -> open -> half-open -> closed/open."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        name: str,
        threshold: int,
        cooldown_s: float,
        backoff: float = 2.0,
        cooldown_max_s: float = 30.0,
        emit: Optional[Callable] = None,
    ):
        self.name = name
        self.threshold = max(1, threshold)
        self.base_cooldown_s = cooldown_s
        self.backoff = backoff
        self.cooldown_max_s = cooldown_max_s
        self.emit = emit
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.probes_failed = 0
        self._cooldown_s = cooldown_s
        self._opened_at = 0.0

    def blocked_for(self, now: float) -> float:
        """Seconds this worker must stay off the queue (0 = may serve).

        An open breaker whose cooldown elapsed transitions to half-open
        here: the caller's next request is the probe.
        """
        if self.state != self.OPEN:
            return 0.0
        remaining = self._opened_at + self._cooldown_s - now
        if remaining > 0:
            return remaining
        self._transition(self.HALF_OPEN, now, reason="cooldown_elapsed")
        return 0.0

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self._cooldown_s = self.base_cooldown_s
            self._transition(self.CLOSED, now, reason="probe_ok")

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            # Failed probe: re-open, backing the cooldown off.
            self.probes_failed += 1
            self._cooldown_s = min(
                self._cooldown_s * self.backoff, self.cooldown_max_s
            )
            self._open(now, reason="probe_failed")
        elif (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self._open(now, reason="threshold")

    def _open(self, now: float, reason: str) -> None:
        self.trips += 1
        self._opened_at = now
        self._transition(self.OPEN, now, reason=reason)

    def _transition(self, to: str, now: float, reason: str) -> None:
        frm, self.state = self.state, to
        if self.emit is not None:
            self.emit(
                "serve.breaker",
                "info" if to != self.OPEN else "warn",
                worker=self.name,
                from_state=frm,
                to_state=to,
                reason=reason,
                cooldown_s=round(self._cooldown_s, 6),
                t=round(now, 6),
            )

    def snapshot(self) -> Dict[str, object]:
        return {
            "worker": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "probes_failed": self.probes_failed,
            "cooldown_s": self._cooldown_s,
        }


@dataclass
class Request:
    """One admitted unit of work (internal; clients use ``submit``)."""

    tenant: str
    batch: Sequence[Tuple[int, int]]
    deadline: float
    enqueued_at: float
    token: str
    attempt: int = 0
    future: asyncio.Future = None  # type: ignore[assignment]
    #: Root ``serve.request`` span and the open ``serve.queued`` child;
    #: both ``None`` whenever tracing is off (zero span allocations).
    span: Optional[object] = None
    queued_span: Optional[object] = None


@dataclass
class Response:
    """A successful prefetch decision."""

    tenant: str
    #: The tenant's access sequence number after this batch applied.
    seq: int
    tier: str
    prefetch_lines: List[int]
    latency_s: float
    worker: str
    attempts: int


class PrefetchService:
    """See the module docstring; construct, ``start()``, ``submit()``."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        ladder: Optional[Sequence[Tier]] = None,
        ladder_config: Optional[LadderConfig] = None,
        emit: Optional[Callable] = None,
    ):
        self.config = config or ServiceConfig()
        if self.config.max_retries < faults.DEFAULT_MAX_ATTEMPT:
            raise ValueError(
                "max_retries must be >= faults.DEFAULT_MAX_ATTEMPT "
                f"({faults.DEFAULT_MAX_ATTEMPT}) so injected worker "
                "failures are guaranteed to converge"
            )
        self.emit = emit if emit is not None else self._obs_emit
        self.controller = DegradeController(
            ladder=ladder, config=ladder_config, emit=self.emit
        )
        self.sessions = SessionTable(
            n_shards=self.config.session_shards,
            max_sessions=self.config.max_sessions,
            idle_ttl_s=self.config.session_idle_ttl_s,
            budget=self.config.budget,
            emit=self.emit,
        )
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "served": 0,
            "shed_overload": 0,
            "shed_deadline_queued": 0,
            "shed_deadline_executing": 0,
            "worker_failures": 0,
            "retries": 0,
            "rejected_closed": 0,
        }
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []
        self._monitor: Optional[asyncio.Task] = None
        self._breakers: List[CircuitBreaker] = []
        self._running = False
        self._draining = False
        self._inflight = 0

    # -- obs glue ---------------------------------------------------------

    @staticmethod
    def _obs_emit(category: str, severity: str = "info", **fields) -> None:
        """Default event sink: the active obs session, if any."""
        from repro.obs import get_session

        session = get_session()
        if session is not None:
            session.events.emit(category, severity, **fields)

    @staticmethod
    def _tracer():
        """The active session's tracer when tracing is on, else ``None``."""
        from repro.obs import get_session

        session = get_session()
        if session is None or not session.tracer.enabled:
            return None
        return session.tracer

    def _finish_queued(self, request: Request, t: float) -> None:
        if request.queued_span is not None:
            request.queued_span.tracer.finish(request.queued_span, t=t)
            request.queued_span = None

    def _finish_request_span(
        self, request: Request, status: str, t: Optional[float] = None
    ) -> None:
        if request.span is not None:
            self._finish_queued(request, t if t is not None else self._now())
            request.span.tracer.finish(
                request.span, status=status,
                t=t if t is not None else self._now(),
            )

    # -- time -------------------------------------------------------------

    def _now(self) -> float:
        return asyncio.get_running_loop().time()

    async def _sleep(self, seconds: float) -> None:
        if seconds > 0:
            await asyncio.sleep(seconds)

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            raise RuntimeError("service already started")
        cfg = self.config
        self._queue = asyncio.Queue(maxsize=cfg.queue_watermark)
        self._breakers = [
            CircuitBreaker(
                f"worker-{i}",
                threshold=cfg.breaker_threshold,
                cooldown_s=cfg.breaker_cooldown_s,
                backoff=cfg.breaker_backoff,
                cooldown_max_s=cfg.breaker_cooldown_max_s,
                emit=self.emit,
            )
            for i in range(cfg.n_workers)
        ]
        self._running = True
        self._draining = False
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker(i))
            for i in range(cfg.n_workers)
        ]
        self._monitor = asyncio.get_running_loop().create_task(self._monitor_loop())

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting work; optionally let queued requests finish."""
        if not self._running:
            return
        self._draining = True
        if drain:
            await self._queue.join()
        self._running = False
        for task in self._workers:
            task.cancel()
        if self._monitor is not None:
            self._monitor.cancel()
        await asyncio.gather(
            *self._workers, self._monitor, return_exceptions=True
        )
        self._workers = []
        self._monitor = None
        # Reject anything still queued (drain=False path) explicitly.
        while self._queue is not None and not self._queue.empty():
            request = self._queue.get_nowait()
            self._resolve_error(
                request, ServiceClosed("service stopped"), "rejected_closed"
            )
            self._queue.task_done()

    # -- the front door ---------------------------------------------------

    async def submit(
        self,
        tenant: str,
        batch: Sequence[Tuple[int, int]],
        deadline_s: Optional[float] = None,
    ) -> Response:
        """One prefetch request; returns a Response or raises a ServeError."""
        if not self._running or self._draining:
            self.counters["rejected_closed"] += 1
            raise ServiceClosed("service is not accepting requests")
        if len(batch) > self.config.batch_limit:
            raise ValueError(
                f"batch of {len(batch)} exceeds batch_limit "
                f"{self.config.batch_limit}"
            )
        now = self._now()
        index = self.counters["submitted"]
        self.counters["submitted"] += 1
        token = f"{tenant}:{index}"
        tracer = self._tracer()
        span = None
        if tracer is not None:
            # The trace id is derived from the seeded token, and every
            # timestamp is the event-loop clock: under virtual time the
            # whole trace set is bit-reproducible.
            span = tracer.start_trace(
                "serve.request", token, t=now,
                tenant=tenant, token=token, batch=len(batch),
            )
        request = Request(
            tenant=tenant,
            batch=batch,
            deadline=now + (
                deadline_s if deadline_s is not None
                else self.config.default_deadline_s
            ),
            enqueued_at=now,
            token=token,
            future=asyncio.get_running_loop().create_future(),
            span=span,
        )
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            self.counters["shed_overload"] += 1
            if span is not None:
                admit = tracer.start_span(
                    "serve.admit", parent=span, t=now,
                    depth=self._queue.qsize(),
                    watermark=self.config.queue_watermark,
                )
                tracer.finish(admit, status="shed_overload", t=now)
                tracer.finish(span, status="shed_overload", t=now)
            self.emit(
                "serve.shed", "debug",
                tenant=tenant, reason="queue_full",
                depth=self._queue.qsize(),
                watermark=self.config.queue_watermark,
            )
            raise ServiceOverloaded(
                f"request queue at watermark "
                f"({self.config.queue_watermark}); request shed"
            ) from None
        if span is not None:
            admit = tracer.start_span(
                "serve.admit", parent=span, t=now,
                depth=self._queue.qsize(),
                watermark=self.config.queue_watermark,
            )
            tracer.finish(admit, t=now)
            request.queued_span = tracer.start_span(
                "serve.queued", parent=span, t=now, attempt=0
            )
        return await request.future

    # -- workers ----------------------------------------------------------

    async def _worker(self, idx: int) -> None:
        breaker = self._breakers[idx]
        name = breaker.name
        while True:
            blocked = breaker.blocked_for(self._now())
            if blocked > 0:
                await self._sleep(blocked)
                continue
            request = await self._queue.get()
            try:
                await self._handle(request, name, breaker)
            finally:
                self._queue.task_done()

    async def _handle(
        self, request: Request, worker: str, breaker: CircuitBreaker
    ) -> None:
        now = self._now()
        if request.future.done():
            return
        self._finish_queued(request, now)
        span = request.span
        tracer = span.tracer if span is not None else None
        if span is not None:
            # The breaker gate is a point decision at dequeue: which
            # worker picked the request up and in what breaker state.
            gate = tracer.start_span(
                "serve.breaker_gate", parent=span, t=now,
                worker=worker, state=breaker.state,
            )
            tracer.finish(gate, t=now)
        if now >= request.deadline:
            self._resolve_error(
                request,
                DeadlineExceeded(
                    f"deadline expired while queued "
                    f"({now - request.enqueued_at:.3f}s in queue)"
                ),
                "shed_deadline_queued",
            )
            return
        tier = self.controller.tier
        self._inflight += 1
        exec_span = None
        if span is not None:
            exec_span = tracer.start_span(
                "serve.execute", parent=span, t=now,
                worker=worker, tier=tier.name, attempt=request.attempt,
            )
        try:
            response = await self._execute(request, tier, worker, exec_span)
        except faults.InjectedFault:
            now = self._now()
            if exec_span is not None:
                tracer.finish(exec_span, status="fault", t=now)
            breaker.record_failure(now)
            self.counters["worker_failures"] += 1
            self.emit(
                "serve.worker_fail", "debug",
                worker=worker, tenant=request.tenant,
                attempt=request.attempt, token=request.token,
            )
            self._retry(request)
            return
        except DeadlineExceeded as exc:
            # Expired mid-execution: session state was *not* mutated
            # (the deadline gate precedes apply), so rejecting is safe.
            now = self._now()
            if exec_span is not None:
                tracer.finish(exec_span, status="deadline", t=now)
            breaker.record_success(now)
            self._resolve_error(request, exc, "shed_deadline_executing")
            return
        finally:
            self._inflight -= 1
        now = self._now()
        if exec_span is not None:
            tracer.finish(exec_span, t=now)
        breaker.record_success(now)
        self.counters["served"] += 1
        self.controller.note_latency(response.latency_s)
        self._finish_request_span(request, "served", t=now)
        if not request.future.done():
            request.future.set_result(response)

    async def _execute(
        self, request: Request, tier: Tier, worker: str,
        exec_span: Optional[object] = None,
    ) -> Response:
        cfg = self.config
        # Fault sites, in failure order: a crash aborts before any work;
        # a slow reply stalls before the deadline gate, so it surfaces
        # as deadline_executing when the stall exceeds the budget.
        faults.fire("serve_worker_crash", request.token, request.attempt)
        if faults.should_fire("serve_slow_reply", request.token, request.attempt):
            await self._sleep(cfg.slow_reply_s)
        await self._sleep(
            (cfg.base_service_s + cfg.per_access_s * len(request.batch))
            * tier.cost
        )
        now = self._now()
        if now >= request.deadline or faults.should_fire(
            "serve_deadline", request.token, request.attempt
        ):
            raise DeadlineExceeded(
                f"deadline expired while executing (attempt {request.attempt})"
            )
        session = self.sessions.get_or_create(request.tenant, now)
        apply_span = None
        if exec_span is not None:
            apply_span = exec_span.tracer.start_span(
                "serve.session_apply", parent=exec_span, t=now,
                tenant=request.tenant,
            )
        lines = session.apply(request.batch, tier, now=now)
        if apply_span is not None:
            apply_span.tracer.finish(apply_span, t=self._now())
        return Response(
            tenant=request.tenant,
            seq=session.seq,
            tier=tier.name,
            prefetch_lines=lines,
            latency_s=self._now() - request.enqueued_at,
            worker=worker,
            attempts=request.attempt + 1,
        )

    def _retry(self, request: Request) -> None:
        """Re-enqueue a failed request, or reject it explicitly."""
        now = self._now()
        if now >= request.deadline:
            self._resolve_error(
                request,
                DeadlineExceeded(
                    f"deadline expired after worker failure "
                    f"(attempt {request.attempt})"
                ),
                "shed_deadline_queued",
            )
            return
        if request.attempt + 1 > self.config.max_retries:
            self._resolve_error(
                request,
                ServiceOverloaded(
                    f"no healthy worker answered within "
                    f"{self.config.max_retries} retries"
                ),
                "shed_overload",
            )
            return
        request.attempt += 1
        self.counters["retries"] += 1
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            self.counters["shed_overload"] += 1
            self._resolve_error(
                request,
                ServiceOverloaded("queue full while retrying after failure"),
                counter=None,
            )
            return
        if request.span is not None:
            request.span.annotate(retries=request.attempt)
            request.queued_span = request.span.tracer.start_span(
                "serve.queued", parent=request.span, t=now,
                attempt=request.attempt,
            )

    def _resolve_error(
        self, request: Request, error: ServeError, counter: Optional[str]
    ) -> None:
        if counter is not None:
            self.counters[counter] += 1
        self._finish_request_span(request, counter or "shed_overload")
        if not request.future.done():
            request.future.set_exception(error)

    # -- monitor ----------------------------------------------------------

    async def _monitor_loop(self) -> None:
        cfg = self.config
        tick = 0
        while True:
            await self._sleep(cfg.monitor_interval_s)
            now = self._now()
            depth = self._queue.qsize()
            fill = depth / max(1, cfg.queue_watermark)
            self.controller.decide(fill, now=now)
            self.sessions.sweep_idle(now)
            self._sample_pressure(tick, now, depth)
            tick += 1

    def _sample_pressure(self, tick: int, now: float, depth: int) -> None:
        """Serving-pressure gauges + one epoch row per monitor tick.

        With obs active, the epoch time-series (and therefore reports)
        covers queue depth, in-flight work and the degrade level over
        the run, not just the engines' per-epoch counters.
        """
        from repro.obs import get_session

        session = get_session()
        if session is None:
            return
        session.registry.gauge("serve.queue_depth").set(depth)
        session.registry.gauge("serve.inflight").set(self._inflight)
        session.registry.gauge("serve.degrade_level").set(self.controller.level)
        session.sampler.sample(
            run="serve",
            epoch=tick,
            t=round(now, 6),
            queue_depth=depth,
            inflight=self._inflight,
            degrade_level=self.controller.level,
            p95_s=round(self.controller.p95_s(), 6),
        )

    # -- surfaces ---------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """A liveness/health snapshot (the item-5 report surface)."""
        breakers = [b.snapshot() for b in self._breakers]
        open_count = sum(1 for b in breakers if b["state"] != "closed")
        depth = self._queue.qsize() if self._queue is not None else 0
        fill = depth / max(1, self.config.queue_watermark)
        if not self._running:
            status = "closed"
        elif (breakers and open_count == len(breakers)) or fill >= 1.0:
            status = "overloaded"
        elif self.controller.level > 0 or open_count:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "tier": self.controller.tier.name,
            "degrade_level": self.controller.level,
            "degrade_transitions": self.controller.transitions,
            "queue_depth": depth,
            "queue_watermark": self.config.queue_watermark,
            "inflight": self._inflight,
            "p95_s": round(self.controller.p95_s(), 6),
            "breakers": breakers,
            "sessions": self.sessions.stats(),
            "counters": dict(self.counters),
        }

    def ready(self) -> Dict[str, object]:
        """Readiness: can this service accept a request right now?"""
        reasons = []
        if not self._running:
            reasons.append("not started")
        if self._draining:
            reasons.append("draining")
        if self._breakers and all(
            b.state == CircuitBreaker.OPEN for b in self._breakers
        ):
            reasons.append("all breakers open")
        if (
            self._queue is not None
            and self._queue.qsize() >= self.config.queue_watermark
        ):
            reasons.append("queue at watermark")
        return {"ready": not reasons, "reasons": reasons}

    def metrics(self) -> str:
        """Prometheus text exposition: counters, pressure, health, registry.

        The scrape surface next to :meth:`health`/:meth:`ready`: the
        service's own counters and pressure gauges plus, when an obs
        session is active, its whole metrics registry.  Output is
        sorted, so identical service states render byte-identically;
        ``repro metrics --check`` lints it with
        :func:`repro.obs.exposition.parse_text`.
        """
        from repro.obs import get_session
        from repro.obs.exposition import render

        health = self.health()
        counters = {f"serve.{name}": value for name, value in self.counters.items()}
        counters["serve.breaker_trips"] = sum(b.trips for b in self._breakers)
        counters["serve.sessions_created"] = self.sessions.created
        gauges = {
            "serve.queue_depth": health["queue_depth"],
            "serve.queue_watermark": self.config.queue_watermark,
            "serve.inflight": health["inflight"],
            "serve.degrade_level": health["degrade_level"],
            "serve.degrade_transitions": health["degrade_transitions"],
            "serve.p95_seconds": health["p95_s"],
            "serve.breakers_open": sum(
                1 for b in self._breakers if b.state != CircuitBreaker.CLOSED
            ),
            "serve.sessions_active": len(self.sessions),
        }
        states = {
            "serve.health": health["status"],
            "serve.tier": health["tier"],
        }
        session = get_session()
        registry = session.registry if session is not None else None
        if registry is not None:
            # The monitor ticks publish some of the same gauges into the
            # registry; drop our copies so no series renders twice.
            existing = set(registry.names())
            counters = {k: v for k, v in counters.items() if k not in existing}
            gauges = {k: v for k, v in gauges.items() if k not in existing}
        return render(registry, counters=counters, gauges=gauges, states=states)
