"""Virtual-time asyncio event loop for deterministic serving tests.

The serving layer (:mod:`repro.serve.service`) measures queue waits,
deadlines and latency percentiles on *event-loop time*
(``loop.time()``).  On a normal loop that is the wall clock, so a load
test's p50/p95 would wobble with the host -- useless as a regression
gate.  :class:`VirtualTimeLoop` replaces the clock with a virtual one
that **jumps** to the next scheduled timer whenever the loop has nothing
ready to run: a ten-minute diurnal load shape executes in milliseconds,
every ``await asyncio.sleep(x)`` advances time by exactly ``x``, and two
runs of the same scenario produce bit-identical timelines.  That is what
lets ``BENCH_ext_serving.json`` gate p95 latency and shed rate in CI the
same way the figure trajectories gate KPIs.

The loop is only suitable for pure-computation workloads (no sockets,
no subprocesses): anything that parks in the selector with no timer
armed would hang, so :meth:`VirtualTimeLoop._run_once` asserts timers
exist whenever it would otherwise block forever.

Determinism note: callbacks scheduled for the same virtual instant run
in submission order (asyncio's scheduled-heap tie-break is stable for a
single-threaded program), so the whole serving simulation is a pure
function of its inputs and the armed fault plan.
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Awaitable, TypeVar

T = TypeVar("T")

__all__ = ["VirtualTimeLoop", "run_virtual"]


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """A selector loop whose clock jumps to the next timer when idle."""

    def __init__(self):
        super().__init__(selectors.SelectSelector())
        self._virtual_now = 0.0

    def time(self) -> float:
        return self._virtual_now

    def _run_once(self) -> None:
        # With nothing ready, jump the clock to the earliest timer so the
        # selector never actually waits; with nothing ready *and* no
        # timers the loop would block forever on the selector, which in a
        # pure-computation simulation means a deadlocked await graph.
        if not self._ready:
            while self._scheduled and self._scheduled[0]._cancelled:
                asyncio.base_events.heapq.heappop(self._scheduled)
            if self._scheduled:
                when = self._scheduled[0]._when
                if when > self._virtual_now:
                    self._virtual_now = when
            elif not self._stopping:
                raise RuntimeError(
                    "VirtualTimeLoop is idle with no timers scheduled: "
                    "the awaited tasks can never make progress"
                )
        super()._run_once()


def run_virtual(coro: Awaitable[T]) -> T:
    """``asyncio.run`` on a fresh :class:`VirtualTimeLoop`.

    The loop is closed afterwards and never installed as the global
    event-loop policy, so callers (pytest, the CLI) see no side effects.
    """
    loop = VirtualTimeLoop()
    try:
        return loop.run_until_complete(coro)
    finally:
        try:
            _cancel_pending(loop)
        finally:
            loop.close()


def _cancel_pending(loop: VirtualTimeLoop) -> None:
    """Cancel any stragglers so ``loop.close()`` is clean."""
    pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
    if not pending:
        return
    for task in pending:
        task.cancel()
    loop.run_until_complete(
        asyncio.gather(*pending, return_exceptions=True)
    )
