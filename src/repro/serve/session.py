"""Per-tenant serving sessions and the sharded, bounded session table.

A *tenant* is one client stream (one user, one core, one trace shard).
Each tenant gets a :class:`TenantSession` owning its own prefetcher
engines -- metadata is never shared across tenants, which is both the
multi-tenant isolation story and what makes the paper's budget question
concrete: every tenant's temporal metadata is capped by a
:class:`TenantBudget`, exactly as an on-chip store caps a core.

Sessions live in a :class:`SessionTable` sharded by tenant hash.  Each
shard is an LRU bounded two ways, mirroring the ``_TRACE_MEMO`` pattern
in :mod:`repro.sim.parallel`:

* **capacity** -- a shard over its session limit evicts its
  least-recently-used tenant;
* **idle TTL** -- the service's monitor loop sweeps sessions idle past
  ``idle_ttl_s``, so millions of abandoned tenants cannot pin memory.

Every eviction emits a ``serve.session_evict`` trace event with the
reason.  An evicted tenant that returns simply gets a cold session --
the same contract as a metadata-store eviction in the simulator.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

KB = 1024

__all__ = ["TenantBudget", "TenantSession", "SessionTable"]


@dataclass(frozen=True)
class TenantBudget:
    """Per-tenant resource caps applied when building engines.

    ``metadata_bytes`` caps the Triage/Triangel metadata store exactly
    like the paper's on-chip budget; ``epoch_accesses`` scales the
    partition/epoch machinery to serving-sized streams.
    """

    metadata_bytes: int = 64 * KB
    epoch_accesses: int = 1_000

    def __post_init__(self) -> None:
        if self.metadata_bytes <= 0:
            raise ValueError("metadata_bytes must be positive")


class TenantSession:
    """One tenant's engines, sequence state and accounting."""

    __slots__ = (
        "tenant", "budget", "created_at", "last_active", "seq",
        "served", "served_by_tier", "_engines",
    )

    def __init__(self, tenant: str, budget: TenantBudget, now: float = 0.0):
        self.tenant = tenant
        self.budget = budget
        self.created_at = now
        self.last_active = now
        #: Accesses applied so far; echoed in responses so a client can
        #: detect whether a timed-out request was ever applied.
        self.seq = 0
        self.served = 0
        self.served_by_tier: Dict[str, int] = {}
        self._engines: Dict[str, object] = {}

    def engine_for(self, tier) -> Optional[object]:
        """The tenant's engine for ``tier``, built on first use.

        Engines are cached per tier name, so a tenant degraded to
        ``stride`` and later recovered resumes its warm Triangel
        metadata rather than rebuilding from scratch.
        """
        if tier.name not in self._engines:
            self._engines[tier.name] = tier.build(self.budget)
        return self._engines[tier.name]

    def apply(
        self, batch: Sequence[Tuple[int, int]], tier, now: float = 0.0
    ) -> List[int]:
        """Feed one batch of ``(pc, line)`` accesses; return prefetch lines.

        Mutates session state -- callers must only invoke this once per
        *accepted* request (the service checks deadlines first), so a
        rejected request provably leaves the session untouched.
        """
        engine = self.engine_for(tier)
        lines: List[int] = []
        seen = set()
        if engine is None:  # passthrough tier: acknowledge, no candidates
            self.seq += len(batch)
        else:
            for pc, line in batch:
                for candidate in engine.observe(pc, line):
                    if candidate.line not in seen:
                        seen.add(candidate.line)
                        lines.append(candidate.line)
                self.seq += 1
        self.last_active = now
        self.served += 1
        self.served_by_tier[tier.name] = self.served_by_tier.get(tier.name, 0) + 1
        return lines

    def tiers_built(self) -> List[str]:
        return sorted(self._engines)


class SessionTable:
    """Sharded LRU of tenant sessions with capacity + idle-TTL bounds."""

    def __init__(
        self,
        n_shards: int = 8,
        max_sessions: int = 1024,
        idle_ttl_s: float = 300.0,
        budget: Optional[TenantBudget] = None,
        emit: Optional[Callable] = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if max_sessions < n_shards:
            raise ValueError("max_sessions must be >= n_shards")
        self.n_shards = n_shards
        #: Per-shard capacity; the table's global bound is the sum.
        self.shard_capacity = max(1, max_sessions // n_shards)
        self.idle_ttl_s = idle_ttl_s
        self.budget = budget or TenantBudget()
        self.emit = emit
        self._shards: List[OrderedDict] = [OrderedDict() for _ in range(n_shards)]
        self.evictions: Dict[str, int] = {"capacity": 0, "idle": 0}
        self.created = 0

    def _shard_of(self, tenant: str) -> OrderedDict:
        # sha-free stable shard: Python's str hash is randomized per
        # process, which would make shard placement (and thus eviction
        # order) nondeterministic across runs.
        digest = 0
        for ch in tenant:
            digest = (digest * 131 + ord(ch)) & 0xFFFFFFFF
        return self._shards[digest % self.n_shards]

    def get_or_create(self, tenant: str, now: float = 0.0) -> TenantSession:
        """The tenant's session, freshly built if absent (LRU-touched)."""
        shard = self._shard_of(tenant)
        session = shard.get(tenant)
        if session is None:
            session = TenantSession(tenant, self.budget, now=now)
            shard[tenant] = session
            self.created += 1
            while len(shard) > self.shard_capacity:
                victim_id, victim = next(iter(shard.items()))
                del shard[victim_id]
                self._note_eviction(victim, "capacity", now)
        else:
            shard.move_to_end(tenant)
        session.last_active = now
        return session

    def sweep_idle(self, now: float) -> int:
        """Evict every session idle past the TTL; returns how many."""
        evicted = 0
        for shard in self._shards:
            stale = [
                tenant
                for tenant, session in shard.items()
                if now - session.last_active > self.idle_ttl_s
            ]
            for tenant in stale:
                victim = shard.pop(tenant)
                self._note_eviction(victim, "idle", now)
                evicted += 1
        return evicted

    def _note_eviction(self, session: TenantSession, reason: str, now: float) -> None:
        self.evictions[reason] = self.evictions.get(reason, 0) + 1
        if self.emit is not None:
            self.emit(
                "serve.session_evict",
                "info",
                tenant=session.tenant,
                reason=reason,
                served=session.served,
                idle_s=round(now - session.last_active, 6),
                tiers=session.tiers_built(),
            )

    def get(self, tenant: str) -> Optional[TenantSession]:
        """Peek without creating or LRU-touching (tests, health)."""
        return self._shard_of(tenant).get(tenant)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._shard_of(tenant)

    def stats(self) -> Dict[str, object]:
        return {
            "sessions": len(self),
            "shards": self.n_shards,
            "shard_capacity": self.shard_capacity,
            "created": self.created,
            "evictions": dict(self.evictions),
        }
