"""Shared configuration parsing: the warn-once invalid-env discipline.

Several subsystems read ambient ``REPRO_*`` knobs and all want the same
behaviour for bad values: ignore them **loudly** -- one stderr warning
per (variable, value) per process plus a ``config.invalid_env`` trace
event on the active obs session -- instead of silently clamping.  That
pattern used to be re-implemented in ``repro.resilience``,
``repro.obs.events``, ``repro.sim.parallel`` and ``repro.faults``; this
module is now the single owner.  The public helpers:

* :func:`positive_env` -- a number ``>= minimum`` from an environment
  variable, or ``None`` (unset or invalid-and-warned);
* :func:`warn_once` -- the underlying dedup'd stderr + obs-event
  emitter, for warnings that are not about numeric env values (e.g.
  ``repro.faults``' unknown-site clauses).

Knobs parsed here on behalf of the observability layer:

``REPRO_TRACE``
    Span-ring capacity for :mod:`repro.obs.tracing`.  Unset -> tracing
    enabled at the default capacity; ``0`` -> tracing disabled;
    a positive integer -> enabled with that capacity.
``REPRO_SLO``
    Serve p95 latency target in seconds for
    :func:`repro.obs.slo.default_serve_slos` (defaults to the
    degradation ladder's 0.100 s target).
``REPRO_ENGINE``
    Default single-core simulation engine for
    :func:`repro.sim.simulate`: ``analytic`` (the scalar reference
    engine) or ``batched`` (the struct-of-arrays fast path, see
    ``docs/performance.md``).  Unset -> ``analytic``; anything else
    warns once and falls back to ``analytic``.  An explicit
    ``simulate(..., engine=...)`` argument always wins over the knob.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Optional, Tuple

__all__ = [
    "ENGINES",
    "engine_env",
    "forget_warnings",
    "positive_env",
    "warn_once",
]

#: Recognised single-core simulation engines, in preference order.
ENGINES: Tuple[str, ...] = ("analytic", "batched")

#: Keys already warned about (warn once per process).  A key is any
#: hashable; numeric-env warnings use ``("env", name, raw)``.
_WARNED: set = set()


def warn_once(
    key,
    message: str,
    category: str = "config.invalid_env",
    severity: str = "warn",
    **fields,
) -> bool:
    """One stderr warning + obs trace event per ``key`` per process.

    Returns whether this call actually warned (``False`` when ``key``
    was already seen).  The obs emission is best-effort: an inactive or
    partially-imported obs session never turns a warning into a crash.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    print(f"warning: {message}", file=sys.stderr)
    try:  # best effort: obs may not be importable this early
        from repro.obs import get_session

        session = get_session()
        if session is not None:
            session.events.emit(category, severity, **fields)
    except Exception:
        pass
    return True


def forget_warnings(prefix: Optional[str] = None) -> None:
    """Clear warn-once state (test teardown).

    With ``prefix``, only keys that are tuples starting with that
    string are forgotten (e.g. ``repro.faults.reset`` forgets its
    unknown-site warnings without resetting everyone else's).
    """
    if prefix is None:
        _WARNED.clear()
        return
    for key in [k for k in _WARNED if isinstance(k, tuple) and k and k[0] == prefix]:
        _WARNED.discard(key)


def positive_env(
    name: str,
    parse: Callable = int,
    minimum: float = 1,
) -> Optional[float]:
    """A number ``>= minimum`` from ``$name``, or ``None`` (unset/invalid).

    Invalid, out-of-range or unparseable values are ignored loudly via
    :func:`warn_once` (stderr + ``config.invalid_env``), never silently
    clamped.
    """
    raw = os.environ.get(name, "")
    if not raw:
        return None
    try:
        value = parse(raw)
    except ValueError:
        value = None
    if value is None or value < minimum:
        warn_once(
            ("env", name, raw),
            f"ignoring invalid {name}={raw!r} (want a number >= {minimum})",
            variable=name,
            value=raw,
        )
        return None
    return value


def trace_env(default_capacity: int) -> Tuple[bool, int]:
    """``REPRO_TRACE`` as ``(enabled, span ring capacity)``.

    Unset -> ``(True, default_capacity)``; ``0`` -> ``(False, ...)``;
    a positive int -> ``(True, that capacity)``; anything else warns
    once and falls back to the default.
    """
    value = positive_env("REPRO_TRACE", int, minimum=0)
    if value is None:
        return True, default_capacity
    if value == 0:
        return False, default_capacity
    return True, int(value)


def slo_target_env(default_s: float) -> float:
    """``REPRO_SLO`` as the serve p95 target in seconds, else ``default_s``."""
    value = positive_env("REPRO_SLO", float, minimum=1e-6)
    return float(value) if value is not None else default_s


def engine_env(default: str = "analytic") -> str:
    """``REPRO_ENGINE`` as a validated engine name, else ``default``.

    Unknown values are ignored loudly (warn-once + ``config.invalid_env``
    event), mirroring the numeric-knob discipline above.
    """
    raw = os.environ.get("REPRO_ENGINE", "")
    if not raw:
        return default
    value = raw.strip().lower()
    if value in ENGINES:
        return value
    warn_once(
        ("env", "REPRO_ENGINE", raw),
        f"ignoring invalid REPRO_ENGINE={raw!r} "
        f"(want one of: {', '.join(ENGINES)})",
        variable="REPRO_ENGINE",
        value=raw,
    )
    return default
