"""Single-core trace simulation (the paper's Section 4.2 setup).

``simulate(trace, prefetcher=...)`` runs one workload through the Table-1
hierarchy: demand accesses walk L1D -> L2 -> LLC -> DRAM, the prefetcher
trains on the L2 miss + prefetch-hit stream and inserts into the L2, and
Triage's metadata store both occupies LLC ways (via way partitioning)
and is resized on the fly by the dynamic controller.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional

from repro import config as config_mod
from repro.core.triage import TriagePrefetcher
from repro.memory.dram import DramModel
from repro.memory.hierarchy import CacheHierarchy, CoreCounters
from repro.obs import ObsSession, RunObserver, get_session
from repro.obs.manifest import build_manifest
from repro.prefetchers.base import BasePrefetcher
from repro.prefetchers.hybrid import HybridPrefetcher
from repro.prefetchers.stride import StridePrefetcher
from repro.sim.config import MachineConfig
from repro.sim.factory import PrefetcherSpec, make_prefetcher
from repro.sim.stats import SimulationResult
from repro.sim.timing import EpochLoad, resolve_epoch
from repro.workloads.base import Trace


def triage_components(prefetcher: Optional[BasePrefetcher]) -> List[TriagePrefetcher]:
    """All Triage instances inside ``prefetcher`` (hybrids included)."""
    if prefetcher is None:
        return []
    if isinstance(prefetcher, TriagePrefetcher):
        return [prefetcher]
    if isinstance(prefetcher, HybridPrefetcher):
        found: List[TriagePrefetcher] = []
        for component in prefetcher.components:
            found.extend(triage_components(component))
        return found
    return []


def attach_observability(
    run: RunObserver,
    triages: List[TriagePrefetcher],
    dram=None,
    profiler=None,
) -> None:
    """Point component observability hooks at an observed run.

    Hooks are plain attributes defaulting to ``None``; attaching them is
    the *only* thing that makes components emit, so the disabled path
    stays a single ``is None`` check per site.
    """
    for triage in triages:
        triage.events = run
        triage.store.events = run
        triage.store._predictor.events = run
        if triage.controller is not None:
            triage.controller.events = run
        if profiler is not None:
            triage.profile = profiler
    if dram is not None:
        dram.epoch_log = []


class _MetadataPartition:
    """Keeps the LLC's data ways in sync with Triage's metadata usage."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        config: MachineConfig,
        triages: List[TriagePrefetcher],
        charge_llc: bool = True,
    ):
        self.hierarchy = hierarchy
        self.config = config
        self.triages = triages
        self.charge_llc = charge_llc
        for triage in triages:
            triage.on_partition_change = lambda _capacity: self.apply()
        self.apply()

    def metadata_bytes(self) -> int:
        return sum(
            t.metadata_capacity_bytes for t in self.triages if not t.store.unbounded
        )

    def apply(self) -> None:
        if not self.charge_llc:
            return
        ways = self.config.metadata_ways(self.metadata_bytes())
        data_ways = self.config.llc_ways - ways
        if data_ways < 1:
            raise ValueError("metadata would consume the entire LLC")
        if data_ways != self.hierarchy.llc.active_ways:
            self.hierarchy.resize_llc_data_ways(data_ways)


def make_l1_prefetcher(config: MachineConfig) -> Optional[StridePrefetcher]:
    """The baseline L1D prefetcher from Table 1 (None when disabled)."""
    if config.l1_prefetcher == "none":
        return None
    if config.l1_prefetcher == "stride":
        return StridePrefetcher(degree=config.l1_prefetcher_degree)
    raise ValueError(f"unknown l1 prefetcher {config.l1_prefetcher!r}")


def simulate(
    trace: Trace,
    prefetcher: PrefetcherSpec = None,
    machine: Optional[MachineConfig] = None,
    degree: int = 1,
    epoch_accesses: int = 5_000,
    charge_metadata_to_llc: bool = True,
    warmup_accesses: int = 0,
    name: Optional[str] = None,
    obs: Optional[ObsSession] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Simulate ``trace`` on a single core and return the result.

    ``warmup_accesses`` mirrors the paper's methodology (each SimPoint is
    warmed before measurement): the first N accesses train caches and
    prefetchers but are excluded from every reported statistic.

    ``charge_metadata_to_llc=False`` gives Triage a free metadata store
    on the side (the "optimistic" configuration of Figure 7).

    ``obs`` is an explicit observability session; when omitted the
    globally enabled one (``repro.obs.enable``) is used, and when neither
    exists the run is uninstrumented (the default, zero-overhead path).

    ``engine`` picks the execution strategy: ``"analytic"`` is this
    module's scalar reference loop, ``"batched"`` the bit-identical
    struct-of-arrays fast path in :mod:`repro.sim.batched`.  ``None``
    defers to the ``REPRO_ENGINE`` environment knob (default analytic).
    """
    resolved = engine if engine is not None else config_mod.engine_env()
    if resolved == "batched":
        from repro.sim.batched import simulate_batched

        return simulate_batched(
            trace, prefetcher, machine=machine, degree=degree,
            epoch_accesses=epoch_accesses,
            charge_metadata_to_llc=charge_metadata_to_llc,
            warmup_accesses=warmup_accesses, name=name, obs=obs,
        )
    if resolved != "analytic":
        raise ValueError(
            f"unknown engine {resolved!r}; one of {config_mod.ENGINES}"
        )
    wall_start = time.perf_counter()
    config = machine or MachineConfig.single_core()
    if config.n_cores != 1:
        raise ValueError("simulate() is single-core; use simulate_multicore()")
    pf = make_prefetcher(prefetcher, degree=degree)
    hierarchy = CacheHierarchy(
        n_cores=1,
        l1_size=config.l1_size,
        l1_ways=config.l1_ways,
        l2_size=config.l2_size,
        l2_ways=config.l2_ways,
        llc_size_per_core=config.llc_size_per_core,
        llc_ways=config.llc_ways,
        llc_policy=config.llc_policy,
    )
    dram = DramModel(
        base_latency_cycles=config.dram_latency_cycles,
        bandwidth_bytes_per_cycle=config.dram_bandwidth_bytes_per_cycle,
    )
    triages = triage_components(pf)
    _MetadataPartition(hierarchy, config, triages, charge_metadata_to_llc)
    l1pf = make_l1_prefetcher(config)

    session = obs if obs is not None else get_session()
    run: Optional[RunObserver] = None
    prof = None
    sim_span = None
    if session is not None:
        run = session.begin_run(
            name or trace.name, pf.name if pf is not None else "none"
        )
        prof = session.profiler
        attach_observability(run, triages, dram=dram, profiler=prof)
        sim_span = _open_sim_span(
            session, run, "analytic",
            name or trace.name, pf.name if pf is not None else "none",
            t=wall_start,
        )
    prev_store = [(0, 0, 0) for _ in triages]  # (lookups, hits, evictions)

    counters = hierarchy.counters[0]
    total_cycles = 0.0
    # Epoch snapshots.
    prev = (0, 0, 0)  # (l2_hits, llc_hits, dram_accesses)
    prev_bytes = 0
    prev_coverage = (0, 0)  # (l2_prefetch_hits, would-have-missed)
    accesses_in_epoch = 0
    #: True until the warmup boundary passes.  Warmup epochs are not
    #: resolved or sampled at all: their rows would pollute the epoch
    #: time-series and leave warmup entries in ``dram.epoch_log`` (which
    #: ``_register_dram_metrics`` folds into the registry), and nothing
    #: downstream consumes warmup cycles -- the boundary resets them.
    in_warmup = warmup_accesses > 0
    # Warmup offsets, captured when measurement starts.
    traffic_offset: dict = {}
    metadata_llc_offset = 0
    metadata_dram_offset = 0

    def sample_epoch(load: EpochLoad, epoch_bytes: int, cycles: float) -> None:
        """One epoch row for the time-series sampler (observing only)."""
        nonlocal prev_coverage
        dram_info = dram.epoch_log[-1] if dram.epoch_log else {}
        useful = counters.l2_prefetch_hits
        would_miss = useful + counters.l2_demand_misses
        d_useful = useful - prev_coverage[0]
        d_would_miss = would_miss - prev_coverage[1]
        prev_coverage = (useful, would_miss)
        row = {
            "access_idx": counters.accesses,
            "cycles": cycles,
            "l2_hits": load.l2_hits,
            "llc_hits": load.llc_hits,
            "dram_accesses": load.dram_accesses,
            "epoch_bytes": epoch_bytes,
            "llc_data_ways": hierarchy.llc.active_ways,
            "coverage": d_useful / d_would_miss if d_would_miss else 0.0,
            "dram_utilization": dram_info.get("utilization", 0.0),
            "dram_queue_penalty_cycles": dram_info.get("queue_penalty_cycles", 0.0),
        }
        for i, triage in enumerate(triages):
            store = triage.store
            lookups, hits, evictions = (
                store.lookups, store.lookup_hits, store.evictions,
            )
            d_lookups = lookups - prev_store[i][0]
            d_hits = hits - prev_store[i][1]
            prefix = f"c0.t{i}." if len(triages) > 1 else "c0."
            capacity = 0 if store.unbounded else store.capacity_bytes
            row[prefix + "meta_capacity_bytes"] = capacity
            row[prefix + "meta_ways"] = config.metadata_ways(capacity)
            row[prefix + "meta_hit_rate"] = d_hits / d_lookups if d_lookups else 0.0
            row[prefix + "meta_evictions"] = evictions - prev_store[i][2]
            row[prefix + "meta_occupancy"] = store.occupancy()
            prev_store[i] = (lookups, hits, evictions)
        session.registry.histogram("dram.epoch_utilization_pct").observe(
            int(row["dram_utilization"] * 100)
        )
        run.sample_epoch(**row)

    def close_epoch() -> None:
        nonlocal prev, prev_bytes, accesses_in_epoch, total_cycles
        if accesses_in_epoch == 0:
            return
        if in_warmup:
            # Roll the snapshots without resolving or sampling: warmup
            # cycles are discarded at the boundary anyway.
            prev = (counters.l2_hits, counters.llc_hits, counters.dram_accesses)
            prev_bytes = hierarchy.traffic.total_bytes
            accesses_in_epoch = 0
            return
        load = EpochLoad(
            instructions=accesses_in_epoch * trace.instr_per_access,
            l2_hits=counters.l2_hits - prev[0],
            llc_hits=counters.llc_hits - prev[1],
            dram_accesses=counters.dram_accesses - prev[2],
            mlp=trace.mlp,
        )
        epoch_bytes = hierarchy.traffic.total_bytes - prev_bytes
        cycles = resolve_epoch([load], epoch_bytes, config, dram)[0]
        total_cycles += cycles
        if run is not None:
            sample_epoch(load, epoch_bytes, cycles)
        prev = (counters.l2_hits, counters.llc_hits, counters.dram_accesses)
        prev_bytes = hierarchy.traffic.total_bytes
        accesses_in_epoch = 0

    profiling = prof is not None
    t_stream = t_l1pf = t_l2pf = 0.0
    t0 = 0.0
    for access_idx, (pc, addr, is_write) in enumerate(trace):
        if access_idx == warmup_accesses and warmup_accesses > 0:
            # Warmup ends: drop the statistics gathered so far (state in
            # the caches, prefetchers and partition controller persists).
            hierarchy.counters[0] = CoreCounters()
            counters = hierarchy.counters[0]
            traffic_offset = hierarchy.traffic.snapshot()
            metadata_llc_offset = sum(t.store.llc_accesses for t in triages)
            if pf is not None:
                metadata_dram_offset = pf.metadata_dram_accesses
                if isinstance(pf, HybridPrefetcher):
                    metadata_dram_offset = pf.total_metadata_dram_accesses
            total_cycles = 0.0
            prev = (0, 0, 0)
            prev_bytes = hierarchy.traffic.total_bytes
            prev_coverage = (0, 0)
            accesses_in_epoch = 0
            in_warmup = False
            # Observability state gathered during warmup is dropped so a
            # warmed run reports only measured-window epochs: any stray
            # warmup records would otherwise inflate the folded
            # ``dram.queue_penalty_cycles`` registry counter.
            if dram.epoch_log:
                dram.epoch_log.clear()
            prev_store = [
                (t.store.lookups, t.store.lookup_hits, t.store.evictions)
                for t in triages
            ]
        if profiling:
            t0 = time.perf_counter()
        event = hierarchy.access(0, pc, addr, is_write)
        if profiling:
            t_stream += time.perf_counter() - t0
        accesses_in_epoch += 1
        if l1pf is not None:
            # The stride prefetcher trains on the L1D access stream.
            if profiling:
                t0 = time.perf_counter()
            for candidate in l1pf.observe(pc, event.line):
                hierarchy.prefetch(0, candidate.line, pc, kind="l1")
            if profiling:
                t_l1pf += time.perf_counter() - t0
        # Inlined event.trains_l2_prefetcher (property call per access).
        if pf is not None and (
            event.prefetch_hit_kind is not None or event.hit_level in ("llc", "dram")
        ):
            if profiling:
                t0 = time.perf_counter()
            candidates = pf.observe(
                event.pc, event.line,
                prefetch_hit=event.prefetch_hit_kind == "l2",
            )
            for candidate in candidates:
                source = hierarchy.prefetch(0, candidate.line, event.pc)
                owner = candidate.owner or pf
                owner.feedback(candidate, source)
            metadata_bytes = pf.drain_metadata_traffic()
            if metadata_bytes:
                hierarchy.traffic.add("metadata", metadata_bytes)
            if profiling:
                t_l2pf += time.perf_counter() - t0
        if accesses_in_epoch >= epoch_accesses:
            close_epoch()
    close_epoch()
    if profiling:
        # "metadata_store" (timed inside TriagePrefetcher.observe) is a
        # sub-slice of "l2_prefetcher", not an additional share.
        prof.add("l2_stream", t_stream, calls=len(trace))
        if l1pf is not None:
            prof.add("l1_prefetcher", t_l1pf)
        if pf is not None:
            prof.add("l2_prefetcher", t_l2pf)

    metadata_llc = sum(t.store.llc_accesses for t in triages) - metadata_llc_offset
    metadata_dram = pf.metadata_dram_accesses if pf is not None else 0
    if isinstance(pf, HybridPrefetcher):
        metadata_dram = pf.total_metadata_dram_accesses
    metadata_dram -= metadata_dram_offset
    partition_history = []
    final_capacity = None
    for triage in triages:
        if triage.controller is not None:
            partition_history = [
                d.capacity_bytes for d in triage.controller.decisions
            ]
        if not triage.store.unbounded:
            final_capacity = triage.metadata_capacity_bytes

    measured_accesses = len(trace) - min(warmup_accesses, len(trace))
    traffic = {
        category: total - traffic_offset.get(category, 0)
        for category, total in hierarchy.traffic.snapshot().items()
    }
    manifest = build_manifest(
        kind="single",
        workloads=[name or trace.name],
        prefetcher=pf.name if pf is not None else "none",
        config=config,
        seeds=[trace.metadata.get("seed")],
        trace_length=len(trace),
        warmup=warmup_accesses,
        instructions=measured_accesses * trace.instr_per_access,
        cycles=total_cycles,
        wall_time_s=time.perf_counter() - wall_start,
        extra={
            "engine": "analytic",
            "degree": degree,
            "charge_metadata_to_llc": charge_metadata_to_llc,
        },
    )
    result = SimulationResult(
        workload=name or trace.name,
        prefetcher=pf.name if pf is not None else "none",
        instructions=measured_accesses * trace.instr_per_access,
        cycles=total_cycles,
        counters=replace(counters),
        traffic=traffic,
        metadata_llc_accesses=metadata_llc,
        metadata_dram_accesses=metadata_dram,
        final_metadata_capacity=final_capacity,
        partition_history=partition_history,
        manifest=manifest,
    )
    manifest.extra["kpis"] = result.kpis()
    if run is not None:
        _register_run_metrics(session, counters, triages)
        _register_dram_metrics(session, dram)
        _finish_sim_span(
            session,
            sim_span,
            phases=(
                ("l2_stream", t_stream),
                ("l1_prefetcher", t_l1pf),
                ("l2_prefetcher", t_l2pf),
            ),
        )
        run.finish(manifest)
    return result


def _open_sim_span(session, run, engine, workload, prefetcher, t=None):
    """This run's ``sim.run`` span, or ``None`` when tracing is off.

    Under a current trace (a ``sweep.cell`` root, a serve request) the
    span attaches as a child; otherwise it roots a standalone trace
    keyed on the session's deterministic run id.
    """
    tracer = session.tracer
    if not tracer.enabled:
        return None
    attrs = {"engine": engine, "workload": workload, "prefetcher": prefetcher}
    if tracer.current() is not None:
        return tracer.start_span("sim.run", t=t, **attrs)
    return tracer.start_trace("sim.run", run.run_id, t=t, **attrs)


def _finish_sim_span(session, span, phases=(), t=None) -> None:
    """Close a run's ``sim.run`` span, filing profiler-phase children.

    Phase seconds are accumulated as raw ``perf_counter`` deltas (the
    access loop is too hot for live span bookkeeping); they are recorded
    as back-to-back measured segments so a waterfall still shows where
    the run's wall time went.  Empty phases (profiling off, component
    absent) are skipped, keeping serial/parallel trees structurally
    identical.
    """
    if span is None:
        return
    tracer = session.tracer
    base = span.start
    for name, seconds in phases:
        if seconds:
            tracer.event(span, f"phase.{name}", base, base + seconds)
            base += seconds
    tracer.finish(span, "ok", t=t)


def _register_dram_metrics(session, dram) -> None:
    """Fold a run's DRAM epoch log into the session registry."""
    if dram is not None and getattr(dram, "epoch_log", None):
        session.registry.counter("dram.queue_penalty_cycles").inc(
            int(sum(e["queue_penalty_cycles"] for e in dram.epoch_log))
        )


def _register_run_metrics(session, counters, triages) -> None:
    """Fold one finished core's component stats into the session registry."""
    reg = session.registry
    reg.counter("sim.runs").inc()
    reg.counter("sim.accesses").inc(counters.accesses)
    reg.counter("sim.dram_accesses").inc(counters.dram_accesses)
    reg.counter("sim.prefetches_issued").inc(counters.prefetches_issued)
    reg.counter("sim.prefetches_useful").inc(counters.l2_prefetch_hits)
    for triage in triages:
        store = triage.store
        reg.counter("triage.meta_store.lookups").inc(store.lookups)
        reg.counter("triage.meta_store.hits").inc(store.lookup_hits)
        reg.counter("triage.meta_store.inserts").inc(store.inserts)
        reg.counter("triage.meta_store.evictions").inc(store.evictions)
        if triage.controller is not None:
            reg.counter("triage.partition.decisions").inc(
                len(triage.controller.decisions)
            )
            reg.counter("triage.partition.changes").inc(
                sum(1 for d in triage.controller.decisions if d.changed)
            )
