"""Batched struct-of-arrays fast path for the single-core engine.

``simulate_batched`` produces **bit-identical** results to the scalar
engine in :mod:`repro.sim.single_core` (same counters, traffic, cycles,
metadata statistics and partition history) while running several times
faster.  The speed comes from four structural changes, none of which
alters simulated behaviour:

* **Trace pre-decode** -- the byte-address/PC/is-write streams are
  decoded once up front with ``numpy`` (line addresses, run-length
  analysis) instead of per access.
* **Flat dict caches** -- each cache set becomes a plain insertion-
  ordered ``dict`` whose order *is* the LRU order (hits re-insert, the
  victim is ``next(iter(set_dict))``), collapsing the scalar engine's
  Cache/policy/CacheLine object machinery into a handful of dict ops.
  LLC values carry their way id so Triage's way partitioning can evict
  exactly the deactivated ways, like ``Cache.set_active_ways``.
* **Run-length bulk blocks** -- consecutive repeats of the same
  ``(pc, line, is_write)`` triple after the first access are pure L1
  hits with no state change beyond three counters; the pre-decode finds
  these streaks and the driver skips them in O(1) per epoch-bounded
  chunk.
* **Fused prefetcher trainers** -- the common fig05 configurations
  (Triage/Hawkeye, Triage-ideal, Triangel/reuse, Best-Offset, SMS)
  train through flattened closures that operate on the *real* component
  objects' internal tables in place, so observable state (and therefore
  any later generic-path interaction, resize, or event emission) stays
  exactly as the scalar path would leave it.  Anything else -- hybrids,
  MISB, LRU-metadata ablations, profiled runs -- falls back to the
  components' own ``observe``/``feedback`` methods, still several times
  faster than the scalar engine because the demand path is flat.

Configurations the flat memory model cannot represent (non-LRU LLC
policies, unknown L1 prefetchers) bail out to the scalar engine rather
than approximate, so ``engine="batched"`` is always safe to request.
"""

from __future__ import annotations

import time
from dataclasses import replace
from heapq import heapify, heappop, heappush
from typing import List, Optional

import numpy as np

from repro.core.metadata_store import MetadataEntry
from repro.core.partition import PartitionController
from repro.core.triage import TriagePrefetcher
from repro.memory.dram import CATEGORIES, DramModel
from repro.memory.hierarchy import CoreCounters
from repro.obs import ObsSession, RunObserver, get_session
from repro.obs.manifest import build_manifest
from repro.prefetchers.best_offset import BestOffsetPrefetcher
from repro.prefetchers.hybrid import HybridPrefetcher
from repro.prefetchers.sms import SmsPrefetcher
from repro.prefetchers.triangel import SampleEntry, TriangelPrefetcher
from repro.sim.config import MachineConfig
from repro.sim.factory import PrefetcherSpec, make_prefetcher
from repro.sim.single_core import (
    _finish_sim_span,
    _open_sim_span,
    _register_dram_metrics,
    _register_run_metrics,
    attach_observability,
    simulate,
    triage_components,
)
from repro.sim.stats import SimulationResult
from repro.sim.timing import EpochLoad, resolve_epoch
from repro.workloads.base import Trace

__all__ = ["simulate_batched"]


def _bail_reason(config: MachineConfig) -> Optional[str]:
    """Why this config needs the scalar engine (None = batched is fine)."""
    if config.llc_policy != "lru":
        return "non-LRU LLC policy"
    if config.l1_prefetcher not in ("none", "stride"):
        return f"unknown l1 prefetcher {config.l1_prefetcher!r}"
    return None


def _l1_schedule(
    trace: Trace, lines: List[int], pcs: List[int], heads: List[int], deg: int
) -> List[Optional[tuple]]:
    """Per-head L1 stride-prefetch candidates, cached on the trace.

    The stride prefetcher's state depends only on the access stream, not
    on cache contents, so its whole candidate schedule can be replayed
    once per ``(trace, degree)`` and reused across configurations --
    sweeps run every prefetcher config over the same traces.  Repeated
    accesses are exact no-ops for the table (the entry is already
    most-recent and a zero stride changes nothing), so heads suffice.

    Entry ``k`` is a tuple of target lines the scalar
    :class:`~repro.prefetchers.stride.StridePrefetcher` would emit at
    head ``k`` (``None`` when it emits nothing).
    """
    cached = getattr(trace, "_batched_l1pf", None)
    if (
        cached is not None
        and cached[0] == deg
        and len(cached[1]) == len(heads)
    ):
        return cached[1]
    st: dict = {}
    out: List[Optional[tuple]] = []
    ap = out.append
    for i in heads:
        pc = pcs[i]
        line = lines[i]
        e = st.get(pc)
        if e is None:
            if len(st) >= 256:  # StridePrefetcher default table_size
                del st[next(iter(st))]
            st[pc] = [line, 0, 0]  # [last_line, stride, confidence]
            ap(None)
            continue
        del st[pc]
        st[pc] = e
        stride = line - e[0]
        if not stride:
            ap(None)
            continue
        if stride == e[1]:
            if e[2] < 3:
                e[2] += 1
        else:
            e[2] -= 1
            if e[2] <= 0:
                e[1] = stride
                e[2] = 1
        e[0] = line
        if e[2] >= 2 and e[1]:
            s_ = e[1]
            cand = tuple(
                t_
                for t_ in (line + s_ * j_ for j_ in range(1, deg + 1))
                if t_ > 0
            )
            ap(cand if cand else None)
        else:
            ap(None)
    try:
        trace._batched_l1pf = (deg, out)
    except Exception:  # noqa: BLE001 -- slots-style traces: just recompute
        pass
    return out


def _run_segment(
    a: int,
    b: int,
    pcs: List[int],
    lines: List[int],
    ws: List[bool],
    sched: Optional[List[Optional[tuple]]],
    L1: List[dict],
    L2: List[dict],
    L3: List[dict],
    free3: List[list],
    m1: int,
    m2: int,
    m3: int,
    w1: int,
    w2: int,
    insert_l1,
    train,
) -> tuple:
    """Demand path for accesses ``[a, b)`` with no epoch/warmup checks.

    The driver sizes segments so no epoch or warmup boundary falls
    inside ``[a, b)``; the body then runs with true local counters and
    returns them as *deltas* -- the trainer closures keep mutating the
    engine's own traffic cells, and addition commutes, so the caller can
    fold the deltas in afterwards without lost updates.

    Returns ``(l1_hits, l2_hits, l2_prefetch_hits, llc_hits,
    dram_accesses, l1pf_useful, demand_bytes, writeback_bytes)``.
    """
    l1h = l2h = l2ph = llch = dramc = l1u = td = tw = 0
    for i in range(a, b):
        line = lines[i]
        w = ws[i]
        tr = 0  # 0 no training event; 1 prefetch_hit False; 2 True
        d1 = L1[line & m1]
        v = d1.pop(line, None)
        if v is not None:
            l1h += 1
            d1[line] = v | w
        else:
            d2 = L2[line & m2]
            v2 = d2.pop(line, None)
            if v2 is not None:
                l2h += 1
                kd = v2 >> 1
                if kd == 2:
                    l2ph += 1
                    tr = 2
                elif kd == 1:
                    l1u += 1
                    tr = 1
                d2[line] = (v2 & 1) | w
            else:
                tr = 1
                s3 = line & m3
                d3 = L3[s3]
                v3 = d3.pop(line, None)
                if v3 is not None:
                    llch += 1
                    d3[line] = v3
                else:
                    dramc += 1
                    td += 64
                    fr = free3[s3]
                    if fr:
                        way3 = heappop(fr)
                    else:
                        ol, ov = next(iter(d3.items()))
                        del d3[ol]
                        way3 = ov >> 1
                        if ov & 1:
                            tw += 64
                    d3[line] = way3 << 1
                if len(d2) == w2:
                    ol, ov = next(iter(d2.items()))
                    del d2[ol]
                    if ov & 1:
                        dd = L3[ol & m3]
                        vv = dd.get(ol)
                        if vv is not None:
                            dd[ol] = vv | 1
                        else:
                            tw += 64
                d2[line] = +w
            if len(d1) == w1:
                ol, ov = next(iter(d1.items()))
                del d1[ol]
                if ov & 1:
                    dd = L2[ol & m2]
                    vv = dd.get(ol)
                    if vv is not None:
                        dd[ol] = vv | 1
                    else:
                        dd = L3[ol & m3]
                        vv = dd.get(ol)
                        if vv is not None:
                            dd[ol] = vv | 1
                        else:
                            tw += 64
            d1[line] = +w
        if sched is not None:
            cand = sched[i]
            if cand is not None:
                for t_ in cand:
                    insert_l1(t_)
        if tr and train is not None:
            train(pcs[i], line, tr == 2)
    return (l1h, l2h, l2ph, llch, dramc, l1u, td, tw)


def simulate_batched(
    trace: Trace,
    prefetcher: PrefetcherSpec = None,
    machine: Optional[MachineConfig] = None,
    degree: int = 1,
    epoch_accesses: int = 5_000,
    charge_metadata_to_llc: bool = True,
    warmup_accesses: int = 0,
    name: Optional[str] = None,
    obs: Optional[ObsSession] = None,
) -> SimulationResult:
    """Scalar-identical single-core simulation, struct-of-arrays style.

    Same contract as :func:`repro.sim.single_core.simulate`; results are
    bit-identical (the differential tests enforce this).  Configurations
    outside the flat model bail out to the scalar engine transparently.
    """
    wall_start = time.perf_counter()
    config = machine or MachineConfig.single_core()
    if config.n_cores != 1:
        raise ValueError("simulate() is single-core; use simulate_multicore()")
    if _bail_reason(config) is not None:
        return simulate(
            trace, prefetcher, machine=machine, degree=degree,
            epoch_accesses=epoch_accesses,
            charge_metadata_to_llc=charge_metadata_to_llc,
            warmup_accesses=warmup_accesses, name=name, obs=obs,
            engine="analytic",
        )

    # ---- trace pre-decode (struct-of-arrays) ---------------------------
    n = len(trace)
    try:
        line_arr = np.asarray(trace.addrs, dtype=np.int64) >> 6
        pc_arr = np.asarray(trace.pcs, dtype=np.int64)
        write_arr = np.asarray(trace.writes, dtype=np.bool_)
    except OverflowError:
        # Addresses beyond int64: rare synthetic corner, scalar handles it.
        return simulate(
            trace, prefetcher, machine=machine, degree=degree,
            epoch_accesses=epoch_accesses,
            charge_metadata_to_llc=charge_metadata_to_llc,
            warmup_accesses=warmup_accesses, name=name, obs=obs,
            engine="analytic",
        )
    lines = line_arr.tolist()
    pcs = pc_arr.tolist()
    ws = write_arr.tolist()
    # Run-length analysis: an access repeating its predecessor's
    # (line, pc, is_write) triple is a guaranteed L1 hit whose only
    # effect is three counter increments -- the driver bulk-skips them.
    if n:
        rep = np.empty(n, dtype=np.bool_)
        rep[0] = False
        np.equal(line_arr[1:], line_arr[:-1], out=rep[1:])
        rep[1:] &= pc_arr[1:] == pc_arr[:-1]
        rep[1:] &= write_arr[1:] == write_arr[:-1]
        heads_arr = np.flatnonzero(~rep)
        run_ends = np.append(heads_arr[1:], n)
        bh = heads_arr.tolist()
        bx = (run_ends - heads_arr - 1).tolist()
    else:
        bh = []
        bx = []

    pf = make_prefetcher(prefetcher, degree=degree)
    triages = triage_components(pf)

    # ---- flat cache hierarchy ------------------------------------------
    # Per-set plain dicts; insertion order is the LRU order.  L1/L2 values
    # are ``prefetched_kind << 1 | dirty`` (kind: 0 none, 1 "l1", 2 "l2");
    # LLC values are ``way << 1 | dirty`` so partitioning can target ways.
    ns1 = config.l1_size // (64 * config.l1_ways)
    ns2 = config.l2_size // (64 * config.l2_ways)
    ns3 = config.llc_size_per_core // (64 * config.llc_ways)
    for label, sets in (("L1D0", ns1), ("L2_0", ns2), ("LLC", ns3)):
        if sets <= 0 or sets & (sets - 1):
            # Same geometry the Cache constructor would reject; let the
            # scalar engine raise its canonical error message.
            return simulate(
                trace, prefetcher, machine=machine, degree=degree,
                epoch_accesses=epoch_accesses,
                charge_metadata_to_llc=charge_metadata_to_llc,
                warmup_accesses=warmup_accesses, name=name, obs=obs,
                engine="analytic",
            )
    m1, m2, m3 = ns1 - 1, ns2 - 1, ns3 - 1
    w1, w2, w3 = config.l1_ways, config.l2_ways, config.llc_ways
    L1 = [dict() for _ in range(ns1)]
    L2 = [dict() for _ in range(ns2)]
    L3 = [dict() for _ in range(ns3)]
    free3 = [list(range(w3)) for _ in range(ns3)]  # ascending = valid heap
    active3 = w3

    dram = DramModel(
        base_latency_cycles=config.dram_latency_cycles,
        bandwidth_bytes_per_cycle=config.dram_bandwidth_bytes_per_cycle,
    )

    # ---- counters (flat locals, synced into real objects) --------------
    counters = CoreCounters()
    acc = l1h = l2h = l2ph = llch = dramc = 0
    pf_iss = pf_red = pf_llc = pf_dram = 0
    l1_useful = l1_iss = l1_red = l1_dram = 0
    t_demand = t_prefetch = t_writeback = t_metadata = 0

    # ---- LLC way partitioning (Triage metadata slice) ------------------
    def apply_partition(_capacity=None) -> None:
        nonlocal active3, t_writeback
        if not charge_metadata_to_llc:
            return
        meta_bytes = sum(
            t.metadata_capacity_bytes for t in triages if not t.store.unbounded
        )
        data_ways = config.llc_ways - config.metadata_ways(meta_bytes)
        if data_ways < 1:
            raise ValueError("metadata would consume the entire LLC")
        if data_ways == active3:
            return
        if data_ways < active3:
            for s in range(ns3):
                d3 = L3[s]
                stale = [
                    (ln, v_) for ln, v_ in d3.items() if (v_ >> 1) >= data_ways
                ]
                for ln, v_ in stale:
                    del d3[ln]
                    if v_ & 1:
                        t_writeback += 64
                fr = [w_ for w_ in free3[s] if w_ < data_ways]
                heapify(fr)
                free3[s] = fr
        else:
            for fr in free3:
                for w_ in range(active3, data_ways):
                    heappush(fr, w_)
        active3 = data_ways

    for t in triages:
        t.on_partition_change = apply_partition
    apply_partition()

    # ---- observability --------------------------------------------------
    session = obs if obs is not None else get_session()
    run: Optional[RunObserver] = None
    prof = None
    sim_span = None
    if session is not None:
        run = session.begin_run(
            name or trace.name, pf.name if pf is not None else "none"
        )
        prof = session.profiler
        attach_observability(run, triages, dram=dram, profiler=prof)
        sim_span = _open_sim_span(
            session, run, "batched",
            name or trace.name, pf.name if pf is not None else "none",
            t=wall_start,
        )
    prev_store = [(0, 0, 0) for _ in triages]  # (lookups, hits, evictions)

    # ---- flat prefetch insertion (hierarchy.prefetch, kind="l2") -------
    def insert_l2_prefetch(t_line: int) -> str:
        nonlocal pf_iss, pf_red, pf_llc, pf_dram, t_prefetch, t_writeback
        d2 = L2[t_line & m2]
        if t_line in d2:
            pf_red += 1
            return "redundant"
        pf_iss += 1
        s3 = t_line & m3
        d3 = L3[s3]
        if t_line in d3:
            pf_llc += 1
            source = "llc"
        else:
            pf_dram += 1
            t_prefetch += 64
            fr = free3[s3]
            if fr:
                way3 = heappop(fr)
            else:
                ol, ov = next(iter(d3.items()))
                del d3[ol]
                way3 = ov >> 1
                if ov & 1:
                    t_writeback += 64
            d3[t_line] = way3 << 1
            source = "dram"
        if len(d2) == w2:
            ol, ov = next(iter(d2.items()))
            del d2[ol]
            if ov & 1:
                dd = L3[ol & m3]
                vv = dd.get(ol)
                if vv is not None:
                    dd[ol] = vv | 1
                else:
                    t_writeback += 64
        d2[t_line] = 4  # prefetched kind "l2", clean
        return source

    def insert_l1_prefetch(t_line: int) -> None:
        nonlocal l1_iss, l1_red, l1_dram, t_prefetch, t_writeback
        d2 = L2[t_line & m2]
        if t_line in d2:
            l1_red += 1
            return
        l1_iss += 1
        s3 = t_line & m3
        d3 = L3[s3]
        if t_line not in d3:
            l1_dram += 1
            t_prefetch += 64
            fr = free3[s3]
            if fr:
                way3 = heappop(fr)
            else:
                ol, ov = next(iter(d3.items()))
                del d3[ol]
                way3 = ov >> 1
                if ov & 1:
                    t_writeback += 64
            d3[t_line] = way3 << 1
        if len(d2) == w2:
            ol, ov = next(iter(d2.items()))
            del d2[ol]
            if ov & 1:
                dd = L3[ol & m3]
                vv = dd.get(ol)
                if vv is not None:
                    dd[ol] = vv | 1
                else:
                    t_writeback += 64
        d2[t_line] = 2  # prefetched kind "l1", clean

    # ---- fused prefetcher trainers -------------------------------------
    # ``train(pc, line, prefetch_hit)`` is called on every L2-miss /
    # prefetch-hit event.  The fused closures mirror the components'
    # observe/feedback paths exactly, mutating the real objects' tables.
    # Mirrored store/controller statistics live in local ints and are
    # written back by ``sync_state`` before anything reads the objects.
    fused_store = None
    fused_ctrl = None
    fused_triangel = False
    st_lookups = st_hits = st_updates = st_inserts = st_evictions = 0
    st_llc = st_agree = st_conflict = 0
    ctrl_acc = 0
    tg_hits = tg_matches = tg_skipped = 0

    def generic_train(pc_: int, line_: int, ph_: bool) -> None:
        nonlocal t_metadata
        for candidate in pf.observe(pc_, line_, prefetch_hit=ph_):
            source = insert_l2_prefetch(candidate.line)
            owner = candidate.owner or pf
            owner.feedback(candidate, source)
        metadata_bytes = pf.drain_metadata_traffic()
        if metadata_bytes:
            t_metadata += metadata_bytes

    train = None
    if pf is not None:
        train = generic_train
        store = triages[0].store if triages else None
        ctrl = triages[0].controller if triages else None
        triage_ok = (
            len(triages) == 1
            and triages[0] is pf
            and pf.config.use_confidence
            and not pf.config.track_reuse
            and store.index_mode == "uniform"
            and pf._pending_capacity is None
            and (ctrl is None or type(ctrl) is PartitionController)
        )
        if triage_ok:
            pcl = pf.config.pc_localized
            deg = pf.degree
            tu = pf.training_unit._last
            tu_max = pf.training_unit.max_pcs
            tt = store.tag_table
            if tt is not None:
                tag2id = tt._tag_to_id
                id2tag = tt._id_to_tag
                tag_cap = tt.capacity
            ev_pf = None  # pf.events, re-read at call time via closure

            if ctrl is not None:
                ctrl_mask = ctrl._sample_mask
                ctrl_epoch = ctrl.epoch_accesses
                sb_s = ctrl.sandbox_small
                sb_l = ctrl.sandbox_large
                ctrl_acc = ctrl._accesses_this_epoch

            def _encode_successor(line_: int):
                """(compact, set_id) of ``line_``; inlined tag compression."""
                sid = line_ & 2047
                tag_ = line_ >> 11
                if tt is None:
                    return tag_, sid
                compact = tag2id.get(tag_)
                if compact is not None:
                    tag2id.move_to_end(tag_)
                    return compact, sid
                if len(tag2id) < tag_cap:
                    compact = tt._next_id
                    tt._next_id = compact + 1
                else:
                    _old_tag, compact = tag2id.popitem(last=False)
                    del id2tag[compact]
                    tt.recycled += 1
                tag2id[tag_] = compact
                id2tag[compact] = tag_
                return compact, sid

            def _ctrl_note(trigger: int):
                """PartitionController.note_access; returns pending bytes."""
                nonlocal ctrl_acc
                ctrl_acc += 1
                if ((trigger * 2654435761) >> 12) & ctrl_mask == 0:
                    sb_s.access(trigger)
                    sb_l.access(trigger)
                if ctrl_acc < ctrl_epoch:
                    return None
                ctrl._accesses_this_epoch = ctrl_acc
                decision = ctrl._decide()
                ctrl_acc = 0
                if decision.changed:
                    return decision.capacity_bytes
                return None

            if (
                type(pf) is TriagePrefetcher
                and not store.unbounded
                and store.policy_name == "hawkeye"
            ):
                pred = store._predictor
                pred_cnt = pred._counters
                pmask = pred.mask
                pred_train = pred.train
                # Store/policy internals, hoisted out of the per-event
                # path; a resize rebinds them all, so every rebind site
                # funnels through _refresh().
                ns = smask = 0
                idx_l = ways_l = frees_l = None
                pol = samplers = sampler_last_pc = None
                line_pc_l = rrpv_l = line_keys = None
                ev_store = None

                def _refresh():
                    nonlocal ns, smask, idx_l, ways_l, frees_l, pol
                    nonlocal samplers, sampler_last_pc, line_pc_l, rrpv_l
                    nonlocal line_keys, ev_store
                    ns = store.num_sets
                    smask = ns - 1
                    idx_l = store._index
                    ways_l = store._ways
                    frees_l = store._free
                    pol = store._hawkeye
                    samplers = pol._samplers
                    sampler_last_pc = pol._sampler_last_pc
                    line_pc_l = pol._line_pc
                    rrpv_l = pol._rrpv
                    line_keys = pol._line_keys
                    ev_store = store.events

                _refresh()

                def _apply_resize(pending: int):
                    store.resize(pending)
                    _refresh()
                    apply_partition()
                    if pf.events is not None:
                        pf.events.emit(
                            "partition.apply", "info", capacity_bytes=pending
                        )

                def _observe_sampled(og_, set_idx_, key_, pc_):
                    """HawkeyePolicy.observe for a sampled set."""
                    last_pcs = sampler_last_pc[set_idx_]
                    verdict = og_.access(key_)
                    if verdict is not None:
                        pred_train(last_pcs.get(key_, pc_), verdict)
                    last_pcs[key_] = pc_
                    if len(last_pcs) > 8 * og_.window:
                        last_pcs.clear()

                def triage_train(pc_: int, line_: int, _ph: bool) -> None:
                    nonlocal st_lookups, st_hits, st_updates, st_inserts
                    nonlocal st_evictions, st_llc, st_agree, st_conflict
                    spc = pc_ if pcl else 0
                    spc_h = (spc ^ (spc >> 13) ^ (spc >> 26)) & pmask
                    pending = None
                    cand_t: list = []
                    cand_s: list = []
                    trigger = line_
                    for _ in range(deg):
                        if ctrl is not None:
                            p_ = _ctrl_note(trigger)
                            if p_ is not None:
                                pending = p_
                        st_lookups += 1
                        st_llc += 1
                        successor = None
                        if ns:
                            set_idx = trigger & smask
                            way = idx_l[set_idx].get(trigger)
                            if way is not None:
                                entry = ways_l[set_idx][way]
                                st_hits += 1
                                line_pc_l[set_idx][way] = spc
                                rrpv_l[set_idx][way] = (
                                    0 if pred_cnt.get(spc_h, 4) >= 4 else 7
                                )
                                if tt is None:
                                    successor = (
                                        (entry.next_compact << 11)
                                        | entry.next_set_id
                                    )
                                else:
                                    tag_ = id2tag.get(entry.next_compact)
                                    if tag_ is not None:
                                        successor = (
                                            (tag_ << 11) | entry.next_set_id
                                        )
                        if successor is None:
                            if ns:
                                set_idx = trigger & smask
                                og_ = samplers.get(set_idx)
                                if og_ is not None:
                                    _observe_sampled(
                                        og_, set_idx, trigger, spc
                                    )
                            break
                        cand_t.append(trigger)
                        cand_s.append(successor)
                        trigger = successor
                    # Training (TrainingUnit + MetadataStore.update).
                    # pop+reinsert == get+set+move_to_end, one op cheaper.
                    prev_line = tu.pop(spc, None)
                    tu[spc] = line_
                    if prev_line is None and len(tu) > tu_max:
                        tu.popitem(last=False)
                    if prev_line is not None and prev_line != line_:
                        st_updates += 1
                        st_llc += 1
                        compact, sid = _encode_successor(line_)
                        entry = None
                        if ns:
                            set_idx = prev_line & smask
                            way = idx_l[set_idx].get(prev_line)
                            if way is not None:
                                entry = ways_l[set_idx][way]
                        if entry is not None:
                            if (
                                entry.next_compact == compact
                                and entry.next_set_id == sid
                            ):
                                st_agree += 1
                                entry.confidence = 1
                            elif entry.confidence > 0:
                                st_conflict += 1
                                entry.confidence = 0
                            else:
                                st_conflict += 1
                                entry.next_compact = compact
                                entry.next_set_id = sid
                                entry.confidence = 1
                            og_ = samplers.get(set_idx)
                            if og_ is not None:
                                _observe_sampled(og_, set_idx, prev_line, spc)
                        elif ns:
                            frees = frees_l[set_idx]
                            row = rrpv_l[set_idx]
                            if frees:
                                way = frees.pop()
                            else:
                                mx = max(row)
                                way = row.index(mx)
                                victim = ways_l[set_idx][way]
                                if mx < 7:
                                    pred_train(
                                        line_pc_l[set_idx][way], False
                                    )
                                del idx_l[set_idx][victim.trigger]
                                row[way] = 7
                                st_evictions += 1
                                if ev_store is not None:
                                    ev_store.emit(
                                        "meta_store.evict", "debug",
                                        set=set_idx, way=way,
                                        trigger=victim.trigger,
                                    )
                            ways_l[set_idx][way] = MetadataEntry(
                                prev_line, compact, sid
                            )
                            idx_l[set_idx][prev_line] = way
                            line_keys.setdefault(set_idx, {})[way] = prev_line
                            line_pc_l[set_idx][way] = spc
                            if pred_cnt.get(spc_h, 4) >= 4:
                                for w_ in range(len(row)):
                                    if w_ != way and row[w_] < 6:
                                        row[w_] += 1
                                row[way] = 0
                            else:
                                row[way] = 7
                            st_inserts += 1
                            og_ = samplers.get(set_idx)
                            if og_ is not None:
                                _observe_sampled(og_, set_idx, prev_line, spc)
                    if pending is not None:
                        _apply_resize(pending)
                    # Issue + delayed feedback (non-redundant trains the
                    # sampler); the aliases are post-resize fresh here.
                    for j_ in range(len(cand_s)):
                        if insert_l2_prefetch(cand_s[j_]) != "redundant":
                            si2 = cand_t[j_] & smask
                            og2 = samplers.get(si2)
                            if og2 is not None:
                                _observe_sampled(og2, si2, cand_t[j_], spc)

                train = triage_train
                fused_store = store
                fused_ctrl = ctrl

            elif (
                type(pf) is TriagePrefetcher
                and store.unbounded
                and ctrl is None
            ):
                umap = store._unbounded_map

                def ideal_train(pc_: int, line_: int, _ph: bool) -> None:
                    nonlocal st_lookups, st_hits, st_updates, st_inserts
                    nonlocal st_llc, st_agree, st_conflict
                    spc = pc_ if pcl else 0
                    cand: list = []
                    trigger = line_
                    for _ in range(deg):
                        st_lookups += 1
                        st_llc += 1
                        entry = umap.get(trigger)
                        successor = None
                        if entry is not None:
                            st_hits += 1
                            if tt is None:
                                successor = (
                                    (entry.next_compact << 11)
                                    | entry.next_set_id
                                )
                            else:
                                tag_ = id2tag.get(entry.next_compact)
                                if tag_ is not None:
                                    successor = (
                                        (tag_ << 11) | entry.next_set_id
                                    )
                        if successor is None:
                            break
                        cand.append(successor)
                        trigger = successor
                    # pop+reinsert == get+set+move_to_end, one op cheaper.
                    prev_line = tu.pop(spc, None)
                    tu[spc] = line_
                    if prev_line is None and len(tu) > tu_max:
                        tu.popitem(last=False)
                    if prev_line is not None and prev_line != line_:
                        st_updates += 1
                        st_llc += 1
                        compact, sid = _encode_successor(line_)
                        entry = umap.get(prev_line)
                        if entry is not None:
                            if (
                                entry.next_compact == compact
                                and entry.next_set_id == sid
                            ):
                                st_agree += 1
                                entry.confidence = 1
                            elif entry.confidence > 0:
                                st_conflict += 1
                                entry.confidence = 0
                            else:
                                st_conflict += 1
                                entry.next_compact = compact
                                entry.next_set_id = sid
                                entry.confidence = 1
                        else:
                            umap[prev_line] = MetadataEntry(
                                prev_line, compact, sid
                            )
                            st_inserts += 1
                    for t_ in cand:
                        insert_l2_prefetch(t_)

                train = ideal_train
                fused_store = store

            elif (
                type(pf) is TriangelPrefetcher
                and not store.unbounded
                and store.policy_name == "reuse"
            ):
                rp_hops = pf.config.lookahead - 1 + pf.degree
                # Store/policy internals, hoisted out of the per-event
                # path and refreshed whenever a resize rebinds them.
                ns = smask = 0
                idx_l = ways_l = frees_l = None
                rp = last_touch_l = reuse_l = None
                ev_store = None

                def _refresh():
                    nonlocal ns, smask, idx_l, ways_l, frees_l, rp
                    nonlocal last_touch_l, reuse_l, ev_store
                    ns = store.num_sets
                    smask = ns - 1
                    idx_l = store._index
                    ways_l = store._ways
                    frees_l = store._free
                    rp = store._policy
                    last_touch_l = rp._last_touch
                    reuse_l = rp._reuse
                    ev_store = store.events

                _refresh()

                def _apply_resize(pending: int):
                    store.resize(pending)
                    _refresh()
                    apply_partition()
                    if pf.events is not None:
                        pf.events.emit(
                            "partition.apply", "info", capacity_bytes=pending
                        )

                sampling = pf.config.sampling
                smp_sets = pf.sample_table._sets
                smp_nsets = pf.sample_table.num_sets
                smp_ways = pf.sample_table.num_ways
                sample_rate = pf.config.sample_rate
                pattern_conf = pf._pattern_conf
                reuse_conf = pf._reuse_conf
                alloc_thr = pf.config.allocate_threshold
                pat_max = pf.config.pattern_max
                sample_pcs_max = pf.config.sample_pcs
                tg_hits = pf.sample_hits
                tg_matches = pf.sample_pattern_matches
                tg_skipped = pf.skipped_allocations

                def _bump(table, pc_, delta):
                    v_ = table.get(pc_)
                    if v_ is None:
                        v_ = alloc_thr
                    v_ += delta
                    if v_ < 0:
                        v_ = 0
                    elif v_ > pat_max:
                        v_ = pat_max
                    table[pc_] = v_
                    table.move_to_end(pc_)
                    if len(table) > sample_pcs_max:
                        table.popitem(last=False)

                def triangel_train(pc_: int, line_: int, _ph: bool) -> None:
                    nonlocal st_lookups, st_hits, st_updates, st_inserts
                    nonlocal st_evictions, st_llc, st_agree, st_conflict
                    nonlocal tg_hits, tg_matches, tg_skipped
                    spc = pc_ if pcl else 0
                    pending = None
                    cand: list = []
                    seen = {line_}
                    cursor = line_
                    for _ in range(rp_hops):
                        if ctrl is not None:
                            p_ = _ctrl_note(cursor)
                            if p_ is not None:
                                pending = p_
                        st_lookups += 1
                        st_llc += 1
                        successor = None
                        if ns:
                            set_idx = cursor & smask
                            way = idx_l[set_idx].get(cursor)
                            if way is not None:
                                entry = ways_l[set_idx][way]
                                st_hits += 1
                                rp._clock += 1
                                last_touch_l[set_idx][way] = rp._clock
                                ru = reuse_l[set_idx]
                                if ru[way] < 3:
                                    ru[way] += 1
                                if tt is None:
                                    successor = (
                                        (entry.next_compact << 11)
                                        | entry.next_set_id
                                    )
                                else:
                                    tag_ = id2tag.get(entry.next_compact)
                                    if tag_ is not None:
                                        successor = (
                                            (tag_ << 11) | entry.next_set_id
                                        )
                        if successor is None:
                            break
                        if successor in seen:
                            break
                        seen.add(successor)
                        cand.append(successor)
                        cursor = successor
                    # pop+reinsert == get+set+move_to_end, one op cheaper.
                    prev_line = tu.pop(spc, None)
                    tu[spc] = line_
                    if prev_line is None and len(tu) > tu_max:
                        tu.popitem(last=False)
                    if prev_line is not None and prev_line != line_:
                        if sampling:
                            bucket = smp_sets[prev_line % smp_nsets]
                            se = bucket.get(prev_line)
                            if se is not None:
                                bucket.move_to_end(prev_line)
                                tg_hits += 1
                                _bump(reuse_conf, spc, 1)
                                if se.pc == spc:
                                    if se.successor == line_:
                                        tg_matches += 1
                                        _bump(pattern_conf, spc, 1)
                                    else:
                                        _bump(pattern_conf, spc, -1)
                                se.pc = spc
                                se.successor = line_
                            elif prev_line % sample_rate == 0:
                                bucket[prev_line] = SampleEntry(spc, line_)
                                bucket.move_to_end(prev_line)
                                if len(bucket) > smp_ways:
                                    bucket.popitem(last=False)
                            if ns and prev_line in idx_l[prev_line & smask]:
                                allowed = True
                            else:
                                cf = pattern_conf.get(spc)
                                allowed = cf is None or cf >= alloc_thr
                        else:
                            allowed = True
                        if not allowed:
                            tg_skipped += 1
                        else:
                            st_updates += 1
                            st_llc += 1
                            compact, sid = _encode_successor(line_)
                            entry = None
                            if ns:
                                set_idx = prev_line & smask
                                way = idx_l[set_idx].get(prev_line)
                                if way is not None:
                                    entry = ways_l[set_idx][way]
                            if entry is not None:
                                if (
                                    entry.next_compact == compact
                                    and entry.next_set_id == sid
                                ):
                                    st_agree += 1
                                    entry.confidence = 1
                                elif entry.confidence > 0:
                                    st_conflict += 1
                                    entry.confidence = 0
                                else:
                                    st_conflict += 1
                                    entry.next_compact = compact
                                    entry.next_set_id = sid
                                    entry.confidence = 1
                            elif ns:
                                frees = frees_l[set_idx]
                                if frees:
                                    way = frees.pop()
                                else:
                                    ru = reuse_l[set_idx]
                                    tc = last_touch_l[set_idx]
                                    scores = [
                                        (ru[w_], tc[w_])
                                        for w_ in range(len(ru))
                                    ]
                                    way = scores.index(min(scores))
                                    victim = ways_l[set_idx][way]
                                    del idx_l[set_idx][victim.trigger]
                                    tc[way] = -1
                                    ru[way] = 0
                                    st_evictions += 1
                                    if ev_store is not None:
                                        ev_store.emit(
                                            "meta_store.evict", "debug",
                                            set=set_idx, way=way,
                                            trigger=victim.trigger,
                                        )
                                ways_l[set_idx][way] = MetadataEntry(
                                    prev_line, compact, sid
                                )
                                idx_l[set_idx][prev_line] = way
                                rp._clock += 1
                                last_touch_l[set_idx][way] = rp._clock
                                reuse_l[set_idx][way] = 0
                                st_inserts += 1
                    if pending is not None:
                        _apply_resize(pending)
                    for t_ in cand:
                        insert_l2_prefetch(t_)

                train = triangel_train
                fused_store = store
                fused_ctrl = ctrl
                fused_triangel = True

        elif type(pf) is BestOffsetPrefetcher:
            bo = pf
            offsets_l = bo.offsets
            n_off = len(offsets_l)
            rr_t = bo._rr_table
            rr_mask = bo.rr_size - 1
            sc_max = bo.SCORE_MAX
            r_max = bo.ROUND_MAX
            bo_deg = bo.degree

            def bo_train(pc_: int, line_: int, _ph: bool) -> None:
                ti = bo._test_index
                probe = line_ - offsets_l[ti]
                if rr_t[(probe ^ (probe >> 8)) & rr_mask] == probe:
                    sc = bo._scores
                    s_ = sc[ti] + 1
                    sc[ti] = s_
                    if s_ >= sc_max:
                        bo._end_round()
                ti = bo._test_index + 1
                if ti >= n_off:
                    bo._test_index = 0
                    bo._round += 1
                    if bo._round >= r_max:
                        bo._end_round()
                else:
                    bo._test_index = ti
                rr_t[(line_ ^ (line_ >> 8)) & rr_mask] = line_
                if bo.prefetching_on:
                    boff = bo.best_offset
                    for j_ in range(1, bo_deg + 1):
                        insert_l2_prefetch(line_ + boff * j_)

            train = bo_train

        elif type(pf) is SmsPrefetcher and pf.region_lines > 0 and (
            pf.region_lines & (pf.region_lines - 1) == 0
        ):
            # Power-of-two regions (the only configured shape) let the
            # region/offset split run as shift/mask and the footprint
            # replay walk only the *set* bits, ascending, instead of
            # scanning every offset.  Other shapes use generic_train.
            sms = pf
            region_lines = sms.region_lines
            rshift = region_lines.bit_length() - 1
            rmask = region_lines - 1
            filt_t = sms._filter
            acc_t = sms._accumulation
            pht_t = sms._pht
            filt_cap = sms.filter_entries
            acc_cap = sms.accumulation_entries

            def sms_train(pc_: int, line_: int, _ph: bool) -> None:
                region = line_ >> rshift
                offset = line_ & rmask
                a_ = acc_t.get(region)
                if a_ is not None:
                    acc_t[region] = (a_[0], a_[1], a_[2] | (1 << offset))
                    acc_t.move_to_end(region)
                    return
                f_ = filt_t.get(region)
                if f_ is not None:
                    del filt_t[region]
                    t_pc, t_off = f_
                    if len(acc_t) >= acc_cap:
                        __, (o_sig, o_trig, o_fp) = acc_t.popitem(last=False)
                        sms._pht_store(o_sig, o_trig, o_fp)
                    acc_t[region] = (
                        (t_pc, t_off), t_off, (1 << t_off) | (1 << offset)
                    )
                    return
                if len(filt_t) >= filt_cap:
                    filt_t.popitem(last=False)
                filt_t[region] = (pc_, offset)
                rel = pht_t.get((pc_, offset))
                if rel is None:
                    return
                pht_t.move_to_end((pc_, offset))
                base_ = region << rshift
                m_ = rel & -2  # bit 0 is the trigger line itself
                while m_:
                    lsb = m_ & -m_
                    m_ ^= lsb
                    insert_l2_prefetch(
                        base_ + ((offset + lsb.bit_length() - 1) & rmask)
                    )

            train = sms_train

    # ---- precomputed L1 stride schedule --------------------------------
    sched = None
    if config.l1_prefetcher == "stride":
        sched = _l1_schedule(trace, lines, pcs, bh, config.l1_prefetcher_degree)

    # ---- mirror sync / epoch plumbing ----------------------------------
    def sync_state() -> None:
        counters.accesses = acc
        counters.l1_hits = l1h
        counters.l2_hits = l2h
        counters.l2_prefetch_hits = l2ph
        counters.llc_hits = llch
        counters.dram_accesses = dramc
        counters.prefetches_issued = pf_iss
        counters.prefetches_redundant = pf_red
        counters.prefetch_fills_from_llc = pf_llc
        counters.prefetch_fills_from_dram = pf_dram
        counters.l1pf_useful = l1_useful
        counters.l1pf_issued = l1_iss
        counters.l1pf_redundant = l1_red
        counters.l1pf_fills_from_dram = l1_dram
        if fused_store is not None:
            fused_store.lookups = st_lookups
            fused_store.lookup_hits = st_hits
            fused_store.updates = st_updates
            fused_store.inserts = st_inserts
            fused_store.evictions = st_evictions
            fused_store.llc_accesses = st_llc
            fused_store.update_agreements = st_agree
            fused_store.update_conflicts = st_conflict
            pf.metadata_llc_accesses = st_llc
        if fused_ctrl is not None:
            fused_ctrl._accesses_this_epoch = ctrl_acc
        if fused_triangel:
            pf.sample_hits = tg_hits
            pf.sample_pattern_matches = tg_matches
            pf.skipped_allocations = tg_skipped

    if fused_store is not None:
        st_lookups = fused_store.lookups
        st_hits = fused_store.lookup_hits
        st_updates = fused_store.updates
        st_inserts = fused_store.inserts
        st_evictions = fused_store.evictions
        st_llc = fused_store.llc_accesses
        st_agree = fused_store.update_agreements
        st_conflict = fused_store.update_conflicts

    total_cycles = 0.0
    prev = (0, 0, 0)  # (l2_hits, llc_hits, dram_accesses)
    prev_bytes = 0
    prev_coverage = (0, 0)
    in_epoch = 0
    in_warmup = warmup_accesses > 0
    traffic_offset: dict = {}
    metadata_llc_offset = 0
    metadata_dram_offset = 0
    ipa = trace.instr_per_access
    mlp = trace.mlp

    def sample_epoch(load: EpochLoad, epoch_bytes: int, cycles: float) -> None:
        nonlocal prev_coverage
        dram_info = dram.epoch_log[-1] if dram.epoch_log else {}
        useful = l2ph
        would_miss = useful + llch + dramc
        d_useful = useful - prev_coverage[0]
        d_would_miss = would_miss - prev_coverage[1]
        prev_coverage = (useful, would_miss)
        row = {
            "access_idx": acc,
            "cycles": cycles,
            "l2_hits": load.l2_hits,
            "llc_hits": load.llc_hits,
            "dram_accesses": load.dram_accesses,
            "epoch_bytes": epoch_bytes,
            "llc_data_ways": active3,
            "coverage": d_useful / d_would_miss if d_would_miss else 0.0,
            "dram_utilization": dram_info.get("utilization", 0.0),
            "dram_queue_penalty_cycles": dram_info.get(
                "queue_penalty_cycles", 0.0
            ),
        }
        for i, triage in enumerate(triages):
            store_ = triage.store
            lookups, hits, evictions = (
                store_.lookups, store_.lookup_hits, store_.evictions,
            )
            d_lookups = lookups - prev_store[i][0]
            d_hits = hits - prev_store[i][1]
            prefix = f"c0.t{i}." if len(triages) > 1 else "c0."
            capacity = 0 if store_.unbounded else store_.capacity_bytes
            row[prefix + "meta_capacity_bytes"] = capacity
            row[prefix + "meta_ways"] = config.metadata_ways(capacity)
            row[prefix + "meta_hit_rate"] = (
                d_hits / d_lookups if d_lookups else 0.0
            )
            row[prefix + "meta_evictions"] = evictions - prev_store[i][2]
            row[prefix + "meta_occupancy"] = store_.occupancy()
            prev_store[i] = (lookups, hits, evictions)
        session.registry.histogram("dram.epoch_utilization_pct").observe(
            int(row["dram_utilization"] * 100)
        )
        run.sample_epoch(**row)

    def close_epoch() -> None:
        nonlocal prev, prev_bytes, in_epoch, total_cycles
        if in_epoch == 0:
            return
        total_bytes = t_demand + t_prefetch + t_writeback + t_metadata
        if in_warmup:
            prev = (l2h, llch, dramc)
            prev_bytes = total_bytes
            in_epoch = 0
            return
        load = EpochLoad(
            instructions=in_epoch * ipa,
            l2_hits=l2h - prev[0],
            llc_hits=llch - prev[1],
            dram_accesses=dramc - prev[2],
            mlp=mlp,
        )
        epoch_bytes = total_bytes - prev_bytes
        cycles = resolve_epoch([load], epoch_bytes, config, dram)[0]
        total_cycles += cycles
        if run is not None:
            sync_state()
            sample_epoch(load, epoch_bytes, cycles)
        prev = (l2h, llch, dramc)
        prev_bytes = total_bytes
        in_epoch = 0

    def warmup_reset() -> None:
        nonlocal acc, l1h, l2h, l2ph, llch, dramc
        nonlocal pf_iss, pf_red, pf_llc, pf_dram
        nonlocal l1_useful, l1_iss, l1_red, l1_dram
        nonlocal traffic_offset, metadata_llc_offset, metadata_dram_offset
        nonlocal total_cycles, prev, prev_bytes, prev_coverage, in_epoch
        nonlocal in_warmup, prev_store
        sync_state()
        traffic_offset = {
            "demand": t_demand,
            "prefetch": t_prefetch,
            "writeback": t_writeback,
            "metadata": t_metadata,
        }
        metadata_llc_offset = sum(t.store.llc_accesses for t in triages)
        if pf is not None:
            metadata_dram_offset = pf.metadata_dram_accesses
            if isinstance(pf, HybridPrefetcher):
                metadata_dram_offset = pf.total_metadata_dram_accesses
        acc = l1h = l2h = l2ph = llch = dramc = 0
        pf_iss = pf_red = pf_llc = pf_dram = 0
        l1_useful = l1_iss = l1_red = l1_dram = 0
        total_cycles = 0.0
        prev = (0, 0, 0)
        prev_bytes = t_demand + t_prefetch + t_writeback + t_metadata
        prev_coverage = (0, 0)
        in_epoch = 0
        in_warmup = False
        if dram.epoch_log:
            dram.epoch_log.clear()
        prev_store = [
            (t.store.lookups, t.store.lookup_hits, t.store.evictions)
            for t in triages
        ]

    def bulk_l1_hits(count: int) -> None:
        """Skip ``count`` guaranteed-L1-hit repeats, honouring epochs."""
        nonlocal acc, l1h, in_epoch
        while count:
            step = epoch_accesses - in_epoch
            if step > count:
                step = count
            acc += step
            l1h += step
            in_epoch += step
            count -= step
            if in_epoch >= epoch_accesses:
                close_epoch()

    # ---- main loop ------------------------------------------------------
    wa = warmup_accesses
    w_pending = 0 < wa  # warmup boundary not yet crossed
    if len(bh) == n:
        # No repeats anywhere (the common case for real traces): run the
        # demand path in epoch-sized segments with true local counters.
        idx = 0
        while idx < n:
            if w_pending and idx == wa:
                warmup_reset()
                w_pending = False
            stop = idx + (epoch_accesses - in_epoch)
            if stop > n:
                stop = n
            if w_pending and stop > wa:
                stop = wa
            d = _run_segment(
                idx, stop, pcs, lines, ws, sched, L1, L2, L3, free3,
                m1, m2, m3, w1, w2, insert_l1_prefetch, train,
            )
            l1h += d[0]
            l2h += d[1]
            l2ph += d[2]
            llch += d[3]
            dramc += d[4]
            l1_useful += d[5]
            t_demand += d[6]
            t_writeback += d[7]
            acc += stop - idx
            in_epoch += stop - idx
            if in_epoch >= epoch_accesses:
                close_epoch()
            idx = stop
        bh = []  # the general loop below has nothing left to do
    for k in range(len(bh)):
        i = bh[k]
        if w_pending and i == wa:
            warmup_reset()
            w_pending = False
        pc = pcs[i]
        line = lines[i]
        w = ws[i]
        acc += 1
        in_epoch += 1
        tk = -1  # -1 no training event; 0 prefetch_hit False; 1 True
        d1 = L1[line & m1]
        v = d1.get(line)
        if v is not None:
            l1h += 1
            del d1[line]
            d1[line] = v | 1 if w else v
        else:
            d2 = L2[line & m2]
            v2 = d2.get(line)
            if v2 is not None:
                l2h += 1
                kd = v2 >> 1
                if kd == 2:
                    l2ph += 1
                    tk = 1
                elif kd == 1:
                    l1_useful += 1
                    tk = 0
                del d2[line]
                d2[line] = (v2 & 1) | 1 if w else v2 & 1
            else:
                tk = 0
                s3 = line & m3
                d3 = L3[s3]
                v3 = d3.get(line)
                if v3 is not None:
                    llch += 1
                    del d3[line]
                    d3[line] = v3
                else:
                    dramc += 1
                    t_demand += 64
                    fr = free3[s3]
                    if fr:
                        way3 = heappop(fr)
                    else:
                        ol, ov = next(iter(d3.items()))
                        del d3[ol]
                        way3 = ov >> 1
                        if ov & 1:
                            t_writeback += 64
                    d3[line] = way3 << 1
                if len(d2) == w2:
                    ol, ov = next(iter(d2.items()))
                    del d2[ol]
                    if ov & 1:
                        dd = L3[ol & m3]
                        vv = dd.get(ol)
                        if vv is not None:
                            dd[ol] = vv | 1
                        else:
                            t_writeback += 64
                d2[line] = 1 if w else 0
            if len(d1) == w1:
                ol, ov = next(iter(d1.items()))
                del d1[ol]
                if ov & 1:
                    dd = L2[ol & m2]
                    vv = dd.get(ol)
                    if vv is not None:
                        dd[ol] = vv | 1
                    else:
                        dd = L3[ol & m3]
                        vv = dd.get(ol)
                        if vv is not None:
                            dd[ol] = vv | 1
                        else:
                            t_writeback += 64
            d1[line] = 1 if w else 0
        if sched is not None:
            cand_l1 = sched[k]
            if cand_l1 is not None:
                for t_ in cand_l1:
                    insert_l1_prefetch(t_)
        if tk >= 0 and train is not None:
            train(pc, line, tk == 1)
        if in_epoch >= epoch_accesses:
            close_epoch()
        extra = bx[k]
        if extra:
            if w_pending and wa <= i + extra:
                bulk_l1_hits(wa - i - 1)
                warmup_reset()
                w_pending = False
                bulk_l1_hits(i + extra - wa + 1)
            else:
                bulk_l1_hits(extra)
    close_epoch()
    sync_state()
    loop_seconds = time.perf_counter() - wall_start
    if prof is not None:
        prof.add("batched_core", loop_seconds, calls=n)

    # ---- result assembly (mirrors the scalar engine) -------------------
    metadata_llc = sum(t.store.llc_accesses for t in triages) - metadata_llc_offset
    metadata_dram = pf.metadata_dram_accesses if pf is not None else 0
    if isinstance(pf, HybridPrefetcher):
        metadata_dram = pf.total_metadata_dram_accesses
    metadata_dram -= metadata_dram_offset
    partition_history = []
    final_capacity = None
    for triage in triages:
        if triage.controller is not None:
            partition_history = [
                d.capacity_bytes for d in triage.controller.decisions
            ]
        if not triage.store.unbounded:
            final_capacity = triage.metadata_capacity_bytes

    measured_accesses = n - min(warmup_accesses, n)
    totals = {
        "demand": t_demand,
        "prefetch": t_prefetch,
        "writeback": t_writeback,
        "metadata": t_metadata,
    }
    traffic = {
        category: totals[category] - traffic_offset.get(category, 0)
        for category in CATEGORIES
    }
    manifest = build_manifest(
        kind="single",
        workloads=[name or trace.name],
        prefetcher=pf.name if pf is not None else "none",
        config=config,
        seeds=[trace.metadata.get("seed")],
        trace_length=n,
        warmup=warmup_accesses,
        instructions=measured_accesses * trace.instr_per_access,
        cycles=total_cycles,
        wall_time_s=time.perf_counter() - wall_start,
        extra={
            "engine": "batched",
            "degree": degree,
            "charge_metadata_to_llc": charge_metadata_to_llc,
        },
    )
    result = SimulationResult(
        workload=name or trace.name,
        prefetcher=pf.name if pf is not None else "none",
        instructions=measured_accesses * trace.instr_per_access,
        cycles=total_cycles,
        counters=replace(counters),
        traffic=traffic,
        metadata_llc_accesses=metadata_llc,
        metadata_dram_accesses=metadata_dram,
        final_metadata_capacity=final_capacity,
        partition_history=partition_history,
        manifest=manifest,
    )
    manifest.extra["kpis"] = result.kpis()
    if run is not None:
        _register_run_metrics(session, counters, triages)
        _register_dram_metrics(session, dram)
        _finish_sim_span(
            session, sim_span, phases=(("batched_core", loop_seconds),)
        )
        run.finish(manifest)
    return result
