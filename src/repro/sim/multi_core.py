"""Multi-core simulation: private L1/L2 per core, shared LLC and DRAM.

Follows the paper's multi-programmed methodology: each core runs its own
trace; cores that exhaust their trace restart it so every benchmark
observes contention for the whole run; Triage computes a per-core
metadata allocation (per-core controllers and stores) and the shared LLC
loses one data way per allocated metadata way.

Bandwidth is the shared resource that makes these runs interesting: all
cores drain the same 32 GB/s DRAM model, so high-traffic prefetchers
(MISB's metadata, BO's inaccurate prefetches) inflate everyone's memory
latency -- the mechanism behind Figures 11, 12 and 17.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.memory.dram import DramModel
from repro.memory.hierarchy import CacheHierarchy
from repro.obs import ObsSession, RunObserver, get_session
from repro.obs.manifest import build_manifest
from repro.prefetchers.base import BasePrefetcher
from repro.prefetchers.hybrid import HybridPrefetcher
from repro.sim.config import MachineConfig
from repro.sim.factory import PrefetcherSpec, make_prefetcher
from repro.sim.single_core import (
    _MetadataPartition,
    _finish_sim_span,
    _open_sim_span,
    _register_dram_metrics,
    _register_run_metrics,
    attach_observability,
    make_l1_prefetcher,
    triage_components,
)
from repro.sim.stats import MultiCoreResult, SimulationResult
from repro.sim.timing import EpochLoad, resolve_epoch
from repro.workloads.base import Trace


def simulate_multicore(
    traces: Sequence[Trace],
    prefetcher: PrefetcherSpec = None,
    machine: Optional[MachineConfig] = None,
    degree: int = 1,
    accesses_per_core: Optional[int] = None,
    epoch_accesses: int = 2_000,
    charge_metadata_to_llc: bool = True,
    warmup_accesses_per_core: int = 0,
    obs: Optional[ObsSession] = None,
) -> MultiCoreResult:
    """Simulate one trace per core on a shared LLC + DRAM.

    ``prefetcher`` is instantiated once per core (each core trains its own
    prefetcher, as in ChampSim); Triage instances additionally share the
    LLC partition, with the data-way count tracking the *sum* of per-core
    metadata allocations.

    ``obs`` works as in :func:`repro.sim.single_core.simulate`: explicit
    session, else the globally enabled one, else uninstrumented.
    """
    wall_start = time.perf_counter()
    n_cores = len(traces)
    if n_cores == 0:
        raise ValueError("need at least one trace")
    config = machine or MachineConfig.multi_core(n_cores)
    if config.n_cores != n_cores:
        raise ValueError(
            f"machine is configured for {config.n_cores} cores, got {n_cores} traces"
        )
    if accesses_per_core is None:
        accesses_per_core = min(len(t) for t in traces)

    prefetchers: List[Optional[BasePrefetcher]] = [
        make_prefetcher(prefetcher, degree=degree) for _ in range(n_cores)
    ]
    hierarchy = CacheHierarchy(
        n_cores=n_cores,
        l1_size=config.l1_size,
        l1_ways=config.l1_ways,
        l2_size=config.l2_size,
        l2_ways=config.l2_ways,
        llc_size_per_core=config.llc_size_per_core,
        llc_ways=config.llc_ways,
        llc_policy=config.llc_policy,
    )
    dram = DramModel(
        base_latency_cycles=config.dram_latency_cycles,
        bandwidth_bytes_per_cycle=config.dram_bandwidth_bytes_per_cycle,
    )
    core_triages = [triage_components(pf) for pf in prefetchers]
    all_triages = [t for triages in core_triages for t in triages]
    _MetadataPartition(hierarchy, config, all_triages, charge_metadata_to_llc)
    l1pfs = [make_l1_prefetcher(config) for _ in range(n_cores)]

    session = obs if obs is not None else get_session()
    run: Optional[RunObserver] = None
    sim_span = None
    if session is not None:
        run = session.begin_run(
            "+".join(t.name for t in traces),
            prefetchers[0].name if prefetchers[0] is not None else "none",
        )
        attach_observability(
            run, all_triages, dram=dram, profiler=session.profiler
        )
        sim_span = _open_sim_span(
            session, run, "analytic-multi",
            "+".join(t.name for t in traces),
            prefetchers[0].name if prefetchers[0] is not None else "none",
            t=wall_start,
        )
    prev_store = [(0, 0) for _ in range(n_cores)]  # (lookups, hits) per core

    records = [list(t) for t in traces]
    positions = [0] * n_cores
    per_core_metadata_bytes = [0] * n_cores
    per_core_cycles = [0.0] * n_cores
    prev_counters = [(0, 0, 0)] * n_cores
    prev_bytes = 0
    accesses_in_epoch = 0
    # As in the single-core engine: warmup epochs are never resolved or
    # sampled, so warmup rows stay out of the epoch time-series and
    # ``dram.epoch_log`` holds only measured-window entries.
    in_warmup = warmup_accesses_per_core > 0
    traffic_offset: dict = {}

    def sample_epoch(loads, epoch_bytes, cycles) -> None:
        """One epoch row: the per-core way split the paper plots (Fig 15/19)."""
        dram_info = dram.epoch_log[-1] if dram.epoch_log else {}
        row = {
            "epoch_bytes": epoch_bytes,
            "llc_data_ways": hierarchy.llc.active_ways,
            "dram_utilization": dram_info.get("utilization", 0.0),
            "dram_queue_penalty_cycles": dram_info.get("queue_penalty_cycles", 0.0),
        }
        for core in range(n_cores):
            prefix = f"c{core}."
            row[prefix + "cycles"] = cycles[core]
            row[prefix + "dram_accesses"] = loads[core].dram_accesses
            lookups = sum(t.store.lookups for t in core_triages[core])
            hits = sum(t.store.lookup_hits for t in core_triages[core])
            d_lookups = lookups - prev_store[core][0]
            d_hits = hits - prev_store[core][1]
            prev_store[core] = (lookups, hits)
            capacity = sum(
                t.store.capacity_bytes
                for t in core_triages[core]
                if not t.store.unbounded
            )
            row[prefix + "meta_capacity_bytes"] = capacity
            row[prefix + "meta_ways"] = config.metadata_ways(capacity)
            row[prefix + "meta_hit_rate"] = d_hits / d_lookups if d_lookups else 0.0
        session.registry.histogram("dram.epoch_utilization_pct").observe(
            int(row["dram_utilization"] * 100)
        )
        run.sample_epoch(**row)

    def close_epoch() -> None:
        nonlocal prev_counters, prev_bytes, accesses_in_epoch
        if accesses_in_epoch == 0:
            return
        if in_warmup:
            for core in range(n_cores):
                counters = hierarchy.counters[core]
                prev_counters[core] = (
                    counters.l2_hits,
                    counters.llc_hits,
                    counters.dram_accesses,
                )
            prev_bytes = hierarchy.traffic.total_bytes
            accesses_in_epoch = 0
            return
        loads = []
        for core in range(n_cores):
            counters = hierarchy.counters[core]
            snap = prev_counters[core]
            loads.append(
                EpochLoad(
                    instructions=accesses_in_epoch * traces[core].instr_per_access,
                    l2_hits=counters.l2_hits - snap[0],
                    llc_hits=counters.llc_hits - snap[1],
                    dram_accesses=counters.dram_accesses - snap[2],
                    mlp=traces[core].mlp,
                )
            )
        epoch_bytes = hierarchy.traffic.total_bytes - prev_bytes
        cycles = resolve_epoch(loads, epoch_bytes, config, dram)
        for core in range(n_cores):
            per_core_cycles[core] += cycles[core]
            counters = hierarchy.counters[core]
            prev_counters[core] = (
                counters.l2_hits,
                counters.llc_hits,
                counters.dram_accesses,
            )
        if run is not None:
            sample_epoch(loads, epoch_bytes, cycles)
        prev_bytes = hierarchy.traffic.total_bytes
        accesses_in_epoch = 0

    prof = session.profiler if session is not None else None
    profiling = prof is not None
    t_stream = t_l1pf = t_l2pf = 0.0
    t0 = 0.0
    for step in range(warmup_accesses_per_core + accesses_per_core):
        if step == warmup_accesses_per_core and warmup_accesses_per_core > 0:
            # Warmup ends (paper: "we warm the cache ... and measure the
            # behavior of the next N instructions").
            for core in range(n_cores):
                hierarchy.counters[core] = type(hierarchy.counters[core])()
                prev_counters[core] = (0, 0, 0)
                per_core_cycles[core] = 0.0
                per_core_metadata_bytes[core] = 0
            prev_bytes = hierarchy.traffic.total_bytes
            traffic_offset = hierarchy.traffic.snapshot()
            accesses_in_epoch = 0
            in_warmup = False
            if dram.epoch_log:
                dram.epoch_log.clear()
            for core in range(n_cores):
                prev_store[core] = (
                    sum(t.store.lookups for t in core_triages[core]),
                    sum(t.store.lookup_hits for t in core_triages[core]),
                )
        for core in range(n_cores):
            core_records = records[core]
            pc, addr, is_write = core_records[positions[core]]
            positions[core] = (positions[core] + 1) % len(core_records)
            if profiling:
                t0 = time.perf_counter()
            event = hierarchy.access(core, pc, addr, is_write)
            if profiling:
                t_stream += time.perf_counter() - t0
            l1pf = l1pfs[core]
            if l1pf is not None:
                if profiling:
                    t0 = time.perf_counter()
                for candidate in l1pf.observe(pc, event.line):
                    hierarchy.prefetch(core, candidate.line, pc, kind="l1")
                if profiling:
                    t_l1pf += time.perf_counter() - t0
            pf = prefetchers[core]
            # Inlined event.trains_l2_prefetcher (property call per access).
            if pf is not None and (
                event.prefetch_hit_kind is not None
                or event.hit_level in ("llc", "dram")
            ):
                if profiling:
                    t0 = time.perf_counter()
                candidates = pf.observe(
                    event.pc, event.line,
                    prefetch_hit=event.prefetch_hit_kind == "l2",
                )
                for candidate in candidates:
                    source = hierarchy.prefetch(core, candidate.line, event.pc)
                    owner = candidate.owner or pf
                    owner.feedback(candidate, source)
                metadata_bytes = pf.drain_metadata_traffic()
                if metadata_bytes:
                    hierarchy.traffic.add("metadata", metadata_bytes)
                    per_core_metadata_bytes[core] += metadata_bytes
                if profiling:
                    t_l2pf += time.perf_counter() - t0
        accesses_in_epoch += 1
        if accesses_in_epoch >= epoch_accesses:
            close_epoch()
    close_epoch()
    if profiling:
        # "metadata_store" (timed inside TriagePrefetcher.observe) is a
        # sub-slice of "l2_stream"/"l2_prefetcher", not an extra share.
        total_accesses = n_cores * (warmup_accesses_per_core + accesses_per_core)
        prof.add("l2_stream", t_stream, calls=total_accesses)
        if any(l1pf is not None for l1pf in l1pfs):
            prof.add("l1_prefetcher", t_l1pf)
        if any(pf is not None for pf in prefetchers):
            prof.add("l2_prefetcher", t_l2pf)

    per_core_results = []
    for core in range(n_cores):
        pf = prefetchers[core]
        triages = triage_components(pf)
        metadata_llc = sum(t.store.llc_accesses for t in triages)
        if isinstance(pf, HybridPrefetcher):
            metadata_dram = pf.total_metadata_dram_accesses
        else:
            metadata_dram = pf.metadata_dram_accesses if pf is not None else 0
        counters = hierarchy.counters[core]
        partition_history = []
        final_capacity = None
        for triage in triages:
            if triage.controller is not None:
                partition_history = [
                    d.capacity_bytes for d in triage.controller.decisions
                ]
            if not triage.store.unbounded:
                final_capacity = triage.metadata_capacity_bytes
        per_core_results.append(
            SimulationResult(
                workload=traces[core].name,
                prefetcher=pf.name if pf is not None else "none",
                instructions=accesses_per_core * traces[core].instr_per_access,
                cycles=per_core_cycles[core],
                counters=replace(counters),
                traffic={
                    "demand": counters.dram_accesses * 64,
                    "prefetch": counters.prefetch_fills_from_dram * 64,
                    "writeback": 0,
                    "metadata": per_core_metadata_bytes[core],
                },
                metadata_llc_accesses=metadata_llc,
                metadata_dram_accesses=metadata_dram,
                final_metadata_capacity=final_capacity,
                partition_history=partition_history,
            )
        )
    traffic = {
        category: total - traffic_offset.get(category, 0)
        for category, total in hierarchy.traffic.snapshot().items()
    }
    manifest = build_manifest(
        kind="multi",
        workloads=[t.name for t in traces],
        prefetcher=(
            prefetchers[0].name if prefetchers[0] is not None else "none"
        ),
        config=config,
        seeds=[t.metadata.get("seed") for t in traces],
        trace_length=accesses_per_core,
        warmup=warmup_accesses_per_core,
        instructions=sum(r.instructions for r in per_core_results),
        cycles=max(r.cycles for r in per_core_results),
        wall_time_s=time.perf_counter() - wall_start,
        extra={"engine": "analytic", "n_cores": n_cores, "degree": degree},
    )
    result = MultiCoreResult(
        workloads=[t.name for t in traces],
        prefetcher=(
            prefetchers[0].name if prefetchers[0] is not None else "none"
        ),
        per_core=per_core_results,
        traffic=traffic,
        manifest=manifest,
    )
    manifest.extra["kpis"] = result.kpis()
    if run is not None:
        for core in range(n_cores):
            _register_run_metrics(
                session, hierarchy.counters[core], core_triages[core]
            )
        _register_dram_metrics(session, dram)
        _finish_sim_span(
            session,
            sim_span,
            phases=(
                ("l2_stream", t_stream),
                ("l1_prefetcher", t_l1pf),
                ("l2_prefetcher", t_l2pf),
            ),
        )
        run.finish(manifest)
    return result
