"""Metadata-access energy model (paper Section 4.3, Figure 13).

Following the paper: "we count the number of LLC accesses for metadata,
assuming 1 unit of energy for each LLC access.  To estimate the energy
consumption of MISB's memory accesses, we count the number of off-chip
metadata accesses and multiply it by the average energy of a DRAM
access" -- 25 units nominal, with 10/50-unit lower/upper bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

LLC_ACCESS_ENERGY = 1.0
DRAM_ACCESS_ENERGY_NOMINAL = 25.0
DRAM_ACCESS_ENERGY_LOW = 10.0
DRAM_ACCESS_ENERGY_HIGH = 50.0


def metadata_energy(
    llc_accesses: int,
    dram_accesses: int,
    dram_unit: float = DRAM_ACCESS_ENERGY_NOMINAL,
) -> float:
    """Energy units consumed by a prefetcher's metadata accesses."""
    return llc_accesses * LLC_ACCESS_ENERGY + dram_accesses * dram_unit


@dataclass
class EnergyComparison:
    """MISB-vs-Triage metadata energy, with DRAM-energy error bars."""

    nominal: float
    low: float
    high: float


def misb_vs_triage_energy(
    misb_dram_accesses: int,
    misb_llc_accesses: int,
    triage_llc_accesses: int,
) -> EnergyComparison:
    """Energy overhead of MISB's metadata accesses over Triage's (x)."""
    triage = metadata_energy(triage_llc_accesses, 0)
    if triage <= 0:
        return EnergyComparison(0.0, 0.0, 0.0)
    return EnergyComparison(
        nominal=metadata_energy(misb_llc_accesses, misb_dram_accesses) / triage,
        low=metadata_energy(
            misb_llc_accesses, misb_dram_accesses, DRAM_ACCESS_ENERGY_LOW
        )
        / triage,
        high=metadata_energy(
            misb_llc_accesses, misb_dram_accesses, DRAM_ACCESS_ENERGY_HIGH
        )
        / triage,
    )
