"""Machine configurations (paper Table 1).

Latencies are in core cycles at 2 GHz; DRAM's 85 ns base latency is 170
cycles and the 32 GB/s memory system moves 16 bytes per cycle (shared by
all cores in multi-core configurations, which is what makes the 16-core
mixes bandwidth-constrained).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class MachineConfig:
    """Core + memory-system parameters for one simulation."""

    n_cores: int = 1
    # Caches (Table 1 geometry).
    l1_size: int = 64 * KB
    l1_ways: int = 4
    l2_size: int = 512 * KB
    l2_ways: int = 8
    l2_latency: int = 11
    llc_size_per_core: int = 2 * MB
    llc_ways: int = 16
    llc_latency: int = 20
    llc_policy: str = "lru"
    #: Extra cycles added to LLC accesses (Section 4.6 sensitivity: the
    #: fine-grained metadata lines may lengthen the LLC pipeline).
    extra_llc_latency: int = 0
    # DRAM.
    dram_latency_cycles: float = 170.0
    dram_bandwidth_bytes_per_cycle: float = 16.0
    # Core: 4-wide fetch/dispatch -> 0.25 CPI floor on non-memory work.
    base_cpi: float = 0.25
    #: Baseline L1D prefetcher (Table 1 ships a stride prefetcher at the
    #: L1D in *every* configuration, including "no L2PF").  "none"
    #: disables it.
    l1_prefetcher: str = "stride"
    l1_prefetcher_degree: int = 1

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if self.llc_ways <= 0 or self.llc_size_per_core <= 0:
            raise ValueError("LLC geometry must be positive")

    @property
    def llc_total_size(self) -> int:
        return self.llc_size_per_core * self.n_cores

    @property
    def llc_way_bytes(self) -> int:
        """Capacity of one LLC way (the unit of Triage's partitioning)."""
        return self.llc_total_size // self.llc_ways

    def metadata_ways(self, capacity_bytes: int) -> int:
        """LLC ways needed to hold ``capacity_bytes`` of metadata."""
        if capacity_bytes <= 0:
            return 0
        return -(-capacity_bytes // self.llc_way_bytes)  # ceil division

    def with_cores(self, n_cores: int) -> "MachineConfig":
        """This configuration scaled to ``n_cores`` (shared LLC grows)."""
        return replace(self, n_cores=n_cores)

    @classmethod
    def single_core(cls, **overrides) -> "MachineConfig":
        """The paper's single-core machine."""
        return cls(**overrides)

    @classmethod
    def scaled(cls, factor: int = 4, n_cores: int = 1, **overrides) -> "MachineConfig":
        """Table 1 with every cache divided by ``factor``.

        Associativities, latencies and DRAM parameters are unchanged, so
        every capacity *ratio* the paper's evaluation depends on (working
        set : LLC, metadata store : LLC, ways per partition step) is
        preserved.  Experiments pair this with
        ``workloads.spec.make_trace(..., scale=factor)``.
        """
        params = dict(
            n_cores=n_cores,
            l1_size=(64 * KB) // factor,
            l2_size=(512 * KB) // factor,
            llc_size_per_core=(2 * MB) // factor,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def multi_core(cls, n_cores: int, **overrides) -> "MachineConfig":
        """The paper's multi-core machine: same per-core resources, one
        shared 32 GB/s memory system."""
        return cls(n_cores=n_cores, **overrides)
