"""Parallel sweep execution over a process pool, with the disk cache.

The unit of work is a *cell*: one ``(workload, prefetcher-config)``
simulation, described by a picklable dict.  :func:`run_cells` executes a
list of cells either in-process (``n_jobs=1``) or fanned out over a
``ProcessPoolExecutor``, returning results **in input order** either
way.  Both paths run the *same* per-cell code
(:func:`simulate_sweep_cell` / ``experiments.common.run_single``), so a
parallel sweep is bit-identical to a serial one -- the determinism tests
in ``tests/test_parallel_determinism.py`` pin this down.

Resilience: execution is driven by :mod:`repro.resilience` -- per-cell
retries with backoff, optional per-cell wall-clock timeouts,
``BrokenProcessPool`` recovery by pool respawn (re-running only
unfinished cells, degrading to serial after repeated pool deaths), an
append-only checkpoint journal under the cache root that ``resume``
reads to skip already-finished cells, and graceful SIGINT/SIGTERM
shutdown.  Knobs: ``retries``/``cell_timeout``/``resume`` arguments,
``REPRO_RETRIES``/``REPRO_CELL_TIMEOUT``/``REPRO_RESUME`` ambiently.
Every recovery emits a ``resilience.*`` trace event; the seeded chaos
harness in :mod:`repro.faults` (``REPRO_FAULTS``) exercises each path
deterministically.  See ``docs/resilience.md``.

Caching: each cell consults the process cache
(:func:`repro.cache.get_cache`) before simulating -- generated traces
and finished results both have disk tiers -- so a warm-cache sweep makes
zero ``simulate()`` calls.  Workers receive the parent's cache root
explicitly in their payload (no reliance on fork-time inheritance).
The in-process trace memo is a small LRU (:data:`_TRACE_MEMO`), so long
multi-benchmark sessions do not grow memory without bound.

Observability: when the parent has an active
:class:`~repro.obs.ObsSession`, each worker runs its cell under a fresh
local session and ships back a typed metrics dump, its trace events,
epoch rows, spans and manifests; the parent folds them in **in
cell-submission order**, so merged counters/events are deterministic
regardless of worker scheduling.  When tracing is on, every cell runs
under a root ``sweep.cell`` span whose ids derive from the cell's
identity token (propagated over the wire), so the merged trace tree of
a parallel sweep is bit-identical to a serial one's.  Run manifests of parallel results are also appended
to the always-on :data:`repro.obs.manifest.RUN_LOG` (worker-side logs
die with the worker), keeping bench provenance files complete.
"""

from __future__ import annotations

import os
import sys
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from repro import cache, config, faults, resilience
from repro.core.triage import TriageConfig
from repro.obs import get_session
from repro.obs.manifest import RUN_LOG, RunManifest, log_cached_manifest
from repro.sim.single_core import simulate
from repro.sim.stats import MultiCoreResult, SimulationResult
from repro.workloads import spec as spec_workloads

Cell = Dict[str, object]

#: Payload bookkeeping keys that are not part of a cell's identity.
_TRANSPORT_KEYS = frozenset(
    {
        "cache_dir",
        "obs",
        "faults",
        "faults_seed",
        "fault_token",
        "fault_attempt",
        "trace",
    }
)


def _jobs_env() -> Optional[int]:
    """``REPRO_JOBS`` as a positive int, or ``None`` (unset or invalid).

    Invalid, zero or negative values warn once (stderr plus a
    ``config.invalid_env`` obs event) and are ignored, rather than being
    silently clamped to 1 as they once were.
    """
    value = config.positive_env("REPRO_JOBS", int, minimum=1)
    return int(value) if value is not None else None


def default_jobs() -> int:
    """Worker count when none is given: ``REPRO_JOBS``, else cores - 1."""
    env = _jobs_env()
    if env is not None:
        return env
    return max(1, (os.cpu_count() or 2) - 1)


def jobs_from_env(default: int = 1) -> int:
    """``REPRO_JOBS`` if set (and valid), else ``default``.

    Implicit call sites (figure harnesses, ``sweep()`` without
    ``n_jobs``) use this so they stay serial unless the user opted in
    via ``--jobs`` / the environment; explicit :func:`run_cells` callers
    get the cores-based :func:`default_jobs` instead.
    """
    env = _jobs_env()
    return env if env is not None else default


# -- cells -------------------------------------------------------------------


def sweep_cell(
    bench: str,
    spec,
    config_name: str,
    n_accesses: int,
    seed: int,
    scale: int,
    machine,
    warmup: int,
    degree: int = 1,
) -> Cell:
    """Describe one sweep cell (everything a worker needs, picklable)."""
    return {
        "task": "sweep",
        "bench": bench,
        "spec": spec,
        "config_name": config_name,
        "n_accesses": n_accesses,
        "seed": seed,
        "scale": scale,
        "machine": machine,
        "warmup": warmup,
        "degree": degree,
    }


def run_single_cell(**kwargs) -> Cell:
    """A cell that executes ``experiments.common.run_single(**kwargs)``."""
    return {"task": "run_single", "kwargs": kwargs}


def _parallel_safe(cell: Cell) -> bool:
    """Whether a cell can cross a process boundary.

    Sweep cells carrying an already-built prefetcher instance (shared
    mutable state) or a factory callable stay in-process: shipping a
    copy to a worker would silently change the documented
    state-carrying semantics, and callables generally don't pickle.
    """
    if cell["task"] != "sweep":
        return True
    return cell["spec"] is None or isinstance(cell["spec"], (str, TriageConfig))


def cell_identity(cell: Cell) -> Optional[str]:
    """A stable content hash naming this cell, or ``None``.

    This is the checkpoint-journal key: two invocations building the
    same grid produce the same identities, so a resumed run recognises
    its finished cells.  Cells carrying prefetcher instances or factory
    callables have no stable identity (mutable state / object identity)
    and are never journaled.
    """
    try:
        payload = {
            key: value
            for key, value in cell.items()
            if key not in _TRANSPORT_KEYS
        }
        return cache.stable_hash({"cell": payload})
    except cache.UncacheableSpec:
        return None


def _sweep_result_key(cell: Cell) -> Optional[str]:
    """The disk-cache key a sweep cell's result lands under, or ``None``."""
    try:
        fingerprint = cache.spec_fingerprint(cell["spec"])
    except cache.UncacheableSpec:
        return None
    return cache.run_key(
        namespace="sweep",
        workload={
            "suite": "spec",
            "bench": cell["bench"],
            "n_accesses": cell["n_accesses"],
            "seed": cell["seed"],
            "scale": cell["scale"],
        },
        prefetcher=fingerprint,
        machine=cell["machine"],
        degree=cell["degree"],
        warmup=cell["warmup"],
    )


def cell_result_key(cell: Cell) -> Optional[str]:
    """Where this cell's result is (or will be) cached, or ``None``."""
    if cell["task"] == "sweep":
        return _sweep_result_key(cell)
    if cell["task"] == "run_single":
        from repro.experiments import common  # lazy: common imports us

        try:
            return common.run_single_cache_key(**cell["kwargs"])
        except cache.UncacheableSpec:
            return None
    return None


# -- per-cell execution (shared by the serial and parallel paths) ------------


class _LruMemo(OrderedDict):
    """A small LRU dict: :meth:`store` evicts the least-recent entries."""

    def __init__(self, maxsize: int = 8):
        super().__init__()
        self.maxsize = maxsize

    def lookup(self, key):
        if key in self:
            self.move_to_end(key)
            return self[key]
        return None

    def store(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.maxsize:
            self.popitem(last=False)


#: Process-local trace memo so a sweep generates each workload once per
#: process even with the disk cache off (cells of one benchmark share
#: their trace, as the pre-parallel serial loop did).  Bounded (LRU over
#: (bench, n, seed, scale)) so long multi-benchmark sessions don't grow
#: without limit; evicted traces are regenerated or re-read from the
#: disk tier on the next touch.  Cleared by :func:`clear_trace_memo` /
#: ``experiments.common.clear_caches``.
_TRACE_MEMO = _LruMemo(
    maxsize=int(os.environ.get("REPRO_TRACE_MEMO", "") or 8)
)


def clear_trace_memo() -> None:
    _TRACE_MEMO.clear()


def _sweep_trace(cell: Cell, store):
    """The cell's workload trace: process memo, disk tier, else generate."""
    memo_key = (cell["bench"], cell["n_accesses"], cell["seed"], cell["scale"])
    memoed = _TRACE_MEMO.lookup(memo_key)
    if memoed is not None:
        return memoed
    key = None
    if store is not None:
        key = cache.trace_key(
            "spec", cell["bench"], cell["n_accesses"], cell["seed"], cell["scale"]
        )
        cached = store.get_trace(key)
        if cached is not None:
            _TRACE_MEMO.store(memo_key, cached)
            return cached
    trace = spec_workloads.make_trace(
        cell["bench"],
        n_accesses=cell["n_accesses"],
        seed=cell["seed"],
        scale=cell["scale"],
    )
    if key is not None:
        store.put_trace(key, trace)
    _TRACE_MEMO.store(memo_key, trace)
    return trace


def simulate_sweep_cell(cell: Cell) -> SimulationResult:
    """Run one sweep cell: disk-cache lookup, else simulate (and store)."""
    store = cache.get_cache()
    key = None
    if store is not None:
        key = _sweep_result_key(cell)
        if key is not None:
            hit = store.get_result(key)
            if hit is not None:
                log_cached_manifest(hit)
                return hit
    trace = _sweep_trace(cell, store)
    result = simulate(
        trace,
        cell["spec"],
        machine=cell["machine"],
        warmup_accesses=cell["warmup"],
        degree=cell["degree"],
    )
    if key is not None:
        store.put_result(key, result)
    return result


def _run_task(cell: Cell):
    """Execute one cell in the current process."""
    task = cell["task"]
    if task == "sweep":
        return simulate_sweep_cell(cell)
    if task == "run_single":
        from repro.experiments import common  # lazy: common imports us

        return common.run_single(**cell["kwargs"])
    raise ValueError(f"unknown cell task {task!r}")


# -- worker side -------------------------------------------------------------


def _fire_cell_faults(payload: Cell) -> None:
    """Consult the armed fault plan at the per-cell sites."""
    token = str(payload.get("fault_token") or "")
    attempt = int(payload.get("fault_attempt") or 0)
    faults.fire("worker_crash", token, attempt)
    faults.fire("cell_timeout", token, attempt)


def _cell_span(session, payload: Cell):
    """Open the cell's root ``sweep.cell`` span from its wire context.

    The submitting :func:`run_cells` derives the context purely from the
    cell's identity token, so the span reconstructed here -- in a worker
    or in-process -- carries the *same* trace/span ids either way; that
    is what makes a parallel sweep's trace tree bit-identical to the
    serial one.  Returns ``NULL_SPAN`` when no context was attached.
    """
    from repro.obs.tracing import NULL_SPAN

    wire = payload.get("trace")
    if session is None or not wire or not session.tracer.enabled:
        return NULL_SPAN
    return session.tracer.begin_from_wire(
        wire,
        "sweep.cell",
        task=str(payload.get("task")),
        bench=str(payload.get("bench") or ""),
        config=str(payload.get("config_name") or ""),
    )


def _execute(payload: Cell) -> Dict[str, object]:
    """Worker entry point: configure cache/obs/faults locally, run, dump.

    The output dict carries ``seconds`` -- the cell's own wall time
    inside the worker, excluding queueing and transport -- which
    :func:`run_cells` republishes as a ``parallel.cell_done`` trace
    event (the benchmark harness's per-cell latency source).
    """
    import time

    from repro import obs as obs_mod

    if payload.get("faults"):
        faults.configure(payload["faults"], seed=int(payload.get("faults_seed") or 0))
    faults.mark_worker()
    _fire_cell_faults(payload)
    if payload.get("cache_dir"):
        cache.configure(payload["cache_dir"])
    if not payload.get("obs"):
        # A forked worker inherits a copy of the parent's session; writes
        # to it would be silently lost, so make the state explicit.
        obs_mod.disable()
        start = time.perf_counter()
        result = _run_task(payload)
        return {
            "result": result,
            "obs": None,
            "local": False,
            "seconds": time.perf_counter() - start,
        }
    session = obs_mod.enable()
    try:
        start = time.perf_counter()
        with _cell_span(session, payload):
            result = _run_task(payload)
        seconds = time.perf_counter() - start
        dump = {
            "metrics": session.registry.dump_typed(),
            "events": [e.to_dict() for e in session.events.events()],
            "epochs": list(session.sampler.rows),
            "manifests": [m.to_dict() for m in session.manifests],
            "spans": session.tracer.records(),
        }
    finally:
        obs_mod.disable()
    return {"result": result, "obs": dump, "local": False, "seconds": seconds}


def _run_local(payload: Cell, attempt: int = 0) -> Dict[str, object]:
    """In-process twin of :func:`_execute` (serial and degraded modes).

    Runs under the parent's own cache/obs state, so no dump/merge is
    needed; ``local: True`` tells :func:`run_cells` that manifests and
    metrics were already recorded in-process.  The ``worker_crash``
    fault site raises here instead of killing the process.
    """
    import time

    payload = dict(payload, fault_attempt=attempt)
    _fire_cell_faults(payload)
    start = time.perf_counter()
    with _cell_span(get_session(), payload):
        result = _run_task(payload)
    return {
        "result": result,
        "obs": None,
        "local": True,
        "seconds": time.perf_counter() - start,
    }


def _merge_obs(session, dump: Dict[str, object]) -> None:
    """Fold one worker's observability dump into the parent session."""
    session.registry.merge_typed(dump["metrics"])
    for event in dump["events"]:
        fields = dict(event)
        fields.pop("seq", None)
        category = fields.pop("category")
        severity = fields.pop("severity")
        session.events.emit(category, severity, **fields)
    for row in dump["epochs"]:
        session.sampler.sample(**row)
    for manifest in dump["manifests"]:
        session.manifests.append(RunManifest.from_dict(manifest))
    spans = dump.get("spans")
    if spans:
        session.tracer.merge(spans)


def _log_manifests(result) -> None:
    """Replicate a parallel result's manifest into this process's log."""
    manifest = getattr(result, "manifest", None)
    if manifest is not None:
        RUN_LOG.append(manifest)


# -- the front door ----------------------------------------------------------


def _resume_flag(resume: Optional[bool]) -> bool:
    if resume is not None:
        return bool(resume)
    return os.environ.get("REPRO_RESUME", "") not in ("", "0")


def run_cells(
    cells: Sequence[Cell],
    n_jobs: Optional[int] = None,
    cache_dir=None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    resume: Optional[bool] = None,
    journal_path=None,
) -> List[object]:
    """Execute ``cells``, resiliently, returning results in input order.

    ``n_jobs=None`` uses :func:`default_jobs` (``REPRO_JOBS``, else
    cores - 1); ``n_jobs=1`` runs serially in-process, which is also the
    fallback when any cell cannot cross a process boundary (warned
    loudly -- see below).  ``cache_dir`` configures the process-wide
    disk cache for this and all subsequent lookups (workers receive it
    explicitly).

    ``retries`` / ``cell_timeout`` override the ambient
    ``REPRO_RETRIES`` / ``REPRO_CELL_TIMEOUT`` retry policy
    (:class:`repro.resilience.RetryPolicy`).  When a disk cache is
    configured, every completed cell is checkpointed to an append-only
    journal under the cache root; ``resume=True`` (or ``REPRO_RESUME=1``)
    re-reads it so an interrupted grid skips finished cells entirely
    (``resilience.resume_skip`` events mark each skip).  SIGINT/SIGTERM
    interrupt gracefully: finished cells stay journaled and cached, the
    active obs session is flushed (when it has an output directory), and
    :class:`repro.resilience.SweepInterrupted` -- a
    ``KeyboardInterrupt`` -- propagates.
    """
    if cache_dir is not None:
        cache.configure(cache_dir)
    n_jobs = default_jobs() if n_jobs is None else max(1, int(n_jobs))
    policy = resilience.RetryPolicy.from_env(
        retries=retries, cell_timeout=cell_timeout
    )
    session = get_session()
    emit = session.events.emit if session is not None else None
    wall_start = time.perf_counter()
    tallies = {"retries": 0, "timeouts": 0}
    if emit is not None:
        # Count retry/timeout events on the way through so the closing
        # sweep.summary can report them even if the bounded event ring
        # has since evicted the individual records.
        inner_emit = emit

        def emit(category: str, severity: str = "info", **fields) -> None:
            if category == "resilience.retry":
                tallies["retries"] += 1
            elif category == "resilience.cell_timeout":
                tallies["timeouts"] += 1
            inner_emit(category, severity, **fields)

    if n_jobs > 1 and not all(_parallel_safe(cell) for cell in cells):
        unsafe = sum(1 for cell in cells if not _parallel_safe(cell))
        print(
            f"warning: {unsafe} of {len(cells)} sweep cell(s) carry prefetcher "
            "instances or factory callables that cannot cross a process "
            "boundary; running the whole grid serially in-process "
            "(pass names or TriageConfigs to parallelise)",
            file=sys.stderr,
        )
        if emit is not None:
            emit(
                "resilience.serial_fallback",
                "warn",
                reason="unpicklable_spec",
                unsafe_cells=unsafe,
                total_cells=len(cells),
            )
        n_jobs = 1

    store = cache.get_cache()
    cache_hits_before = store.hits if store is not None else 0
    cache_misses_before = store.misses if store is not None else 0
    n = len(cells)
    identities = [cell_identity(cell) for cell in cells]
    result_keys = [
        cell_result_key(cell) if store is not None else None for cell in cells
    ]

    journal = None
    if store is not None and any(identities):
        if journal_path is None:
            grid_key = cache.stable_hash(
                [identity or f"anon:{i}" for i, identity in enumerate(identities)]
            )
            journal_path = resilience.SweepJournal.default_path(store.root, grid_key)
        journal = resilience.SweepJournal(journal_path)

    results: List[object] = [None] * n
    prefilled = [False] * n
    if _resume_flag(resume) and journal is not None:
        entries = journal.load()
        for i in range(n):
            identity = identities[i]
            if identity is None or identity not in entries:
                continue
            key = entries[identity].get("result_key") or result_keys[i]
            hit = store.get_result(key) if key else None
            if hit is None:
                continue  # journaled but evicted/uncached: re-run it
            results[i] = hit
            prefilled[i] = True
            log_cached_manifest(hit)
            if emit is not None:
                emit("resilience.resume_skip", "info", cell=i, cell_key=identity)

    completed = [0]

    def emit_summary(status: str, failed: int = 0) -> None:
        """One closing ``sweep.summary`` event: the grid's economics."""
        if emit is None:
            return
        from repro.obs import slo as slo_mod

        emit(
            "sweep.summary",
            "info",
            status=status,
            cells_total=n,
            executed=completed[0],
            resumed=sum(prefilled),
            retries=tallies["retries"],
            timeouts=tallies["timeouts"],
            failed=failed,
            slo=slo_mod.evaluate_counts(
                slo_mod.sweep_cell_objective(), total=n, bad=failed
            ),
            cache_hits=(store.hits - cache_hits_before) if store is not None else 0,
            cache_misses=(
                store.misses - cache_misses_before if store is not None else 0
            ),
            wall_s=time.perf_counter() - wall_start,
        )

    todo = [i for i in range(n) if not prefilled[i]]
    if not todo:
        emit_summary("ok")
        return results

    plan = faults.get_plan()
    tokens = [identities[i] or f"cell:{i}" for i in todo]
    tracing = session is not None and session.tracer.enabled
    if tracing:
        from repro.obs.tracing import Tracer

        # Per-cell wire contexts, derived purely from the cell identity
        # token: the executing side (worker or in-process) reconstructs
        # the same root span ids, so serial == parallel trace trees.
        wires = [Tracer.to_wire(token, "sweep.cell") for token in tokens]
    payloads = [
        dict(
            cells[i],
            cache_dir=str(store.root) if store is not None else None,
            obs=session is not None,
            faults=plan.to_spec() if plan is not None else None,
            faults_seed=plan.seed if plan is not None else 0,
            trace=wires[position] if tracing else None,
        )
        for position, i in enumerate(todo)
    ]

    def on_complete(position: int, output: object) -> None:
        index = todo[position]
        completed[0] += 1
        if journal is not None and identities[index] is not None:
            journal.record(identities[index], result_keys[index])

    try:
        outputs = resilience.run_resilient(
            payloads,
            _execute,
            _run_local,
            n_jobs=min(n_jobs, len(todo)) if n_jobs > 1 else 1,
            policy=policy,
            emit=emit,
            on_complete=on_complete,
            fault_tokens=tokens,
        )
    except resilience.SweepInterrupted:
        # Finished cells are already journaled and cached; flush the obs
        # session so partial metrics/events/manifests survive the exit.
        emit_summary("interrupted")
        if session is not None and session.out_dir is not None:
            try:
                session.flush()
            except Exception:
                pass
        raise
    except resilience.CellFailed:
        emit_summary("failed", failed=1)
        raise

    for position, index in enumerate(todo):
        output = outputs[position]
        result = output["result"]
        results[index] = result
        if output.get("local"):
            continue  # in-process runs already recorded obs + manifests
        _log_manifests(result)
        if session is not None and output["obs"] is not None:
            _merge_obs(session, output["obs"])
    if emit is not None:
        # Per-cell latencies (worker wall time, excluding queueing and
        # transport), emitted *after* the worker-event merges above so a
        # large grid's merged event flood cannot evict them from the
        # ring before repro.obs.bench harvests its p50/p95 columns.
        for position, index in enumerate(todo):
            seconds = outputs[position].get("seconds")
            if seconds is None:
                continue
            emit(
                "parallel.cell_done",
                "debug",
                cell=index,
                task=str(cells[index].get("task")),
                seconds=seconds,
            )
    emit_summary("ok")
    return results
