"""Parallel sweep execution over a process pool, with the disk cache.

The unit of work is a *cell*: one ``(workload, prefetcher-config)``
simulation, described by a picklable dict.  :func:`run_cells` executes a
list of cells either in-process (``n_jobs=1``) or fanned out over a
``ProcessPoolExecutor``, returning results **in input order** either
way.  Both paths run the *same* per-cell code
(:func:`simulate_sweep_cell` / ``experiments.common.run_single``), so a
parallel sweep is bit-identical to a serial one -- the determinism tests
in ``tests/test_parallel_determinism.py`` pin this down.

Caching: each cell consults the process cache
(:func:`repro.cache.get_cache`) before simulating -- generated traces
and finished results both have disk tiers -- so a warm-cache sweep makes
zero ``simulate()`` calls.  Workers receive the parent's cache root
explicitly in their payload (no reliance on fork-time inheritance).

Observability: when the parent has an active
:class:`~repro.obs.ObsSession`, each worker runs its cell under a fresh
local session and ships back a typed metrics dump, its trace events,
epoch rows and manifests; the parent folds them in **in cell-submission
order**, so merged counters/events are deterministic regardless of
worker scheduling.  Run manifests of parallel results are also appended
to the always-on :data:`repro.obs.manifest.RUN_LOG` (worker-side logs
die with the worker), keeping bench provenance files complete.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro import cache
from repro.core.triage import TriageConfig
from repro.obs import get_session
from repro.obs.manifest import RUN_LOG, RunManifest
from repro.sim.single_core import simulate
from repro.sim.stats import MultiCoreResult, SimulationResult
from repro.workloads import spec as spec_workloads

Cell = Dict[str, object]


def default_jobs() -> int:
    """Worker count when none is given: ``REPRO_JOBS``, else cores - 1."""
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, (os.cpu_count() or 2) - 1)


def jobs_from_env(default: int = 1) -> int:
    """``REPRO_JOBS`` if set, else ``default``.

    Implicit call sites (figure harnesses, ``sweep()`` without
    ``n_jobs``) use this so they stay serial unless the user opted in
    via ``--jobs`` / the environment; explicit :func:`run_cells` callers
    get the cores-based :func:`default_jobs` instead.
    """
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return default


# -- cells -------------------------------------------------------------------


def sweep_cell(
    bench: str,
    spec,
    config_name: str,
    n_accesses: int,
    seed: int,
    scale: int,
    machine,
    warmup: int,
    degree: int = 1,
) -> Cell:
    """Describe one sweep cell (everything a worker needs, picklable)."""
    return {
        "task": "sweep",
        "bench": bench,
        "spec": spec,
        "config_name": config_name,
        "n_accesses": n_accesses,
        "seed": seed,
        "scale": scale,
        "machine": machine,
        "warmup": warmup,
        "degree": degree,
    }


def run_single_cell(**kwargs) -> Cell:
    """A cell that executes ``experiments.common.run_single(**kwargs)``."""
    return {"task": "run_single", "kwargs": kwargs}


def _parallel_safe(cell: Cell) -> bool:
    """Whether a cell can cross a process boundary.

    Sweep cells carrying an already-built prefetcher instance (shared
    mutable state) or a factory callable stay in-process: shipping a
    copy to a worker would silently change the documented
    state-carrying semantics, and callables generally don't pickle.
    """
    if cell["task"] != "sweep":
        return True
    return cell["spec"] is None or isinstance(cell["spec"], (str, TriageConfig))


# -- per-cell execution (shared by the serial and parallel paths) ------------


#: Process-local trace memo so a sweep generates each workload once per
#: process even with the disk cache off (cells of one benchmark share
#: their trace, as the pre-parallel serial loop did).  Cleared by
#: :func:`clear_trace_memo` / ``experiments.common.clear_caches``.
_TRACE_MEMO: Dict[tuple, object] = {}


def clear_trace_memo() -> None:
    _TRACE_MEMO.clear()


def _sweep_trace(cell: Cell, store):
    """The cell's workload trace: process memo, disk tier, else generate."""
    memo_key = (cell["bench"], cell["n_accesses"], cell["seed"], cell["scale"])
    if memo_key in _TRACE_MEMO:
        return _TRACE_MEMO[memo_key]
    key = None
    if store is not None:
        key = cache.trace_key(
            "spec", cell["bench"], cell["n_accesses"], cell["seed"], cell["scale"]
        )
        cached = store.get_trace(key)
        if cached is not None:
            _TRACE_MEMO[memo_key] = cached
            return cached
    trace = spec_workloads.make_trace(
        cell["bench"],
        n_accesses=cell["n_accesses"],
        seed=cell["seed"],
        scale=cell["scale"],
    )
    if key is not None:
        store.put_trace(key, trace)
    _TRACE_MEMO[memo_key] = trace
    return trace


def simulate_sweep_cell(cell: Cell) -> SimulationResult:
    """Run one sweep cell: disk-cache lookup, else simulate (and store)."""
    store = cache.get_cache()
    key = None
    if store is not None:
        try:
            fingerprint = cache.spec_fingerprint(cell["spec"])
        except cache.UncacheableSpec:
            fingerprint = None
        if fingerprint is not None:
            key = cache.run_key(
                namespace="sweep",
                workload={
                    "suite": "spec",
                    "bench": cell["bench"],
                    "n_accesses": cell["n_accesses"],
                    "seed": cell["seed"],
                    "scale": cell["scale"],
                },
                prefetcher=fingerprint,
                machine=cell["machine"],
                degree=cell["degree"],
                warmup=cell["warmup"],
            )
            hit = store.get_result(key)
            if hit is not None:
                if hit.manifest is not None:
                    RUN_LOG.append(hit.manifest)
                return hit
    trace = _sweep_trace(cell, store)
    result = simulate(
        trace,
        cell["spec"],
        machine=cell["machine"],
        warmup_accesses=cell["warmup"],
        degree=cell["degree"],
    )
    if key is not None:
        store.put_result(key, result)
    return result


def _run_task(cell: Cell):
    """Execute one cell in the current process."""
    task = cell["task"]
    if task == "sweep":
        return simulate_sweep_cell(cell)
    if task == "run_single":
        from repro.experiments import common  # lazy: common imports us

        return common.run_single(**cell["kwargs"])
    raise ValueError(f"unknown cell task {task!r}")


# -- worker side -------------------------------------------------------------


def _execute(payload: Cell) -> Dict[str, object]:
    """Worker entry point: configure cache/obs locally, run, dump obs."""
    from repro import obs as obs_mod

    if payload.get("cache_dir"):
        cache.configure(payload["cache_dir"])
    if not payload.get("obs"):
        # A forked worker inherits a copy of the parent's session; writes
        # to it would be silently lost, so make the state explicit.
        obs_mod.disable()
        return {"result": _run_task(payload), "obs": None}
    session = obs_mod.enable()
    try:
        result = _run_task(payload)
        dump = {
            "metrics": session.registry.dump_typed(),
            "events": [e.to_dict() for e in session.events.events()],
            "epochs": list(session.sampler.rows),
            "manifests": [m.to_dict() for m in session.manifests],
        }
    finally:
        obs_mod.disable()
    return {"result": result, "obs": dump}


def _merge_obs(session, dump: Dict[str, object]) -> None:
    """Fold one worker's observability dump into the parent session."""
    session.registry.merge_typed(dump["metrics"])
    for event in dump["events"]:
        fields = dict(event)
        fields.pop("seq", None)
        category = fields.pop("category")
        severity = fields.pop("severity")
        session.events.emit(category, severity, **fields)
    for row in dump["epochs"]:
        session.sampler.sample(**row)
    for manifest in dump["manifests"]:
        session.manifests.append(RunManifest.from_dict(manifest))


def _log_manifests(result) -> None:
    """Replicate a parallel result's manifest into this process's log."""
    manifest = getattr(result, "manifest", None)
    if manifest is not None:
        RUN_LOG.append(manifest)


# -- the front door ----------------------------------------------------------


def run_cells(
    cells: Sequence[Cell],
    n_jobs: Optional[int] = None,
    cache_dir=None,
) -> List[object]:
    """Execute ``cells``, returning their results in input order.

    ``n_jobs=None`` uses :func:`default_jobs` (``REPRO_JOBS``, else
    cores - 1); ``n_jobs=1`` runs serially in-process, which is also the
    fallback when any cell cannot cross a process boundary.
    ``cache_dir`` configures the process-wide disk cache for this and
    all subsequent lookups (workers receive it explicitly).
    """
    if cache_dir is not None:
        cache.configure(cache_dir)
    n_jobs = default_jobs() if n_jobs is None else max(1, int(n_jobs))
    if n_jobs > 1 and not all(_parallel_safe(cell) for cell in cells):
        n_jobs = 1
    if n_jobs == 1 or len(cells) <= 1:
        return [_run_task(cell) for cell in cells]

    store = cache.get_cache()
    session = get_session()
    payloads = [
        dict(
            cell,
            cache_dir=str(store.root) if store is not None else None,
            obs=session is not None,
        )
        for cell in cells
    ]
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(cells))) as pool:
        outputs = list(pool.map(_execute, payloads))

    results: List[object] = []
    for output in outputs:  # submission order == input order
        result = output["result"]
        _log_manifests(result)
        if session is not None and output["obs"] is not None:
            _merge_obs(session, output["obs"])
        results.append(result)
    return results
