"""Simulation engine: configs, drivers, timing, stats and energy."""

from repro.sim.batched import simulate_batched
from repro.sim.config import MachineConfig
from repro.sim.energy import metadata_energy, misb_vs_triage_energy
from repro.sim.factory import make_prefetcher
from repro.sim.multi_core import MultiCoreResult, simulate_multicore
from repro.sim.single_core import SimulationResult, simulate

__all__ = [
    "MachineConfig",
    "MultiCoreResult",
    "SimulationResult",
    "make_prefetcher",
    "metadata_energy",
    "misb_vs_triage_energy",
    "simulate",
    "simulate_batched",
    "simulate_multicore",
]
