"""Prefetcher factory: build any evaluated configuration by name.

Names mirror the paper's figures::

    "bo"               Best-Offset (Figure 5's BO)
    "sms"              Spatial Memory Streaming
    "stride"           PC-stride (Table 1's L1 prefetcher)
    "markov"           Markov table prefetcher
    "stms"             idealized STMS
    "domino"           idealized Domino
    "isb"              idealized ISB (the "Perfect" line of Figure 9)
    "misb"             MISB with a 48 KB on-chip metadata budget
    "triage"           Triage-Static with a 1 MB store (alias triage_1mb)
    "triage_512kb"     Triage-Static, 512 KB store
    "triage_1mb"       Triage-Static, 1 MB store
    "triage_dynamic"   Triage-Dynamic (0/512 KB/1 MB partitioning)
    "triage_lru"       Triage-Static 1 MB with LRU metadata replacement
    "triage_ideal"     Triage with an unbounded metadata store
    "a+b"              hybrid of a and b (e.g. "bo+triage_dynamic")

A :class:`~repro.core.triage.TriageConfig`, an already-built
:class:`~repro.prefetchers.base.BasePrefetcher`, or a zero-argument
callable returning one (used by multi-core runs to build a fresh
instance per core) may be passed instead of a name.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.prefetchers import (
    BasePrefetcher,
    BestOffsetPrefetcher,
    DominoPrefetcher,
    GhbDeltaPrefetcher,
    HybridPrefetcher,
    IsbPrefetcher,
    MarkovPrefetcher,
    MisbPrefetcher,
    SandboxPrefetcher,
    SmsPrefetcher,
    StmsPrefetcher,
    StridePrefetcher,
    TagCorrelatingPrefetcher,
)

KB = 1024
MB = 1024 * KB

PrefetcherSpec = Union[
    None, str, TriageConfig, BasePrefetcher, Callable[[], Optional[BasePrefetcher]]
]


def make_prefetcher(
    spec: PrefetcherSpec, degree: int = 1
) -> Optional[BasePrefetcher]:
    """Build the prefetcher described by ``spec`` (None = no prefetching)."""
    if spec is None:
        return None
    if isinstance(spec, BasePrefetcher):
        return spec
    if isinstance(spec, TriageConfig):
        return TriagePrefetcher(spec)
    if callable(spec) and not isinstance(spec, str):
        built = spec()
        if callable(built) and not isinstance(built, (str, BasePrefetcher)):
            raise TypeError("prefetcher factory returned another callable")
        if built is not None and not isinstance(
            built, (str, TriageConfig, BasePrefetcher)
        ):
            raise TypeError(
                f"prefetcher factory returned {type(built).__name__}, "
                "expected a prefetcher spec or None"
            )
        return make_prefetcher(built, degree)
    if not isinstance(spec, str):
        raise TypeError(f"unsupported prefetcher spec {spec!r}")

    name = spec.lower().strip()
    if name in ("", "none"):
        return None
    if "+" in name:
        parts = [p for p in name.split("+") if p]
        built = [make_prefetcher(p, degree) for p in parts]
        return HybridPrefetcher([b for b in built if b is not None])

    simple = {
        "bo": lambda: BestOffsetPrefetcher(degree=degree),
        "sms": lambda: SmsPrefetcher(degree=degree),
        "stride": lambda: StridePrefetcher(degree=degree),
        "markov": lambda: MarkovPrefetcher(degree=degree),
        "stms": lambda: StmsPrefetcher(degree=degree),
        "domino": lambda: DominoPrefetcher(degree=degree),
        "isb": lambda: IsbPrefetcher(degree=degree),
        "misb": lambda: MisbPrefetcher(degree=degree),
        "ghb_pcdc": lambda: GhbDeltaPrefetcher(degree=degree),
        "tcp": lambda: TagCorrelatingPrefetcher(degree=degree),
        "sandbox": lambda: SandboxPrefetcher(degree=max(degree, 4)),
    }
    if name in simple:
        return simple[name]()

    triage_configs = {
        "triage": TriageConfig(degree=degree, metadata_capacity=1 * MB),
        "triage_1mb": TriageConfig(degree=degree, metadata_capacity=1 * MB),
        "triage_512kb": TriageConfig(degree=degree, metadata_capacity=512 * KB),
        "triage_dynamic": TriageConfig(degree=degree, dynamic=True),
        "triage_lru": TriageConfig(
            degree=degree, metadata_capacity=1 * MB, replacement="lru"
        ),
        "triage_ideal": TriageConfig(degree=degree, metadata_capacity=None),
    }
    if name in triage_configs:
        return TriagePrefetcher(triage_configs[name])

    raise ValueError(f"unknown prefetcher {spec!r}")
