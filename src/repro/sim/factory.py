"""Prefetcher factory: build any evaluated configuration by name.

Names mirror the paper's figures::

    "bo"               Best-Offset (Figure 5's BO)
    "sms"              Spatial Memory Streaming
    "stride"           PC-stride (Table 1's L1 prefetcher)
    "markov"           Markov table prefetcher
    "stms"             idealized STMS
    "domino"           idealized Domino
    "isb"              idealized ISB (the "Perfect" line of Figure 9)
    "misb"             MISB with a 48 KB on-chip metadata budget
    "triage"           Triage-Static with a 1 MB store (alias triage_1mb)
    "triage_512kb"     Triage-Static, 512 KB store
    "triage_1mb"       Triage-Static, 1 MB store
    "triage_dynamic"   Triage-Dynamic (0/512 KB/1 MB partitioning)
    "triage_lru"       Triage-Static 1 MB with LRU metadata replacement
    "triage_ideal"     Triage with an unbounded metadata store
    "triangel"         Triangel, 1 MB store (alias triangel_1mb)
    "triangel_512kb"   Triangel, 512 KB store
    "triangel_1mb"     Triangel, 1 MB store
    "triangel_dynamic" Triangel with Triage's dynamic partitioning
    "triangel_nosample"  Triangel degenerate config: sampling off,
                         lookahead 1, Hawkeye replacement -- issues the
                         same stream as Triage (differential-test anchor)
    "a+b"              hybrid of a and b (e.g. "bo+triage_dynamic")

A :class:`~repro.core.triage.TriageConfig` (including its
:class:`~repro.prefetchers.triangel.TriangelConfig` subclass), an
already-built :class:`~repro.prefetchers.base.BasePrefetcher`, or a
zero-argument callable returning one (used by multi-core runs to build a
fresh instance per core) may be passed instead of a name.

:func:`is_registered` answers whether a name string is buildable here;
:mod:`repro.cache.keys` uses it (together with
``experiments.common.is_registered``) to refuse fingerprinting unknown
names instead of silently hashing a typo into its own cache key.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.prefetchers import (
    BasePrefetcher,
    BestOffsetPrefetcher,
    DominoPrefetcher,
    GhbDeltaPrefetcher,
    HybridPrefetcher,
    IsbPrefetcher,
    MarkovPrefetcher,
    MisbPrefetcher,
    SandboxPrefetcher,
    SmsPrefetcher,
    StmsPrefetcher,
    StridePrefetcher,
    TagCorrelatingPrefetcher,
)
from repro.prefetchers.triangel import TriangelConfig, TriangelPrefetcher

KB = 1024
MB = 1024 * KB

PrefetcherSpec = Union[
    None, str, TriageConfig, BasePrefetcher, Callable[[], Optional[BasePrefetcher]]
]

#: Simple (non-Triage-family) prefetchers, by name.
SIMPLE_BUILDERS: Dict[str, Callable[[int], BasePrefetcher]] = {
    "bo": lambda degree: BestOffsetPrefetcher(degree=degree),
    "sms": lambda degree: SmsPrefetcher(degree=degree),
    "stride": lambda degree: StridePrefetcher(degree=degree),
    "markov": lambda degree: MarkovPrefetcher(degree=degree),
    "stms": lambda degree: StmsPrefetcher(degree=degree),
    "domino": lambda degree: DominoPrefetcher(degree=degree),
    "isb": lambda degree: IsbPrefetcher(degree=degree),
    "misb": lambda degree: MisbPrefetcher(degree=degree),
    "ghb_pcdc": lambda degree: GhbDeltaPrefetcher(degree=degree),
    "tcp": lambda degree: TagCorrelatingPrefetcher(degree=degree),
    "sandbox": lambda degree: SandboxPrefetcher(degree=max(degree, 4)),
}

#: The paper's Triage configurations, by name.
TRIAGE_BUILDERS: Dict[str, Callable[[int], TriageConfig]] = {
    "triage": lambda degree: TriageConfig(degree=degree, metadata_capacity=1 * MB),
    "triage_1mb": lambda degree: TriageConfig(
        degree=degree, metadata_capacity=1 * MB
    ),
    "triage_512kb": lambda degree: TriageConfig(
        degree=degree, metadata_capacity=512 * KB
    ),
    "triage_dynamic": lambda degree: TriageConfig(degree=degree, dynamic=True),
    "triage_lru": lambda degree: TriageConfig(
        degree=degree, metadata_capacity=1 * MB, replacement="lru"
    ),
    "triage_ideal": lambda degree: TriageConfig(
        degree=degree, metadata_capacity=None
    ),
}

#: The Triangel family (arXiv 2406.10627), by name.
TRIANGEL_BUILDERS: Dict[str, Callable[[int], TriangelConfig]] = {
    "triangel": lambda degree: TriangelConfig(
        degree=degree, metadata_capacity=1 * MB
    ),
    "triangel_1mb": lambda degree: TriangelConfig(
        degree=degree, metadata_capacity=1 * MB
    ),
    "triangel_512kb": lambda degree: TriangelConfig(
        degree=degree, metadata_capacity=512 * KB
    ),
    "triangel_dynamic": lambda degree: TriangelConfig(
        degree=degree, dynamic=True
    ),
    "triangel_nosample": lambda degree: TriangelConfig(
        degree=degree,
        metadata_capacity=1 * MB,
        sampling=False,
        lookahead=1,
        replacement="hawkeye",
    ),
}


def is_registered(name: str) -> bool:
    """Whether :func:`make_prefetcher` can build ``name``.

    Accepts the empty/"none" spellings and hybrid ``a+b`` forms (every
    component must itself be registered).
    """
    if not isinstance(name, str):
        return False
    name = name.lower().strip()
    if name in ("", "none"):
        return True
    if "+" in name:
        parts = [p for p in name.split("+") if p]
        return bool(parts) and all(is_registered(p) for p in parts)
    return (
        name in SIMPLE_BUILDERS
        or name in TRIAGE_BUILDERS
        or name in TRIANGEL_BUILDERS
    )


def make_prefetcher(
    spec: PrefetcherSpec, degree: int = 1
) -> Optional[BasePrefetcher]:
    """Build the prefetcher described by ``spec`` (None = no prefetching)."""
    if spec is None:
        return None
    if isinstance(spec, BasePrefetcher):
        return spec
    # TriangelConfig subclasses TriageConfig: check the subclass first so
    # a Triangel spec builds a Triangel, not its parent.
    if isinstance(spec, TriangelConfig):
        return TriangelPrefetcher(spec)
    if isinstance(spec, TriageConfig):
        return TriagePrefetcher(spec)
    if callable(spec) and not isinstance(spec, str):
        built = spec()
        if callable(built) and not isinstance(built, (str, BasePrefetcher)):
            raise TypeError("prefetcher factory returned another callable")
        if built is not None and not isinstance(
            built, (str, TriageConfig, BasePrefetcher)
        ):
            raise TypeError(
                f"prefetcher factory returned {type(built).__name__}, "
                "expected a prefetcher spec or None"
            )
        return make_prefetcher(built, degree)
    if not isinstance(spec, str):
        raise TypeError(f"unsupported prefetcher spec {spec!r}")

    name = spec.lower().strip()
    if name in ("", "none"):
        return None
    if "+" in name:
        parts = [p for p in name.split("+") if p]
        built = [make_prefetcher(p, degree) for p in parts]
        return HybridPrefetcher([b for b in built if b is not None])

    if name in SIMPLE_BUILDERS:
        return SIMPLE_BUILDERS[name](degree)
    if name in TRIAGE_BUILDERS:
        return TriagePrefetcher(TRIAGE_BUILDERS[name](degree))
    if name in TRIANGEL_BUILDERS:
        return TriangelPrefetcher(TRIANGEL_BUILDERS[name](degree))

    raise ValueError(f"unknown prefetcher {spec!r}")
