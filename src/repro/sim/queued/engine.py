"""Event-driven single-core simulation with real prefetch timing.

Differences from the analytic engine (:mod:`repro.sim.single_core`):

* **MSHRs** bound outstanding misses; a full file stalls the core.
* **DRAM** is the banked, shared-bus scheduler of
  :mod:`repro.sim.queued.dram_sched` -- latency emerges from contention.
* **Prefetch timeliness is real**: a prefetched line records when its
  fill completes; a demand that arrives earlier waits for the remainder
  (a *late* prefetch recovers only part of the miss latency).
* A bounded **prefetch queue** drops prefetches when the memory system
  is saturated, mirroring ChampSim's lower-priority prefetch queue.

The cache *state* model is shared with the analytic engine (fills take
effect immediately in the arrays; timing is tracked alongside), which
keeps the two engines' hit/miss behaviour identical -- by design, so
that Figure-level comparisons isolate the timing model
(``experiments/ext_engine_validation.py``).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import replace
from typing import Dict, List, Optional

from repro.memory.hierarchy import CacheHierarchy
from repro.obs import ObsSession, RunObserver, get_session
from repro.obs.manifest import build_manifest
from repro.prefetchers.hybrid import HybridPrefetcher
from repro.sim.config import MachineConfig
from repro.sim.factory import PrefetcherSpec, make_prefetcher
from repro.sim.queued.dram_sched import BankedDram, DramTimingParams
from repro.sim.queued.mshr import MshrFile
from repro.sim.single_core import (
    _MetadataPartition,
    _finish_sim_span,
    _open_sim_span,
    _register_run_metrics,
    attach_observability,
    make_l1_prefetcher,
    triage_components,
)
from repro.sim.stats import SimulationResult
from repro.workloads.base import Trace

#: The queued engine has no analytic epochs; when observing it samples
#: the time-series every this many demand accesses instead.
OBS_SAMPLE_ACCESSES = 4_096


def simulate_queued(
    trace: Trace,
    prefetcher: PrefetcherSpec = None,
    machine: Optional[MachineConfig] = None,
    degree: int = 1,
    mshr_entries: int = 16,
    prefetch_queue_depth: int = 16,
    charge_metadata_to_llc: bool = True,
    warmup_accesses: int = 0,
    name: Optional[str] = None,
    obs: Optional[ObsSession] = None,
) -> SimulationResult:
    """Run ``trace`` through the queued engine; same result type as
    :func:`repro.sim.single_core.simulate`."""
    wall_start = time.perf_counter()
    config = machine or MachineConfig.single_core()
    if config.n_cores != 1:
        raise ValueError("the queued engine is single-core")
    pf = make_prefetcher(prefetcher, degree=degree)
    hierarchy = CacheHierarchy(
        n_cores=1,
        l1_size=config.l1_size,
        l1_ways=config.l1_ways,
        l2_size=config.l2_size,
        l2_ways=config.l2_ways,
        llc_size_per_core=config.llc_size_per_core,
        llc_ways=config.llc_ways,
        llc_policy=config.llc_policy,
    )
    triages = triage_components(pf)
    _MetadataPartition(hierarchy, config, triages, charge_metadata_to_llc)
    l1pf = make_l1_prefetcher(config)

    session = obs if obs is not None else get_session()
    run: Optional[RunObserver] = None
    sim_span = None
    if session is not None:
        run = session.begin_run(
            name or trace.name, pf.name if pf is not None else "none"
        )
        attach_observability(run, triages, profiler=session.profiler)
        sim_span = _open_sim_span(
            session, run, "queued",
            name or trace.name, pf.name if pf is not None else "none",
            t=wall_start,
        )

    dram = BankedDram(
        DramTimingParams(
            burst_cycles=64.0 / config.dram_bandwidth_bytes_per_cycle,
            base_latency=max(10.0, config.dram_latency_cycles - 104.0),
        )
    )
    mshrs = MshrFile(mshr_entries)
    # The out-of-order window sustains roughly trace.mlp concurrent
    # demand misses: more makes the core stall on the window, as real
    # pointer chases do.
    window = max(1, round(trace.mlp))
    outstanding: List[float] = []  # completion cycles of in-flight demands
    ready_at: Dict[int, float] = {}  # prefetched line -> fill completion
    prefetch_queue_free = 0.0

    now = 0.0
    llc_latency = config.llc_latency + config.extra_llc_latency
    counters = hierarchy.counters[0]
    late_prefetch_hits = 0
    dropped_prefetches = 0
    measured_start_cycle = 0.0
    traffic_offset: dict = {}

    def wait_for_window() -> float:
        nonlocal now
        while len(outstanding) >= window:
            done = heapq.heappop(outstanding)
            now = max(now, done)
        return now

    def drain_completions() -> None:
        while outstanding and outstanding[0] <= now:
            line_done = heapq.heappop(outstanding)
            del line_done

    def sample_obs(access_idx: int) -> None:
        """One time-series row (the queued engine's epoch substitute)."""
        useful = counters.l2_prefetch_hits
        would_miss = useful + counters.l2_demand_misses
        row = {
            "access_idx": access_idx,
            "cycles": now - measured_start_cycle,
            "coverage": useful / would_miss if would_miss else 0.0,
            "late_prefetch_hits": late_prefetch_hits,
            "dropped_prefetches": dropped_prefetches,
            "mshr_full_stalls": mshrs.full_stalls,
            "llc_data_ways": hierarchy.llc.active_ways,
        }
        for i, triage in enumerate(triages):
            capacity = 0 if triage.store.unbounded else triage.store.capacity_bytes
            prefix = f"c0.t{i}." if len(triages) > 1 else "c0."
            row[prefix + "meta_capacity_bytes"] = capacity
            row[prefix + "meta_ways"] = config.metadata_ways(capacity)
        run.sample_epoch(**row)

    for index, (pc, addr, is_write) in enumerate(trace):
        if index == warmup_accesses and warmup_accesses > 0:
            hierarchy.counters[0] = type(counters)()
            counters = hierarchy.counters[0]
            traffic_offset = hierarchy.traffic.snapshot()
            measured_start_cycle = now
            late_prefetch_hits = 0
        now += trace.instr_per_access * config.base_cpi
        drain_completions()

        event = hierarchy.access(0, pc, addr, is_write)
        line = event.line
        if event.hit_level == "l1":
            pass
        elif event.hit_level == "l2":
            pending = ready_at.pop(line, None)
            if pending is not None and pending > now:
                # Late prefetch: wait out the in-flight remainder.
                late_prefetch_hits += 1
                wait_for_window()
                heapq.heappush(outstanding, pending)
            else:
                now += config.l2_latency / trace.mlp
        elif event.hit_level == "llc":
            wait_for_window()
            heapq.heappush(outstanding, now + llc_latency)
        else:  # DRAM
            wait_for_window()
            entry = mshrs.allocate(line, now)
            while entry is None:  # MSHR full: stall one completion
                if outstanding:
                    now = max(now, heapq.heappop(outstanding))
                else:
                    now += 1.0
                entry = mshrs.allocate(line, now)
            done = dram.service(line, now, is_write=False)
            mshrs.complete(line)
            heapq.heappush(outstanding, done)

        if l1pf is not None:
            for candidate in l1pf.observe(pc, line):
                source = hierarchy.prefetch(0, candidate.line, pc, kind="l1")
                if source == "dram":
                    ready_at[candidate.line] = dram.service(candidate.line, now)
                elif source == "llc":
                    ready_at[candidate.line] = now + llc_latency

        if pf is not None and event.trains_l2_prefetcher:
            candidates = pf.observe(
                event.pc, event.line, prefetch_hit=event.l2_prefetch_hit
            )
            for candidate in candidates:
                # Bounded prefetch queue: drop when saturated.
                if prefetch_queue_free - now > prefetch_queue_depth * 10.0:
                    dropped_prefetches += 1
                    continue
                source = hierarchy.prefetch(0, candidate.line, event.pc)
                owner = candidate.owner or pf
                owner.feedback(candidate, source)
                if source == "dram":
                    done = dram.service(candidate.line, now, is_write=False)
                    ready_at[candidate.line] = done
                    prefetch_queue_free = done
                elif source == "llc":
                    ready_at[candidate.line] = now + llc_latency
            metadata_bytes = pf.drain_metadata_traffic()
            if metadata_bytes:
                hierarchy.traffic.add("metadata", metadata_bytes)
                # Metadata transfers occupy the same bus.
                for _ in range(max(1, metadata_bytes // 64)):
                    dram.service(line ^ 0x5A5A, now, is_write=False)

        if run is not None and (index + 1) % OBS_SAMPLE_ACCESSES == 0:
            sample_obs(index + 1)

    while outstanding:
        now = max(now, heapq.heappop(outstanding))

    measured_accesses = len(trace) - min(warmup_accesses, len(trace))
    traffic = {
        category: total - traffic_offset.get(category, 0)
        for category, total in hierarchy.traffic.snapshot().items()
    }
    metadata_llc = sum(t.store.llc_accesses for t in triages)
    metadata_dram = pf.metadata_dram_accesses if pf is not None else 0
    if isinstance(pf, HybridPrefetcher):
        metadata_dram = pf.total_metadata_dram_accesses
    manifest = build_manifest(
        kind="queued",
        workloads=[name or trace.name],
        prefetcher=pf.name if pf is not None else "none",
        config=config,
        seeds=[trace.metadata.get("seed")],
        trace_length=len(trace),
        warmup=warmup_accesses,
        instructions=measured_accesses * trace.instr_per_access,
        cycles=now - measured_start_cycle,
        wall_time_s=time.perf_counter() - wall_start,
        extra={
            "engine": "queued",
            "degree": degree,
            "mshr_entries": mshr_entries,
            "prefetch_queue_depth": prefetch_queue_depth,
        },
    )
    result = SimulationResult(
        workload=name or trace.name,
        prefetcher=pf.name if pf is not None else "none",
        instructions=measured_accesses * trace.instr_per_access,
        cycles=now - measured_start_cycle,
        counters=replace(counters),
        traffic=traffic,
        metadata_llc_accesses=metadata_llc,
        metadata_dram_accesses=metadata_dram,
        manifest=manifest,
    )
    manifest.extra["kpis"] = result.kpis()
    # Engine-specific extras travel in the counters-adjacent fields.
    result.late_prefetch_hits = late_prefetch_hits
    result.dropped_prefetches = dropped_prefetches
    result.mshr_full_stalls = mshrs.full_stalls
    if run is not None:
        _register_run_metrics(session, counters, triages)
        session.registry.counter("queued.dropped_prefetches").inc(dropped_prefetches)
        session.registry.counter("queued.mshr_full_stalls").inc(mshrs.full_stalls)
        _finish_sim_span(session, sim_span)
        run.finish(manifest)
    return result
