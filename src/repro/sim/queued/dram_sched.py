"""Banked DRAM with a shared data bus (ChampSim-flavoured).

The paper's multi-core model "simulates data bus contention, bank
contention, and bus turnaround delays; bus contention increases memory
latency".  This scheduler reproduces those three effects:

* each request occupies its **bank** for the array-access time;
* every request then needs the shared **data bus** for a burst slot;
* the bus pays a small **turnaround** penalty when switching between
  reads and writes.

Service discipline is FCFS within priority class, demands before
prefetches (matching ChampSim's higher-priority demand queue).  The
returned completion time feeds the event engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.memory.address import LINE_SIZE


@dataclass
class DramTimingParams:
    """Timing in core cycles (2 GHz core, Table 1's 800 MHz DDR bus)."""

    n_banks: int = 16
    bank_cycles: float = 100.0  # tRCD + tCAS + tRP at the core clock
    #: Cycles one 64 B line occupies the shared data bus.  Table 1:
    #: 2 channels x 8 B at 800 MHz DDR = 32 GB/s -> 16 B/core-cycle.
    burst_cycles: float = LINE_SIZE / 16.0
    turnaround_cycles: float = 8.0
    base_latency: float = 66.0  # controller + wire latency floor


class BankedDram:
    """Busy-until bookkeeping per bank plus one shared bus."""

    def __init__(self, params: DramTimingParams = None):
        self.params = params or DramTimingParams()
        self._bank_free = [0.0] * self.params.n_banks
        self._bus_free = 0.0
        self._last_was_write = False
        self.requests = 0
        self.busy_cycles = 0.0

    def _bank_of(self, line: int) -> int:
        return (line ^ (line >> 7)) % self.params.n_banks

    def service(self, line: int, now: float, is_write: bool = False) -> float:
        """Schedule one line transfer; return its completion cycle."""
        p = self.params
        self.requests += 1
        bank = self._bank_of(line)
        start = max(now, self._bank_free[bank])
        bank_done = start + p.bank_cycles
        bus_start = max(bank_done, self._bus_free)
        if is_write != self._last_was_write:
            bus_start += p.turnaround_cycles
        done = bus_start + p.burst_cycles
        self._bank_free[bank] = done
        self._bus_free = done
        self._last_was_write = is_write
        self.busy_cycles += done - start
        return max(done, now + p.base_latency)

    def earliest_idle(self) -> float:
        """When the bus next frees up (observability/testing aid)."""
        return self._bus_free
