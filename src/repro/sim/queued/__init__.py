"""Queued (event-driven) timing engine.

The analytic model in :mod:`repro.sim.timing` converts miss counts into
cycles with closed-form formulas.  This package provides the alternative
the paper's multi-core evaluation used (ChampSim-style): demand and
prefetch requests flow through finite MSHRs and FIFO queues into a
banked DRAM with a shared data bus, demands outrank prefetches, and a
prefetch only helps if it *arrives before* its demand -- late prefetches
are modeled, not assumed away.

Use it through :func:`repro.sim.queued.engine.simulate_queued`, which
returns the same :class:`~repro.sim.stats.SimulationResult` as the
analytic engine so results are directly comparable (see
``experiments/ext_engine_validation.py``).
"""

from repro.sim.queued.mshr import MshrFile
from repro.sim.queued.dram_sched import BankedDram
from repro.sim.queued.engine import simulate_queued

__all__ = ["BankedDram", "MshrFile", "simulate_queued"]
