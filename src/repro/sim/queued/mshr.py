"""Miss Status Holding Registers.

An MSHR file bounds the number of outstanding misses (the hardware's
memory-level parallelism limit) and merges secondary misses to a line
already in flight, exactly like the structure it models:

* ``allocate`` a new miss -> returns False when full (the core stalls);
* a second request to an in-flight line *merges* (no new entry);
* ``complete`` frees the entry and reports whether any demand merged
  into what started as a prefetch (a late-but-useful prefetch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MshrEntry:
    """One outstanding miss."""

    line: int
    is_prefetch: bool
    issue_cycle: float
    #: Demand requests that arrived while the line was in flight.
    merged_demands: int = 0


class MshrFile:
    """Fixed-capacity MSHR file with merge semantics."""

    def __init__(self, capacity: int = 16):
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, MshrEntry] = {}
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line: int) -> Optional[MshrEntry]:
        return self._entries.get(line)

    def allocate(
        self, line: int, cycle: float, is_prefetch: bool = False
    ) -> Optional[MshrEntry]:
        """Track a new miss; None when an entry can't be allocated.

        A request to a line already in flight merges instead (demands
        upgrade a prefetch entry's priority implicitly by being counted).
        """
        existing = self._entries.get(line)
        if existing is not None:
            self.merges += 1
            if not is_prefetch:
                existing.merged_demands += 1
            return existing
        if self.full:
            self.full_stalls += 1
            return None
        entry = MshrEntry(line=line, is_prefetch=is_prefetch, issue_cycle=cycle)
        self._entries[line] = entry
        self.allocations += 1
        return entry

    def complete(self, line: int) -> Optional[MshrEntry]:
        """Retire the entry for ``line`` (fill arrived)."""
        return self._entries.pop(line, None)

    def outstanding_lines(self) -> List[int]:
        return list(self._entries)
