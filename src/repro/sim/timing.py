"""Analytic epoch timing model.

Per epoch (a fixed number of demand accesses) and per core::

    cycles = instructions * base_cpi
           + (l2_hits * l2_lat + llc_hits * llc_lat + dram * dram_eff) / MLP

``dram_eff`` is the bandwidth-inflated DRAM latency from
:class:`repro.memory.dram.DramModel`; it depends on the epoch's
utilization, which itself depends on the epoch's cycle count, so the two
are solved by fixed-point iteration (three rounds is plenty -- the map is
a contraction for utilizations below the inflation cap).

This is the documented substitution for the paper's cycle-accurate
simulators: coverage shortens the dram term, prefetch/metadata traffic
widens utilization, and MLP separates pointer-chasing workloads (serial
misses, MLP near 1) from streaming ones.  See DESIGN.md Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.memory.dram import DramModel
from repro.sim.config import MachineConfig


@dataclass
class EpochLoad:
    """One core's demand activity during an epoch."""

    instructions: float
    l2_hits: int
    llc_hits: int
    dram_accesses: int
    mlp: float


def core_cycles(
    load: EpochLoad, config: MachineConfig, dram_latency: float
) -> float:
    """Cycles one core needs for an epoch at a given DRAM latency."""
    llc_latency = config.llc_latency + config.extra_llc_latency
    stall = (
        load.l2_hits * config.l2_latency
        + load.llc_hits * llc_latency
        + load.dram_accesses * dram_latency
    )
    return load.instructions * config.base_cpi + stall / load.mlp


def resolve_epoch(
    loads: Sequence[EpochLoad],
    epoch_bytes: float,
    config: MachineConfig,
    dram: DramModel,
    iterations: int = 3,
) -> List[float]:
    """Fixed-point solve for per-core epoch cycles under shared bandwidth.

    ``loads`` has one entry per core; ``epoch_bytes`` is the total
    off-chip traffic (demand + prefetch + writeback + metadata) all cores
    generated this epoch.  Returns per-core cycle counts.
    """
    if not loads:
        return []
    dram_latency = dram.base_latency_cycles
    cycles = [core_cycles(load, config, dram_latency) for load in loads]
    for _ in range(iterations):
        # Cores run concurrently: the epoch's wall-clock span is set by
        # the average per-core progress (cores interleave accesses in
        # lockstep), so utilization is computed against that span.
        wall = max(sum(cycles) / len(cycles), 1.0)
        utilization = dram.utilization(epoch_bytes, wall)
        dram_latency = dram.effective_latency(utilization)
        cycles = [core_cycles(load, config, dram_latency) for load in loads]
    # Hard bandwidth wall: the epoch cannot finish faster than the bus
    # can move its bytes, no matter how well prefetching hides latency.
    wall = max(sum(cycles) / len(cycles), 1.0)
    floor = dram.min_cycles_for_bytes(epoch_bytes)
    if floor > wall:
        stretch = floor / wall
        cycles = [c * stretch for c in cycles]
    if dram.epoch_log is not None:
        dram.record_epoch(
            utilization=dram.utilization(epoch_bytes, max(wall, floor)),
            effective_latency=dram_latency,
            nbytes=epoch_bytes,
            dram_accesses=sum(load.dram_accesses for load in loads),
        )
    return cycles
