"""Parameter-sweep utility: run a grid of configurations in one call.

``sweep`` is the library's bulk-evaluation front door: give it a set of
workloads and a set of prefetcher configurations (plus optional machine
overrides) and it returns a tidy list of records ready for a table or a
CSV.  Used by several experiment harnesses and handy interactively::

    from repro.sim.sweep import sweep
    records = sweep(
        benchmarks=["mcf", "omnetpp"],
        prefetchers={"bo": "bo", "triage": TriageConfig(...)},
        n_accesses=60_000,
        scale=4,
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.sim.config import MachineConfig
from repro.sim.factory import PrefetcherSpec, make_prefetcher
from repro.sim.single_core import simulate
from repro.sim.stats import SimulationResult
from repro.workloads import spec


@dataclass
class SweepRecord:
    """One (workload, configuration) cell of a sweep."""

    workload: str
    config: str
    result: SimulationResult
    baseline: SimulationResult

    @property
    def speedup(self) -> float:
        return self.result.speedup_over(self.baseline)

    @property
    def coverage(self) -> float:
        return self.result.coverage

    @property
    def accuracy(self) -> float:
        return self.result.accuracy

    @property
    def traffic_overhead(self) -> float:
        return self.result.traffic_overhead_vs(self.baseline)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "config": self.config,
            "speedup": self.speedup,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "traffic_overhead": self.traffic_overhead,
            "ipc": self.result.ipc,
        }


def sweep(
    benchmarks: Sequence[str],
    prefetchers: Dict[str, PrefetcherSpec],
    n_accesses: int = 60_000,
    seed: int = 1,
    scale: int = 4,
    machine: Optional[MachineConfig] = None,
    warmup_fraction: float = 1 / 3,
    degree: int = 1,
) -> List[SweepRecord]:
    """Run every (benchmark x prefetcher) combination.

    Each configuration gets a *fresh* prefetcher instance (specs that are
    already-built instances are reused across benchmarks and therefore
    carry state -- pass names/configs/factories to avoid that).
    """
    machine = machine or MachineConfig.scaled(scale)
    warmup = int(n_accesses * warmup_fraction)
    records: List[SweepRecord] = []
    for bench in benchmarks:
        trace = spec.make_trace(bench, n_accesses=n_accesses, seed=seed, scale=scale)
        baseline = simulate(trace, None, machine=machine, warmup_accesses=warmup)
        for config_name, prefetcher_spec in prefetchers.items():
            result = simulate(
                trace,
                make_prefetcher(prefetcher_spec, degree=degree),
                machine=machine,
                warmup_accesses=warmup,
                degree=degree,
            )
            records.append(
                SweepRecord(
                    workload=bench,
                    config=config_name,
                    result=result,
                    baseline=baseline,
                )
            )
    return records


def records_to_csv(records: Sequence[SweepRecord]) -> str:
    """Render sweep records as CSV."""
    import csv
    import io

    if not records:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(records[0].as_dict()))
    writer.writeheader()
    for record in records:
        writer.writerow(record.as_dict())
    return buffer.getvalue()
