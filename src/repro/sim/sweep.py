"""Parameter-sweep utility: run a grid of configurations in one call.

``sweep`` is the library's bulk-evaluation front door: give it a set of
workloads and a set of prefetcher configurations (plus optional machine
overrides) and it returns a tidy list of records ready for a table or a
CSV.  Used by several experiment harnesses and handy interactively::

    from repro.sim.sweep import sweep
    records = sweep(
        benchmarks=["mcf", "omnetpp"],
        prefetchers={"bo": "bo", "triage": TriageConfig(...)},
        n_accesses=60_000,
        scale=4,
        n_jobs=4,                      # fan cells over worker processes
        cache_dir="results/cache",     # reuse results across invocations
    )

Cells (every baseline and every configuration run) execute through
:mod:`repro.sim.parallel`, so ``n_jobs > 1`` fans them over a process
pool and ``cache_dir`` (or the ambient ``REPRO_CACHE_DIR``) adds a
persistent disk tier -- both without changing a single reported number
relative to the serial, uncached path.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.sim import parallel
from repro.sim.config import MachineConfig
from repro.sim.factory import PrefetcherSpec
from repro.sim.stats import SimulationResult


@dataclass
class SweepRecord:
    """One (workload, configuration) cell of a sweep."""

    workload: str
    config: str
    result: SimulationResult
    baseline: SimulationResult

    @property
    def speedup(self) -> float:
        return self.result.speedup_over(self.baseline)

    @property
    def coverage(self) -> float:
        return self.result.coverage

    @property
    def accuracy(self) -> float:
        return self.result.accuracy

    @property
    def traffic_overhead(self) -> float:
        return self.result.traffic_overhead_vs(self.baseline)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "config": self.config,
            "speedup": self.speedup,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "traffic_overhead": self.traffic_overhead,
            "ipc": self.result.ipc,
        }


def sweep(
    benchmarks: Sequence[str],
    prefetchers: Dict[str, PrefetcherSpec],
    n_accesses: int = 60_000,
    seed: int = 1,
    scale: int = 4,
    machine: Optional[MachineConfig] = None,
    warmup_fraction: float = 1 / 3,
    degree: int = 1,
    n_jobs: Optional[int] = None,
    cache_dir=None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    resume: Optional[bool] = None,
    report: Optional[bool] = None,
) -> List[SweepRecord]:
    """Run every (benchmark x prefetcher) combination.

    Each configuration gets a *fresh* prefetcher instance (specs that are
    already-built instances are reused across benchmarks and therefore
    carry state -- pass names/configs/factories to avoid that).

    ``n_jobs`` fans the grid's cells over worker processes
    (``None`` reads ``REPRO_JOBS`` and defaults to serial; results are
    bit-identical to ``n_jobs=1``).  Cells whose spec is an
    already-built instance or a factory callable always run in-process.
    ``cache_dir`` enables the persistent result/trace cache for this and
    later invocations (``None`` keeps whatever ``repro.cache`` is
    already configured with, including ``REPRO_CACHE_DIR``).

    ``retries``/``cell_timeout`` override the ambient resilience policy
    (``REPRO_RETRIES``/``REPRO_CELL_TIMEOUT``): failed or timed-out
    cells are retried with backoff, dead worker pools are respawned, and
    completed cells are checkpointed to a journal under the cache root.
    ``resume=True`` (or ``REPRO_RESUME=1``) skips journaled cells whose
    results are still cached, so an interrupted grid picks up where it
    stopped instead of restarting.  See ``docs/resilience.md``.

    ``report=True`` (or ``REPRO_REPORT=1``) drops a self-contained HTML
    report (:mod:`repro.obs.reporting`) into the active obs session's
    output directory after the grid completes; it is a no-op without an
    obs session that has an ``out_dir``.  See ``docs/reporting.md``.
    """
    machine = machine or MachineConfig.scaled(scale)
    warmup = int(n_accesses * warmup_fraction)
    if n_jobs is None:
        n_jobs = parallel.jobs_from_env(default=1)

    cells = []
    for bench in benchmarks:
        cells.append(
            parallel.sweep_cell(
                bench, None, "baseline", n_accesses, seed, scale, machine, warmup
            )
        )
        for config_name, prefetcher_spec in prefetchers.items():
            cells.append(
                parallel.sweep_cell(
                    bench,
                    prefetcher_spec,
                    config_name,
                    n_accesses,
                    seed,
                    scale,
                    machine,
                    warmup,
                    degree=degree,
                )
            )
    results = parallel.run_cells(
        cells,
        n_jobs=n_jobs,
        cache_dir=cache_dir,
        retries=retries,
        cell_timeout=cell_timeout,
        resume=resume,
    )

    records: List[SweepRecord] = []
    per_bench = 1 + len(prefetchers)
    for b, bench in enumerate(benchmarks):
        baseline = results[b * per_bench]
        for c, config_name in enumerate(prefetchers):
            records.append(
                SweepRecord(
                    workload=bench,
                    config=config_name,
                    result=results[b * per_bench + 1 + c],
                    baseline=baseline,
                )
            )
    if report is None:
        report = os.environ.get("REPRO_REPORT", "") not in ("", "0")
    if report:
        _drop_report()
    return records


def _drop_report() -> None:
    """Flush the active obs session and write a report beside its artifacts.

    Report generation is best-effort decoration of a finished sweep: a
    failure here (e.g. no session output directory) warns on stderr
    rather than discarding the computed records.
    """
    from repro.obs import get_session

    session = get_session()
    if session is None or session.out_dir is None:
        print(
            "warning: sweep(report=True) needs an obs session with an "
            "output directory; skipping report generation",
            file=sys.stderr,
        )
        return
    try:
        session.flush()
        from repro.obs.reporting import generate_report

        paths = generate_report(session.out_dir)
        print(f"sweep report: {paths['html']}", file=sys.stderr)
    except Exception as exc:
        print(f"warning: sweep report generation failed: {exc}", file=sys.stderr)


def records_to_csv(records: Sequence[SweepRecord]) -> str:
    """Render sweep records as CSV."""
    import csv
    import io

    if not records:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(records[0].as_dict()))
    writer.writeheader()
    for record in records:
        writer.writerow(record.as_dict())
    return buffer.getvalue()
