"""Result containers and the derived metrics the paper reports.

Coverage and accuracy follow the standard definitions the paper uses:

* **coverage** -- the fraction of would-be L2 demand misses eliminated by
  prefetching: ``useful / (useful + remaining_l2_demand_misses)``, where
  a *useful* prefetch is the first demand touch of a prefetched L2 line;
* **accuracy** -- ``useful / issued`` over non-redundant prefetches;
* **traffic overhead** -- extra off-chip bytes relative to a
  no-prefetching baseline run of the same trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memory.hierarchy import CoreCounters
from repro.obs.manifest import RunManifest


@dataclass
class SimulationResult:
    """Outcome of one single-core simulation (or one core of a mix)."""

    workload: str
    prefetcher: str
    instructions: float
    cycles: float
    counters: CoreCounters
    traffic: Dict[str, int]
    metadata_llc_accesses: int = 0
    metadata_dram_accesses: int = 0
    final_metadata_capacity: Optional[int] = None
    partition_history: List[int] = field(default_factory=list)
    #: Provenance record built by the engine (config, seeds, wall time,
    #: metric dump); see :mod:`repro.obs.manifest`.
    manifest: Optional[RunManifest] = field(default=None, repr=False, compare=False)

    # -- headline metrics ------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Performance relative to ``baseline`` (same workload)."""
        if self.cycles <= 0:
            return 0.0
        return baseline.cycles / self.cycles

    @property
    def useful_prefetches(self) -> int:
        return self.counters.l2_prefetch_hits

    @property
    def coverage(self) -> float:
        useful = self.useful_prefetches
        total = useful + self.counters.l2_demand_misses
        return useful / total if total else 0.0

    @property
    def accuracy(self) -> float:
        issued = self.counters.prefetches_issued
        return self.useful_prefetches / issued if issued else 0.0

    @property
    def total_traffic_bytes(self) -> int:
        return sum(self.traffic.values())

    def traffic_overhead_vs(self, baseline: "SimulationResult") -> float:
        """Extra off-chip traffic as a fraction of the baseline's."""
        base = baseline.total_traffic_bytes
        if base <= 0:
            return 0.0
        return (self.total_traffic_bytes - base) / base

    def miss_reduction_over(self, baseline: "SimulationResult") -> float:
        """Fractional reduction in off-chip demand accesses."""
        base = baseline.counters.dram_accesses
        if base <= 0:
            return 0.0
        return 1.0 - self.counters.dram_accesses / base

    def kpis(self) -> Dict[str, float]:
        """The headline metrics as one flat dict.

        Engines stamp this into ``manifest.extra["kpis"]`` so flushed
        manifests carry the run's KPIs without needing the (much larger)
        counter state -- the reporting layer builds its figures and the
        Figure-13 energy section from these stamps alone.
        """
        return {
            "ipc": self.ipc,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "traffic_bytes": float(self.total_traffic_bytes),
            "dram_accesses": float(self.counters.dram_accesses),
            "metadata_llc_accesses": float(self.metadata_llc_accesses),
            "metadata_dram_accesses": float(self.metadata_dram_accesses),
        }


@dataclass
class MultiCoreResult:
    """Outcome of one multi-programmed simulation."""

    workloads: List[str]
    prefetcher: str
    per_core: List[SimulationResult]
    traffic: Dict[str, int]
    #: Provenance record for the whole mix run (see
    #: :mod:`repro.obs.manifest`).
    manifest: Optional[RunManifest] = field(default=None, repr=False, compare=False)

    @property
    def n_cores(self) -> int:
        return len(self.per_core)

    def speedup_over(self, baseline: "MultiCoreResult") -> float:
        """Geometric-mean per-core speedup versus a baseline mix run."""
        if len(baseline.per_core) != len(self.per_core):
            raise ValueError("baseline must have the same core count")
        ratios = [
            mine.speedup_over(theirs)
            for mine, theirs in zip(self.per_core, baseline.per_core)
        ]
        return geomean(ratios)

    @property
    def total_traffic_bytes(self) -> int:
        return sum(self.traffic.values())

    def traffic_overhead_vs(self, baseline: "MultiCoreResult") -> float:
        base = baseline.total_traffic_bytes
        if base <= 0:
            return 0.0
        return (self.total_traffic_bytes - base) / base

    def kpis(self) -> Dict[str, float]:
        """Mix-level KPI stamp: core sums/means plus total traffic."""
        cores = self.per_core
        n = len(cores) or 1
        return {
            "ipc": sum(r.ipc for r in cores) / n,
            "coverage": sum(r.coverage for r in cores) / n,
            "accuracy": sum(r.accuracy for r in cores) / n,
            "traffic_bytes": float(self.total_traffic_bytes),
            "dram_accesses": float(
                sum(r.counters.dram_accesses for r in cores)
            ),
            "metadata_llc_accesses": float(
                sum(r.metadata_llc_accesses for r in cores)
            ),
            "metadata_dram_accesses": float(
                sum(r.metadata_dram_accesses for r in cores)
            ),
        }


def geomean(values: List[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups).

    ``speedup_over`` legitimately yields ``0.0`` for zero-cycle or
    failed cells, so non-positive values are skipped (loudly, once per
    process) instead of raising a math domain error; an empty input or
    an all-non-positive input aggregates to ``0.0``.
    """
    if not values:
        return 0.0
    positive = [v for v in values if v > 0]
    if len(positive) != len(values):
        from repro.config import warn_once

        dropped = len(values) - len(positive)
        warn_once(
            ("stats", "geomean_nonpositive"),
            f"geomean: skipping {dropped} non-positive value(s) "
            "(zero-cycle or failed cells aggregate over the rest)",
            category="stats.geomean_nonpositive",
            dropped=dropped,
        )
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))
