"""Figure 13: energy of MISB's metadata accesses relative to Triage's.

Paper: 4-22x, counting 1 unit per LLC access and 25 (10-50) units per
DRAM access.
"""

from __future__ import annotations

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks
from repro.sim.energy import misb_vs_triage_energy


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE
    table = common.ExperimentTable(
        title="Figure 13: MISB metadata-access energy over Triage's (x)",
        headers=["benchmark", "nominal", "low (10u/DRAM)", "high (50u/DRAM)"],
    )
    ratios = []
    for bench in benchmarks(quick):
        misb = common.run_single(bench, "misb", n=n)
        triage = common.run_single(bench, "triage_1mb", n=n)
        cmp = misb_vs_triage_energy(
            misb_dram_accesses=misb.metadata_dram_accesses,
            misb_llc_accesses=0,
            triage_llc_accesses=triage.metadata_llc_accesses,
        )
        ratios.append(cmp.nominal)
        table.add(bench, cmp.nominal, cmp.low, cmp.high)
    table.add("average", sum(ratios) / len(ratios), "", "")
    table.notes.append("paper: MISB 4-22x more energy than Triage across the suite")
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
