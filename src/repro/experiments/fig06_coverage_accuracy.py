"""Figure 6: prefetcher coverage and accuracy on the irregular suite.

Paper: coverage 42.0% (Triage) vs 13.0% (BO) vs 4.6% (SMS); accuracy
77.2% vs 43.3% vs 39.6%.
"""

from __future__ import annotations

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks

CONFIGS = ["bo", "sms", "triage_512kb", "triage_1mb", "triage_dynamic", "triangel"]


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE
    common.warm_grid(benchmarks(quick), CONFIGS, n=n)
    headers = ["benchmark"]
    for config in CONFIGS:
        headers += [f"{common.label(config)} cov", f"{common.label(config)} acc"]
    table = common.ExperimentTable(
        title="Figure 6: coverage and accuracy (irregular SPEC)",
        headers=headers,
    )
    sums = {c: [0.0, 0.0] for c in CONFIGS}
    benches = benchmarks(quick)
    for bench in benches:
        row = [bench]
        for config in CONFIGS:
            result = common.run_single(bench, config, n=n)
            row += [result.coverage, result.accuracy]
            sums[config][0] += result.coverage
            sums[config][1] += result.accuracy
        table.add(*row)
    avg_row = ["average"]
    for config in CONFIGS:
        avg_row += [sums[config][0] / len(benches), sums[config][1] / len(benches)]
    table.add(*avg_row)
    table.notes.append(
        "paper averages: Triage cov 0.42 / acc 0.77, BO 0.13 / 0.43, SMS 0.046 / 0.40"
    )
    return table


def kpis(table: common.ExperimentTable) -> dict:
    """Suite-average coverage and accuracy per prefetcher config."""
    avg = table.row("average")
    out = {}
    for i, config in enumerate(CONFIGS):
        out[f"coverage.{config}"] = float(avg[1 + 2 * i])
        out[f"accuracy.{config}"] = float(avg[2 + 2 * i])
    return out


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
