"""Figure 10: Triage as part of a hybrid prefetcher.

Paper: BO+Triage 24.8% vs BO alone 5.8% on single-core irregular SPEC --
Triage prefetches the lines BO cannot.
"""

from __future__ import annotations

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks
from repro.sim.stats import geomean

CONFIGS = ["bo", "triage_dynamic", "bo+triage_dynamic"]


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE
    table = common.ExperimentTable(
        title="Figure 10: hybrid BO+Triage (speedup over no L2PF)",
        headers=["benchmark"] + [common.label(c) for c in CONFIGS],
    )
    speedups = {c: [] for c in CONFIGS}
    for bench in benchmarks(quick):
        base = common.run_single(bench, "none", n=n)
        row = [bench]
        for config in CONFIGS:
            s = common.run_single(bench, config, n=n).speedup_over(base)
            speedups[config].append(s)
            row.append(s)
        table.add(*row)
    table.add("geomean", *[geomean(speedups[c]) for c in CONFIGS])
    table.notes.append("paper: BO+Triage 1.248 vs BO 1.058")
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
