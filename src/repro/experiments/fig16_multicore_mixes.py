"""Figure 16: 4-core multi-programmed mixes of irregular programs.

Paper: BO 10.6%, Triage-Dynamic 10.2%, BO+Triage-Dynamic 15.9% -- Triage
prefetches lines BO cannot, and the hybrid wins.
"""

from __future__ import annotations

from repro.experiments import common
from repro.sim.stats import geomean

CONFIGS = ["bo", "triage_dynamic", "bo+triage_dynamic", "triangel_dynamic"]

N_MIXES = 6
N_MIXES_QUICK = 3


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_MULTI_QUICK if quick else common.N_MULTI
    n_mixes = N_MIXES_QUICK if quick else N_MIXES
    table = common.ExperimentTable(
        title="Figure 16: 4-core irregular mixes (speedup over no prefetching)",
        headers=["mix", "workloads"] + [common.label(c) for c in CONFIGS],
    )
    speedups = {c: [] for c in CONFIGS}
    for mix_seed in range(1, n_mixes + 1):
        base = common.run_mix_cached(4, mix_seed, "none", n_per_core=n)
        row = [f"MIX{mix_seed}", ",".join(base.workloads)]
        for config in CONFIGS:
            result = common.run_mix_cached(4, mix_seed, config, n_per_core=n)
            s = result.speedup_over(base)
            speedups[config].append(s)
            row.append(s)
        table.add(*row)
    table.add("geomean", "", *[geomean(speedups[c]) for c in CONFIGS])
    table.notes.append(
        "paper: BO 1.106, Triage-Dynamic 1.102, BO+Triage-Dynamic 1.159"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
