"""Section 4.6: sensitivity to the partition-update epoch length.

The paper finds metadata partitions stable over long periods: resizing
more frequently than every 50 K LLC accesses does not change
performance.  We sweep the epoch (scaled) and report Triage-Dynamic's
speedup plus how often the partition actually changed.
"""

from __future__ import annotations

from repro.core.triage import TriagePrefetcher
from repro.experiments import common
from repro.sim.single_core import simulate
from repro.sim.stats import geomean

EPOCHS = [1_000, 3_000, 10_000, 25_000]
BENCHES = ["mcf", "xalancbmk", "omnetpp"]


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else 150_000
    benches = BENCHES[:2] if quick else BENCHES
    table = common.ExperimentTable(
        title="Sensitivity: partition re-evaluation epoch (Triage-Dynamic)",
        headers=["epoch (metadata accesses)", "geomean speedup", "partition changes"],
    )
    baselines = {b: common.run_single(b, "none", n=n) for b in benches}
    for epoch in EPOCHS:
        speedups = []
        changes = 0
        for bench in benches:
            trace = common.get_trace(bench, n)
            prefetcher = TriagePrefetcher(
                common.triage_config(dynamic=True, epoch_accesses=epoch)
            )
            result = simulate(
                trace,
                prefetcher,
                machine=common.MACHINE,
                warmup_accesses=int(n * common.WARMUP_FRACTION),
            )
            speedups.append(result.speedup_over(baselines[bench]))
            changes += sum(
                1 for d in prefetcher.controller.decisions if d.changed
            )
        table.add(epoch, geomean(speedups), changes)
    table.notes.append(
        "paper: partitions are stable; faster re-evaluation does not help"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
