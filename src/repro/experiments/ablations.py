"""Ablations of Triage's design choices (DESIGN.md Section 5).

These go beyond the paper's figures to isolate the mechanisms DESIGN.md
calls out:

* **confidence bit** -- without it, one noisy pair rewrites a learned
  correlation (paper Section 3.1 motivates the 1-bit counter);
* **PC localization** -- a global-stream Triage degrades toward a
  Markov-table-in-the-LLC (paper Section 2: PC localization is "the most
  powerful form of temporal prefetching");
* **tag compression width** -- fewer tag bits shrink entries but recycle
  ids sooner, producing wrong prefetches (paper Section 3.2's 10-bit
  choice).
"""

from __future__ import annotations

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks
from repro.sim.stats import geomean

ABLATIONS = [
    ("Triage_1MB (full design)", "triage_1mb"),
    ("no confidence bit", "triage_noconf"),
    ("no PC localization", "triage_global"),
    ("8-bit compressed tags", f"triage@{common.CAP_LARGE}:hawkeye:8"),
    ("12-bit compressed tags", f"triage@{common.CAP_LARGE}:hawkeye:12"),
    ("LRU metadata replacement", "triage_lru"),
]


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE
    benches = benchmarks(quick)
    table = common.ExperimentTable(
        title="Ablations: Triage design choices (geomean over irregular SPEC)",
        headers=["variant", "speedup", "coverage", "accuracy"],
    )
    baselines = {b: common.run_single(b, "none", n=n) for b in benches}
    for label_text, config in ABLATIONS:
        speedups, covs, accs = [], [], []
        for bench in benches:
            result = common.run_single(bench, config, n=n)
            speedups.append(result.speedup_over(baselines[bench]))
            covs.append(result.coverage)
            accs.append(result.accuracy)
        table.add(
            label_text,
            geomean(speedups),
            sum(covs) / len(covs),
            sum(accs) / len(accs),
        )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
