"""Figure 17: Triage vs MISB as core count (bandwidth pressure) grows.

The paper's headline multi-core result: MISB wins at 2 cores (16.0% vs
12.1%), the gap shrinks at 8 (10.0% vs 8.8%) and inverts at 16 cores
(4.3% vs 6.2%) because MISB's metadata traffic competes with demand
traffic for the fixed 32 GB/s of DRAM bandwidth.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.sim.stats import geomean

CORE_COUNTS = [2, 4, 8, 16]
N_MIXES = 3
N_MIXES_QUICK = 2


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_MULTI_QUICK if quick else common.N_MULTI
    n_mixes = N_MIXES_QUICK if quick else N_MIXES
    core_counts = [2, 8] if quick else CORE_COUNTS
    table = common.ExperimentTable(
        title="Figure 17: MISB vs Triage-Dynamic across core counts "
        "(geomean speedup over no prefetching, irregular mixes)",
        headers=["cores", "MISB", "Triage-Dynamic", "traffic+% MISB", "traffic+% Triage"],
    )
    for cores in core_counts:
        misb_s: List[float] = []
        triage_s: List[float] = []
        misb_o: List[float] = []
        triage_o: List[float] = []
        for mix_seed in range(1, n_mixes + 1):
            base = common.run_mix_cached(cores, mix_seed, "none", n_per_core=n)
            misb = common.run_mix_cached(cores, mix_seed, "misb", n_per_core=n)
            triage = common.run_mix_cached(
                cores, mix_seed, "triage_dynamic", n_per_core=n
            )
            misb_s.append(misb.speedup_over(base))
            triage_s.append(triage.speedup_over(base))
            misb_o.append(misb.traffic_overhead_vs(base))
            triage_o.append(triage.traffic_overhead_vs(base))
        table.add(
            cores,
            geomean(misb_s),
            geomean(triage_s),
            100.0 * sum(misb_o) / len(misb_o),
            100.0 * sum(triage_o) / len(triage_o),
        )
    table.notes.append(
        "paper: 2-core MISB 1.160 vs Triage 1.121; 16-core MISB 1.043 vs "
        "Triage 1.062 (crossover under bandwidth pressure)"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
