"""Figure 14: server (CloudSuite-like) workloads on a 4-core system.

Paper: on the irregular three (cassandra/classification/cloud9) Triage
wins (7.8% vs BO 4.8%, SMS ~0); on nutch/streaming BO/SMS win because
the misses are compulsory; BO+Triage is the best overall (13.7% vs BO
8.6%), and Triage-Dynamic beats Triage-Static by 2.3% on the irregular
three.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.sim.stats import geomean
from repro.workloads import cloudsuite

CONFIGS = [
    "sms",
    "bo",
    "triage_1mb",
    "triage_dynamic",
    "bo+sms",
    "bo+triage_1mb",
    "bo+triage_dynamic",
]

LABELS = {
    "triage_1mb": "Triage-Static",
    "triage_dynamic": "Triage-Dynamic",
    "bo+triage_1mb": "BO+Triage-Static",
    "bo+triage_dynamic": "BO+Triage-Dynamic",
}


def benchmarks(quick: bool) -> List[str]:
    return ["cassandra", "nutch"] if quick else cloudsuite.CLOUDSUITE


def configs(quick: bool) -> List[str]:
    if quick:
        return ["bo", "triage_dynamic", "bo+triage_dynamic"]
    return CONFIGS


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_MULTI_QUICK if quick else common.N_MULTI
    cfgs = configs(quick)
    table = common.ExperimentTable(
        title="Figure 14: CloudSuite-like server workloads, 4 cores "
        "(speedup over no prefetching)",
        headers=["benchmark"] + [LABELS.get(c, common.label(c)) for c in cfgs],
    )
    speedups = {c: [] for c in cfgs}
    for bench in benchmarks(quick):
        base = common.run_cloudsuite_4core(bench, "none", n_per_core=n)
        row = [bench]
        for config in cfgs:
            result = common.run_cloudsuite_4core(bench, config, n_per_core=n)
            s = result.speedup_over(base)
            speedups[config].append(s)
            row.append(s)
        table.add(*row)
    table.add("geomean", *[geomean(speedups[c]) for c in cfgs])
    table.notes.append(
        "paper: BO+Triage 1.137 > BO 1.086; Triage wins the irregular three, "
        "BO/SMS win nutch+streaming (compulsory misses)"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
