"""Figure 5: Triage vs on-chip prefetchers on the irregular SPEC suite.

Paper result: Triage 23.4%/23.5% (static/dynamic) vs BO 5.8% and SMS
2.2%, per-benchmark bars plus the average.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.sim.stats import geomean
from repro.workloads import spec

# "triangel" rides along as a post-paper competitor (same 1 MB budget as
# Triage_1MB); see experiments/ext_triangel_headtohead for the full duel.
CONFIGS = ["bo", "sms", "triage_512kb", "triage_1mb", "triage_dynamic", "triangel"]


def benchmarks(quick: bool) -> List[str]:
    return spec.IRREGULAR_SPEC[:3] if quick else spec.IRREGULAR_SPEC


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE
    # Fan the grid over worker processes when REPRO_JOBS asks for it
    # (no-op when serial; the loop below then computes cells lazily).
    common.warm_grid(benchmarks(quick), ["none"] + CONFIGS, n=n)
    table = common.ExperimentTable(
        title="Figure 5: speedup over no L2 prefetching (irregular SPEC)",
        headers=["benchmark"] + [common.label(c) for c in CONFIGS],
    )
    speedups = {c: [] for c in CONFIGS}
    for bench in benchmarks(quick):
        base = common.run_single(bench, "none", n=n)
        row = [bench]
        for config in CONFIGS:
            s = common.run_single(bench, config, n=n).speedup_over(base)
            speedups[config].append(s)
            row.append(s)
        table.add(*row)
    table.add("geomean", *[geomean(speedups[c]) for c in CONFIGS])
    table.notes.append(
        "paper geomeans: BO 1.058, SMS 1.022, Triage_512KB ~1.20, "
        "Triage_1MB 1.234, Triage_Dynamic 1.235"
    )
    return table


def kpis(table: common.ExperimentTable) -> dict:
    """Headline KPIs for the bench trajectory: per-config speedup geomeans."""
    geo = table.row("geomean")
    return {
        f"speedup_geomean.{config}": float(geo[1 + i])
        for i, config in enumerate(CONFIGS)
    }


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
