"""Shared experiment infrastructure.

All experiments run on a machine scaled down from Table 1 by
:data:`SCALE` (see ``MachineConfig.scaled``) with workloads shrunk by the
same factor, so every capacity ratio the paper's evaluation depends on is
preserved while Python-speed simulation stays tractable.  The metadata
store candidates scale identically: the paper's {0, 512 KB, 1 MB} become
{0, 512/SCALE KB, 1024/SCALE KB}; figure harnesses still label them with
the paper's names ("Triage_512KB", "Triage_1MB").

Simulation results are memoized per (workload, prefetcher, machine) so
figures that share configurations (e.g. Figures 5, 6 and 12) reuse runs
within one process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.triage import TriageConfig
from repro.prefetchers.best_offset import BestOffsetPrefetcher
from repro.prefetchers.domino import DominoPrefetcher
from repro.prefetchers.hybrid import HybridPrefetcher
from repro.prefetchers.isb import IsbPrefetcher
from repro.prefetchers.misb import MisbPrefetcher
from repro.prefetchers.sms import SmsPrefetcher
from repro.prefetchers.stms import StmsPrefetcher
from repro.core.triage import TriagePrefetcher
from repro.prefetchers.triangel import TriangelConfig, TriangelPrefetcher
from repro.obs.manifest import log_cached_manifest
from repro.sim.config import MachineConfig
from repro.sim.multi_core import simulate_multicore
from repro.sim.single_core import simulate
from repro.sim.stats import MultiCoreResult, SimulationResult, geomean
from repro.workloads import cloudsuite, mixes, spec

KB = 1024
MB = 1024 * KB

#: Machine/workload scale factor (see module docstring).
SCALE = 4

#: The paper's metadata store candidates, scaled.
CAP_SMALL = (512 * KB) // SCALE
CAP_LARGE = (1 * MB) // SCALE
CAPACITIES = (0, CAP_SMALL, CAP_LARGE)

#: MISB's on-chip metadata budget (48 KB in Figure 11), scaled.
MISB_ONCHIP = (48 * KB) // SCALE

#: Partition re-evaluation epoch, scaled from the paper's 50 K metadata
#: accesses to our ~SimPoint/100 trace lengths.
EPOCH_ACCESSES = 3_000

#: Default single-core trace length (accesses).  A third of each trace
#: is warmup (paper: 200 M-instruction warmup before each SimPoint); the
#: length is chosen so warm-tier reuse is in steady state within the
#: measured region.
N_SINGLE = 240_000
N_SINGLE_QUICK = 60_000
WARMUP_FRACTION = 1 / 3

#: Multi-core experiments shrink further so 16-core mixes stay tractable.
MULTI_SCALE = 8
N_MULTI = 30_000
N_MULTI_QUICK = 15_000

MACHINE = MachineConfig.scaled(SCALE)


def quick_mode_default() -> bool:
    """Quick mode can be forced globally via REPRO_QUICK=1."""
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def capacities_for_scale(scale: int) -> tuple:
    """The paper's {0, 512 KB, 1 MB} store candidates at a given scale."""
    return (0, (512 * KB) // scale, (1 * MB) // scale)


def triage_config(
    capacity: Optional[int] = CAP_LARGE,
    dynamic: bool = False,
    replacement: str = "hawkeye",
    degree: int = 1,
    epoch_accesses: int = EPOCH_ACCESSES,
    scale: int = SCALE,
    **overrides,
) -> TriageConfig:
    """A TriageConfig wired for a machine at the given scale."""
    return TriageConfig(
        degree=degree,
        metadata_capacity=capacity,
        dynamic=dynamic,
        capacities=capacities_for_scale(scale),
        replacement=replacement,
        epoch_accesses=epoch_accesses,
        # Our traces start from a cold heap (the paper's SimPoints resume
        # mid-execution), so the controller holds its allocation through
        # the compulsory ramp, which warmup excludes from measurement.
        partition_warmup_epochs=8,
        **overrides,
    )


def triangel_config(
    capacity: Optional[int] = CAP_LARGE,
    dynamic: bool = False,
    replacement: str = "reuse",
    degree: int = 1,
    epoch_accesses: int = EPOCH_ACCESSES,
    scale: int = SCALE,
    **overrides,
) -> TriangelConfig:
    """A TriangelConfig wired for a machine at the given scale.

    Same scaling as :func:`triage_config`; only the defaults differ
    (reuse-aware replacement, lookahead 2, sampling on -- the family's
    own knobs come from :class:`TriangelConfig`).
    """
    return TriangelConfig(
        degree=degree,
        metadata_capacity=capacity,
        dynamic=dynamic,
        capacities=capacities_for_scale(scale),
        replacement=replacement,
        epoch_accesses=epoch_accesses,
        partition_warmup_epochs=8,
        **overrides,
    )


def make_spec(name: str, degree: int = 1, scale: int = SCALE):
    """Build a prefetcher by paper-facing name for a machine at ``scale``.

    Returns a fresh instance per call (required for multi-core runs).
    Multi-core helpers pass ``scale=MULTI_SCALE`` so Triage's store
    candidates shrink with the multi-core machine.
    """
    _, cap_small, cap_large = capacities_for_scale(scale)
    misb_onchip = (48 * KB) // scale
    builders = {
        "none": lambda: None,
        "bo": lambda: BestOffsetPrefetcher(degree=degree),
        "sms": lambda: SmsPrefetcher(degree=degree),
        "stms": lambda: StmsPrefetcher(degree=degree),
        "domino": lambda: DominoPrefetcher(degree=degree),
        "isb": lambda: IsbPrefetcher(degree=degree),
        "misb": lambda: MisbPrefetcher(degree=degree, onchip_bytes=misb_onchip),
        "triage_512kb": lambda: TriagePrefetcher(
            triage_config(capacity=cap_small, degree=degree, scale=scale)
        ),
        "triage_1mb": lambda: TriagePrefetcher(
            triage_config(capacity=cap_large, degree=degree, scale=scale)
        ),
        "triage_dynamic": lambda: TriagePrefetcher(
            triage_config(dynamic=True, degree=degree, scale=scale)
        ),
        "triage_utility": lambda: TriagePrefetcher(
            triage_config(
                dynamic=True, degree=degree, scale=scale,
                partition_policy="utility",
                llc_data_bytes=(2 * MB) // scale,
            )
        ),
        "triage_lru": lambda: TriagePrefetcher(
            triage_config(
                capacity=cap_large, replacement="lru", degree=degree, scale=scale
            )
        ),
        "triage_ideal": lambda: TriagePrefetcher(
            triage_config(capacity=None, degree=degree, scale=scale)
        ),
        "triage_noconf": lambda: TriagePrefetcher(
            triage_config(
                capacity=cap_large, degree=degree, scale=scale,
                use_confidence=False,
            )
        ),
        "triage_global": lambda: TriagePrefetcher(
            triage_config(
                capacity=cap_large, degree=degree, scale=scale,
                pc_localized=False,
            )
        ),
        "triangel": lambda: TriangelPrefetcher(
            triangel_config(capacity=cap_large, degree=degree, scale=scale)
        ),
        "triangel_512kb": lambda: TriangelPrefetcher(
            triangel_config(capacity=cap_small, degree=degree, scale=scale)
        ),
        "triangel_dynamic": lambda: TriangelPrefetcher(
            triangel_config(dynamic=True, degree=degree, scale=scale)
        ),
        # Degenerate config: sampling off, lookahead 1, Hawkeye
        # replacement -- issues Triage's exact stream (differential anchor).
        "triangel_nosample": lambda: TriangelPrefetcher(
            triangel_config(
                capacity=cap_large, degree=degree, scale=scale,
                sampling=False, lookahead=1, replacement="hawkeye",
            )
        ),
        "triangel_nonuniform": lambda: TriangelPrefetcher(
            triangel_config(
                capacity=cap_large, degree=degree, scale=scale,
                index_mode="nonuniform",
            )
        ),
    }
    name = name.lower()
    if "+" in name:
        parts = [p for p in name.split("+") if p]
        return HybridPrefetcher([make_spec(p, degree, scale) for p in parts])
    if name.startswith("triage@"):
        # "triage@<bytes>[:repl[:tagbits]]" -- arbitrary store geometry,
        # used by the Figure 9 sweep and the packing ablation.
        parts = name.split("@", 1)[1].split(":")
        capacity = int(parts[0])
        replacement = parts[1] if len(parts) > 1 else "hawkeye"
        tag_bits = int(parts[2]) if len(parts) > 2 else 10
        return TriagePrefetcher(
            triage_config(
                capacity=capacity,
                replacement=replacement,
                degree=degree,
                tag_bits=tag_bits,
            )
        )
    try:
        return builders[name]()
    except KeyError:
        raise ValueError(f"unknown experiment prefetcher {name!r}") from None


#: Every name :func:`make_spec` can build (hybrids and the ``triage@``
#: sweep pattern are handled structurally in :func:`is_registered`).
#: Kept as an explicit literal so :mod:`repro.cache.keys` can validate
#: names without building prefetchers; a test asserts every member
#: actually builds.
SPEC_NAMES = frozenset(
    {
        "none",
        "bo",
        "sms",
        "stms",
        "domino",
        "isb",
        "misb",
        "triage_512kb",
        "triage_1mb",
        "triage_dynamic",
        "triage_utility",
        "triage_lru",
        "triage_ideal",
        "triage_noconf",
        "triage_global",
        "triangel",
        "triangel_512kb",
        "triangel_dynamic",
        "triangel_nosample",
        "triangel_nonuniform",
    }
)


def is_registered(name: str) -> bool:
    """Whether :func:`make_spec` can build ``name``.

    Handles hybrid ``a+b`` names (every component must be registered)
    and the ``triage@<bytes>[:repl[:tagbits]]`` sweep pattern.
    """
    if not isinstance(name, str):
        return False
    name = name.lower().strip()
    if "+" in name:
        parts = [p for p in name.split("+") if p]
        return bool(parts) and all(is_registered(p) for p in parts)
    if name.startswith("triage@"):
        parts = name.split("@", 1)[1].split(":")
        try:
            int(parts[0])
            if len(parts) > 2:
                int(parts[2])
        except ValueError:
            return False
        if len(parts) > 1 and parts[1] not in ("hawkeye", "lru", "reuse"):
            return False
        return len(parts) <= 3
    return name in SPEC_NAMES


#: Paper-facing labels for the configurations above.
LABELS = {
    "none": "NoL2PF",
    "bo": "BO",
    "sms": "SMS",
    "stms": "STMS",
    "domino": "Domino",
    "isb": "Ideal-PC-Temporal",
    "misb": "MISB_48KB",
    "triage_512kb": "Triage_512KB",
    "triage_1mb": "Triage_1MB",
    "triage_dynamic": "Triage_Dynamic",
    "triage_utility": "Triage_Utility",
    "triage_lru": "Triage_LRU",
    "triage_ideal": "Triage_Unbounded",
    "triangel": "Triangel",
    "triangel_512kb": "Triangel_512KB",
    "triangel_dynamic": "Triangel_Dynamic",
    "triangel_nosample": "Triangel_NoSample",
    "triangel_nonuniform": "Triangel_NonUniform",
    "bo+triage_dynamic": "BO+Triage-Dyn",
    "bo+triage_1mb": "BO+Triage-Static",
    "bo+sms": "BO+SMS",
}


def label(name: str) -> str:
    return LABELS.get(name.lower(), name)


# -- memoized simulation runs ---------------------------------------------
#
# Two tiers: a process-local dict (figures sharing configurations reuse
# runs within one invocation) in front of the optional persistent disk
# cache (:mod:`repro.cache`, enabled via ``REPRO_CACHE_DIR`` or
# ``python -m repro run --cache-dir``), which survives across processes.
# Tests and benchmarks reset the process tier with :func:`clear_caches`
# rather than reaching into the private dicts.

_TRACE_CACHE: Dict[Tuple, object] = {}
_RUN_CACHE: Dict[Tuple, SimulationResult] = {}


def clear_caches() -> None:
    """Empty every process-local memo (disk cache entries are untouched)."""
    from repro.sim import parallel

    _TRACE_CACHE.clear()
    _RUN_CACHE.clear()
    _MIX_CACHE.clear()
    parallel.clear_trace_memo()


def _disk_cache():
    from repro import cache

    return cache.get_cache()


def _run_single_disk_key(
    suite: str,
    bench: str,
    prefetcher: str,
    n: int,
    seed: int,
    degree: int,
    machine: MachineConfig,
    charge_metadata_to_llc: bool,
) -> str:
    from repro import cache

    return cache.run_key(
        namespace="experiments.run_single",
        workload={
            "suite": suite,
            "bench": bench,
            "n_accesses": n,
            "seed": seed,
            "scale": SCALE,
        },
        prefetcher=cache.spec_fingerprint(prefetcher),
        machine=machine,
        degree=degree,
        warmup=int(n * WARMUP_FRACTION),
        charge_metadata_to_llc=charge_metadata_to_llc,
    )


def run_single_cache_key(
    bench: str,
    prefetcher: str,
    n: Optional[int] = None,
    seed: int = 1,
    degree: int = 1,
    suite: str = "spec",
    machine: Optional[MachineConfig] = None,
    charge_metadata_to_llc: bool = True,
) -> str:
    """The disk key a :func:`run_single` call's result lands under.

    Mirrors :func:`run_single`'s defaulting exactly (same signature), so
    the resilience journal can name a cell's cached result without
    running it.  Raises :class:`repro.cache.UncacheableSpec` for specs
    with no stable fingerprint.
    """
    n = n or N_SINGLE
    return _run_single_disk_key(
        suite, bench, prefetcher, n, seed, degree,
        machine or MACHINE, charge_metadata_to_llc,
    )


def _trace_gen_phase():
    """Scoped ``trace_gen`` profiling phase (no-op without a session)."""
    from contextlib import nullcontext

    from repro.obs import get_session

    session = get_session()
    return nullcontext() if session is None else session.phase("trace_gen")


def get_trace(bench: str, n: int, seed: int = 1, suite: str = "spec"):
    """Build (and cache) a scaled trace for a named benchmark.

    Process memo first, then the persistent disk tier (when a cache is
    configured), then the generator.
    """
    key = (suite, bench, n, seed, SCALE)
    if key not in _TRACE_CACHE:
        disk = _disk_cache()
        disk_key = None
        if disk is not None:
            from repro import cache

            disk_key = cache.trace_key(suite, bench, n, seed, SCALE)
            cached = disk.get_trace(disk_key)
            if cached is not None:
                _TRACE_CACHE[key] = cached
                return cached
        maker = spec.make_trace if suite == "spec" else cloudsuite.make_trace
        with _trace_gen_phase():
            _TRACE_CACHE[key] = maker(bench, n_accesses=n, seed=seed, scale=SCALE)
        if disk_key is not None:
            disk.put_trace(disk_key, _TRACE_CACHE[key])
    return _TRACE_CACHE[key]


def run_single(
    bench: str,
    prefetcher: str,
    n: Optional[int] = None,
    seed: int = 1,
    degree: int = 1,
    suite: str = "spec",
    machine: Optional[MachineConfig] = None,
    charge_metadata_to_llc: bool = True,
) -> SimulationResult:
    """One memoized single-core run of ``bench`` under ``prefetcher``.

    The resolved simulation engine (:envvar:`REPRO_ENGINE`) is part of
    both the process-memo key and -- through
    :func:`repro.cache.spec_fingerprint` -- the disk key, so results
    computed under one engine are never served to a run requesting the
    other even though the engines are bit-identical: their manifests
    (and therefore reporting/bench provenance) differ.
    """
    from repro import config as config_mod

    n = n or N_SINGLE
    machine_key = machine or MACHINE
    key = (
        suite, bench, prefetcher, n, seed, degree,
        machine_key, charge_metadata_to_llc, config_mod.engine_env(),
    )
    if key not in _RUN_CACHE:
        disk = _disk_cache()
        disk_key = None
        if disk is not None:
            disk_key = _run_single_disk_key(
                suite, bench, prefetcher, n, seed, degree,
                machine_key, charge_metadata_to_llc,
            )
            cached = disk.get_result(disk_key)
            if cached is not None:
                _RUN_CACHE[key] = cached
                log_cached_manifest(cached)
                return cached
        trace = get_trace(bench, n, seed, suite)
        _RUN_CACHE[key] = simulate(
            trace,
            make_spec(prefetcher, degree),
            machine=machine_key,
            charge_metadata_to_llc=charge_metadata_to_llc,
            warmup_accesses=int(n * WARMUP_FRACTION),
        )
        if disk_key is not None:
            disk.put_result(disk_key, _RUN_CACHE[key])
    return _RUN_CACHE[key]


def warm_grid(
    benches: Sequence[str],
    prefetchers: Sequence[str],
    n: Optional[int] = None,
    seed: int = 1,
    degree: int = 1,
    suite: str = "spec",
    n_jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    resume: Optional[bool] = None,
) -> int:
    """Precompute a (benchmark x prefetcher) grid of :func:`run_single`.

    Fans the not-yet-memoized cells over worker processes
    (:mod:`repro.sim.parallel`) and primes :data:`_RUN_CACHE`, so a
    figure harness's serial loop afterwards only does table assembly.
    ``n_jobs=None`` reads ``REPRO_JOBS`` and stays a no-op when that
    requests a serial run (the harness loop computes the same cells
    lazily, so skipping here avoids doing the work twice).  Returns the
    number of cells actually computed.

    ``retries``/``cell_timeout``/``resume`` feed the resilience layer
    (:mod:`repro.resilience`); left as ``None`` they follow
    ``REPRO_RETRIES``/``REPRO_CELL_TIMEOUT``/``REPRO_RESUME``, which is
    how the figure harnesses inherit the CLI's ``--retries`` /
    ``--cell-timeout`` / ``--resume`` flags.
    """
    from repro import config as config_mod
    from repro.sim import parallel

    n = n or N_SINGLE
    if n_jobs is None:
        n_jobs = parallel.jobs_from_env(default=1)
    if n_jobs <= 1:
        return 0
    engine = config_mod.engine_env()  # workers inherit REPRO_ENGINE
    cells = []
    keys = []
    for bench in benches:
        for prefetcher in prefetchers:
            key = (
                suite, bench, prefetcher, n, seed, degree, MACHINE, True,
                engine,
            )
            if key in _RUN_CACHE:
                continue
            keys.append(key)
            cells.append(
                parallel.run_single_cell(
                    bench=bench,
                    prefetcher=prefetcher,
                    n=n,
                    seed=seed,
                    degree=degree,
                    suite=suite,
                )
            )
    if not cells:
        return 0
    results = parallel.run_cells(
        cells,
        n_jobs=n_jobs,
        retries=retries,
        cell_timeout=cell_timeout,
        resume=resume,
    )
    for key, result in zip(keys, results):
        _RUN_CACHE[key] = result
    return len(cells)


def run_mix(
    n_cores: int,
    mix_seed: int,
    prefetcher: str,
    n_per_core: int = N_MULTI,
    irregular_only: bool = True,
    names: Optional[List[str]] = None,
    degree: int = 1,
) -> MultiCoreResult:
    """One multi-core mix run on the multi-core scaled machine."""
    machine = MachineConfig.scaled(MULTI_SCALE, n_cores=n_cores)
    with _trace_gen_phase():
        traces = mixes.make_mix(
            n_cores,
            mix_seed,
            n_accesses_per_core=n_per_core,
            irregular_only=irregular_only,
            names=names,
            scale=MULTI_SCALE,
        )
    # A callable spec builds one fresh prefetcher per core.  Half the run
    # is warmup, as in the paper's multi-core methodology (warm 30 M,
    # measure 30 M).
    return simulate_multicore(
        traces,
        lambda: make_spec(prefetcher, degree, scale=MULTI_SCALE),
        machine=machine,
        accesses_per_core=n_per_core // 2,
        warmup_accesses_per_core=n_per_core // 2,
    )


# -- table rendering ---------------------------------------------------------


@dataclass
class ExperimentTable:
    """A figure's regenerated data: headers + rows + free-form notes."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def column(self, header: str) -> List[object]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def row(self, first_cell: object) -> List[object]:
        for row in self.rows:
            if row[0] == first_cell:
                return row
        raise KeyError(first_cell)

    def to_csv(self) -> str:
        """The table as CSV (floats at full precision), for plotting."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def __str__(self) -> str:
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.3f}"
            return str(cell)

        table = [self.headers] + [[fmt(c) for c in row] for row in self.rows]
        widths = [max(len(r[i]) for r in table) for i in range(len(self.headers))]
        lines = [f"== {self.title} =="]
        for i, row in enumerate(table):
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def geomean_speedup(
    results: Sequence[SimulationResult], baselines: Sequence[SimulationResult]
) -> float:
    """Geometric-mean speedup across paired (result, baseline) runs."""
    return geomean([r.speedup_over(b) for r, b in zip(results, baselines)])


def pct(ratio: float) -> float:
    """Speedup ratio -> percent improvement (1.235 -> 23.5)."""
    return (ratio - 1.0) * 100.0


_MIX_CACHE: Dict[Tuple, MultiCoreResult] = {}


def run_mix_cached(
    n_cores: int,
    mix_seed: int,
    prefetcher: str,
    n_per_core: int = N_MULTI,
    irregular_only: bool = True,
    names_key: Optional[Tuple[str, ...]] = None,
    degree: int = 1,
) -> MultiCoreResult:
    """Memoized :func:`run_mix` (process memo + optional disk tier)."""
    key = (n_cores, mix_seed, prefetcher, n_per_core, irregular_only, names_key, degree)
    if key not in _MIX_CACHE:
        disk = _disk_cache()
        disk_key = None
        if disk is not None:
            from repro import cache

            disk_key = cache.generic_key(
                "experiments.run_mix",
                {
                    "n_cores": n_cores,
                    "mix_seed": mix_seed,
                    "prefetcher": prefetcher,
                    "n_per_core": n_per_core,
                    "irregular_only": irregular_only,
                    "names": list(names_key) if names_key else None,
                    "degree": degree,
                    "multi_scale": MULTI_SCALE,
                },
            )
            cached = disk.get_result(disk_key)
            if cached is not None:
                _MIX_CACHE[key] = cached
                log_cached_manifest(cached)
                return cached
        _MIX_CACHE[key] = run_mix(
            n_cores,
            mix_seed,
            prefetcher,
            n_per_core=n_per_core,
            irregular_only=irregular_only,
            names=list(names_key) if names_key else None,
            degree=degree,
        )
        if disk_key is not None:
            disk.put_result(disk_key, _MIX_CACHE[key])
    return _MIX_CACHE[key]


def run_cloudsuite_4core(
    bench: str,
    prefetcher: str,
    n_per_core: int = N_MULTI,
    degree: int = 1,
) -> MultiCoreResult:
    """Run a CloudSuite-like benchmark in 4-core rate mode.

    The CRC-2 traces are 4-core full-system samples; we approximate with
    four differently-seeded instances of the same server workload in
    disjoint arenas sharing the LLC and DRAM.
    """
    key = ("cloudsuite", bench, prefetcher, n_per_core, degree)
    if key in _MIX_CACHE:
        return _MIX_CACHE[key]
    machine = MachineConfig.scaled(MULTI_SCALE, n_cores=4)
    with _trace_gen_phase():
        traces = [
            cloudsuite.make_trace(
                bench,
                n_accesses=n_per_core,
                seed=10 + core,
                arena=2000 + core * 40,
                scale=MULTI_SCALE,
            )
            for core in range(4)
        ]
    result = simulate_multicore(
        traces,
        lambda: make_spec(prefetcher, degree, scale=MULTI_SCALE),
        machine=machine,
        accesses_per_core=n_per_core // 2,
        warmup_accesses_per_core=n_per_core // 2,
    )
    _MIX_CACHE[key] = result
    return result
