"""Experiment harnesses: one module per figure of the paper.

Every module exposes ``run(quick=False) -> ExperimentTable`` that
regenerates the corresponding figure's rows (speedups, coverage,
traffic, ...) on the scaled machine described in
:mod:`repro.experiments.common`, plus a ``main()`` that prints it.
"""

from repro.experiments.common import (
    CAP_LARGE,
    CAP_SMALL,
    MACHINE,
    SCALE,
    ExperimentTable,
    run_single,
)

__all__ = [
    "CAP_LARGE",
    "CAP_SMALL",
    "ExperimentTable",
    "MACHINE",
    "SCALE",
    "run_single",
]
