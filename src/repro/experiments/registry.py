"""Registry of all experiment harnesses, for the CLI and docs."""

from __future__ import annotations

from typing import Dict

from repro.experiments import (
    ablations,
    ext_engine_validation,
    ext_llc_policy,
    ext_serving,
    ext_triangel_headtohead,
    ext_utility_partition,
    fig01_reuse,
    fig05_irregular_speedup,
    fig06_coverage_accuracy,
    fig07_breakdown,
    fig08_regular,
    fig09_repl_sensitivity,
    fig10_hybrid,
    fig11_offchip_comparison,
    fig12_design_space,
    fig13_energy,
    fig14_cloudsuite,
    fig15_dynamic_vs_static,
    fig16_multicore_mixes,
    fig17_core_scaling,
    fig18_mixed_mixes,
    fig19_way_allocation,
    fig20_degree,
    sens_epoch,
    sens_latency,
)

EXPERIMENTS: Dict[str, object] = {
    "fig01": fig01_reuse,
    "fig05": fig05_irregular_speedup,
    "fig06": fig06_coverage_accuracy,
    "fig07": fig07_breakdown,
    "fig08": fig08_regular,
    "fig09": fig09_repl_sensitivity,
    "fig10": fig10_hybrid,
    "fig11": fig11_offchip_comparison,
    "fig12": fig12_design_space,
    "fig13": fig13_energy,
    "fig14": fig14_cloudsuite,
    "fig15": fig15_dynamic_vs_static,
    "fig16": fig16_multicore_mixes,
    "fig17": fig17_core_scaling,
    "fig18": fig18_mixed_mixes,
    "fig19": fig19_way_allocation,
    "fig20": fig20_degree,
    "sens-latency": sens_latency,
    "sens-epoch": sens_epoch,
    "ablations": ablations,
    "ext-utility": ext_utility_partition,
    "ext-engines": ext_engine_validation,
    "ext-llc-policy": ext_llc_policy,
    # Underscore (not the ext- hyphen convention): bench trajectories are
    # named BENCH_<experiment>.json verbatim, and this one ships a seeded
    # BENCH_ext_triangel.json baseline.
    "ext_triangel": ext_triangel_headtohead,
    "ext_serving": ext_serving,
}


def get(name: str):
    """Return the experiment module registered as ``name``."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {name!r}; choose from: {known}") from None
