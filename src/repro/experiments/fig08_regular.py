"""Figure 8: results on the regular (remaining memory-intensive) SPEC
benchmarks.

Paper story: BO wins on regular codes; Triage does not outperform it but
Triage-Dynamic's partitioning "avoids hurting performance on most
benchmarks"; bzip2 is the known regression (metadata reuse without
useful prefetches).
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.sim.stats import geomean
from repro.workloads import spec

CONFIGS = ["bo", "sms", "triage_512kb", "triage_1mb", "triage_dynamic"]

QUICK_SUBSET = ["perlbench", "bzip2", "bwaves", "milc", "libquantum", "lbm"]


def benchmarks(quick: bool) -> List[str]:
    return QUICK_SUBSET if quick else spec.REGULAR_SPEC


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else 100_000
    table = common.ExperimentTable(
        title="Figure 8: speedup on regular SPEC benchmarks",
        headers=["benchmark"] + [common.label(c) for c in CONFIGS],
    )
    speedups = {c: [] for c in CONFIGS}
    for bench in benchmarks(quick):
        base = common.run_single(bench, "none", n=n)
        row = [bench]
        for config in CONFIGS:
            s = common.run_single(bench, config, n=n).speedup_over(base)
            speedups[config].append(s)
            row.append(s)
        table.add(*row)
    table.add("geomean", *[geomean(speedups[c]) for c in CONFIGS])
    table.notes.append(
        "paper: BO best on regulars; Triage_Dynamic near-neutral (picks the "
        "512KB or empty store); bzip2 hurt by static Triage"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
