"""Extension experiment: utility-aware partitioning (paper future work).

Figure 8's text: on bzip2 "Triage hurts performance because it detects
metadata reuse, but the prefetches issued by these metadata entries are
not enough to cover the loss in LLC space.  As future work, more
sophisticated partitioning schemes that account for cache utility more
accurately could help improve Triage in these scenarios."

:mod:`repro.core.utility_partition` implements that scheme.  This
experiment compares it against the paper's OPTgen-only controller on the
cache-utility-sensitive regular benchmarks plus a couple of irregular
ones (where it must NOT give up the metadata store's benefit).
"""

from __future__ import annotations

from repro.experiments import common
from repro.sim.stats import geomean

BENCHES_REGULAR = ["bzip2", "sjeng", "gobmk", "dealII"]
BENCHES_IRREGULAR = ["mcf", "xalancbmk"]
CONFIGS = ["triage_1mb", "triage_dynamic", "triage_utility"]
LABELS = {
    "triage_1mb": "Static 1MB",
    "triage_dynamic": "Dynamic (paper)",
    "triage_utility": "Utility-aware (ext.)",
}


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE
    benches = (
        BENCHES_REGULAR[:2] + BENCHES_IRREGULAR[:1]
        if quick
        else BENCHES_REGULAR + BENCHES_IRREGULAR
    )
    table = common.ExperimentTable(
        title="Extension: utility-aware partitioning vs the paper's scheme "
        "(speedup over no prefetching)",
        headers=["benchmark"] + [LABELS[c] for c in CONFIGS],
    )
    speedups = {c: [] for c in CONFIGS}
    for bench in benches:
        base = common.run_single(bench, "none", n=n)
        row = [bench]
        for config in CONFIGS:
            s = common.run_single(bench, config, n=n).speedup_over(base)
            speedups[config].append(s)
            row.append(s)
        table.add(*row)
    table.add("geomean", *[geomean(speedups[c]) for c in CONFIGS])
    table.notes.append(
        "finding (honest negative result): the utility-aware controller "
        "protects the cache-sensitive regulars at least as well as the "
        "static allocation, but its conservatism also gives up part of the "
        "irregular benchmarks' upside -- on these traces the paper's simpler "
        "OPTgen-only scheme remains the better overall default"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
