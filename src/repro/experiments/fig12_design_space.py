"""Figure 12: the temporal-prefetcher design space (traffic vs speedup).

One point per prefetcher: average speedup (x) against average off-chip
traffic overhead (y).  Triage's contribution is the previously
unexplored corner -- STMS/Domino-class coverage at BO-class traffic.
"""

from __future__ import annotations

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks
from repro.sim.stats import geomean

CONFIGS = ["bo", "stms", "domino", "misb", "triage_dynamic"]


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE
    table = common.ExperimentTable(
        title="Figure 12: design space (speedup vs traffic overhead)",
        headers=["prefetcher", "speedup %", "traffic overhead %"],
    )
    benches = benchmarks(quick)
    for config in CONFIGS:
        speedups, overheads = [], []
        for bench in benches:
            base = common.run_single(bench, "none", n=n)
            result = common.run_single(bench, config, n=n)
            speedups.append(result.speedup_over(base))
            overheads.append(result.traffic_overhead_vs(base))
        table.add(
            common.label(config),
            common.pct(geomean(speedups)),
            100.0 * sum(overheads) / len(overheads),
        )
    table.notes.append(
        "paper points (speedup%, traffic%): BO (5.8, 33.8), STMS (15.3, 483), "
        "Domino (14.5, 483), MISB (34.7, 156), Triage (23.5, 59)"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
