"""Extension: serving-layer robustness under shaped load and faults.

Runs the :mod:`repro.serve` stack -- admission control, deadlines,
circuit breakers, the degradation ladder -- through four deterministic
load scenarios and reports the serving SLO KPIs per scenario:

``ramp``
    Arrival rate climbs through the service's capacity: the healthy
    baseline (should serve ~everything at the full tier).
``spike``
    A 6x burst the service cannot absorb: admission control must shed
    and the ladder must degrade *and recover*.
``diurnal``
    A compressed day of sinusoidal load: the soak shape.
``chaos``
    The ramp again with ``serve_worker_crash`` + ``serve_slow_reply``
    faults armed: breakers trip, retries converge, and the robustness
    acceptance bar applies -- zero unhandled errors, every request
    answered or explicitly rejected.

Everything runs on the virtual-time loop (:mod:`repro.serve.vtime`), so
the table -- latencies included -- is bit-deterministic and its KPIs are
gated in CI via ``BENCH_ext_serving.json`` like any figure trajectory.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import faults
from repro.experiments import common
from repro.serve import LoadgenConfig, LoadtestReport, ServiceConfig, run_loadtest

#: scenario -> (shape, base_rps multiplier, fault spec or None)
SCENARIOS = [
    ("ramp", "ramp", 1.0, None),
    ("spike", "spike", 2.0, None),
    ("diurnal", "diurnal", 1.0, None),
    ("chaos", "ramp", 1.0, "serve_worker_crash:0.2,serve_slow_reply:0.1"),
]

#: KPI columns, in table order after the scenario name.  The ``slo_*``
#: columns come from the loadtest's burn-rate verdicts
#: (:mod:`repro.obs.slo`): breach/warn counts over both paired windows
#: plus the worst observed burn rate.
KPI_COLUMNS = [
    "p50_latency_ms",
    "p95_latency_ms",
    "throughput_rps",
    "shed_rate_pct",
    "served_pct",
    "degrade_transitions",
    "breaker_trips",
    "slo_breaches",
    "slo_warnings",
    "slo_worst_burn",
]


def _loadgen_config(shape: str, rps_scale: float, quick: bool) -> LoadgenConfig:
    return LoadgenConfig(
        shape=shape,
        duration_s=20.0 if quick else 60.0,
        base_rps=150.0 * rps_scale,
        n_tenants=8 if quick else 16,
        batch_size=32,
        deadline_s=0.5,
        seed=1234,
        trace_accesses=1024 if quick else 4096,
    )


def _service_config() -> ServiceConfig:
    return ServiceConfig(n_workers=4, queue_watermark=32)


def run_scenario(
    name: str, shape: str, rps_scale: float,
    fault_spec: Optional[str], quick: bool,
) -> LoadtestReport:
    """One scenario on a fresh service; fault plan scoped to the run."""
    saved_plan = faults._PLAN
    try:
        if fault_spec is not None:
            faults.configure(fault_spec, seed=42)
        return run_loadtest(
            _loadgen_config(shape, rps_scale, quick), _service_config()
        )
    finally:
        faults._PLAN = saved_plan


def run(quick: bool = False) -> common.ExperimentTable:
    table = common.ExperimentTable(
        title="Extension: serving robustness under shaped load "
        "(virtual-time loadtests)",
        headers=["scenario"] + KPI_COLUMNS + ["unhandled errors"],
    )
    for name, shape, rps_scale, fault_spec in SCENARIOS:
        report = run_scenario(name, shape, rps_scale, fault_spec, quick)
        kpis = report.kpis()
        if report.served + report.shed != report.requests:
            raise AssertionError(
                f"{name}: {report.requests} requests but "
                f"{report.served} served + {report.shed} shed -- a request "
                "was neither answered nor explicitly rejected"
            )
        table.add(
            name,
            *[kpis[col] for col in KPI_COLUMNS],
            report.errors_unhandled,
        )
    table.notes.append(
        "acceptance: 'unhandled errors' is 0 on every row -- under faults "
        "the service sheds load explicitly, never silently fails"
    )
    table.notes.append(
        "chaos = ramp shape + serve_worker_crash:0.2 + serve_slow_reply:0.1"
    )
    return table


def kpis(table: common.ExperimentTable) -> Dict[str, float]:
    """Per-scenario serving KPIs, flattened for the bench trajectory."""
    out: Dict[str, float] = {}
    for name, _, _, _ in SCENARIOS:
        row = table.row(name)
        for i, col in enumerate(KPI_COLUMNS):
            out[f"{col}.{name}"] = float(row[1 + i])
        out[f"unhandled_errors.{name}"] = float(row[1 + len(KPI_COLUMNS)])
    return out


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
