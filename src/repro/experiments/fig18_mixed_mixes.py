"""Figure 18: 4-core mixes that include both regular and irregular
programs.

Paper: BO+Triage 23% vs BO 19.3%; Triage alone only 4.3% (it cannot
prefetch the regular programs' compulsory misses), and the dynamic
version is essential so regular programs' LLC capacity is not wasted on
metadata.
"""

from __future__ import annotations

from repro.experiments import common
from repro.sim.stats import geomean

CONFIGS = ["bo", "triage_dynamic", "bo+triage_dynamic"]

N_MIXES = 6
N_MIXES_QUICK = 3


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_MULTI_QUICK if quick else common.N_MULTI
    n_mixes = N_MIXES_QUICK if quick else N_MIXES
    table = common.ExperimentTable(
        title="Figure 18: 4-core regular+irregular mixes "
        "(speedup over no prefetching)",
        headers=["mix", "workloads"] + [common.label(c) for c in CONFIGS],
    )
    speedups = {c: [] for c in CONFIGS}
    for mix_seed in range(1, n_mixes + 1):
        base = common.run_mix_cached(
            4, mix_seed, "none", n_per_core=n, irregular_only=False
        )
        row = [f"MIX{mix_seed}", ",".join(base.workloads)]
        for config in CONFIGS:
            result = common.run_mix_cached(
                4, mix_seed, config, n_per_core=n, irregular_only=False
            )
            s = result.speedup_over(base)
            speedups[config].append(s)
            row.append(s)
        table.add(*row)
    table.add("geomean", "", *[geomean(speedups[c]) for c in CONFIGS])
    table.notes.append(
        "paper: BO 1.193, Triage alone 1.043, BO+Triage 1.230 on these mixes"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
