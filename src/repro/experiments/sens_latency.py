"""Section 4.6: sensitivity to extra LLC latency.

Triage's fine-grained metadata lines may lengthen the LLC pipeline; the
paper penalizes *all* LLC accesses by up to 6 cycles and sees only ~1%
lower speedup.  Speedups here are normalized to a baseline with no
prefetching and no extra latency, as in the paper.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks
from repro.sim.stats import geomean

EXTRA_CYCLES = [0, 2, 4, 6]


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else 120_000
    benches = benchmarks(quick)
    table = common.ExperimentTable(
        title="Sensitivity: extra LLC latency (Triage_1MB geomean speedup "
        "over the zero-extra-latency no-prefetch baseline)",
        headers=["extra LLC cycles", "speedup"],
    )
    baselines = {b: common.run_single(b, "none", n=n) for b in benches}
    for extra in EXTRA_CYCLES:
        machine = replace(common.MACHINE, extra_llc_latency=extra)
        speedups = [
            common.run_single(b, "triage_1mb", n=n, machine=machine).speedup_over(
                baselines[b]
            )
            for b in benches
        ]
        table.add(extra, geomean(speedups))
    table.notes.append("paper: up to 6 extra cycles costs only ~1% of speedup")
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
