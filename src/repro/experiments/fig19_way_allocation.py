"""Figure 19: per-core metadata way allocation under Triage-Dynamic.

For mixed 4-core workloads, the paper shows (1) the total number of LLC
ways given to metadata varies across mixes and (2) within a mix, cores
receive different allocations depending on how much their program
profits from irregular prefetching (e.g. milc gets 0 ways, omnetpp the
maximum).
"""

from __future__ import annotations

from repro.experiments import common

N_MIXES = 6
N_MIXES_QUICK = 3


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_MULTI_QUICK if quick else common.N_MULTI
    n_mixes = N_MIXES_QUICK if quick else N_MIXES
    table = common.ExperimentTable(
        title="Figure 19: LLC ways allocated to metadata per core "
        "(Triage-Dynamic, 4-core regular+irregular mixes)",
        headers=["mix", "core0", "core1", "core2", "core3", "total ways"],
    )
    from repro.sim.config import MachineConfig

    machine = MachineConfig.scaled(common.MULTI_SCALE, n_cores=4)
    for mix_seed in range(1, n_mixes + 1):
        result = common.run_mix_cached(
            4, mix_seed, "triage_dynamic", n_per_core=n, irregular_only=False
        )
        cells = []
        total = 0
        for core_result in result.per_core:
            capacity = core_result.final_metadata_capacity or 0
            ways = machine.metadata_ways(capacity)
            total += ways
            cells.append(f"{core_result.workload}:{ways}")
        table.add(f"mix{mix_seed}", *cells, total)
    table.notes.append(
        "paper: total metadata ways vary by mix; regular programs (e.g. milc) "
        "get 0 ways, the most irregular core gets the maximum"
    )
    return table


def kpis(table: common.ExperimentTable) -> dict:
    """Partition-way KPIs: mean total ways plus the per-core way histogram.

    Core cells read ``workload:ways``; the histogram counts how many
    cores (across every mix) landed on each way allocation, flattened to
    scalar KPIs (``ways_hist.N``) so the compare gate can diff them.
    """
    totals = [float(row[-1]) for row in table.rows]
    hist: dict = {}
    cores = 0
    for row in table.rows:
        for cell in row[1:-1]:
            ways = int(str(cell).rsplit(":", 1)[-1])
            hist[ways] = hist.get(ways, 0) + 1
            cores += 1
    out = {
        "total_ways_mean": sum(totals) / len(totals) if totals else 0.0,
        "total_ways_max": max(totals) if totals else 0.0,
        "zero_way_core_fraction": (hist.get(0, 0) / cores) if cores else 0.0,
    }
    for ways in sorted(hist):
        out[f"ways_hist.{ways}"] = float(hist[ways])
    return out


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
