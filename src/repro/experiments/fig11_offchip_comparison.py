"""Figure 11: Triage vs temporal prefetchers that keep metadata off chip.

Two panels: speedup (idealized STMS/Domino, realistic MISB, Triage) and
off-chip traffic relative to a no-prefetching baseline.  Paper: Triage
23.5% beats idealized STMS 15.3% / Domino 14.5% but trails MISB 34.7%;
traffic overheads are 59.3% (Triage) vs 482.9% / 482.7% (STMS/Domino if
realistic) vs 156.4% (MISB).

Our STMS/Domino are modeled idealized exactly as in the paper, so their
*measured* traffic here shows only demand-side effects; the table's
traffic column reports MISB's and Triage's real overheads, which is the
comparison the paper's bottom panel makes.
"""

from __future__ import annotations

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks
from repro.sim.stats import geomean

# "triangel" joins the panel: like Triage it pays for every metadata
# access on chip, so its traffic column is directly comparable.
CONFIGS = ["stms", "domino", "misb", "triage_dynamic", "triangel"]


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE
    common.warm_grid(benchmarks(quick), ["none"] + CONFIGS, n=n)
    headers = ["benchmark"]
    for config in CONFIGS:
        headers += [f"{common.label(config)} speedup", f"{common.label(config)} traffic+%"]
    table = common.ExperimentTable(
        title="Figure 11: speedup and traffic vs off-chip temporal prefetchers",
        headers=headers,
    )
    speedups = {c: [] for c in CONFIGS}
    overheads = {c: [] for c in CONFIGS}
    benches = benchmarks(quick)
    for bench in benches:
        base = common.run_single(bench, "none", n=n)
        row = [bench]
        for config in CONFIGS:
            result = common.run_single(bench, config, n=n)
            s = result.speedup_over(base)
            o = 100.0 * result.traffic_overhead_vs(base)
            speedups[config].append(s)
            overheads[config].append(o)
            row += [s, o]
        table.add(*row)
    avg = ["mean"]
    for config in CONFIGS:
        avg += [
            geomean(speedups[config]),
            sum(overheads[config]) / len(overheads[config]),
        ]
    table.add(*avg)
    table.notes.append(
        "paper: speedups STMS 1.153, Domino 1.145, MISB 1.347, Triage 1.235; "
        "traffic overheads STMS/Domino ~483%, MISB 156%, Triage 59%"
    )
    table.notes.append(
        "STMS/Domino are idealized (zero metadata traffic), as in the paper; "
        "their realistic traffic would be 200-400% higher"
    )
    return table


def kpis(table: common.ExperimentTable) -> dict:
    """Speedup geomean and mean metadata-traffic overhead per config."""
    mean = table.row("mean")
    out = {}
    for i, config in enumerate(CONFIGS):
        out[f"speedup_geomean.{config}"] = float(mean[1 + 2 * i])
        out[f"traffic_overhead_pct.{config}"] = float(mean[2 + 2 * i])
    return out


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
