"""Figure 20: sensitivity to prefetch degree.

Paper: Triage grows from 23.5% (degree 1) to 36.2% (saturating at degree
8); BO and SMS reach only 11.1% / 7.0% at degree 8; Triage stays far
more accurate at high degree (50.5% vs BO's 21.5%).
"""

from __future__ import annotations

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks
from repro.sim.stats import geomean

DEGREES = [1, 2, 4, 8, 16]
CONFIGS = ["bo", "sms", "triage_1mb"]


def run(quick: bool = False) -> common.ExperimentTable:
    # 15 configurations x 7 benchmarks: run on a shorter trace.
    n = common.N_SINGLE_QUICK if quick else 120_000
    degrees = [1, 4] if quick else DEGREES
    headers = ["degree"]
    for config in CONFIGS:
        headers += [f"{common.label(config)} speedup", f"{common.label(config)} acc"]
    table = common.ExperimentTable(
        title="Figure 20: prefetch-degree sensitivity (irregular SPEC)",
        headers=headers,
    )
    benches = benchmarks(quick)
    for degree in degrees:
        row = [degree]
        for config in CONFIGS:
            speedups, accuracies = [], []
            for bench in benches:
                base = common.run_single(bench, "none", n=n)
                result = common.run_single(bench, config, n=n, degree=degree)
                speedups.append(result.speedup_over(base))
                accuracies.append(result.accuracy)
            row += [geomean(speedups), sum(accuracies) / len(accuracies)]
        table.add(*row)
    table.notes.append(
        "paper: Triage 1.235 (deg 1) -> 1.362 (deg 8, saturates); BO 1.111 and "
        "SMS 1.070 at deg 8; Triage acc 50.5% vs BO 21.5% at high degree"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
