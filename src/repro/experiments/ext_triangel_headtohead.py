"""Extension: Triage vs Triangel head-to-head on the irregular suite.

Not a paper figure -- this pits the original Triage configurations
against their successor (:mod:`repro.prefetchers.triangel`,
arXiv 2406.10627) on the exact workloads of Figures 5/6: per-benchmark
speedup over no L2 prefetching, plus coverage and accuracy, for each
family member.  The interesting columns:

* ``Triangel`` vs ``Triage_1MB``: same 1 MB metadata budget, so any gap
  is purely the Sample Table's allocation filter, the lookahead walk and
  reuse-aware metadata replacement.
* ``Triangel_NoSample`` vs ``Triage_1MB``: the degenerate configuration
  (sampling off, lookahead 1, Hawkeye replacement) -- the differential
  tests pin these to *identical* prefetch streams, so their rows here
  double as an end-to-end checksum of that contract.

KPIs feed ``repro bench ext_triangel`` / ``BENCH_ext_triangel.json``:
speedup geomeans per config plus Triangel's coverage/accuracy deltas
over Triage at matched budget.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks
from repro.sim.stats import geomean

#: Matched-budget families side by side, the degenerate config last.
CONFIGS = [
    "triage_1mb",
    "triage_dynamic",
    "triangel",
    "triangel_dynamic",
    "triangel_nosample",
]


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE
    common.warm_grid(benchmarks(quick), ["none"] + CONFIGS, n=n)
    headers = ["benchmark"]
    for config in CONFIGS:
        label = common.label(config)
        headers += [f"{label} speedup", f"{label} cov", f"{label} acc"]
    table = common.ExperimentTable(
        title="Extension: Triage vs Triangel (irregular SPEC)",
        headers=headers,
    )
    speedups = {c: [] for c in CONFIGS}
    cov_sums = {c: 0.0 for c in CONFIGS}
    acc_sums = {c: 0.0 for c in CONFIGS}
    benches = benchmarks(quick)
    for bench in benches:
        base = common.run_single(bench, "none", n=n)
        row: List[object] = [bench]
        for config in CONFIGS:
            result = common.run_single(bench, config, n=n)
            s = result.speedup_over(base)
            speedups[config].append(s)
            cov_sums[config] += result.coverage
            acc_sums[config] += result.accuracy
            row += [s, result.coverage, result.accuracy]
        table.add(*row)
    summary: List[object] = ["geomean/avg"]
    for config in CONFIGS:
        summary += [
            geomean(speedups[config]),
            cov_sums[config] / len(benches),
            acc_sums[config] / len(benches),
        ]
    table.add(*summary)
    table.notes.append(
        "Triangel vs Triage_1MB shares the metadata budget; the gap is "
        "sampling + lookahead + reuse-aware replacement."
    )
    table.notes.append(
        "Triangel_NoSample is the degenerate config: its speedup column "
        "must match Triage_1MB (differential-test contract)."
    )
    return table


def kpis(table: common.ExperimentTable) -> dict:
    """Headline KPIs: per-config speedup geomeans + Triangel deltas."""
    summary = table.row("geomean/avg")
    out = {}
    for i, config in enumerate(CONFIGS):
        out[f"speedup_geomean.{config}"] = float(summary[1 + 3 * i])
        out[f"coverage.{config}"] = float(summary[2 + 3 * i])
        out[f"accuracy.{config}"] = float(summary[3 + 3 * i])
    out["coverage_delta.triangel_vs_triage_1mb"] = (
        out["coverage.triangel"] - out["coverage.triage_1mb"]
    )
    out["accuracy_delta.triangel_vs_triage_1mb"] = (
        out["accuracy.triangel"] - out["accuracy.triage_1mb"]
    )
    return out


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
