"""Extension: cross-validate the analytic and queued timing engines.

The analytic engine (closed-form epoch timing) is what every figure
harness uses, because it is fast.  The queued engine models MSHRs,
banked DRAM and real prefetch arrival times.  If the reproduction's
conclusions are robust, the two engines must agree on *orderings* --
who wins on each benchmark -- even where absolute speedups differ
(the queued engine discounts late prefetches, pulling Triage's numbers
toward the paper's).

Triangel rides the same grid: the head-to-head experiment
(``ext_triangel``) ranks it on the analytic engine only, so this table
is where its advantage over Triage is shown to survive MSHR occupancy
and real prefetch timing.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.sim.queued import simulate_queued

BENCHES = ["mcf", "omnetpp", "xalancbmk"]
CONFIGS = ["bo", "triage_1mb", "triangel"]
LABELS = {"bo": "BO", "triage_1mb": "Triage", "triangel": "Triangel"}


def run(quick: bool = False) -> common.ExperimentTable:
    # Half the standard budget: every cell runs on both engines, and the
    # queued engine is the expensive one.  Quick mode uses the shared
    # knob so the golden-figure harness can pin the trace length.
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE // 2
    warmup = n // 3
    benches = BENCHES[:2] if quick else BENCHES
    headers = ["benchmark"]
    for config in CONFIGS:
        headers += [f"{LABELS[config]} analytic", f"{LABELS[config]} queued"]
    headers.append("late prefetch hits")
    table = common.ExperimentTable(
        title="Extension: analytic vs queued engine (speedup over no L2PF)",
        headers=headers,
    )
    for bench in benches:
        trace = common.get_trace(bench, n)
        # Baselines are per-benchmark, not per-config: run them once.
        analytic_base = common.run_single(bench, "none", n=n)
        queued_base = simulate_queued(
            trace, None, machine=common.MACHINE, warmup_accesses=warmup
        )
        row: List[object] = [bench]
        late = 0
        for config in CONFIGS:
            analytic = common.run_single(bench, config, n=n)
            queued = simulate_queued(
                trace,
                common.make_spec(config),
                machine=common.MACHINE,
                warmup_accesses=warmup,
            )
            row += [
                analytic.speedup_over(analytic_base),
                queued.speedup_over(queued_base),
            ]
            late = max(late, queued.late_prefetch_hits)
        row.append(late)
        table.add(*row)
    table.notes.append(
        "expected: same per-benchmark ordering (Triangel >= Triage > BO); "
        "queued speedups smaller because late prefetches recover only "
        "part of the miss latency"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
