"""Figure 9: sensitivity to metadata store size and replacement policy.

The paper sweeps the store from 128 KB to 1 MB (no LLC capacity loss)
under LRU vs Hawkeye, against an idealized PC-localized temporal
prefetcher ("Perfect"): at 256 KB Hawkeye gives 13.7% vs LRU's 7.7%, and
at 1 MB Triage reaches ~75% of Perfect.
"""

from __future__ import annotations

from typing import List

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks
from repro.sim.stats import geomean

#: Paper sizes scaled by common.SCALE.
SIZES_KB = [128, 256, 512, 1024]


def run(quick: bool = False) -> common.ExperimentTable:
    # 9 configurations x 7 benchmarks: a shorter trace keeps the sweep
    # affordable without changing the store-size : demand ratios much.
    n = common.N_SINGLE_QUICK if quick else 150_000
    sizes = [kb * 1024 // common.SCALE for kb in SIZES_KB]
    table = common.ExperimentTable(
        title="Figure 9: metadata store size x replacement policy "
        "(no LLC capacity loss; geomean speedup)",
        headers=["store size (paper-scale)", "LRU", "Hawkeye"],
    )
    benches = benchmarks(quick)

    def sweep(policy: str, size: int) -> float:
        speedups: List[float] = []
        for bench in benches:
            base = common.run_single(bench, "none", n=n)
            result = common.run_single(
                bench, f"triage@{size}:{policy}", n=n,
                charge_metadata_to_llc=False,
            )
            speedups.append(result.speedup_over(base))
        return geomean(speedups)

    for kb, size in zip(SIZES_KB, sizes):
        table.add(f"{kb}KB", sweep("lru", size), sweep("hawkeye", size))

    perfect = geomean(
        [
            common.run_single(
                bench, "triage_ideal", n=n, charge_metadata_to_llc=False
            ).speedup_over(common.run_single(bench, "none", n=n))
            for bench in benches
        ]
    )
    table.add("Perfect (unbounded)", perfect, perfect)
    table.notes.append(
        "paper: 256KB LRU +7.7% vs Hawkeye +13.7%; 1MB Hawkeye ~75% of Perfect; "
        "the LRU-vs-Hawkeye gap shrinks as the store grows"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
