"""Figure 1: metadata reuse distribution for mcf.

The paper's observation: "For an execution with 60K metadata entries,
only 15% of metadata entries are reused more than 15 times."  We run an
unbounded-metadata Triage over the mcf-like trace with reuse tracking on
and report the distribution of per-entry reuse counts.
"""

from __future__ import annotations

from repro.core.triage import TriagePrefetcher
from repro.experiments import common
from repro.sim.single_core import simulate
from repro.workloads.irregular import chain_trace


def _fig1_trace(n: int):
    """An mcf-like trace long enough for the hot tier to reach the
    paper's ">15 reuses" head: a small hot set retraversed ~20x over a
    large once-touched cold body."""
    return chain_trace(
        "mcf-fig1",
        n,
        seed=1,
        hot_lines=24_000 // common.SCALE,
        warm_lines=80_000 // common.SCALE,
        cold_lines=120_000 // common.SCALE,
        hot_fraction=0.45,
        warm_fraction=0.2,
        mlp=1.2,
        arena=97,
    )


def run(quick: bool = False) -> common.ExperimentTable:
    n = 120_000 if quick else 300_000
    trace = _fig1_trace(n)
    prefetcher = TriagePrefetcher(
        common.triage_config(capacity=None, track_reuse=True)
    )
    simulate(trace, prefetcher, machine=common.MACHINE)
    store = prefetcher.store

    total_entries = store.occupancy()
    reuse_counts = store.reuse_counts
    thresholds = [1, 2, 5, 10, 15, 30]
    table = common.ExperimentTable(
        title="Figure 1: metadata reuse distribution (mcf)",
        headers=["reused >= N times", "entries", "% of all entries"],
    )
    for threshold in thresholds:
        count = sum(1 for c in reuse_counts.values() if c >= threshold)
        table.add(threshold, count, 100.0 * count / max(1, total_entries))
    table.notes.append(f"total metadata entries: {total_entries}")
    table.notes.append(
        "paper: ~60K entries; ~15% of entries reused more than 15 times"
    )
    return table


def kpis(table: common.ExperimentTable) -> dict:
    """The paper's headline reuse-skew numbers from the distribution table."""
    out = {}
    for threshold in (1, 15):
        row = table.row(threshold)
        out[f"entries_reused_ge_{threshold}"] = float(row[1])
        out[f"pct_entries_reused_ge_{threshold}"] = float(row[2])
    return out


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
