"""Extension: does a smarter LLC replacement policy change Triage's math?

Triage's whole premise is that metadata is worth more than the LLC ways
it displaces.  A better data-side replacement policy (DRRIP, or Hawkeye
managing the *data* array) raises the value of those ways, so it could
narrow Triage's margin.  This experiment runs the no-prefetch baseline
and Triage_1MB under three LLC policies and reports both the baseline
IPC gain and Triage's speedup over each matching baseline.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import common
from repro.sim.stats import geomean

BENCHES = ["mcf", "omnetpp", "xalancbmk"]
POLICIES = ["lru", "drrip", "hawkeye"]


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else 120_000
    benches = BENCHES[:2] if quick else BENCHES
    table = common.ExperimentTable(
        title="Extension: Triage under different LLC replacement policies",
        headers=[
            "LLC policy",
            "baseline IPC gain vs LRU",
            "Triage_1MB speedup (same-policy baseline)",
        ],
    )
    lru_machine = common.MACHINE
    lru_baselines = {
        b: common.run_single(b, "none", n=n, machine=lru_machine) for b in benches
    }
    for policy in POLICIES:
        machine = replace(common.MACHINE, llc_policy=policy)
        base_gain = []
        triage_speedup = []
        for bench in benches:
            base = common.run_single(bench, "none", n=n, machine=machine)
            triage = common.run_single(bench, "triage_1mb", n=n, machine=machine)
            base_gain.append(base.ipc / lru_baselines[bench].ipc)
            triage_speedup.append(triage.speedup_over(base))
        table.add(policy, geomean(base_gain), geomean(triage_speedup))
    table.notes.append(
        "expected: better data-side policies raise the baseline slightly but "
        "Triage's speedup survives -- coverage dwarfs the marginal utility of "
        "the displaced ways (the paper's Section 1 argument)"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
