"""Figure 15: Triage-Dynamic vs Triage-Static on shared caches.

Paper: for 4-core mixes of irregular SPEC programs sharing the LLC, a
static half-LLC metadata split gains only 4.8% while Triage-Dynamic
gains 10.2%, because the LLC is more valuable when shared and dynamic
partitioning gives metadata only to the cores that profit from it.
"""

from __future__ import annotations

from repro.experiments import common
from repro.sim.stats import geomean

N_MIXES = 6
N_MIXES_QUICK = 3


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_MULTI_QUICK if quick else common.N_MULTI
    n_mixes = N_MIXES_QUICK if quick else N_MIXES
    table = common.ExperimentTable(
        title="Figure 15: Triage-Dynamic vs Triage-Static, 4-core irregular "
        "mixes (speedup over no prefetching)",
        headers=["mix", "workloads", "Triage-Static", "Triage-Dynamic"],
    )
    static_all, dynamic_all = [], []
    for mix_seed in range(1, n_mixes + 1):
        base = common.run_mix_cached(4, mix_seed, "none", n_per_core=n)
        static = common.run_mix_cached(4, mix_seed, "triage_1mb", n_per_core=n)
        dynamic = common.run_mix_cached(4, mix_seed, "triage_dynamic", n_per_core=n)
        s_static = static.speedup_over(base)
        s_dynamic = dynamic.speedup_over(base)
        static_all.append(s_static)
        dynamic_all.append(s_dynamic)
        table.add(
            f"MIX{mix_seed}", ",".join(base.workloads), s_static, s_dynamic
        )
    table.add("geomean", "", geomean(static_all), geomean(dynamic_all))
    table.notes.append("paper: static +4.8% vs dynamic +10.2% (80 mixes)")
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
