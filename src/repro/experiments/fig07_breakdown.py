"""Figure 7: breakdown of Triage's performance improvement.

The paper separates Triage's gain (prefetching) from its cost (LLC
capacity given up) with four configurations, all normalized to a 2 MB
LLC with no L2 prefetching:

* optimistic Triage -- full LLC plus a free 1 MB metadata store (31.2%);
* real Triage -- 1 MB of the 2 MB LLC repurposed (23.4%);
* half the LLC, no prefetching (-7.4%);
* half the LLC plus the 1 MB metadata store.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import common
from repro.experiments.fig05_irregular_speedup import benchmarks
from repro.sim.stats import geomean

ROWS = [
    ("2MB LLC + free 1MB Triage (optimistic)", "full_free"),
    ("2MB LLC - 1MB Triage", "charged"),
    ("1MB LLC - NoL2PF", "half_nopf"),
    ("1MB LLC + 1MB Triage", "half_triage"),
]


def run(quick: bool = False) -> common.ExperimentTable:
    n = common.N_SINGLE_QUICK if quick else common.N_SINGLE
    half_llc = replace(
        common.MACHINE,
        llc_size_per_core=common.MACHINE.llc_size_per_core // 2,
    )
    table = common.ExperimentTable(
        title="Figure 7: where Triage's improvement comes from "
        "(speedup over full LLC with no L2PF)",
        headers=["benchmark"] + [label for label, _ in ROWS],
    )
    collected = {key: [] for _, key in ROWS}
    for bench in benchmarks(quick):
        base = common.run_single(bench, "none", n=n)
        values = {
            "full_free": common.run_single(
                bench, "triage_1mb", n=n, charge_metadata_to_llc=False
            ).speedup_over(base),
            "charged": common.run_single(bench, "triage_1mb", n=n).speedup_over(base),
            "half_nopf": common.run_single(
                bench, "none", n=n, machine=half_llc
            ).speedup_over(base),
            "half_triage": common.run_single(
                bench, "triage_1mb", n=n, machine=half_llc,
                charge_metadata_to_llc=False,
            ).speedup_over(base),
        }
        for _, key in ROWS:
            collected[key].append(values[key])
        table.add(bench, *[values[key] for _, key in ROWS])
    table.add("geomean", *[geomean(collected[key]) for _, key in ROWS])
    table.notes.append(
        "paper: optimistic +31.2%, real Triage +23.4%, half LLC -7.4%; "
        "prefetching benefit must outweigh capacity loss"
    )
    return table


def main() -> None:
    print(run())


if __name__ == "__main__":
    main()
