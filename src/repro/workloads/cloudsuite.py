"""CloudSuite-like server workloads (paper Figure 14).

The paper's CRC-2 CloudSuite traces split into two behaviours:

* **cassandra / classification / cloud9** -- highly irregular: large
  pointer-linked heaps revisited by repeated transactions.  Temporal
  prefetching wins here.
* **nutch / streaming** -- dominated by compulsory misses over fresh
  data with recurring spatial structure.  Temporal prefetchers "cannot
  prefetch compulsory misses", so SMS/BO win and Triage is neutral.

We synthesize each with the matching primitive and tag them
``category="server"``.  Like :mod:`repro.workloads.spec`, ``scale``
divides working-set sizes to match a scaled-down machine.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.workloads.base import Trace, interleave
from repro.workloads.irregular import chain_trace, graph_walk_trace
from repro.workloads.regular import scan_footprint_trace, stream_trace

#: Figure 14's benchmark list (the paper spells it "casandra").
CLOUDSUITE: List[str] = [
    "cassandra",
    "classification",
    "cloud9",
    "nutch",
    "streaming",
]

IRREGULAR_CLOUDSUITE: List[str] = ["cassandra", "classification", "cloud9"]
REGULAR_CLOUDSUITE: List[str] = ["nutch", "streaming"]


def _server_irregular(
    name: str,
    n: int,
    seed: int,
    arena: int,
    scale: float,
    hot_lines: int,
    cold_lines: int,
) -> Trace:
    """Transactions over pointer-linked server heaps: mostly repeated
    chain walks plus a slice of compulsory scanning (fresh requests)."""
    n_chain = int(n * 0.85)
    chains = chain_trace(
        name + ":txn",
        n_chain,
        seed,
        hot_lines=max(256, int(hot_lines / scale)),
        cold_lines=max(256, int(cold_lines / scale)),
        hot_fraction=0.72,
        mlp=1.4,
        arena=arena,
        category="server",
    )
    fresh = scan_footprint_trace(
        name + ":fresh", n - n_chain, seed + 1, arena=arena + 32
    )
    trace = interleave([chains, fresh], name=name)
    trace.category = "server"
    trace.mlp = 1.5
    return trace


def _cloud9(n: int, seed: int, arena: int, scale: float) -> Trace:
    return graph_walk_trace(
        "cloud9",
        n,
        seed,
        n_nodes=max(256, int(44_000 / scale)),
        primary_prob=0.78,
        walk_len=200,
        mlp=1.5,
        arena=arena,
        category="server",
    )


def _nutch(n: int, seed: int, arena: int, scale: float) -> Trace:
    scan = scan_footprint_trace(
        "nutch:scan", int(n * 0.7), seed, n_signatures=8, arena=arena
    )
    streams = stream_trace(
        "nutch:stream",
        n - len(scan),
        seed + 1,
        n_streams=2,
        arena=arena + 32,
        category="server",
    )
    trace = interleave([scan, streams], name="nutch")
    trace.category = "server"
    trace.mlp = 4.0
    return trace


def _streaming(n: int, seed: int, arena: int, scale: float) -> Trace:
    streams = stream_trace(
        "streaming:stream",
        int(n * 0.6),
        seed,
        n_streams=4,
        arena=arena,
        category="server",
    )
    scan = scan_footprint_trace(
        "streaming:scan", n - int(n * 0.6), seed + 1, arena=arena + 32
    )
    trace = interleave([streams, scan], name="streaming")
    trace.category = "server"
    trace.mlp = 5.0
    return trace


_BUILDERS: Dict[str, Callable[[int, int, int, float], Trace]] = {
    "cassandra": lambda n, s, a, sc: _server_irregular(
        "cassandra", n, s, a, sc, hot_lines=44_000, cold_lines=160_000
    ),
    "classification": lambda n, s, a, sc: _server_irregular(
        "classification", n, s, a, sc, hot_lines=36_000, cold_lines=130_000
    ),
    "cloud9": _cloud9,
    "nutch": _nutch,
    "streaming": _streaming,
}

_ARENAS: Dict[str, int] = {name: 400 + i * 3 for i, name in enumerate(_BUILDERS)}


def make_trace(
    name: str,
    n_accesses: int = 100_000,
    seed: int = 1,
    arena: Optional[int] = None,
    scale: float = 1.0,
) -> Trace:
    """Build the named CloudSuite-like trace."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown CloudSuite benchmark {name!r}") from None
    if arena is None:
        arena = _ARENAS[name]
    trace = builder(n_accesses, seed, arena, scale)
    # Provenance for run manifests (repro.obs.manifest).
    trace.metadata.setdefault("seed", seed)
    trace.metadata.setdefault("scale", scale)
    return trace
