"""Regular-access trace primitives (the BO/SMS-friendly patterns).

* :func:`stream_trace` -- interleaved sequential streams (libquantum,
  lbm, streaming-server style); trivially covered by Best-Offset.
* :func:`strided_trace` -- multiple strided streams with configurable
  strides (bwaves/leslie3d style).
* :func:`scan_footprint_trace` -- a compulsory-miss scan over fresh
  regions where each region is touched with a recurring spatial
  footprint: never-seen addresses (temporal prefetchers get nothing) but
  a repeating PC+offset->footprint signature (SMS's home turf).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.workloads.base import HEAP_BASE, Trace, pc_of
from repro.workloads.irregular import ARENA_LINES


def stream_trace(
    name: str,
    n_accesses: int,
    seed: int,
    n_streams: int = 4,
    lines_per_stream: int = 1 << 20,
    write_frac: float = 0.2,
    mlp: float = 6.0,
    instr_per_access: float = 2.5,
    arena: int = 8,
    category: str = "regular",
) -> Trace:
    """Interleaved unit-stride streams over huge arrays."""
    rng = np.random.default_rng(seed)
    bases = [
        (HEAP_BASE >> 6) + (arena * 64 + i) * ARENA_LINES for i in range(n_streams)
    ]
    cursors = [0] * n_streams
    stream_pcs = [pc_of(400 + arena * 8 + i) for i in range(n_streams)]

    pcs_out: List[int] = []
    addrs_out: List[int] = []
    writes_out: List[bool] = []
    for i in range(n_accesses):
        s = i % n_streams
        line = bases[s] + (cursors[s] % lines_per_stream)
        cursors[s] += 1
        pcs_out.append(stream_pcs[s])
        addrs_out.append(line << 6)
        writes_out.append(bool(rng.random() < write_frac))

    return Trace(
        name=name,
        pcs=pcs_out,
        addrs=addrs_out,
        writes=writes_out,
        category=category,
        mlp=mlp,
        instr_per_access=instr_per_access,
        metadata={"pattern": "stream", "n_streams": n_streams},
    )


def strided_trace(
    name: str,
    n_accesses: int,
    seed: int,
    strides: Sequence[int] = (3, 5, 2, 7),
    lines_per_stream: int = 1 << 20,
    write_frac: float = 0.15,
    mlp: float = 5.0,
    instr_per_access: float = 3.0,
    arena: int = 9,
    category: str = "regular",
) -> Trace:
    """Interleaved constant-stride streams (one stride per stream)."""
    rng = np.random.default_rng(seed)
    n_streams = len(strides)
    bases = [
        (HEAP_BASE >> 6) + (arena * 64 + i) * ARENA_LINES for i in range(n_streams)
    ]
    cursors = [0] * n_streams
    stream_pcs = [pc_of(500 + arena * 8 + i) for i in range(n_streams)]

    pcs_out: List[int] = []
    addrs_out: List[int] = []
    writes_out: List[bool] = []
    for i in range(n_accesses):
        s = i % n_streams
        line = bases[s] + (cursors[s] * strides[s]) % lines_per_stream
        cursors[s] += 1
        pcs_out.append(stream_pcs[s])
        addrs_out.append(line << 6)
        writes_out.append(bool(rng.random() < write_frac))

    return Trace(
        name=name,
        pcs=pcs_out,
        addrs=addrs_out,
        writes=writes_out,
        category=category,
        mlp=mlp,
        instr_per_access=instr_per_access,
        metadata={"pattern": "strided", "strides": list(strides)},
    )


def scan_footprint_trace(
    name: str,
    n_accesses: int,
    seed: int,
    region_lines: int = 32,  # 2 KB regions, matching SMS's default
    footprint_density: float = 0.4,
    n_signatures: int = 6,
    write_frac: float = 0.05,
    mlp: float = 4.0,
    instr_per_access: float = 4.0,
    arena: int = 10,
    category: str = "server",
) -> Trace:
    """Compulsory-miss scan with recurring per-region spatial footprints.

    Every region is brand new (temporal prefetchers can learn nothing),
    but regions triggered by the same PC share a footprint bit-pattern,
    so SMS and BO recover most of the latency -- the nutch/streaming
    regime of Figure 14.
    """
    rng = np.random.default_rng(seed)
    signatures = []
    for i in range(n_signatures):
        mask = rng.random(region_lines) < footprint_density
        mask[0] = True  # the trigger offset is always touched
        signatures.append(np.flatnonzero(mask))
    sig_pcs = [pc_of(600 + arena * 8 + i) for i in range(n_signatures)]

    base = (HEAP_BASE >> 6) + arena * 64 * ARENA_LINES
    region_cursor = 0
    pcs_out: List[int] = []
    addrs_out: List[int] = []
    writes_out: List[bool] = []
    while len(addrs_out) < n_accesses:
        sig = int(rng.integers(n_signatures))
        region_base = base + region_cursor * region_lines
        region_cursor += 1
        pc = sig_pcs[sig]
        for off in signatures[sig]:
            pcs_out.append(pc)
            addrs_out.append((region_base + int(off)) << 6)
            writes_out.append(bool(rng.random() < write_frac))
            if len(addrs_out) >= n_accesses:
                break

    return Trace(
        name=name,
        pcs=pcs_out[:n_accesses],
        addrs=addrs_out[:n_accesses],
        writes=writes_out[:n_accesses],
        category=category,
        mlp=mlp,
        instr_per_access=instr_per_access,
        metadata={"pattern": "scan_footprint"},
    )
