"""Synthetic workload generators shaped after the paper's benchmarks."""

from repro.workloads.base import Trace, interleave
from repro.workloads import irregular, regular, spec, cloudsuite, mixes

__all__ = [
    "Trace",
    "cloudsuite",
    "interleave",
    "irregular",
    "mixes",
    "regular",
    "spec",
]
