"""Irregular-access trace primitives.

Three generators cover the behaviours that matter to temporal
prefetching:

* :func:`chain_trace` -- pointer-chain traversals with a hot/cold reuse
  skew.  Repeated traversals of a fixed chain are exactly the
  PC-localized address correlation Triage memorizes, and the hot/cold
  skew reproduces the paper's Figure 1 ("only 15% of metadata entries are
  reused more than 15 times").
* :func:`graph_walk_trace` -- random walks over a fixed sparse graph.
  Successors repeat only probabilistically, which caps any temporal
  prefetcher's accuracy below 100% (astar/omnetpp-like).
* :func:`shuffled_reuse_trace` -- a cache-resident working set revisited
  in a *different* order every pass: plenty of reuse for OPTgen to see,
  but no stable pair correlations, so temporal prefetching wastes
  capacity (the bzip2 failure mode of Figure 8).

All addresses are cache-line scattered (lines shuffled within a private
arena) so spatial prefetchers find nothing to latch onto.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.base import HEAP_BASE, Trace, pc_of

#: Each generator carves line arenas out of disjoint gigabyte regions so
#: different traces (e.g. in a multi-programmed mix) never alias.
ARENA_LINES = 1 << 24


def _arena_lines(
    rng: np.random.Generator, n: int, arena: int, spread: int = 4
) -> np.ndarray:
    """``n`` shuffled line addresses inside the given arena.

    ``spread`` controls spatial density: lines are drawn from a window of
    ``n * spread`` lines, so a 2 KB (32-line) region holds about
    ``32 / spread`` of them.  Chains default to 4 (8 lines/region, the
    residue of sequential allocation); graphs use larger spreads to model
    well-scattered nodes.
    """
    base = (HEAP_BASE >> 6) + arena * ARENA_LINES
    offsets = rng.permutation(n * spread)[:n]
    return base + offsets


def chain_trace(
    name: str,
    n_accesses: int,
    seed: int,
    hot_lines: int = 9_000,
    cold_lines: int = 50_000,
    warm_lines: int = 0,
    hot_chains: int = 8,
    cold_chains: int = 40,
    warm_chains: int = 16,
    hot_fraction: float = 0.75,
    warm_fraction: float = 0.0,
    noise: float = 0.01,
    sequential_frac: float = 0.15,
    concurrency: int = 3,
    burst: Tuple[int, int] = (2, 6),
    write_frac: float = 0.1,
    pcs: int = 8,
    mlp: float = 1.3,
    instr_per_access: float = 3.0,
    arena: int = 0,
    category: str = "irregular",
) -> Trace:
    """Pointer-chain workload with a hot/warm/cold reuse skew.

    * **hot** chains (``hot_lines`` total) take ``hot_fraction`` of the
      traversal time -- retraversed many times, the Figure-1 head.
    * **warm** chains take ``warm_fraction`` -- retraversed a few times.
      They are what separates an unbounded metadata store (MISB/ISB
      cover them) from Triage's bounded one (usually evicted).
    * **cold** chains take the rest, swept round-robin about once --
      compulsory misses nobody can prefetch temporally.

    ``sequential_frac`` makes that fraction of chain links point to the
    *next* line (consecutively allocated nodes), the residual spatial
    locality that lets BO/SMS reach their modest irregular coverage.

    ``concurrency`` traversals proceed simultaneously, interleaved in
    bursts of ``burst`` accesses: each PC's stream stays a clean chain
    walk, but the *global* access stream shuffles differently on every
    pass.  This is what separates PC-localized prefetchers
    (ISB/MISB/Triage) from global-stream ones (Markov/STMS/Domino),
    exactly the distinction the paper's related-work section draws.
    """
    rng = np.random.default_rng(seed)
    chains: List[np.ndarray] = []
    tiers: List[str] = []

    def _make_chain(length: int, sub_arena: int) -> np.ndarray:
        lines = _arena_lines(rng, length, sub_arena)
        if sequential_frac > 0:
            seq = rng.random(length) < sequential_frac
            for j in range(1, length):
                if seq[j]:
                    lines[j] = lines[j - 1] + 1
        return lines

    sub_arena = arena * 64
    for tier, total, count in (
        ("hot", hot_lines, hot_chains),
        ("warm", warm_lines, warm_chains),
        ("cold", cold_lines, cold_chains),
    ):
        if total <= 0:
            continue
        for _ in range(count):
            chains.append(_make_chain(max(8, total // count), sub_arena))
            tiers.append(tier)
            sub_arena += 1
    hot_ids = [i for i, t in enumerate(tiers) if t == "hot"]
    warm_ids = [i for i, t in enumerate(tiers) if t == "warm"]
    cold_ids = [i for i, t in enumerate(tiers) if t == "cold"]
    # Each tier draws from its own PC pool: hot structures are walked by
    # hot loops in real programs, which is exactly what lets a PC-indexed
    # predictor (Hawkeye) learn which metadata is worth keeping.
    pools = {"hot": [], "warm": [], "cold": []}
    per_tier = max(1, pcs // 3)
    base_pc = arena * (3 * per_tier)
    for tier_index, tier in enumerate(("hot", "warm", "cold")):
        pools[tier] = [
            pc_of(base_pc + tier_index * per_tier + i) for i in range(per_tier)
        ]
    chain_pc = [
        pools[tiers[i]][(arena * 131 + i) % per_tier] for i in range(len(chains))
    ]

    pcs_out: List[int] = []
    addrs_out: List[int] = []
    writes_out: List[bool] = []
    noise_base = (HEAP_BASE >> 6) + (arena * 64 + 60) * ARENA_LINES
    cold_cursor = 0
    active: List[List[int]] = []  # [chain_id, position]

    def start_traversal() -> List[int]:
        nonlocal cold_cursor
        busy = {t[0] for t in active}
        for _ in range(8):  # avoid two cursors walking the same chain
            draw = rng.random()
            if draw < hot_fraction and hot_ids:
                chain_id = hot_ids[int(rng.integers(len(hot_ids)))]
            elif draw < hot_fraction + warm_fraction and warm_ids:
                chain_id = warm_ids[int(rng.integers(len(warm_ids)))]
            elif cold_ids:
                chain_id = cold_ids[cold_cursor % len(cold_ids)]
                cold_cursor += 1
            else:
                chain_id = int(rng.integers(len(chains)))
            if chain_id not in busy:
                break
        return [chain_id, 0]

    concurrency = max(1, min(concurrency, len(chains)))
    while len(active) < concurrency:
        active.append(start_traversal())
    while len(addrs_out) < n_accesses:
        traversal = active[int(rng.integers(len(active)))]
        chain = chains[traversal[0]]
        pc = chain_pc[traversal[0]]
        for _ in range(int(rng.integers(burst[0], burst[1] + 1))):
            if rng.random() < noise:
                addrs_out.append(int(noise_base + rng.integers(ARENA_LINES)) << 6)
                pcs_out.append(pc_of(999 + arena * 7))
                writes_out.append(False)
            addrs_out.append(int(chain[traversal[1]]) << 6)
            pcs_out.append(pc)
            writes_out.append(bool(rng.random() < write_frac))
            traversal[1] += 1
            if traversal[1] >= len(chain):
                traversal[:] = start_traversal()
                break
            if len(addrs_out) >= n_accesses:
                break

    return Trace(
        name=name,
        pcs=pcs_out[:n_accesses],
        addrs=addrs_out[:n_accesses],
        writes=writes_out[:n_accesses],
        category=category,
        mlp=mlp,
        instr_per_access=instr_per_access,
        metadata={
            "hot_lines": hot_lines,
            "cold_lines": cold_lines,
            "pattern": "chain",
        },
    )


def graph_walk_trace(
    name: str,
    n_accesses: int,
    seed: int,
    n_nodes: int = 40_000,
    out_degree: int = 3,
    primary_prob: float = 0.72,
    walk_len: int = 400,
    noise: float = 0.01,
    spread: int = 32,
    concurrency: int = 3,
    write_frac: float = 0.05,
    pcs: int = 6,
    mlp: float = 1.4,
    instr_per_access: float = 4.0,
    arena: int = 1,
    category: str = "irregular",
) -> Trace:
    """Random walks over a fixed sparse graph (search/tree workloads).

    Each node's *primary* successor is followed with ``primary_prob``;
    otherwise a secondary edge is taken.  Temporal prefetchers learn the
    primary edges quickly but mispredict on the secondaries, bounding
    accuracy near ``primary_prob`` -- the astar/omnetpp regime.
    ``concurrency`` walks interleave (see :func:`chain_trace`).
    """
    rng = np.random.default_rng(seed)
    lines = _arena_lines(rng, n_nodes, arena * 64 + 62, spread=spread)
    # successors[i, k]: node ids of node i's edges; column 0 is primary.
    successors = rng.integers(0, n_nodes, size=(n_nodes, out_degree))
    walk_pcs = [pc_of(200 + arena * pcs + i) for i in range(pcs)]

    pcs_out: List[int] = []
    addrs_out: List[int] = []
    writes_out: List[bool] = []
    # Active walks: [node, pc, steps_left]; each walk sticks to one PC.
    walks: List[List[int]] = []

    def start_walk(slot: int) -> List[int]:
        return [
            int(rng.integers(n_nodes)),
            walk_pcs[slot % len(walk_pcs)],
            walk_len,
        ]

    concurrency = max(1, concurrency)
    walks = [start_walk(i) for i in range(concurrency)]
    while len(addrs_out) < n_accesses:
        slot = int(rng.integers(len(walks)))
        walk = walks[slot]
        for _ in range(int(rng.integers(2, 7))):  # bursty interleave
            node = walk[0]
            addrs_out.append(int(lines[node]) << 6)
            pcs_out.append(walk[1])
            writes_out.append(bool(rng.random() < write_frac))
            if walk[2] <= 1:
                walks[slot] = start_walk(slot)
                break
            if rng.random() < primary_prob:
                walk[0] = int(successors[node, 0])
            else:
                walk[0] = int(successors[node, int(rng.integers(1, out_degree))])
            walk[2] -= 1
            if len(addrs_out) >= n_accesses:
                break

    return Trace(
        name=name,
        pcs=pcs_out[:n_accesses],
        addrs=addrs_out[:n_accesses],
        writes=writes_out[:n_accesses],
        category=category,
        mlp=mlp,
        instr_per_access=instr_per_access,
        metadata={"n_nodes": n_nodes, "pattern": "graph"},
    )


def shuffled_reuse_trace(
    name: str,
    n_accesses: int,
    seed: int,
    n_lines: int = 28_000,
    write_frac: float = 0.15,
    pcs: int = 4,
    mlp: float = 2.0,
    instr_per_access: float = 3.5,
    arena: int = 2,
    category: str = "regular",
) -> Trace:
    """Reuse without repeatable order (the bzip2 failure mode).

    The same ``n_lines`` working set is revisited over and over, but each
    pass is a fresh permutation, so pair correlations are unstable: a
    temporal prefetcher sees plenty of metadata reuse yet its prefetched
    successors sit in the L2 for half a pass before (if ever) being
    demanded, while the lines themselves cache well in the LLC -- exactly
    the case where giving LLC capacity to metadata backfires.
    """
    rng = np.random.default_rng(seed)
    lines = _arena_lines(rng, n_lines, arena * 64 + 63)
    trace_pcs = [pc_of(300 + arena * pcs + i) for i in range(pcs)]

    pcs_out: List[int] = []
    addrs_out: List[int] = []
    writes_out: List[bool] = []
    while len(addrs_out) < n_accesses:
        for i, idx in enumerate(rng.permutation(n_lines)):
            addrs_out.append(int(lines[int(idx)]) << 6)
            pcs_out.append(trace_pcs[i % len(trace_pcs)])
            writes_out.append(bool(rng.random() < write_frac))
            if len(addrs_out) >= n_accesses:
                break

    return Trace(
        name=name,
        pcs=pcs_out[:n_accesses],
        addrs=addrs_out[:n_accesses],
        writes=writes_out[:n_accesses],
        category=category,
        mlp=mlp,
        instr_per_access=instr_per_access,
        metadata={"n_lines": n_lines, "pattern": "shuffled_reuse"},
    )
