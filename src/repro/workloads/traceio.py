"""Trace file I/O: bring your own traces, keep ours.

A compact binary format for :class:`~repro.workloads.base.Trace`
objects, so traces can be generated once and reused (or produced by an
external tool, e.g. a Pin/DynamoRIO client, and simulated here).

Format (little-endian):

    magic   4 bytes   b"RPT1"
    header  JSON (length-prefixed, u32): name, category, mlp,
            instr_per_access, metadata, n
    body    n records of (pc: u64, addr: u64, flags: u8)
            flags bit 0 = is_write

The body is written via ``numpy`` structured arrays, so a 1 M-access
trace saves/loads in milliseconds and costs 17 bytes per record.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.workloads.base import Trace

MAGIC = b"RPT1"

_RECORD_DTYPE = np.dtype(
    [("pc", "<u8"), ("addr", "<u8"), ("flags", "u1")]
)


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Serialize ``trace`` to ``path``."""
    path = Path(path)
    header = {
        "name": trace.name,
        "category": trace.category,
        "mlp": trace.mlp,
        "instr_per_access": trace.instr_per_access,
        "metadata": trace.metadata,
        "n": len(trace),
    }
    header_bytes = json.dumps(header).encode("utf-8")
    records = np.zeros(len(trace), dtype=_RECORD_DTYPE)
    records["pc"] = trace.pcs
    records["addr"] = trace.addrs
    records["flags"] = np.asarray(trace.writes, dtype=np.uint8)
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(struct.pack("<I", len(header_bytes)))
        f.write(header_bytes)
        records.tofile(f)


def load_trace(path: Union[str, Path]) -> Trace:
    """Deserialize a trace written by :func:`save_trace`."""
    path = Path(path)
    with open(path, "rb") as f:
        magic = f.read(4)
        if magic != MAGIC:
            raise ValueError(f"{path}: not a repro trace file (magic {magic!r})")
        (header_len,) = struct.unpack("<I", f.read(4))
        header = json.loads(f.read(header_len).decode("utf-8"))
        records = np.fromfile(f, dtype=_RECORD_DTYPE)
    if len(records) != header["n"]:
        raise ValueError(
            f"{path}: truncated body ({len(records)} of {header['n']} records)"
        )
    return Trace(
        name=header["name"],
        pcs=[int(x) for x in records["pc"]],
        addrs=[int(x) for x in records["addr"]],
        writes=[bool(x & 1) for x in records["flags"]],
        category=header["category"],
        mlp=header["mlp"],
        instr_per_access=header["instr_per_access"],
        metadata=header.get("metadata", {}),
    )
