"""SPEC CPU2006-like named workloads.

Each benchmark name from the paper maps to a seeded synthetic generator
whose access character matches the published behaviour of that benchmark
(pointer chasing for mcf, event-queue walks for omnetpp, sparse algebra
for soplex, streams for libquantum, ...).  The irregular subset is the
paper's Figure 5 suite; the regular subset is Figure 8's.

Use :func:`make_trace` to build any benchmark by name::

    trace = make_trace("mcf", n_accesses=150_000, seed=1)

**Scaling.**  Default sizes target the paper's 2 MB-LLC machine.  Because
a pure-Python simulator cannot afford SimPoint-length traces, experiments
run on a machine scaled down by ``SCALE_DEFAULT`` (all cache sizes / 4)
and pass the same factor here: ``make_trace(..., scale=4)`` divides every
working-set knob by 4, preserving the working-set : LLC and
metadata-demand : store-size ratios that the paper's results depend on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.workloads.base import Trace, interleave
from repro.workloads.irregular import (
    chain_trace,
    graph_walk_trace,
    shuffled_reuse_trace,
)
from repro.workloads.regular import stream_trace, strided_trace

#: The scale factor experiments use (machine sizes and workload sizes
#: are both divided by this, keeping every capacity ratio intact).
SCALE_DEFAULT = 4

#: The paper's irregular SPEC2006 subset (Figure 5 x-axis).
IRREGULAR_SPEC: List[str] = [
    "gcc_166",
    "mcf",
    "soplex_k",
    "omnetpp",
    "astar_lakes",
    "sphinx3",
    "xalancbmk",
]

#: The remaining memory-intensive SPEC2006 benchmarks (Figure 8 x-axis).
REGULAR_SPEC: List[str] = [
    "perlbench",
    "bzip2",
    "gcc",
    "bwaves",
    "gamess",
    "milc",
    "zeusmp",
    "gromacs",
    "cactusADM",
    "leslie3d",
    "namd",
    "gobmk",
    "dealII",
    "soplex_ref",
    "povray",
    "calculix",
    "hmmer",
    "sjeng",
    "GemsFDTD",
    "libquantum",
    "h264ref",
    "tonto",
    "lbm",
    "astar_rivers",
    "wrf",
]

#: Memory-bound benchmarks used to build multi-programmed mixes.
MEMORY_BOUND: List[str] = IRREGULAR_SPEC + [
    "bzip2",
    "bwaves",
    "milc",
    "zeusmp",
    "cactusADM",
    "leslie3d",
    "GemsFDTD",
    "libquantum",
    "lbm",
    "wrf",
]

#: Size-like kwargs that shrink with the scale factor.
_SCALABLE_KEYS = (
    "hot_lines",
    "warm_lines",
    "cold_lines",
    "n_nodes",
    "n_lines",
    "lines_per_stream",
)
#: Floors so tiny scales still produce meaningful structures.
_SCALE_FLOOR = 256


def _scaled(kwargs: Dict[str, object], scale: float) -> Dict[str, object]:
    out = dict(kwargs)
    for key in _SCALABLE_KEYS:
        if key in out:
            out[key] = max(_SCALE_FLOOR, int(out[key] / scale))
    return out


def _mixed(
    name: str,
    n: int,
    seed: int,
    arena: int,
    scale: float,
    irregular_share: float,
    chain_kwargs: Dict[str, object],
    strides=(1, 4, 2),
) -> Trace:
    """Part pointer-chain, part strided -- soplex/sphinx3 style."""
    n_irr = int(n * irregular_share)
    irr = chain_trace(
        name + ":irr", n_irr, seed, arena=arena, **_scaled(chain_kwargs, scale)
    )
    reg = strided_trace(
        name + ":reg", n - n_irr, seed + 1, strides=strides, arena=arena + 32
    )
    mlp = chain_kwargs.get("mlp", 1.5)
    trace = interleave([irr, reg], name=name)
    trace.category = "irregular"
    trace.mlp = float(mlp) + 0.6  # strided half raises achievable MLP
    return trace


# Builders take (n_accesses, seed, arena, scale).
TraceBuilder = Callable[[int, int, int, float], Trace]


def _chain(name: str, category: str = "irregular", **kwargs) -> TraceBuilder:
    def build(n: int, s: int, a: int, scale: float) -> Trace:
        return chain_trace(
            name, n, s, arena=a, category=category, **_scaled(kwargs, scale)
        )

    return build


def _graph(name: str, category: str = "irregular", **kwargs) -> TraceBuilder:
    def build(n: int, s: int, a: int, scale: float) -> Trace:
        return graph_walk_trace(
            name, n, s, arena=a, category=category, **_scaled(kwargs, scale)
        )

    return build


def _shuffled(name: str, **kwargs) -> TraceBuilder:
    def build(n: int, s: int, a: int, scale: float) -> Trace:
        return shuffled_reuse_trace(name, n, s, arena=a, **_scaled(kwargs, scale))

    return build


def _stream(name: str, **kwargs) -> TraceBuilder:
    def build(n: int, s: int, a: int, scale: float) -> Trace:
        return stream_trace(name, n, s, arena=a, **_scaled(kwargs, scale))

    return build


def _strided(name: str, **kwargs) -> TraceBuilder:
    def build(n: int, s: int, a: int, scale: float) -> Trace:
        return strided_trace(name, n, s, arena=a, **_scaled(kwargs, scale))

    return build


_REGISTRY: Dict[str, TraceBuilder] = {
    # -- irregular subset: repeatedly traversed pointer structures whose
    # hot sets exceed the LLC, so temporal prefetching has misses to
    # cover.  Warm tiers push metadata demand past Triage's store on
    # some benchmarks, which is what lets off-chip MISB pull ahead of
    # Triage on single-core runs (Figure 11).
    "gcc_166": _chain(
        "gcc_166", hot_lines=40_000, warm_lines=240_000, cold_lines=120_000,
        noise=0.02, hot_fraction=0.25, warm_fraction=0.63, mlp=1.6,
    ),
    "mcf": _chain(
        "mcf", hot_lines=40_000, warm_lines=240_000, cold_lines=80_000,
        hot_fraction=0.28, warm_fraction=0.62, mlp=1.2,
    ),
    "soplex_k": lambda n, s, a, sc: _mixed(
        "soplex_k", n, s, a, sc, irregular_share=0.65,
        chain_kwargs=dict(hot_lines=32_000, warm_lines=40_000,
                          cold_lines=100_000, hot_fraction=0.6,
                          warm_fraction=0.15, mlp=1.6),
    ),
    "omnetpp": _graph(
        "omnetpp", n_nodes=96_000, primary_prob=0.82, walk_len=300, mlp=1.3,
    ),
    "astar_lakes": _graph(
        "astar_lakes", n_nodes=110_000, primary_prob=0.72, walk_len=250, mlp=1.4,
    ),
    "sphinx3": lambda n, s, a, sc: _mixed(
        "sphinx3", n, s, a, sc, irregular_share=0.55,
        chain_kwargs=dict(hot_lines=26_000, warm_lines=50_000,
                          cold_lines=80_000, hot_fraction=0.58,
                          warm_fraction=0.18, mlp=1.5),
        strides=(1, 2, 1),
    ),
    "xalancbmk": _chain(
        "xalancbmk", hot_lines=48_000, warm_lines=260_000, cold_lines=60_000,
        hot_fraction=0.28, warm_fraction=0.62, hot_chains=12, cold_chains=48,
        mlp=1.3,
    ),
    # -- regular / remaining memory-intensive subset -------------------------
    "perlbench": _shuffled("perlbench", n_lines=24_000, mlp=2.5),
    "bzip2": _shuffled("bzip2", n_lines=48_000, mlp=2.2),
    "gcc": _chain(
        "gcc", category="regular", hot_lines=12_000, cold_lines=32_000,
        noise=0.02, hot_fraction=0.8, mlp=2.0,
    ),
    "bwaves": _strided("bwaves", strides=(1, 2, 1, 3), mlp=6.0),
    "gamess": _shuffled("gamess", n_lines=12_000, mlp=3.0),
    "milc": _stream("milc", n_streams=3, mlp=5.0),
    "zeusmp": _strided("zeusmp", strides=(2, 2, 4), mlp=5.0),
    "gromacs": _shuffled("gromacs", n_lines=20_000, mlp=3.0),
    "cactusADM": _strided("cactusADM", strides=(1, 8, 1), mlp=4.5),
    "leslie3d": _strided("leslie3d", strides=(1, 2, 3, 1), mlp=5.5),
    "namd": _shuffled("namd", n_lines=16_000, mlp=3.5),
    "gobmk": _shuffled("gobmk", n_lines=12_000, mlp=2.5),
    "dealII": _shuffled("dealII", n_lines=56_000, mlp=2.5),
    "soplex_ref": _strided("soplex_ref", strides=(1, 3, 1), mlp=4.0),
    "povray": _shuffled("povray", n_lines=10_000, mlp=3.0),
    "calculix": _shuffled("calculix", n_lines=20_000, mlp=3.0),
    "hmmer": _stream("hmmer", n_streams=2, lines_per_stream=16_384, mlp=4.0),
    "sjeng": _shuffled("sjeng", n_lines=48_000, mlp=2.5),
    "GemsFDTD": _strided("GemsFDTD", strides=(1, 1, 2, 4), mlp=6.0),
    "libquantum": _stream("libquantum", n_streams=1, mlp=8.0),
    "h264ref": _shuffled("h264ref", n_lines=24_000, mlp=3.0),
    "tonto": _shuffled("tonto", n_lines=16_000, mlp=3.0),
    "lbm": _stream("lbm", n_streams=2, mlp=7.0),
    "astar_rivers": _graph(
        "astar_rivers", category="regular", n_nodes=40_000, primary_prob=0.85,
        walk_len=200, mlp=2.0,
    ),
    "wrf": _strided("wrf", strides=(1, 2, 1, 1), mlp=5.0),
}

#: Stable arena id per benchmark (disjoint address spaces in mixes).
_ARENAS: Dict[str, int] = {name: 100 + i * 3 for i, name in enumerate(_REGISTRY)}


def benchmark_names() -> List[str]:
    """All registered SPEC-like benchmark names."""
    return list(_REGISTRY)


def make_trace(
    name: str,
    n_accesses: int = 100_000,
    seed: int = 1,
    arena: Optional[int] = None,
    scale: float = 1.0,
) -> Trace:
    """Build the named SPEC-like benchmark trace.

    ``arena`` overrides the benchmark's default address arena (multi-core
    mixes use this to keep address spaces disjoint); ``scale`` divides
    every working-set size, matching a machine scaled down by the same
    factor.
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; see benchmark_names()") from None
    if arena is None:
        arena = _ARENAS[name]
    trace = builder(n_accesses, seed, arena, scale)
    # Provenance for run manifests (repro.obs.manifest).
    trace.metadata.setdefault("seed", seed)
    trace.metadata.setdefault("scale", scale)
    return trace
