"""Multi-programmed SPEC mixes (paper Section 4.1).

The paper simulates 80 mixes per core count, each core running a
benchmark "chosen uniformly randomly from all memory-bound benchmarks";
30 of the 80 are irregular-only mixes.  :func:`make_mix` reproduces that
sampling, seeded, and hands each core a disjoint address arena so two
copies of the same benchmark never share data.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.workloads.base import Trace
from repro.workloads.spec import IRREGULAR_SPEC, MEMORY_BOUND, make_trace


def mix_names(
    n_cores: int, seed: int, irregular_only: bool = False
) -> List[str]:
    """The benchmark names for one mix (deterministic in ``seed``)."""
    pool = IRREGULAR_SPEC if irregular_only else MEMORY_BOUND
    rng = random.Random(seed)
    return [pool[rng.randrange(len(pool))] for _ in range(n_cores)]


def make_mix(
    n_cores: int,
    seed: int,
    n_accesses_per_core: int = 60_000,
    irregular_only: bool = False,
    names: Optional[List[str]] = None,
    scale: float = 1.0,
) -> List[Trace]:
    """Build one multi-programmed mix: one trace per core.

    Each core gets its own arena (offset by the core index) so identical
    benchmarks on different cores touch disjoint memory, as separate
    processes would.  ``scale`` shrinks working sets to match a scaled
    machine (see :data:`repro.workloads.spec.SCALE_DEFAULT`).
    """
    if names is None:
        names = mix_names(n_cores, seed, irregular_only)
    if len(names) != n_cores:
        raise ValueError("names must have one benchmark per core")
    traces = []
    for core, name in enumerate(names):
        traces.append(
            make_trace(
                name,
                n_accesses=n_accesses_per_core,
                seed=seed * 97 + core,
                arena=1000 + core * 40 + (seed % 7),
                scale=scale,
            )
        )
    return traces
