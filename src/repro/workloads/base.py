"""Trace container and helpers shared by every workload generator.

A :class:`Trace` is the unit of simulation: a finite stream of
``(pc, byte_address, is_write)`` records plus the workload-level hints the
analytic timing model needs (memory-level parallelism and instructions
per memory access).  Generators produce traces deterministically from a
seed, so every experiment in this repository is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

#: Synthetic PCs are spaced like real instruction addresses.
PC_BASE = 0x400000
PC_STRIDE = 0x10

#: Heap addresses start here; generators carve disjoint arenas out of it.
HEAP_BASE = 0x10000000


@dataclass
class Trace:
    """A finite memory-access trace with timing hints.

    ``mlp`` is the average number of overlapping long-latency misses the
    (out-of-order) core can sustain for this workload: near 1 for
    pointer-chasing code whose next address depends on the previous load,
    higher for array codes.  ``instr_per_access`` converts the access
    count into an instruction count for IPC/speedup reporting.
    """

    name: str
    pcs: List[int]
    addrs: List[int]
    writes: List[bool]
    category: str = "irregular"  # 'irregular' | 'regular' | 'server'
    mlp: float = 1.5
    instr_per_access: float = 3.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (len(self.pcs) == len(self.addrs) == len(self.writes)):
            raise ValueError("pcs, addrs and writes must have equal length")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1")

    def __len__(self) -> int:
        return len(self.addrs)

    def __iter__(self) -> Iterator[Tuple[int, int, bool]]:
        return zip(self.pcs, self.addrs, self.writes)

    def records(self) -> Iterator[Tuple[int, int, bool]]:
        """Iterate ``(pc, addr, is_write)`` records."""
        return iter(self)

    @property
    def instructions(self) -> float:
        """Estimated instruction count represented by this trace."""
        return len(self) * self.instr_per_access

    def head(self, n: int) -> "Trace":
        """A copy truncated to the first ``n`` accesses."""
        return Trace(
            name=self.name,
            pcs=self.pcs[:n],
            addrs=self.addrs[:n],
            writes=self.writes[:n],
            category=self.category,
            mlp=self.mlp,
            instr_per_access=self.instr_per_access,
            metadata=dict(self.metadata),
        )


def pc_of(index: int) -> int:
    """The synthetic PC for load-site ``index``."""
    return PC_BASE + index * PC_STRIDE


def interleave(traces: List[Trace], name: str = "interleaved") -> Trace:
    """Round-robin merge of several traces into one (single-core phases).

    The result inherits the length-weighted average of the timing hints
    and the most common category.
    """
    if not traces:
        raise ValueError("need at least one trace")
    pcs: List[int] = []
    addrs: List[int] = []
    writes: List[bool] = []
    iters = [iter(t) for t in traces]
    live = list(range(len(traces)))
    while live:
        still_live = []
        for i in live:
            try:
                pc, addr, w = next(iters[i])
            except StopIteration:
                continue
            pcs.append(pc)
            addrs.append(addr)
            writes.append(w)
            still_live.append(i)
        live = still_live
    total = sum(len(t) for t in traces)
    mlp = sum(t.mlp * len(t) for t in traces) / total
    ipa = sum(t.instr_per_access * len(t) for t in traces) / total
    weight: Dict[str, int] = {}
    for t in traces:
        weight[t.category] = weight.get(t.category, 0) + len(t)
    category = max(weight, key=lambda c: weight[c])
    return Trace(
        name=name,
        pcs=pcs,
        addrs=addrs,
        writes=writes,
        category=category,
        mlp=mlp,
        instr_per_access=ipa,
    )
