"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``python -m repro list``                 -- list experiments
* ``python -m repro run fig05 [--quick]``  -- regenerate one figure
* ``python -m repro run all  [--quick]``   -- regenerate everything
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures from 'Temporal Prefetching Without "
        "the Off-Chip Metadata' (MICRO 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment name, e.g. fig05")
    run_parser.add_argument(
        "--quick", action="store_true",
        help="reduced benchmark subsets and trace lengths",
    )
    args = parser.parse_args(argv)

    from repro.experiments.registry import EXPERIMENTS, get

    if args.command == "list":
        for name, module in EXPERIMENTS.items():
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<14} {summary}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        module = get(name)
        start = time.time()
        table = module.run(quick=args.quick)
        print(table)
        print(f"[{name} took {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
