"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``python -m repro list``                 -- list experiments
* ``python -m repro run fig05 [--quick]``  -- regenerate one figure
* ``python -m repro run all  [--quick]``   -- regenerate everything
* ``python -m repro run fig15 --obs [--obs-out DIR]``
                                           -- regenerate with observability
                                              (epoch time-series, trace
                                              events, manifests under DIR)
* ``python -m repro run fig05 --jobs 8 --cache-dir results/cache``
                                           -- fan simulation cells over 8
                                              worker processes and keep a
                                              persistent result/trace cache
* ``python -m repro run fig05 --jobs 8 --cache-dir results/cache \\
      --retries 3 --cell-timeout 120 --resume``
                                           -- resilient run: retry failed
                                              cells, bound each cell's wall
                                              clock, and resume an
                                              interrupted grid from its
                                              checkpoint journal
* ``python -m repro report DIR``           -- render a flushed obs directory
* ``python -m repro report html DIR``      -- self-contained HTML report
                                              (figures, KPIs, energy,
                                              resilience + cache economics)
                                              with a report-manifest JSON
* ``python -m repro dashboard``            -- cross-run KPI/perf dashboard
                                              over BENCH_*.json trajectories
                                              with regression highlighting
* ``python -m repro profile fig05``        -- run with wall-time attribution
* ``python -m repro cache stats|clear``    -- inspect / empty the on-disk
                                              result cache
* ``python -m repro serve``                -- start the in-process prefetch
                                              service, run a self-check
                                              stream through it and print
                                              the health/readiness surfaces
* ``python -m repro loadtest --shape spike``
                                           -- drive the service with a
                                              deterministic shaped load on
                                              the virtual-time loop; prints
                                              p50/p95/throughput/shed KPIs,
                                              SLO burn-rate verdicts and
                                              stamps a run manifest
                                              (``--obs-out DIR`` also writes
                                              spans.jsonl + metrics.prom)
* ``python -m repro metrics``              -- Prometheus text exposition of
                                              a deterministic quick loadtest
                                              (``--check`` lints the output
                                              with the exposition parser)
* ``python -m repro bench fig05 --quick --repeats 2``
                                           -- timed run: KPIs + wall time +
                                              throughput + fingerprint,
                                              appended to BENCH_fig05.json
* ``python -m repro compare BENCH_fig05.json``
                                           -- diff the last two trajectory
                                              records (or two files); exits
                                              non-zero past --kpi-tol /
                                              --time-tol
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.config import ENGINES

#: ``cache`` subcommand fallback when neither --cache-dir nor
#: ``REPRO_CACHE_DIR`` names a directory.
DEFAULT_CACHE_DIR = "results/cache"


def _module_summary(module) -> str:
    """First docstring line, tolerating empty/missing docstrings."""
    lines = (module.__doc__ or "").strip().splitlines()
    return lines[0] if lines else ""


def _resolve_experiments(name: str):
    """Experiment modules for ``name`` ('all' fans out), or None + message."""
    from repro.experiments.registry import EXPERIMENTS

    if name == "all":
        return list(EXPERIMENTS.items())
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        print(
            f"error: unknown experiment {name!r}; choose from: {known}",
            file=sys.stderr,
        )
        return None
    return [(name, EXPERIMENTS[name])]


def _run_experiments(names_and_modules, quick: bool) -> None:
    for name, module in names_and_modules:
        start = time.time()
        table = module.run(quick=quick)
        print(table)
        print(f"[{name} took {time.time() - start:.1f}s]\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures from 'Temporal Prefetching Without "
        "the Off-Chip Metadata' (MICRO 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment name, e.g. fig05")
    run_parser.add_argument(
        "--quick", action="store_true",
        help="reduced benchmark subsets and trace lengths",
    )
    run_parser.add_argument(
        "--obs", action="store_true",
        help="enable observability (epoch time-series, trace events, "
        "manifests); writes to --obs-out",
    )
    run_parser.add_argument(
        "--obs-out", metavar="DIR", default=None,
        help="output directory for observability artifacts "
        "(default: results/obs/<experiment>; implies --obs)",
    )
    run_parser.add_argument(
        "--jobs", type=int, metavar="N", default=None,
        help="fan simulation cells over N worker processes "
        "(default: serial; also settable via REPRO_JOBS)",
    )
    run_parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persistent result/trace cache directory "
        "(default: off; also settable via REPRO_CACHE_DIR)",
    )
    run_parser.add_argument(
        "--retries", type=int, metavar="N", default=None,
        help="re-run a failed/timed-out simulation cell up to N times "
        "with backoff (default: 2; also settable via REPRO_RETRIES)",
    )
    run_parser.add_argument(
        "--cell-timeout", type=float, metavar="SECONDS", default=None,
        help="per-cell wall-clock budget for parallel runs; a cell over "
        "budget is abandoned and retried (default: none; also settable "
        "via REPRO_CELL_TIMEOUT)",
    )
    run_parser.add_argument(
        "--resume", action="store_true",
        help="skip cells already checkpointed by an interrupted run "
        "(needs --cache-dir/REPRO_CACHE_DIR; also REPRO_RESUME=1)",
    )
    run_parser.add_argument(
        "--report", action="store_true",
        help="write a self-contained HTML report next to the observability "
        "artifacts after the run (implies --obs; also REPRO_REPORT=1)",
    )
    run_parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="simulation engine for single-core runs (default: analytic; "
        "also settable via REPRO_ENGINE)",
    )

    report_parser = sub.add_parser(
        "report",
        help="render a flushed observability directory (tables, or "
        "'report html DIR' for a self-contained HTML report)",
    )
    report_parser.add_argument(
        "path",
        help="run directory written by --obs-out (or an epochs.jsonl); "
        "pass 'html' first for the HTML report: report html DIR",
    )
    report_parser.add_argument(
        "html_root", nargs="?", default=None, metavar="DIR",
        help="results root for HTML mode (only with 'report html')",
    )
    report_parser.add_argument(
        "--out", metavar="DIR", default=None,
        help="HTML mode: output directory (default: <DIR>/report)",
    )
    report_parser.add_argument(
        "--open", action="store_true", dest="open_browser",
        help="HTML mode: open the generated report in a browser",
    )
    report_parser.add_argument(
        "--columns", nargs="*", default=None,
        help="epoch columns to show (default: way split, hit rates, "
        "utilization, coverage)",
    )
    report_parser.add_argument(
        "--events-tail", type=int, metavar="N", default=8,
        help="echo the newest N trace events verbatim (0 disables; default 8)",
    )
    report_parser.add_argument(
        "--json", action="store_true",
        help="dump the loaded run directory as JSON instead of tables",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="start the prefetch service, self-check it and print the "
        "health/readiness surfaces",
    )
    serve_parser.add_argument(
        "--workers", type=int, metavar="N", default=4,
        help="backend workers / circuit breakers (default: 4)",
    )
    serve_parser.add_argument(
        "--watermark", type=int, metavar="N", default=64,
        help="request-queue admission watermark (default: 64)",
    )
    serve_parser.add_argument(
        "--requests", type=int, metavar="N", default=64,
        help="self-check requests to stream through (default: 64)",
    )
    serve_parser.add_argument(
        "--json", action="store_true",
        help="print the surfaces as JSON only",
    )

    loadtest_parser = sub.add_parser(
        "loadtest",
        help="deterministic shaped loadtest of the prefetch service "
        "(virtual time); prints serving KPIs and stamps a run manifest",
    )
    loadtest_parser.add_argument(
        "--shape", default="ramp", metavar="NAME",
        help="load shape: ramp, spike or diurnal (default: ramp)",
    )
    loadtest_parser.add_argument(
        "--duration", type=float, metavar="S", default=60.0,
        help="virtual seconds of load (default: 60)",
    )
    loadtest_parser.add_argument(
        "--rps", type=float, metavar="N", default=150.0,
        help="aggregate arrival rate at shape multiplier 1.0 (default: 150)",
    )
    loadtest_parser.add_argument(
        "--tenants", type=int, metavar="N", default=16,
        help="concurrent tenant streams (default: 16)",
    )
    loadtest_parser.add_argument(
        "--deadline", type=float, metavar="S", default=0.5,
        help="per-request deadline in virtual seconds (default: 0.5)",
    )
    loadtest_parser.add_argument(
        "--seed", type=int, default=1234,
        help="scenario seed: traces + tenant assignment (default: 1234)",
    )
    loadtest_parser.add_argument(
        "--workers", type=int, metavar="N", default=4,
        help="backend workers / circuit breakers (default: 4)",
    )
    loadtest_parser.add_argument(
        "--watermark", type=int, metavar="N", default=32,
        help="request-queue admission watermark (default: 32)",
    )
    loadtest_parser.add_argument(
        "--quick", action="store_true",
        help="short scenario: 20 virtual seconds, 8 tenants, short traces",
    )
    loadtest_parser.add_argument(
        "--json", action="store_true",
        help="print the full report as JSON instead of a summary",
    )
    loadtest_parser.add_argument(
        "--obs-out", metavar="DIR", default=None,
        help="flush observability artifacts (spans.jsonl, metrics.prom, "
        "manifests with SLO verdicts) to DIR after the run",
    )
    loadtest_parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="seeded fault plan for the run, e.g. "
        "'serve_worker_crash:0.2,serve_slow_reply:0.1' "
        "(also settable via REPRO_FAULTS)",
    )
    loadtest_parser.add_argument(
        "--faults-seed", type=int, metavar="N", default=42,
        help="fault plan seed (default: 42)",
    )

    metrics_parser = sub.add_parser(
        "metrics",
        help="Prometheus text exposition of the serving metrics surface "
        "(runs a deterministic quick loadtest and prints its scrape)",
    )
    metrics_parser.add_argument(
        "--shape", default="ramp", metavar="NAME",
        help="load shape driving the scrape (default: ramp)",
    )
    metrics_parser.add_argument(
        "--duration", type=float, metavar="S", default=5.0,
        help="virtual seconds of load before scraping (default: 5)",
    )
    metrics_parser.add_argument(
        "--seed", type=int, default=1234,
        help="scenario seed (default: 1234)",
    )
    metrics_parser.add_argument(
        "--check", action="store_true",
        help="validate the output with the exposition parser instead of "
        "trusting it (exit 2 on malformed output)",
    )

    bench_parser = sub.add_parser(
        "bench", help="timed experiment run appended to its BENCH trajectory"
    )
    bench_parser.add_argument("experiment", help="experiment name, e.g. fig05")
    bench_parser.add_argument(
        "--repeats", type=int, metavar="N", default=3,
        help="timed repeats after warmup (default: 3)",
    )
    bench_parser.add_argument(
        "--warmup", type=int, metavar="N", default=1,
        help="untimed warmup runs before measuring (default: 1)",
    )
    bench_parser.add_argument("--quick", action="store_true")
    bench_parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="trajectory file to append to (default: BENCH_<experiment>.json "
        "in the current directory)",
    )
    bench_parser.add_argument(
        "--no-append", action="store_true",
        help="measure and print without touching the trajectory file",
    )
    bench_parser.add_argument(
        "--json", action="store_true",
        help="print the new record as JSON instead of a summary",
    )
    bench_parser.add_argument(
        "--trace-overhead", action="store_true",
        help="also measure span-recording overhead (tracing on vs off "
        "under the same obs session) and stamp it into the record",
    )
    bench_parser.add_argument(
        "--overhead-tol", type=float, metavar="PCT", default=2.0,
        help="fail (exit 1) when --trace-overhead exceeds this percent "
        "(default: 2.0)",
    )
    bench_parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="simulation engine to benchmark under (default: analytic; "
        "also settable via REPRO_ENGINE; stamped into the record)",
    )

    compare_parser = sub.add_parser(
        "compare", help="diff two bench records; non-zero exit on regression"
    )
    compare_parser.add_argument(
        "baseline",
        help="BENCH_*.json trajectory; with no candidate file, its last two "
        "records are compared (committed baseline vs fresh bench)",
    )
    compare_parser.add_argument(
        "candidate", nargs="?", default=None,
        help="candidate trajectory (its last record is compared against "
        "the baseline's last record)",
    )
    compare_parser.add_argument(
        "--kpi-tol", type=float, metavar="FRAC", default=0.05,
        help="relative KPI tolerance, either direction (default: 0.05)",
    )
    compare_parser.add_argument(
        "--time-tol", type=float, metavar="FRAC", default=0.5,
        help="relative wall-time slowdown tolerance (default: 0.5)",
    )
    compare_parser.add_argument(
        "--json", action="store_true",
        help="print the comparison as JSON instead of a table",
    )

    dashboard_parser = sub.add_parser(
        "dashboard",
        help="render BENCH_*.json trajectories as one HTML dashboard with "
        "regression highlighting",
    )
    dashboard_parser.add_argument(
        "root", nargs="?", default=".",
        help="directory searched recursively for BENCH_*.json (or one "
        "trajectory file; default: current directory)",
    )
    dashboard_parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="HTML file to write (default: dashboard.html under the root)",
    )
    dashboard_parser.add_argument(
        "--kpi-tol", type=float, metavar="FRAC", default=0.05,
        help="relative KPI tolerance for newest-vs-previous (default: 0.05)",
    )
    dashboard_parser.add_argument(
        "--time-tol", type=float, metavar="FRAC", default=0.5,
        help="relative wall-time slowdown tolerance (default: 0.5)",
    )
    dashboard_parser.add_argument(
        "--json", action="store_true",
        help="print the dashboard analysis as JSON as well",
    )

    profile_parser = sub.add_parser(
        "profile", help="run one experiment with wall-time phase attribution"
    )
    profile_parser.add_argument("experiment", help="experiment name, e.g. fig05")
    profile_parser.add_argument("--quick", action="store_true")

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    for cache_command, cache_help in (
        ("stats", "entry counts and sizes of a cache directory"),
        ("clear", "remove every entry (all key-schema versions)"),
    ):
        cache_cmd_parser = cache_sub.add_parser(cache_command, help=cache_help)
        cache_cmd_parser.add_argument(
            "--cache-dir", metavar="PATH", default=None,
            help=f"cache directory (default: $REPRO_CACHE_DIR or "
            f"{DEFAULT_CACHE_DIR})",
        )

    args = parser.parse_args(argv)

    if getattr(args, "engine", None):
        # The engine choice travels via the environment so the figure
        # harnesses (and their worker processes) resolve it uniformly.
        os.environ["REPRO_ENGINE"] = args.engine

    if args.command == "cache":
        return _cache_command(args)

    if args.command == "list":
        from repro.experiments.registry import EXPERIMENTS

        for name, module in EXPERIMENTS.items():
            print(f"{name:<14} {_module_summary(module)}")
        return 0

    if args.command == "report":
        if args.path == "html":
            return _report_html_command(args)
        if args.html_root is not None:
            print(
                "error: a second path is only valid in HTML mode: "
                "python -m repro report html DIR",
                file=sys.stderr,
            )
            return 2
        import json

        from repro.obs.report import load_run_dir, render_report

        try:
            if args.json:
                print(json.dumps(load_run_dir(Path(args.path)), sort_keys=True))
            else:
                print(
                    render_report(
                        Path(args.path),
                        columns=args.columns,
                        events_tail=args.events_tail,
                    )
                )
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "dashboard":
        return _dashboard_command(args)

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "loadtest":
        return _loadtest_command(args)

    if args.command == "metrics":
        return _metrics_command(args)

    if args.command == "bench":
        return _bench_command(args)

    if args.command == "compare":
        return _compare_command(args)

    # "run" and "profile" both execute experiments.
    selected = _resolve_experiments(args.experiment)
    if selected is None:
        return 2

    if getattr(args, "jobs", None):
        # The harnesses (and their worker processes) read REPRO_JOBS.
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))
    if getattr(args, "cache_dir", None):
        from repro import cache

        cache.configure(args.cache_dir)
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    # Resilience knobs travel via the environment so the figure
    # harnesses (and their worker processes) pick them up uniformly.
    if getattr(args, "retries", None) is not None:
        os.environ["REPRO_RETRIES"] = str(max(0, args.retries))
    if getattr(args, "cell_timeout", None) is not None:
        os.environ["REPRO_CELL_TIMEOUT"] = str(args.cell_timeout)
    if getattr(args, "resume", False):
        os.environ["REPRO_RESUME"] = "1"

    from repro import obs

    if args.command == "profile":
        session = obs.enable(profile=True)
        try:
            _run_experiments(selected, args.quick)
        finally:
            obs.disable()
        print(session.profiler.table())
        return 0

    want_report = args.report or os.environ.get("REPRO_REPORT", "") not in ("", "0")
    session = None
    if args.obs or args.obs_out or want_report:
        out_dir = Path(args.obs_out) if args.obs_out else (
            Path("results") / "obs" / args.experiment
        )
        session = obs.enable(out_dir=out_dir)
    try:
        _run_experiments(selected, args.quick)
    except KeyboardInterrupt:
        # Graceful shutdown: completed cells are already journaled and
        # cached (and the sweep layer flushed obs); tell the user how to
        # pick the grid back up, then exit with the conventional code.
        print(
            "interrupted: completed cells are checkpointed; "
            "re-run with --resume to continue",
            file=sys.stderr,
        )
        return 130
    finally:
        if session is not None:
            paths = session.flush()
            obs.disable()
            print(
                "observability artifacts: "
                + ", ".join(str(p) for p in sorted(paths.values()))
            )
            print(f"render with: python -m repro report {session.out_dir}")
            if want_report:
                from repro.obs.reporting import ReportError, generate_report

                try:
                    written = generate_report(session.out_dir)
                    print(f"HTML report: {written['html']}")
                except (ReportError, FileNotFoundError) as exc:
                    print(f"warning: report generation failed: {exc}",
                          file=sys.stderr)
    return 0


def _report_html_command(args) -> int:
    """``python -m repro report html DIR``: one self-contained HTML file."""
    from repro.obs.reporting import ReportError, generate_report

    if args.html_root is None:
        print(
            "error: HTML mode needs a results root: "
            "python -m repro report html DIR",
            file=sys.stderr,
        )
        return 2
    try:
        paths = generate_report(args.html_root, out_dir=args.out)
    except (ReportError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"HTML report:     {paths['html']}")
    print(f"report manifest: {paths['manifest']}")
    if args.open_browser:
        import webbrowser

        try:  # decoration only: a headless host without a browser is fine
            webbrowser.open(paths["html"].resolve().as_uri())
        except Exception as exc:
            print(f"warning: could not open a browser: {exc}", file=sys.stderr)
    return 0


def _dashboard_command(args) -> int:
    """``python -m repro dashboard``: 0 ok, 1 regression, 2 nothing found."""
    import json

    from repro.obs.reporting import generate_dashboard

    try:
        data = generate_dashboard(
            args.root,
            out=args.out,
            kpi_tol=args.kpi_tol,
            time_tol=args.time_tol,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(data, indent=1, sort_keys=True))
    for entry in data["experiments"]:
        status = "ok" if entry["ok"] else (
            "REGRESSED: " + ", ".join(entry["regressed_kpis"])
            if entry["regressed_kpis"]
            else "REGRESSED"
        )
        print(f"{entry['experiment']:<14} {entry['records']:>3} record(s)  {status}")
    print(f"dashboard: {data['html']}")
    return 0 if data["ok"] else 1


def _serve_command(args) -> int:
    """``python -m repro serve``: self-check + health/readiness surfaces."""
    import json

    from repro.serve import PrefetchService, ServiceConfig, run_virtual
    from repro.workloads import irregular

    config = ServiceConfig(
        n_workers=max(1, args.workers),
        queue_watermark=max(1, args.watermark),
    )
    trace = irregular.chain_trace(
        "serve-check", max(1, args.requests) * 8, seed=1,
        hot_lines=2_000, cold_lines=8_000, hot_chains=4, cold_chains=8,
        pcs=4,
    )
    stream = [(pc, addr >> 6) for pc, addr, _ in trace]

    async def check():
        service = PrefetchService(config=config)
        ready_before = service.ready()
        await service.start()
        served = 0
        for i in range(max(1, args.requests)):
            batch = stream[i * 8:(i + 1) * 8]
            response = await service.submit(f"check-{i % 4}", batch)
            served += len(response.prefetch_lines)
        surfaces = {
            "ready_before_start": ready_before,
            "ready": service.ready(),
            "health": service.health(),
            "self_check": {
                "requests": max(1, args.requests),
                "prefetch_lines": served,
            },
        }
        await service.stop()
        surfaces["ready_after_stop"] = service.ready()
        return surfaces

    surfaces = run_virtual(check())
    if args.json:
        print(json.dumps(surfaces, indent=1, sort_keys=True, default=str))
        return 0
    health = surfaces["health"]
    print("== repro serve: self-check ==")
    print(
        f"status {health['status']}  tier {health['tier']}  "
        f"queue {health['queue_depth']}/{health['queue_watermark']}  "
        f"p95 {health['p95_s'] * 1e3:.2f}ms"
    )
    print(
        f"ready: {surfaces['ready']['ready']}  "
        f"(before start: {surfaces['ready_before_start']['ready']}, "
        f"after stop: {surfaces['ready_after_stop']['ready']})"
    )
    print(
        f"self-check: {surfaces['self_check']['requests']} requests, "
        f"{surfaces['self_check']['prefetch_lines']} prefetch lines, "
        f"{health['counters']['served']} served / "
        f"{health['counters']['submitted']} submitted"
    )
    for breaker in health["breakers"]:
        print(
            f"  {breaker['worker']:<10} {breaker['state']:<9} "
            f"trips {breaker['trips']}"
        )
    return 0 if health["counters"]["served"] else 1


def _loadtest_command(args) -> int:
    """``python -m repro loadtest``: shaped scenario -> KPIs + manifest."""
    import json

    from repro import faults, obs
    from repro.obs.manifest import build_manifest
    from repro.serve import LoadgenConfig, ServiceConfig, run_loadtest

    try:
        loadgen = LoadgenConfig(
            shape=args.shape,
            duration_s=20.0 if args.quick else args.duration,
            base_rps=args.rps,
            n_tenants=8 if args.quick else args.tenants,
            deadline_s=args.deadline,
            seed=args.seed,
            trace_accesses=1024 if args.quick else 4096,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service_config = ServiceConfig(
        n_workers=max(1, args.workers),
        queue_watermark=max(1, args.watermark),
    )
    session = None
    if args.obs_out:
        session = obs.enable(out_dir=args.obs_out)
    saved_plan = faults._PLAN
    try:
        if args.faults:
            try:
                faults.configure(args.faults, seed=args.faults_seed)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        start = time.time()
        report = run_loadtest(loadgen, service_config)
        wall = time.time() - start
    finally:
        faults._PLAN = saved_plan
    kpis = report.kpis()
    manifest = build_manifest(
        kind="serve",
        workloads=[f"loadgen:{loadgen.shape}"],
        prefetcher="serve-ladder",
        config={
            "shape": loadgen.shape,
            "duration_s": loadgen.duration_s,
            "base_rps": loadgen.base_rps,
            "n_tenants": loadgen.n_tenants,
            "deadline_s": loadgen.deadline_s,
            "seed": loadgen.seed,
            "n_workers": service_config.n_workers,
            "queue_watermark": service_config.queue_watermark,
        },
        seeds=[loadgen.seed],
        trace_length=report.requests * loadgen.batch_size,
        warmup=0,
        instructions=0.0,
        cycles=0.0,
        wall_time_s=wall,
        extra={"kpis": kpis, "serving": report.summary(), "slo": report.slo},
    )
    if session is not None:
        session.manifests.append(manifest)
        paths = session.flush()
        prom_path = Path(args.obs_out) / "metrics.prom"
        prom_path.write_text(report.exposition)
        paths["prom"] = prom_path
        obs.disable()
    if args.json:
        print(json.dumps(report.summary(), indent=1, sort_keys=True, default=str))
    else:
        print(f"== repro loadtest: {loadgen.shape} ==")
        print(
            f"{report.requests} requests over {report.duration_s:.1f} virtual "
            f"seconds ({wall:.1f}s wall): {report.served} served, "
            f"{report.shed_overload} shed (overload), "
            f"{report.shed_deadline} shed (deadline), "
            f"{report.errors_unhandled} unhandled"
        )
        for name, value in sorted(kpis.items()):
            print(f"  {name:<22} {value:.6g}")
        tiers = ", ".join(
            f"{tier}:{count}"
            for tier, count in sorted(report.served_by_tier.items())
        )
        print(f"  served_by_tier         {tiers or '-'}")
        for name, verdict in sorted(report.slo.items()):
            burns = ", ".join(
                f"{w['seconds']:.3g}s burn {w['burn']:.6g} {w['verdict']}"
                for w in verdict["windows"]
            )
            print(f"  slo {name:<20} {verdict['verdict']:<7} ({burns})")
    if session is not None:
        print(
            "observability artifacts: "
            + ", ".join(str(p) for p in sorted(paths.values()))
        )
    if report.errors_unhandled:
        print(
            f"error: {report.errors_unhandled} request(s) died with "
            "unhandled exceptions",
            file=sys.stderr,
        )
        return 1
    return 0


def _metrics_command(args) -> int:
    """``python -m repro metrics``: Prometheus scrape of the service.

    Runs a short deterministic loadtest (virtual time, seeded) and prints
    the text exposition the service's ``metrics()`` surface returned at
    the end of it; ``--check`` lints the output with the strict parser.
    """
    from repro.serve import LoadgenConfig, ServiceConfig, run_loadtest

    try:
        loadgen = LoadgenConfig(
            shape=args.shape,
            duration_s=max(1.0, args.duration),
            base_rps=120.0,
            n_tenants=8,
            deadline_s=0.5,
            seed=args.seed,
            trace_accesses=1024,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_loadtest(
        loadgen, ServiceConfig(n_workers=4, queue_watermark=32)
    )
    text = report.exposition
    if args.check:
        from repro.obs import exposition

        try:
            families = exposition.parse_text(text)
        except exposition.ExpositionError as exc:
            print(f"error: malformed exposition: {exc}", file=sys.stderr)
            return 2
        print(text, end="")
        print(f"# exposition ok: {len(families)} families", file=sys.stderr)
        return 0
    print(text, end="")
    return 0


def _bench_command(args) -> int:
    """``python -m repro bench <exp>``: timed run -> trajectory record."""
    import json

    from repro.obs import bench

    try:
        record = bench.bench_experiment(
            args.experiment,
            repeats=args.repeats,
            warmup=args.warmup,
            quick=args.quick,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    overhead = None
    if args.trace_overhead:
        overhead = bench.tracing_overhead_pct(
            args.experiment, quick=args.quick
        )
        record["tracing_overhead_pct"] = overhead
    path = Path(args.out) if args.out else bench.default_trajectory_path(
        args.experiment
    )
    if not args.no_append:
        bench.append_record(path, record)
    if args.json:
        print(json.dumps(record, indent=1, sort_keys=True))
    else:
        kpis = record["kpis"]
        cell = record["cell_latency_s"]
        print(f"== Bench: {record['experiment']} ==")
        print(
            f"wall {record['wall_time_mean_s']:.3f}s mean "
            f"(min {record['wall_time_min_s']:.3f}s over "
            f"{record['repeats']} repeats), "
            f"{record['throughput_accesses_per_s']:,.0f} accesses/s, "
            f"peak RSS {record['peak_rss_kb']} KB"
        )
        if cell["count"]:
            print(
                f"cells: {cell['count']} timed, "
                f"p50 {cell['p50']:.3f}s, p95 {cell['p95']:.3f}s"
            )
        cache_counts = record["cache"]
        if cache_counts["enabled"]:
            print(
                f"result cache: {cache_counts['hits']} hits, "
                f"{cache_counts['misses']} misses"
            )
        for name, value in sorted(kpis.items()):
            print(f"  {name:<40} {value:.6g}")
        if overhead is not None:
            print(
                f"tracing overhead: {overhead:+.3f}% "
                f"(tolerance {args.overhead_tol:.3g}%)"
            )
        if not args.no_append:
            print(f"appended record #{len(bench.load_trajectory(path))} to {path}")
    if overhead is not None and overhead > args.overhead_tol:
        print(
            f"error: tracing overhead {overhead:.3f}% exceeds "
            f"tolerance {args.overhead_tol:.3g}%",
            file=sys.stderr,
        )
        return 1
    return 0


def _compare_command(args) -> int:
    """``python -m repro compare``: 0 ok, 1 regression, 2 schema/usage."""
    import json

    from repro.obs import bench

    try:
        base_records = bench.load_trajectory(args.baseline)
        if args.candidate is None:
            if len(base_records) < 2:
                print(
                    f"error: {args.baseline} holds {len(base_records)} "
                    "record(s); need two to compare (or pass a candidate file)",
                    file=sys.stderr,
                )
                return 2
            baseline, candidate = base_records[-2], base_records[-1]
        else:
            cand_records = bench.load_trajectory(args.candidate)
            if not base_records or not cand_records:
                print(
                    "error: both trajectories need at least one record",
                    file=sys.stderr,
                )
                return 2
            baseline, candidate = base_records[-1], cand_records[-1]
        comparison = bench.compare_records(
            baseline, candidate, kpi_tol=args.kpi_tol, time_tol=args.time_tol
        )
    except bench.BenchSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=1, sort_keys=True))
    else:
        print(bench.render_comparison(comparison))
    return 0 if comparison.ok else 1


def _cache_command(args) -> int:
    """``python -m repro cache stats|clear``."""
    from repro.cache import ResultCache

    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    store = ResultCache(root)
    if args.cache_command == "stats":
        stats = store.stats()
        print(f"cache directory: {stats['root']} (key schema v{stats['schema']})")
        for kind in ("results", "traces"):
            entry = stats[kind]
            print(f"  {kind:<8} {entry['count']:>6} entries  {entry['bytes']:>12} bytes")
        if stats["stale_versions"]:
            print(
                "  stale schema versions present: "
                + ", ".join(stats["stale_versions"])
                + "  (run 'cache clear' to reclaim)"
            )
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} cached file(s) from {store.root}")
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
