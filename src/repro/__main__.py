"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``python -m repro list``                 -- list experiments
* ``python -m repro run fig05 [--quick]``  -- regenerate one figure
* ``python -m repro run all  [--quick]``   -- regenerate everything
* ``python -m repro run fig15 --obs [--obs-out DIR]``
                                           -- regenerate with observability
                                              (epoch time-series, trace
                                              events, manifests under DIR)
* ``python -m repro run fig05 --jobs 8 --cache-dir results/cache``
                                           -- fan simulation cells over 8
                                              worker processes and keep a
                                              persistent result/trace cache
* ``python -m repro run fig05 --jobs 8 --cache-dir results/cache \\
      --retries 3 --cell-timeout 120 --resume``
                                           -- resilient run: retry failed
                                              cells, bound each cell's wall
                                              clock, and resume an
                                              interrupted grid from its
                                              checkpoint journal
* ``python -m repro report DIR``           -- render a flushed obs directory
* ``python -m repro profile fig05``        -- run with wall-time attribution
* ``python -m repro cache stats|clear``    -- inspect / empty the on-disk
                                              result cache
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

#: ``cache`` subcommand fallback when neither --cache-dir nor
#: ``REPRO_CACHE_DIR`` names a directory.
DEFAULT_CACHE_DIR = "results/cache"


def _module_summary(module) -> str:
    """First docstring line, tolerating empty/missing docstrings."""
    lines = (module.__doc__ or "").strip().splitlines()
    return lines[0] if lines else ""


def _resolve_experiments(name: str):
    """Experiment modules for ``name`` ('all' fans out), or None + message."""
    from repro.experiments.registry import EXPERIMENTS

    if name == "all":
        return list(EXPERIMENTS.items())
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        print(
            f"error: unknown experiment {name!r}; choose from: {known}",
            file=sys.stderr,
        )
        return None
    return [(name, EXPERIMENTS[name])]


def _run_experiments(names_and_modules, quick: bool) -> None:
    for name, module in names_and_modules:
        start = time.time()
        table = module.run(quick=quick)
        print(table)
        print(f"[{name} took {time.time() - start:.1f}s]\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures from 'Temporal Prefetching Without "
        "the Off-Chip Metadata' (MICRO 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment name, e.g. fig05")
    run_parser.add_argument(
        "--quick", action="store_true",
        help="reduced benchmark subsets and trace lengths",
    )
    run_parser.add_argument(
        "--obs", action="store_true",
        help="enable observability (epoch time-series, trace events, "
        "manifests); writes to --obs-out",
    )
    run_parser.add_argument(
        "--obs-out", metavar="DIR", default=None,
        help="output directory for observability artifacts "
        "(default: results/obs/<experiment>; implies --obs)",
    )
    run_parser.add_argument(
        "--jobs", type=int, metavar="N", default=None,
        help="fan simulation cells over N worker processes "
        "(default: serial; also settable via REPRO_JOBS)",
    )
    run_parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persistent result/trace cache directory "
        "(default: off; also settable via REPRO_CACHE_DIR)",
    )
    run_parser.add_argument(
        "--retries", type=int, metavar="N", default=None,
        help="re-run a failed/timed-out simulation cell up to N times "
        "with backoff (default: 2; also settable via REPRO_RETRIES)",
    )
    run_parser.add_argument(
        "--cell-timeout", type=float, metavar="SECONDS", default=None,
        help="per-cell wall-clock budget for parallel runs; a cell over "
        "budget is abandoned and retried (default: none; also settable "
        "via REPRO_CELL_TIMEOUT)",
    )
    run_parser.add_argument(
        "--resume", action="store_true",
        help="skip cells already checkpointed by an interrupted run "
        "(needs --cache-dir/REPRO_CACHE_DIR; also REPRO_RESUME=1)",
    )

    report_parser = sub.add_parser(
        "report", help="render a flushed observability directory as tables"
    )
    report_parser.add_argument(
        "path", help="run directory written by --obs-out (or an epochs.jsonl)"
    )
    report_parser.add_argument(
        "--columns", nargs="*", default=None,
        help="epoch columns to show (default: way split, hit rates, "
        "utilization, coverage)",
    )

    profile_parser = sub.add_parser(
        "profile", help="run one experiment with wall-time phase attribution"
    )
    profile_parser.add_argument("experiment", help="experiment name, e.g. fig05")
    profile_parser.add_argument("--quick", action="store_true")

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    for cache_command, cache_help in (
        ("stats", "entry counts and sizes of a cache directory"),
        ("clear", "remove every entry (all key-schema versions)"),
    ):
        cache_cmd_parser = cache_sub.add_parser(cache_command, help=cache_help)
        cache_cmd_parser.add_argument(
            "--cache-dir", metavar="PATH", default=None,
            help=f"cache directory (default: $REPRO_CACHE_DIR or "
            f"{DEFAULT_CACHE_DIR})",
        )

    args = parser.parse_args(argv)

    if args.command == "cache":
        return _cache_command(args)

    if args.command == "list":
        from repro.experiments.registry import EXPERIMENTS

        for name, module in EXPERIMENTS.items():
            print(f"{name:<14} {_module_summary(module)}")
        return 0

    if args.command == "report":
        from repro.obs.report import render_report

        try:
            print(render_report(Path(args.path), columns=args.columns))
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    # "run" and "profile" both execute experiments.
    selected = _resolve_experiments(args.experiment)
    if selected is None:
        return 2

    if getattr(args, "jobs", None):
        # The harnesses (and their worker processes) read REPRO_JOBS.
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))
    if getattr(args, "cache_dir", None):
        from repro import cache

        cache.configure(args.cache_dir)
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    # Resilience knobs travel via the environment so the figure
    # harnesses (and their worker processes) pick them up uniformly.
    if getattr(args, "retries", None) is not None:
        os.environ["REPRO_RETRIES"] = str(max(0, args.retries))
    if getattr(args, "cell_timeout", None) is not None:
        os.environ["REPRO_CELL_TIMEOUT"] = str(args.cell_timeout)
    if getattr(args, "resume", False):
        os.environ["REPRO_RESUME"] = "1"

    from repro import obs

    if args.command == "profile":
        session = obs.enable(profile=True)
        try:
            _run_experiments(selected, args.quick)
        finally:
            obs.disable()
        print(session.profiler.table())
        return 0

    session = None
    if args.obs or args.obs_out:
        out_dir = Path(args.obs_out) if args.obs_out else (
            Path("results") / "obs" / args.experiment
        )
        session = obs.enable(out_dir=out_dir)
    try:
        _run_experiments(selected, args.quick)
    except KeyboardInterrupt:
        # Graceful shutdown: completed cells are already journaled and
        # cached (and the sweep layer flushed obs); tell the user how to
        # pick the grid back up, then exit with the conventional code.
        print(
            "interrupted: completed cells are checkpointed; "
            "re-run with --resume to continue",
            file=sys.stderr,
        )
        return 130
    finally:
        if session is not None:
            paths = session.flush()
            obs.disable()
            print(
                "observability artifacts: "
                + ", ".join(str(p) for p in sorted(paths.values()))
            )
            print(f"render with: python -m repro report {session.out_dir}")
    return 0


def _cache_command(args) -> int:
    """``python -m repro cache stats|clear``."""
    from repro.cache import ResultCache

    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    store = ResultCache(root)
    if args.cache_command == "stats":
        stats = store.stats()
        print(f"cache directory: {stats['root']} (key schema v{stats['schema']})")
        for kind in ("results", "traces"):
            entry = stats[kind]
            print(f"  {kind:<8} {entry['count']:>6} entries  {entry['bytes']:>12} bytes")
        if stats["stale_versions"]:
            print(
                "  stale schema versions present: "
                + ", ".join(stats["stale_versions"])
                + "  (run 'cache clear' to reclaim)"
            )
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} cached file(s) from {store.root}")
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
