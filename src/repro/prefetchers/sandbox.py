"""Sandbox prefetching (Pugsley et al., HPCA 2014) -- cited by the paper
as prior art on *safe* evaluation of aggressive prefetchers.

Candidate (aggressive) offset prefetchers run in a *sandbox*: instead of
issuing real prefetches, each candidate marks the lines it would have
fetched in a Bloom filter; later demand accesses that hit the filter
score the candidate.  Only candidates whose score clears a threshold get
to issue real prefetches, at a degree proportional to their score.

Interesting next to Triage because it is the opposite philosophy:
Sandbox makes *regular* prefetching safely aggressive, Triage makes
*irregular* prefetching affordable -- and the two compose (try
``sandbox+triage_1mb`` in the experiment harness).
"""

from __future__ import annotations

from typing import List

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate

#: Offsets evaluated, in sandbox rotation order (the HPCA'14 paper uses
#: +/-1..8; we keep the positive side plus a couple of strides).
CANDIDATE_OFFSETS = (1, 2, 3, 4, 5, 6, 7, 8, -1, -2, 16, 32)


class _BloomFilter:
    """Small double-hashed Bloom filter over line addresses."""

    def __init__(self, bits: int = 2048):
        self.bits = bits
        self._words = 0

    def add(self, line: int) -> None:
        self._words |= 1 << (self._hash1(line) % self.bits)
        self._words |= 1 << (self._hash2(line) % self.bits)

    def __contains__(self, line: int) -> bool:
        return bool(
            self._words >> (self._hash1(line) % self.bits) & 1
            and self._words >> (self._hash2(line) % self.bits) & 1
        )

    def clear(self) -> None:
        self._words = 0

    @staticmethod
    def _hash1(line: int) -> int:
        return (line * 2654435761) >> 7

    @staticmethod
    def _hash2(line: int) -> int:
        return (line * 40503) >> 3


class SandboxPrefetcher(BasePrefetcher):
    """Offset prefetching gated by sandboxed trial periods."""

    name = "sandbox"
    PERIOD = 256  # accesses per sandbox trial
    THRESHOLD = 64  # score needed for a candidate to go live

    def __init__(self, degree: int = 4, offsets=CANDIDATE_OFFSETS):
        super().__init__(degree)
        self.offsets = list(offsets)
        self._bloom = _BloomFilter()
        self._trial_index = 0
        self._trial_accesses = 0
        self._trial_score = 0
        #: offset -> last accepted score (drives live degree).
        self.live_scores = {}

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        # Score the current trial: did the sandboxed candidate "prefetch"
        # this line earlier in the period?
        if line in self._bloom:
            self._trial_score += 1
        offset = self.offsets[self._trial_index]
        self._bloom.add(line + offset)
        self._trial_accesses += 1
        if self._trial_accesses >= self.PERIOD:
            self._end_trial(offset)

        # Live prefetching from previously accepted candidates, best
        # scores first, within the degree budget.
        targets: List[int] = []
        for live_offset, score in sorted(
            self.live_scores.items(), key=lambda kv: -kv[1]
        ):
            depth = min(self.degree, 1 + score // self.THRESHOLD)
            for i in range(1, depth + 1):
                target = line + live_offset * i
                if target > 0 and target not in targets:
                    targets.append(target)
                if len(targets) >= self.degree:
                    return self.candidates(targets)
        return self.candidates(targets)

    def _end_trial(self, offset: int) -> None:
        if self._trial_score >= self.THRESHOLD:
            self.live_scores[offset] = self._trial_score
        else:
            self.live_scores.pop(offset, None)
        self._bloom.clear()
        self._trial_score = 0
        self._trial_accesses = 0
        self._trial_index = (self._trial_index + 1) % len(self.offsets)
