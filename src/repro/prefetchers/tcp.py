"""Tag Correlating Prefetcher (Hu, Martonosi & Kaxiras, HPCA 2003).

Cited by the paper as another metadata-thrifty weakening of address
correlation: correlate cache *tags* (per set) rather than full
addresses, so one table entry serves every set that exhibits the same
tag transition.  Compact, but tag aliasing across sets caps accuracy --
the classic capacity/precision trade temporal prefetchers sit above.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate


class TagCorrelatingPrefetcher(BasePrefetcher):
    """Two-level tag-transition table, indexed by (previous tag, tag)."""

    name = "tcp"

    def __init__(
        self,
        degree: int = 1,
        set_bits: int = 11,
        table_entries: int = 16_384,
    ):
        super().__init__(degree)
        self.set_bits = set_bits
        self.table_entries = table_entries
        self._set_mask = (1 << set_bits) - 1
        # (tag, tag') transition history per set: last tag seen per set.
        self._last_tag_by_set: dict = {}
        # (prev_tag, tag) -> next tag
        self._table: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._last_pair_by_set: dict = {}

    def _split(self, line: int) -> Tuple[int, int]:
        return line >> self.set_bits, line & self._set_mask

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        tag, set_idx = self._split(line)
        prev_tag = self._last_tag_by_set.get(set_idx)
        prev_pair = self._last_pair_by_set.get(set_idx)
        if prev_pair is not None:
            self._store(prev_pair, tag)
        if prev_tag is not None:
            self._last_pair_by_set[set_idx] = (prev_tag, tag)
        self._last_tag_by_set[set_idx] = tag

        pair = self._last_pair_by_set.get(set_idx)
        if pair is None:
            return []
        targets = []
        current_pair = pair
        for _ in range(self.degree):
            nxt = self._table.get(current_pair)
            if nxt is None:
                break
            self._table.move_to_end(current_pair)
            targets.append((nxt << self.set_bits) | set_idx)
            current_pair = (current_pair[1], nxt)
        return self.candidates(targets)

    def _store(self, pair: Tuple[int, int], nxt: int) -> None:
        if pair not in self._table and len(self._table) >= self.table_entries:
            self._table.popitem(last=False)
        self._table[pair] = nxt
