"""Hybrid prefetcher: compose a regular and an irregular prefetcher.

The paper evaluates BO+Triage and BO+SMS hybrids (Figures 10/14/16/18):
both components observe every L2-stream event and both may issue.  The
hybrid deduplicates candidates (first component wins) and routes feedback
to whichever component generated each candidate, so Triage's
delayed-training discipline survives composition.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate


class HybridPrefetcher(BasePrefetcher):
    """Union of component prefetchers with per-component feedback."""

    name = "hybrid"

    def __init__(self, components: Sequence[BasePrefetcher]):
        if not components:
            raise ValueError("hybrid needs at least one component")
        super().__init__(degree=max(c.degree for c in components))
        self.components = list(components)
        self.name = "+".join(c.name for c in components)

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        seen = set()
        merged: List[PrefetchCandidate] = []
        for component in self.components:
            for candidate in component.observe(pc, line, prefetch_hit):
                if candidate.line in seen:
                    continue
                seen.add(candidate.line)
                if candidate.owner is None:
                    candidate.owner = component
                merged.append(candidate)
        return merged

    def feedback(self, candidate: PrefetchCandidate, source: str) -> None:
        owner = candidate.owner
        if owner is not None and owner is not self:
            owner.feedback(candidate, source)

    def epoch_tick(self) -> None:
        for component in self.components:
            component.epoch_tick()

    def drain_metadata_traffic(self) -> int:
        return sum(c.drain_metadata_traffic() for c in self.components)

    @property
    def total_metadata_llc_accesses(self) -> int:
        return sum(c.metadata_llc_accesses for c in self.components)

    @property
    def total_metadata_dram_accesses(self) -> int:
        return sum(c.metadata_dram_accesses for c in self.components)
