"""Prefetchers: Triage's baselines and competitors.

Every prefetcher trains on the L2 access stream (L2 misses plus demand
hits on prefetched L2 lines) and returns candidate line addresses, mirroring
the paper's setup where "all prefetchers train on the L2 access stream,
and prefetches are inserted into the L2".
"""

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.best_offset import BestOffsetPrefetcher
from repro.prefetchers.sms import SmsPrefetcher
from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.stms import StmsPrefetcher
from repro.prefetchers.domino import DominoPrefetcher
from repro.prefetchers.isb import IsbPrefetcher
from repro.prefetchers.misb import MisbPrefetcher
from repro.prefetchers.hybrid import HybridPrefetcher
from repro.prefetchers.ghb_delta import GhbDeltaPrefetcher
from repro.prefetchers.sandbox import SandboxPrefetcher
from repro.prefetchers.tcp import TagCorrelatingPrefetcher

#: Triangel builds on :mod:`repro.core.triage`, which itself imports
#: :mod:`repro.prefetchers.base` -- importing it eagerly here would close
#: an import cycle through this package's __init__.  PEP 562 lazy
#: attribute access keeps ``from repro.prefetchers import
#: TriangelPrefetcher`` working without the cycle.
_TRIANGEL_EXPORTS = ("SampleTable", "TriangelConfig", "TriangelPrefetcher")


def __getattr__(name):
    if name in _TRIANGEL_EXPORTS:
        from repro.prefetchers import triangel

        return getattr(triangel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BasePrefetcher",
    "BestOffsetPrefetcher",
    "DominoPrefetcher",
    "GhbDeltaPrefetcher",
    "HybridPrefetcher",
    "IsbPrefetcher",
    "MarkovPrefetcher",
    "MisbPrefetcher",
    "PrefetchCandidate",
    "SampleTable",
    "SandboxPrefetcher",
    "SmsPrefetcher",
    "StmsPrefetcher",
    "StridePrefetcher",
    "TagCorrelatingPrefetcher",
    "TriangelConfig",
    "TriangelPrefetcher",
]
