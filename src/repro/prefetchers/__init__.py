"""Prefetchers: Triage's baselines and competitors.

Every prefetcher trains on the L2 access stream (L2 misses plus demand
hits on prefetched L2 lines) and returns candidate line addresses, mirroring
the paper's setup where "all prefetchers train on the L2 access stream,
and prefetches are inserted into the L2".
"""

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.best_offset import BestOffsetPrefetcher
from repro.prefetchers.sms import SmsPrefetcher
from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.stms import StmsPrefetcher
from repro.prefetchers.domino import DominoPrefetcher
from repro.prefetchers.isb import IsbPrefetcher
from repro.prefetchers.misb import MisbPrefetcher
from repro.prefetchers.hybrid import HybridPrefetcher
from repro.prefetchers.ghb_delta import GhbDeltaPrefetcher
from repro.prefetchers.sandbox import SandboxPrefetcher
from repro.prefetchers.tcp import TagCorrelatingPrefetcher

__all__ = [
    "BasePrefetcher",
    "BestOffsetPrefetcher",
    "DominoPrefetcher",
    "GhbDeltaPrefetcher",
    "HybridPrefetcher",
    "IsbPrefetcher",
    "MarkovPrefetcher",
    "MisbPrefetcher",
    "PrefetchCandidate",
    "SandboxPrefetcher",
    "SmsPrefetcher",
    "StmsPrefetcher",
    "StridePrefetcher",
    "TagCorrelatingPrefetcher",
]
