"""Markov prefetcher (Joseph & Grunwald, ISCA 1997).

The original address-correlating prefetcher: a table maps each miss
address to its most recent successors in the *global* (not PC-localized)
miss stream.  We keep up to ``successors_per_entry`` successors per
address in most-recent-first order -- prediction issues them in that
order.  Table capacity is configurable in entries so the same class
serves both the historical "too big for chip" configuration and the
on-chip ablations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate


class MarkovPrefetcher(BasePrefetcher):
    """Global-stream successor table with LRU entry replacement."""

    name = "markov"

    def __init__(
        self,
        degree: int = 1,
        table_entries: int = 1 << 20,
        successors_per_entry: int = 4,
    ):
        super().__init__(degree)
        self.table_entries = table_entries
        self.successors_per_entry = successors_per_entry
        self._table: "OrderedDict[int, List[int]]" = OrderedDict()
        self._last_line: Optional[int] = None

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        if self._last_line is not None and self._last_line != line:
            self._record(self._last_line, line)
        self._last_line = line

        successors = self._table.get(line)
        if not successors:
            return []
        self._table.move_to_end(line)
        return self.candidates(successors[: self.degree])

    def _record(self, prev: int, nxt: int) -> None:
        successors = self._table.get(prev)
        if successors is None:
            if len(self._table) >= self.table_entries:
                self._table.popitem(last=False)
            self._table[prev] = [nxt]
            return
        if nxt in successors:
            successors.remove(nxt)
        successors.insert(0, nxt)
        del successors[self.successors_per_entry:]
        self._table.move_to_end(prev)
