"""Irregular Stream Buffer (Jain & Lin, MICRO 2013).

ISB combines address correlation with PC localization by linearizing each
PC's access stream into a *structural address space*: consecutive
accesses by the same PC get consecutive structural addresses.  Two maps
realize this -- physical->structural (PS) and structural->physical (SP) --
and prediction becomes "translate the trigger, walk forward, translate
back".  Each PS mapping carries a confidence counter so that one noisy
pair does not rip a line out of a learned stream (remapping happens only
after the counter drains).

This implementation keeps both maps unbounded and charges no metadata
traffic, i.e. it is the *idealized* PC-localized temporal prefetcher the
paper uses as the 100% reference in Figure 9.  MISB
(:mod:`repro.prefetchers.misb`) adds the realistic metadata caching and
traffic on top of the same maps.
"""

from __future__ import annotations

from typing import Dict, List

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate

#: Structural addresses per stream; a new PC stream starts on a fresh
#: granule boundary so streams never collide.
STREAM_GRANULE = 256


class IsbPrefetcher(BasePrefetcher):
    """Idealized ISB: unbounded PS/SP maps, per-PC training unit."""

    name = "isb"

    def __init__(self, degree: int = 1, confidence_bits: int = 2):
        super().__init__(degree)
        self.confidence_max = (1 << confidence_bits) - 1
        self._ps: Dict[int, int] = {}  # phys line -> structural address
        self._sp: Dict[int, int] = {}  # structural address -> phys line
        self._confidence: Dict[int, int] = {}  # phys line -> counter
        self._training_last: Dict[int, int] = {}  # pc -> last phys line
        self._next_stream = 0

    # -- structural-address management --------------------------------------

    def _allocate_stream(self, line: int) -> int:
        struct = self._next_stream * STREAM_GRANULE
        self._next_stream += 1
        self._map(line, struct)
        return struct

    def _map(self, line: int, struct: int) -> None:
        """Unconditionally install ``line -> struct`` (both directions)."""
        old = self._ps.get(line)
        if old is not None and self._sp.get(old) == line:
            del self._sp[old]
        self._ps[line] = struct
        self._sp[struct] = line
        self._confidence[line] = self.confidence_max

    def _assign(self, line: int, struct: int) -> None:
        """Ask for ``line`` to live at ``struct``, respecting confidence.

        A line already mapped elsewhere loses one confidence point per
        disagreement and is only remapped once the counter drains; the
        slot's current occupant is likewise protected.
        """
        current = self._ps.get(line)
        if current == struct:
            self._confidence[line] = self.confidence_max
            return
        if current is not None:
            conf = self._confidence.get(line, 0)
            if conf > 0:
                self._confidence[line] = conf - 1
                return
        occupant = self._sp.get(struct)
        if occupant is not None and occupant != line:
            occ_conf = self._confidence.get(occupant, 0)
            if occ_conf > 0:
                self._confidence[occupant] = occ_conf - 1
                return  # slot is defended; try again another time
            self._ps.pop(occupant, None)
            self._confidence.pop(occupant, None)
        self._map(line, struct)

    # -- prefetcher interface -------------------------------------------------

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        prev = self._training_last.get(pc)
        self._training_last[pc] = line
        if prev is not None and prev != line:
            prev_struct = self._ps.get(prev)
            if prev_struct is None:
                prev_struct = self._allocate_stream(prev)
            successor_struct = prev_struct + 1
            if successor_struct % STREAM_GRANULE != 0:
                self._assign(line, successor_struct)

        struct = self._ps.get(line)
        if struct is None:
            return []
        lines = []
        for i in range(1, self.degree + 1):
            s = struct + i
            if s % STREAM_GRANULE == 0:
                break
            target = self._sp.get(s)
            if target is None:
                break
            lines.append(target)
        return self.candidates(lines)

    @property
    def mapped_pairs(self) -> int:
        """Number of live structural mappings (metadata footprint proxy)."""
        return len(self._sp)
