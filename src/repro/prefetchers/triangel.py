"""The Triangel prefetcher family (arXiv 2406.10627).

Triangel is the direct successor of Triage: a PC-localized temporal
prefetcher whose metadata lives entirely on chip.  It keeps Triage's
skeleton -- the :class:`~repro.core.training_unit.TrainingUnit` pairs
consecutive accesses by the same PC, the
:class:`~repro.core.metadata_store.MetadataStore` holds the resulting
correlations in a way-partitioned LLC slice -- and adds three mechanisms
that attack Triage's three weaknesses:

* **Sample Table** (accuracy): a small set-associative table samples
  (trigger, PC, successor) triples from the training stream and measures,
  per PC, whether its address pairs actually *repeat*.  PCs whose pairs
  churn never earn new metadata entries, so noisy streams stop evicting
  useful correlations.  Per-PC pattern confidence is a saturating counter
  that starts at the allocation threshold (new PCs are trusted until the
  samples prove otherwise).
* **Multi-step lookahead** (timeliness): the issue walk advances
  ``lookahead - 1 + degree`` hops down the successor chain, issuing
  every line it visits -- so prefetches run ahead of the demand stream
  instead of racing it one successor at a time.  (Triangel proper skips
  the near successors it believes are already in flight; our fill model
  is latency-free, so skipping buys nothing and the runahead depth is
  what pays: chains ramp ``lookahead`` lines per trigger instead of
  one.)  Every hop is still a metadata access and is charged to the LLC
  like Triage's degree walk.  Within one walk a line is never issued
  twice (chain loops terminate the walk), so lookahead depth cannot
  emit duplicate in-flight prefetches.
* **Reuse-aware metadata replacement** (on-chip budget): the metadata
  store runs :class:`~repro.replacement.reuse_aware.ReuseAwarePolicy`,
  which evicts never-reused entries before proven ones -- Triangel's
  answer to Hawkeye's sampler for the metadata budget.

**Degeneracy contract** (guarded by the differential tests): with
``sampling=False``, ``lookahead=1``, ``degree=1`` and the same
``replacement`` policy, a Triangel instance issues a bit-identical
prefetch stream to a Triage instance with the same store geometry.
This pins the shared training-unit and metadata-store plumbing: any
divergence in the degenerate configuration is a bug in the shared
layers, not a design difference.  (At ``degree > 1`` the families
intentionally differ on looping chains: Triage's walk re-issues a
revisited line, Triangel's never does.)
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.triage import TriageConfig, TriagePrefetcher
from repro.core.utility_partition import UtilityPartitionController
from repro.prefetchers.base import PrefetchCandidate

KB = 1024
MB = 1024 * KB


@dataclass
class TriangelConfig(TriageConfig):
    """Configuration for one Triangel instance.

    Inherits every Triage knob (store capacity, dynamic partitioning,
    tag compression, PC localization, ...) and adds the family's own:

    * ``lookahead`` -- extra successor-chain depth the issue walk covers
      beyond ``degree`` (1 = Triage's walk depth).
    * ``sampling`` -- enable the Sample Table's per-PC allocation gate
      (``False`` degrades training to Triage's always-allocate).
    * ``replacement`` -- defaults to ``"reuse"`` (the family's
      metadata-reuse-aware policy) instead of Triage's ``"hawkeye"``.
    """

    replacement: str = "reuse"
    #: Successor-chain depth issued per walk is ``lookahead - 1 + degree``.
    lookahead: int = 2
    #: Sample-Table gating of new metadata allocations.
    sampling: bool = True
    #: Sample Table geometry (sets x ways, LRU within a set).
    sample_sets: int = 64
    sample_ways: int = 4
    #: Only triggers with ``trigger % sample_rate == 0`` are inserted
    #: into the Sample Table on a sample miss (1 = sample everything).
    sample_rate: int = 1
    #: Saturation ceiling for the per-PC pattern-confidence counters.
    pattern_max: int = 7
    #: A PC may allocate new metadata while its confidence is at or
    #: above this; unseen PCs start exactly here (trusted until sampled).
    allocate_threshold: int = 2
    #: Bound on the per-PC confidence table (LRU-evicted beyond this).
    sample_pcs: int = 1024


@dataclass(slots=True)
class SampleEntry:
    """One sampled training triple: ``trigger`` was followed by
    ``successor`` in ``pc``'s stream when last observed."""

    pc: int
    successor: int


class SampleTable:
    """Set-associative sample store, LRU-replaced within each set.

    Keys are trigger line addresses; sets are ``OrderedDict``s so probe
    refresh and capacity eviction are both O(1).  The table is metadata
    *about* metadata: it never holds prefetch targets, only evidence of
    whether a (PC, pair) relationship repeats.
    """

    def __init__(self, num_sets: int = 64, num_ways: int = 4):
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("sample table geometry must be positive")
        self.num_sets = num_sets
        self.num_ways = num_ways
        self._sets: List["OrderedDict[int, SampleEntry]"] = [
            OrderedDict() for _ in range(num_sets)
        ]

    def _set_of(self, trigger: int) -> "OrderedDict[int, SampleEntry]":
        return self._sets[trigger % self.num_sets]

    def probe(self, trigger: int) -> Optional[SampleEntry]:
        """Return the live sample for ``trigger`` (refreshing its LRU
        position), or ``None``."""
        bucket = self._set_of(trigger)
        entry = bucket.get(trigger)
        if entry is not None:
            bucket.move_to_end(trigger)
        return entry

    def insert(self, trigger: int, pc: int, successor: int) -> None:
        bucket = self._set_of(trigger)
        bucket[trigger] = SampleEntry(pc, successor)
        bucket.move_to_end(trigger)
        if len(bucket) > self.num_ways:
            bucket.popitem(last=False)

    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)


class TriangelPrefetcher(TriagePrefetcher):
    """Triage's successor: sampled allocation, lookahead, reuse-aware
    replacement -- still not a byte of off-chip metadata."""

    name = "triangel"

    def __init__(self, config: Optional[TriangelConfig] = None, **kwargs):
        config = config or TriangelConfig()
        if config.lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        super().__init__(config, **kwargs)
        self.sample_table = SampleTable(config.sample_sets, config.sample_ways)
        #: Per-PC pattern confidence (bounded LRU; values in
        #: ``[0, pattern_max]``, absent means ``allocate_threshold``).
        self._pattern_conf: "OrderedDict[int, int]" = OrderedDict()
        #: Per-PC temporal-reuse evidence (same bounds; observability
        #: only -- the allocation gate keys off pattern confidence).
        self._reuse_conf: "OrderedDict[int, int]" = OrderedDict()
        # Family-specific statistics.
        self.sample_hits = 0
        self.sample_pattern_matches = 0
        self.skipped_allocations = 0

    # -- prefetcher interface -------------------------------------------------

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        stream_pc = pc if self.config.pc_localized else 0
        profile = self.profile
        if profile is not None:
            profile_start = time.perf_counter()

        # Same data-side glue as Triage: this event is an LLC data access
        # for the utility controller's bookkeeping.
        if isinstance(self.controller, UtilityPartitionController):
            self.controller.note_data_access(line)
            self.controller.usefulness = self.store.pair_stability()

        candidates = self._walk(line, stream_pc)
        self.metadata_llc_accesses = self.store.llc_accesses

        # Training: correlate with this PC's previous access, gated by
        # the Sample Table's verdict on this PC.
        prev = self.training_unit.observe(stream_pc, line)
        if prev is not None and prev != line:
            self._train(prev, line, stream_pc)

        self._apply_pending_partition()
        if profile is not None:
            profile.add("metadata_store", time.perf_counter() - profile_start)
        return candidates

    # -- issue walk -----------------------------------------------------------

    def _walk(self, trigger: int, stream_pc: int) -> List[PrefetchCandidate]:
        """Walk ``lookahead - 1 + degree`` hops, issuing every visit.

        Mirrors Triage's chain walk hop for hop (each hop is a metadata
        access; a lookup miss trains the store's replacement sampler
        immediately, since a missing entry can never produce a redundant
        prefetch).  ``seen`` guards the in-flight invariant: a line is
        never emitted twice from one walk, and a chain that loops back
        onto itself terminates the walk instead of re-issuing.
        """
        candidates: List[PrefetchCandidate] = []
        seen = {trigger}  # trigger itself plus every line the walk visited
        cursor = trigger
        for _ in range(self.config.lookahead - 1 + self.degree):
            self._note_controller_access(cursor)
            successor = self.store.lookup(cursor, stream_pc)
            if successor is None:
                self.store.observe_access(cursor, stream_pc)
                break
            if successor in seen:
                break  # chain loop: never re-issue an in-flight line
            seen.add(successor)
            candidates.append(
                PrefetchCandidate(
                    successor, context=(cursor, stream_pc), owner=self
                )
            )
            cursor = successor
        return candidates

    # -- training + sampling ---------------------------------------------------

    def _train(self, prev: int, line: int, stream_pc: int) -> None:
        if not self.config.sampling:
            allowed = True
        else:
            self._sample_train(prev, line, stream_pc)
            # Refreshing an existing correlation is always allowed; only
            # *new* allocations are gated by the PC's sampled confidence.
            allowed = self.store.contains(prev) or self._allocate_allowed(
                stream_pc
            )
        if not allowed:
            self.skipped_allocations += 1
            return
        if self.config.use_confidence:
            self.store.update(prev, line, stream_pc)
        else:
            self._update_unconditionally(prev, line, stream_pc)

    def _sample_train(self, prev: int, line: int, stream_pc: int) -> None:
        """Fold one training pair into the Sample Table's evidence."""
        entry = self.sample_table.probe(prev)
        if entry is not None:
            self.sample_hits += 1
            self._bump(self._reuse_conf, stream_pc, +1)
            if entry.pc == stream_pc:
                if entry.successor == line:
                    self.sample_pattern_matches += 1
                    self._bump(self._pattern_conf, stream_pc, +1)
                else:
                    self._bump(self._pattern_conf, stream_pc, -1)
            entry.pc = stream_pc
            entry.successor = line
        elif prev % self.config.sample_rate == 0:
            self.sample_table.insert(prev, stream_pc, line)

    def _allocate_allowed(self, stream_pc: int) -> bool:
        conf = self._pattern_conf.get(stream_pc)
        if conf is None:
            return True  # unsampled PCs start at the threshold
        return conf >= self.config.allocate_threshold

    def _bump(
        self, table: "OrderedDict[int, int]", pc: int, delta: int
    ) -> None:
        value = table.get(pc)
        if value is None:
            value = self.config.allocate_threshold
        value = max(0, min(self.config.pattern_max, value + delta))
        table[pc] = value
        table.move_to_end(pc)
        if len(table) > self.config.sample_pcs:
            table.popitem(last=False)

    # -- observability ---------------------------------------------------------

    def pattern_confidence(self, pc: int) -> int:
        """This PC's current pattern confidence (threshold if unsampled)."""
        stream_pc = pc if self.config.pc_localized else 0
        conf = self._pattern_conf.get(stream_pc)
        return self.config.allocate_threshold if conf is None else conf

    def sample_stats(self) -> Dict[str, int]:
        """Sample-layer counters, for tests, reports and docs examples."""
        return {
            "sample_occupancy": self.sample_table.occupancy(),
            "sample_hits": self.sample_hits,
            "sample_pattern_matches": self.sample_pattern_matches,
            "skipped_allocations": self.skipped_allocations,
            "tracked_pcs": len(self._pattern_conf),
        }
