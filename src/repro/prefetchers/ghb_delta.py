"""GHB PC/DC: delta-correlation prefetching (Nesbit & Smith, 2005).

The paper's related work contrasts Triage's full address correlation
with "weaker forms of correlation, such as delta correlation [33]".
This is that baseline: a Global History Buffer holds each PC's recent
line addresses (linked by index table), and prediction matches the two
most recent *deltas* against the PC's history, replaying the deltas
that followed the previous occurrence of that delta pair.

Delta correlation captures strides and repeating stride *patterns* with
tiny metadata, but cannot reproduce arbitrary pointer chains -- which is
exactly the gap temporal prefetchers fill.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate


class GhbDeltaPrefetcher(BasePrefetcher):
    """PC-localized delta-correlation over a bounded per-PC history."""

    name = "ghb_pcdc"

    def __init__(self, degree: int = 2, history_per_pc: int = 64, max_pcs: int = 256):
        super().__init__(degree)
        self.history_per_pc = history_per_pc
        self.max_pcs = max_pcs
        self._history: Dict[int, Deque[int]] = {}

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        history = self._history.get(pc)
        if history is None:
            if len(self._history) >= self.max_pcs:
                # Drop an arbitrary cold PC (dict preserves insertion
                # order: the oldest-created entry goes).
                self._history.pop(next(iter(self._history)))
            history = deque(maxlen=self.history_per_pc)
            self._history[pc] = history
        history.append(line)
        if len(history) < 4:
            return []

        lines = list(history)
        deltas = [b - a for a, b in zip(lines, lines[1:])]
        key = (deltas[-2], deltas[-1])
        # Find the previous occurrence of this delta pair and replay what
        # followed it.
        for i in range(len(deltas) - 3, 0, -1):
            if (deltas[i - 1], deltas[i]) == key:
                replay = deltas[i + 1 : i + 1 + self.degree]
                targets = []
                current = line
                for delta in replay:
                    current += delta
                    targets.append(current)
                return self.candidates(targets)
        return []
