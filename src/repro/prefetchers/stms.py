"""Sampled Temporal Memory Streaming (Wenisch et al., HPCA 2009).

STMS records the global miss stream in a circular *history buffer* and
keeps an *index table* mapping each address to its most recent position
in that buffer.  On a miss to ``A``, the prefetcher looks up ``A``'s last
occurrence and streams out the addresses that followed it.

Both structures live off chip in the real design.  Following the paper
("we model idealized versions of STMS and Domino, such that their
off-chip metadata transactions complete instantly with no latency or
traffic penalty"), this implementation gives the buffer and index
unbounded on-the-side storage and charges no metadata traffic -- it is an
upper bound on STMS.
"""

from __future__ import annotations

from typing import Dict, List

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate


class StmsPrefetcher(BasePrefetcher):
    """Idealized GHB-based temporal streaming (global, not PC-localized)."""

    name = "stms"

    def __init__(self, degree: int = 1, history_capacity: int = 1 << 22):
        super().__init__(degree)
        self.history_capacity = history_capacity
        self._history: List[int] = []
        self._index: Dict[int, int] = {}

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        if len(self._history) >= self.history_capacity:
            self._compact()
        prev_pos = self._index.get(line)

        self._index[line] = len(self._history)
        self._history.append(line)

        if prev_pos is None:
            return []
        successors = self._history[prev_pos + 1 : prev_pos + 1 + self.degree]
        # The entry at prev_pos+... may include the line we just appended.
        lines = [s for s in successors if s != line]
        return self.candidates(lines)

    def _compact(self) -> None:
        """Drop the oldest half of the history (circular-buffer wrap)."""
        cut = len(self._history) // 2
        self._history = self._history[cut:]
        self._index = {
            addr: pos - cut
            for addr, pos in self._index.items()
            if pos >= cut
        }
