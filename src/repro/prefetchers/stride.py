"""PC-indexed stride prefetcher (Table 1's L1D prefetcher).

Classic Baer-Chen design: a table keyed by load PC records the last line
address and the last observed stride with a 2-bit confidence counter.
Once the same stride repeats, the prefetcher issues ``degree`` prefetches
along it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate


@dataclass(slots=True)
class _StrideEntry:
    last_line: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher(BasePrefetcher):
    """Stride detection per PC with a small LRU table."""

    name = "stride"
    CONFIDENCE_MAX = 3
    CONFIDENCE_THRESHOLD = 2

    def __init__(self, degree: int = 1, table_size: int = 256):
        super().__init__(degree)
        self.table_size = table_size
        self._table: "OrderedDict[int, _StrideEntry]" = OrderedDict()

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        entry = self._table.get(pc)
        if entry is None:
            self._insert(pc, _StrideEntry(last_line=line))
            return []
        self._table.move_to_end(pc)
        stride = line - entry.last_line
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(self.CONFIDENCE_MAX, entry.confidence + 1)
        else:
            entry.confidence -= 1
            if entry.confidence <= 0:
                entry.stride = stride
                entry.confidence = 1
        entry.last_line = line
        if entry.confidence < self.CONFIDENCE_THRESHOLD or entry.stride == 0:
            return []
        lines = [line + entry.stride * i for i in range(1, self.degree + 1)]
        return self.candidates([l for l in lines if l > 0])

    def _insert(self, pc: int, entry: _StrideEntry) -> None:
        if len(self._table) >= self.table_size:
            self._table.popitem(last=False)
        self._table[pc] = entry
