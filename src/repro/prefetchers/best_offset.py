"""Best-Offset prefetcher (Michaud, HPCA 2016; DPC2 winner).

BO learns a single good prefetch offset by scoring a fixed list of
candidate offsets against a table of recent requests (RR table): offset
``O`` earns a point whenever the current demand line minus ``O`` is found
in the RR table, i.e. a prefetch at offset ``O`` issued back then would
have been timely.  A learning round ends when some offset reaches
``SCORE_MAX`` or every offset has been tested ``ROUND_MAX`` times, and the
best-scoring offset becomes the prefetch offset for the next round.  A
best score below ``BAD_SCORE`` turns prefetching off for the round.
"""

from __future__ import annotations

from typing import List

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate

#: Michaud's offset list: positive integers <= 256 whose prime
#: factorization contains only 2, 3 and 5.
DEFAULT_OFFSETS = [
    1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32,
    36, 40, 45, 48, 50, 54, 60, 64, 72, 75, 80, 81, 90, 96, 100, 108,
    120, 125, 128, 135, 144, 150, 160, 162, 180, 192, 200, 216, 225,
    240, 243, 250, 256,
]


class BestOffsetPrefetcher(BasePrefetcher):
    """Best-Offset prefetching with the standard DPC2 parameters."""

    name = "bo"
    SCORE_MAX = 31
    ROUND_MAX = 100
    BAD_SCORE = 10

    def __init__(
        self,
        degree: int = 1,
        offsets: List[int] = None,
        rr_table_bits: int = 8,
    ):
        super().__init__(degree)
        self.offsets = list(offsets) if offsets is not None else list(DEFAULT_OFFSETS)
        self.rr_size = 1 << rr_table_bits
        self._rr_table = [-1] * self.rr_size
        self._scores = [0] * len(self.offsets)
        self._test_index = 0
        self._round = 0
        self.best_offset = 1
        self.prefetching_on = True

    # -- RR table ---------------------------------------------------------

    def _rr_insert(self, line: int) -> None:
        self._rr_table[self._rr_hash(line)] = line

    def _rr_contains(self, line: int) -> bool:
        return self._rr_table[self._rr_hash(line)] == line

    def _rr_hash(self, line: int) -> int:
        return (line ^ (line >> 8)) & (self.rr_size - 1)

    # -- learning ----------------------------------------------------------

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        # Learning: test one offset per event, round-robin.
        offset = self.offsets[self._test_index]
        if self._rr_contains(line - offset):
            self._scores[self._test_index] += 1
            if self._scores[self._test_index] >= self.SCORE_MAX:
                self._end_round()
        self._test_index += 1
        if self._test_index >= len(self.offsets):
            self._test_index = 0
            self._round += 1
            if self._round >= self.ROUND_MAX:
                self._end_round()

        # The line just requested becomes a "recent request" that future
        # offset tests can match against.  (Michaud inserts line - D on
        # fill completion; with our zero-latency fills this reduces to
        # inserting the line itself.)
        self._rr_insert(line)

        if not self.prefetching_on:
            return []
        lines = [line + self.best_offset * i for i in range(1, self.degree + 1)]
        return self.candidates(lines)

    def _end_round(self) -> None:
        best_idx = max(range(len(self.offsets)), key=lambda i: self._scores[i])
        best_score = self._scores[best_idx]
        self.best_offset = self.offsets[best_idx]
        self.prefetching_on = best_score >= self.BAD_SCORE
        self._scores = [0] * len(self.offsets)
        self._test_index = 0
        self._round = 0
