"""Spatial Memory Streaming (Somogyi et al., ISCA 2006).

SMS correlates *spatial footprints* -- the set of lines touched within a
memory region -- with the (PC, region-offset) of the access that first
touched the region.  When a later access triggers the same (PC, offset)
signature, SMS eagerly prefetches the whole recorded footprint.  Three
tables implement this:

* **filter table** -- regions touched once, waiting for a second access;
* **accumulation table** -- active regions whose footprint is being built;
* **pattern history table (PHT)** -- learned signature -> footprint maps.

SMS captures recurring spatial patterns across regions but, as the paper
stresses, cannot follow pointer chains -- which is why it underperforms on
the irregular suite (paper Figures 5/6).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro.memory.address import LINE_SHIFT
from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate


class SmsPrefetcher(BasePrefetcher):
    """SMS with a 2 KB region (32 lines) and LRU-managed tables."""

    name = "sms"

    def __init__(
        self,
        degree: int = 1,
        region_size: int = 2048,
        filter_entries: int = 32,
        accumulation_entries: int = 64,
        pht_entries: int = 2048,
    ):
        super().__init__(degree)
        if region_size % 64 != 0:
            raise ValueError("region_size must be a multiple of the line size")
        self.region_lines = region_size >> LINE_SHIFT
        self.region_size = region_size
        self.filter_entries = filter_entries
        self.accumulation_entries = accumulation_entries
        self.pht_entries = pht_entries
        # region -> (trigger_pc, trigger_offset)
        self._filter: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        # region -> (trigger signature, trigger offset, footprint bitmask)
        self._accumulation: "OrderedDict[int, Tuple[Tuple[int, int], int, int]]" = (
            OrderedDict()
        )
        # signature -> footprint bitmask *rotated relative to the trigger
        # offset* (the SMS paper anchors patterns at the trigger access so
        # they generalize across regions).
        self._pht: "OrderedDict[Tuple[int, int], int]" = OrderedDict()

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        region, offset = divmod(line, self.region_lines)

        acc = self._accumulation.get(region)
        if acc is not None:
            signature, trigger_offset, footprint = acc
            self._accumulation[region] = (
                signature,
                trigger_offset,
                footprint | (1 << offset),
            )
            self._accumulation.move_to_end(region)
            return []

        filt = self._filter.get(region)
        if filt is not None:
            # Second access to the region: promote to accumulation.
            del self._filter[region]
            trigger_pc, trigger_offset = filt
            signature = (trigger_pc, trigger_offset)
            footprint = (1 << trigger_offset) | (1 << offset)
            self._accumulate(region, signature, trigger_offset, footprint)
            return []

        # First access to the region: record in the filter table and, if
        # the signature has history, prefetch the learned footprint
        # re-anchored at this trigger offset.
        self._filter_insert(region, (pc, offset))
        signature = (pc, offset)
        relative = self._pht.get(signature)
        if relative is None:
            return []
        self._pht.move_to_end(signature)
        region_base = region * self.region_lines
        lines = [
            region_base + (offset + rel) % self.region_lines
            for rel in range(1, self.region_lines)
            if relative & (1 << rel)
        ]
        return self.candidates(lines)

    # -- table maintenance ---------------------------------------------------

    def _filter_insert(self, region: int, value: Tuple[int, int]) -> None:
        if len(self._filter) >= self.filter_entries:
            self._filter.popitem(last=False)
        self._filter[region] = value

    def _accumulate(
        self,
        region: int,
        signature: Tuple[int, int],
        trigger_offset: int,
        footprint: int,
    ) -> None:
        if len(self._accumulation) >= self.accumulation_entries:
            __, (old_sig, old_trigger, old_fp) = self._accumulation.popitem(
                last=False
            )
            self._pht_store(old_sig, old_trigger, old_fp)
        self._accumulation[region] = (signature, trigger_offset, footprint)

    def _pht_store(
        self, signature: Tuple[int, int], trigger_offset: int, footprint: int
    ) -> None:
        relative = self._rotate(footprint, trigger_offset)
        if relative == 0:
            return  # nothing beyond the trigger line: no pattern to keep
        if len(self._pht) >= self.pht_entries:
            self._pht.popitem(last=False)
        self._pht[signature] = relative

    def _rotate(self, footprint: int, trigger_offset: int) -> int:
        """Footprint re-expressed relative to the trigger (bit 0 dropped)."""
        relative = 0
        for bit in range(self.region_lines):
            if footprint & (1 << bit):
                rel = (bit - trigger_offset) % self.region_lines
                if rel != 0:
                    relative |= 1 << rel
        return relative

    def flush_training(self) -> None:
        """Commit every in-flight footprint to the PHT (end-of-trace aid)."""
        while self._accumulation:
            __, (signature, trigger_offset, footprint) = self._accumulation.popitem(
                last=False
            )
            self._pht_store(signature, trigger_offset, footprint)
