"""MISB: Efficient Metadata Management for Irregular Data Prefetching
(Wu et al., ISCA 2019) -- the paper's strongest off-chip competitor.

MISB keeps ISB's structural address space but manages the on-chip
metadata cache at *entry* granularity, divorced from the TLB, and hides
off-chip metadata latency with an accurate metadata prefetcher.  We model
exactly the parts the Triage paper measures:

* the full PS/SP maps live off chip (modeled as backing dictionaries);
* small on-chip caches hold recently used PS entries (entry-granular,
  since physical addresses have no spatial locality) and SP entries
  (line-granular: 16 consecutive structural addresses pack into one 64 B
  line, which is also what MISB's metadata prefetcher exploits);
* every off-chip metadata read/write transfers one 64 B line and is
  counted in ``pending_metadata_bytes``, which the engine drains into the
  DRAM traffic ledger -- this is the 156% traffic overhead of Figure 11;
* ``metadata_dram_accesses`` feeds the energy model of Figure 13.

Prefetch *coverage* is that of the underlying structural maps (metadata
latency is assumed hidden by MISB's metadata prefetcher, matching the
paper's "we faithfully model the latency and traffic of all metadata
requests" setup where MISB still achieves the best single-core speedup).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set

from repro.memory.address import LINE_SIZE
from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate
from repro.prefetchers.isb import IsbPrefetcher, STREAM_GRANULE

#: 4-byte metadata entries, 16 to a 64 B line.
SP_ENTRIES_PER_LINE = 16


class _MetadataCache:
    """LRU cache of metadata keys with dirty tracking.

    Keys are opaque (PS: physical line address; SP: structural line id).
    The owner charges off-chip traffic on misses and dirty evictions.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[int, bool]" = OrderedDict()  # key -> dirty
        self.hits = 0
        self.misses = 0

    def probe(self, key: int) -> bool:
        """Touch ``key``; return True on hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def install(self, key: int, dirty: bool = False) -> Optional[int]:
        """Insert ``key``; return an evicted *dirty* key (else None)."""
        if key in self._entries:
            self._entries[key] = self._entries[key] or dirty
            self._entries.move_to_end(key)
            return None
        evicted_dirty: Optional[int] = None
        if len(self._entries) >= self.capacity:
            old_key, old_dirty = self._entries.popitem(last=False)
            if old_dirty:
                evicted_dirty = old_key
        self._entries[key] = dirty
        return evicted_dirty

    def mark_dirty(self, key: int) -> None:
        if key in self._entries:
            self._entries[key] = True
            self._entries.move_to_end(key)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class MisbPrefetcher(BasePrefetcher):
    """MISB with a configurable on-chip metadata budget (default 48 KB)."""

    name = "misb"

    def __init__(
        self,
        degree: int = 1,
        onchip_bytes: int = 48 * 1024,
        entry_bytes: int = 4,
    ):
        super().__init__(degree)
        self.onchip_bytes = onchip_bytes
        # Split the budget: 2/3 to PS entries (no locality, entry-granular),
        # 1/3 to SP lines (structural locality, line-granular).
        ps_entries = max(1, (onchip_bytes * 2 // 3) // entry_bytes)
        sp_lines = max(1, (onchip_bytes // 3) // LINE_SIZE)
        self.ps_cache = _MetadataCache(ps_entries)
        self.sp_cache = _MetadataCache(sp_lines)
        self._maps = IsbPrefetcher(degree=degree)
        self._offchip_ps: Set[int] = set()  # PS entries that exist off chip
        self._offchip_sp: Set[int] = set()  # SP lines that exist off chip

    # -- traffic helpers ------------------------------------------------------

    def _offchip_read(self) -> None:
        self.pending_metadata_bytes += LINE_SIZE
        self.metadata_dram_accesses += 1

    def _offchip_write(self) -> None:
        self.pending_metadata_bytes += LINE_SIZE
        self.metadata_dram_accesses += 1

    def _touch_ps(self, line: int, dirty: bool) -> None:
        """Access the PS entry for ``line`` through the metadata cache."""
        if not self.ps_cache.probe(line):
            if line in self._offchip_ps:
                self._offchip_read()
            evicted = self.ps_cache.install(line, dirty)
            if evicted is not None:
                self._offchip_ps.add(evicted)
                self._offchip_write()
        elif dirty:
            self.ps_cache.mark_dirty(line)
        if dirty:
            self._offchip_ps.add(line)  # will exist off chip once evicted

    def _touch_sp(self, struct: int, dirty: bool) -> None:
        """Access the SP line containing ``struct``."""
        sp_line = struct // SP_ENTRIES_PER_LINE
        if not self.sp_cache.probe(sp_line):
            if sp_line in self._offchip_sp:
                self._offchip_read()
            evicted = self.sp_cache.install(sp_line, dirty)
            if evicted is not None:
                self._offchip_sp.add(evicted)
                self._offchip_write()
        elif dirty:
            self.sp_cache.mark_dirty(sp_line)
        if dirty:
            self._offchip_sp.add(sp_line)

    # -- prefetcher interface -------------------------------------------------

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        before = self._maps.mapped_pairs
        candidates = self._maps.observe(pc, line, prefetch_hit)
        trained = self._maps.mapped_pairs != before

        # Metadata-cache traffic: the trigger's PS entry (written when
        # training updated it), plus the SP line(s) backing the prediction
        # walk.  MISB's metadata prefetcher would have staged the *next*
        # SP line; we model that by touching it now (one line covers 16
        # future targets, which is where MISB's traffic advantage over
        # ISB/STMS comes from).
        self._touch_ps(line, dirty=trained)
        struct = self._maps._ps.get(line)
        if struct is not None:
            self._touch_sp(struct + 1, dirty=trained)

        return [
            PrefetchCandidate(c.line, c.context, self) for c in candidates
        ]

    @property
    def mapped_pairs(self) -> int:
        return self._maps.mapped_pairs
