"""Common prefetcher interface.

The simulation engine feeds each prefetcher the L2 access stream through
:meth:`BasePrefetcher.observe` and issues the returned candidates into the
hierarchy.  After issuing, the engine reports where each prefetch was
satisfied via :meth:`BasePrefetcher.feedback` -- Triage uses this to delay
its Hawkeye training until it knows whether a prefetch was redundant
(paper Section 3: "the policy is trained positively only when the metadata
yields a prefetch that misses in the cache").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional


@dataclass
class PrefetchCandidate:
    """A prefetch the engine should try to issue.

    ``context`` is opaque state the prefetcher wants echoed back through
    :meth:`BasePrefetcher.feedback`; ``owner`` lets hybrid prefetchers
    route feedback to the component that generated the candidate.
    """

    line: int
    context: Any = None
    owner: Optional["BasePrefetcher"] = None


class BasePrefetcher:
    """Base class: a prefetcher that observes the L2 access stream."""

    name = "base"

    def __init__(self, degree: int = 1):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        #: Bytes of off-chip metadata traffic generated since the last
        #: :meth:`drain_metadata_traffic` call (MISB uses this; on-chip
        #: prefetchers leave it at zero).
        self.pending_metadata_bytes = 0
        #: On-chip (LLC) metadata accesses, for the energy model.
        self.metadata_llc_accesses = 0
        #: Off-chip metadata accesses, for the energy model.
        self.metadata_dram_accesses = 0

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        """Consume one L2-stream event; return prefetch candidates.

        ``prefetch_hit`` distinguishes the "demand hit on a prefetched
        line" events from genuine L2 misses.
        """
        raise NotImplementedError

    def feedback(self, candidate: PrefetchCandidate, source: str) -> None:
        """Learn where an issued candidate was satisfied.

        ``source`` is ``"redundant"`` (already in L2), ``"llc"`` or
        ``"dram"`` -- the return value of ``CacheHierarchy.prefetch``.
        """

    def epoch_tick(self) -> None:
        """Hook called periodically by the engine (partition updates etc.)."""

    def drain_metadata_traffic(self) -> int:
        """Return and reset bytes of off-chip metadata traffic."""
        nbytes = self.pending_metadata_bytes
        self.pending_metadata_bytes = 0
        return nbytes

    def candidates(self, lines: List[int], context: Any = None) -> List[PrefetchCandidate]:
        """Helper: wrap raw line addresses as candidates owned by ``self``."""
        return [PrefetchCandidate(line, context, self) for line in lines]
