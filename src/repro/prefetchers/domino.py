"""Domino temporal prefetcher (Bakhshalipour et al., HPCA 2018).

Domino improves on STMS by indexing the history buffer with the *pair* of
the last two misses instead of a single address, which disambiguates
streams that share a common address.  Like STMS it is global-stream and
keeps its metadata off chip; following the paper we model it idealized
(instant, traffic-free metadata).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.prefetchers.base import BasePrefetcher, PrefetchCandidate


class DominoPrefetcher(BasePrefetcher):
    """Idealized two-miss-indexed temporal streaming."""

    name = "domino"

    def __init__(self, degree: int = 1, history_capacity: int = 1 << 22):
        super().__init__(degree)
        self.history_capacity = history_capacity
        self._history: List[int] = []
        self._pair_index: Dict[Tuple[int, int], int] = {}
        self._single_index: Dict[int, int] = {}
        self._last_line: Optional[int] = None

    def observe(
        self, pc: int, line: int, prefetch_hit: bool = False
    ) -> List[PrefetchCandidate]:
        if len(self._history) >= self.history_capacity:
            self._compact()
        pos = len(self._history)
        pair_pos = None
        if self._last_line is not None:
            pair = (self._last_line, line)
            pair_pos = self._pair_index.get(pair)
            self._pair_index[pair] = pos
        single_pos = self._single_index.get(line)
        self._single_index[line] = pos

        self._history.append(line)
        self._last_line = line

        # Prefer the pair match (more precise); fall back to single-address.
        anchor = pair_pos if pair_pos is not None else single_pos
        if anchor is None:
            return []
        successors = self._history[anchor + 1 : anchor + 1 + self.degree]
        return self.candidates([s for s in successors if s != line])

    def _compact(self) -> None:
        cut = len(self._history) // 2
        self._history = self._history[cut:]
        self._pair_index = {
            k: pos - cut for k, pos in self._pair_index.items() if pos >= cut
        }
        self._single_index = {
            k: pos - cut for k, pos in self._single_index.items() if pos >= cut
        }
