"""Workload and metadata analysis tools.

These are the instruments used to *design* the synthetic workloads and
to check that they exhibit the statistics the paper's arguments rest on
(reuse-distance profile, metadata footprint and reuse skew, PC-stream
stability).  They work on any :class:`~repro.workloads.base.Trace`,
including ones loaded from disk.
"""

from repro.analysis.reuse import (
    metadata_footprint,
    pair_stability_profile,
    reuse_distance_histogram,
    working_set_lines,
)

__all__ = [
    "metadata_footprint",
    "pair_stability_profile",
    "reuse_distance_histogram",
    "working_set_lines",
]
