"""Reuse-distance and metadata-footprint profiling.

*Reuse distance* (number of distinct lines touched between consecutive
uses of the same line) determines which cache level can capture a
workload's reuse: a reuse distance beyond the LLC's line count is a
guaranteed miss for any replacement policy -- the population temporal
prefetching feeds on.

*Metadata footprint* mirrors Triage's training: it counts the distinct
PC-localized correlation pairs a trace generates (one 4-byte entry
each) and their reuse skew -- the Figure 1 statistic, computable for
any trace without running a simulation.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.workloads.base import Trace


def working_set_lines(trace: Trace) -> int:
    """Distinct cache lines the trace touches."""
    return len({addr >> 6 for addr in trace.addrs})


class _Fenwick:
    """Binary indexed tree over access timestamps (for exact reuse
    distances in O(log n) per access)."""

    def __init__(self, n: int):
        self._tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i < len(self._tree):
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        i += 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def range(self, lo: int, hi: int) -> int:
        """Sum over [lo, hi] inclusive."""
        if hi < lo:
            return 0
        return self.prefix(hi) - (self.prefix(lo - 1) if lo > 0 else 0)


def reuse_distance_histogram(
    trace: Trace, bucket_edges: Tuple[int, ...] = (512, 2048, 8192, 32768)
) -> Dict[str, int]:
    """Bucketed exact reuse-distance counts (distinct lines between
    consecutive uses of a line; Mattson stack distances).

    Buckets are labelled ``<=edge`` plus a final ``>last`` and a
    ``cold`` bucket for first touches.  Edges default to the scaled
    machine's L1/L2/LLC line counts, so the histogram reads directly as
    "hits possible at this level".  O(n log n) via a Fenwick tree.
    """
    n = len(trace.addrs)
    marks = _Fenwick(n)  # 1 at the latest timestamp of each live line
    seen_at: Dict[int, int] = {}
    histogram: Counter = Counter()
    for t, addr in enumerate(trace.addrs):
        line = addr >> 6
        prev = seen_at.get(line)
        if prev is None:
            histogram["cold"] += 1
        else:
            distinct = marks.range(prev + 1, t - 1)
            for edge in bucket_edges:
                if distinct <= edge:
                    histogram[f"<={edge}"] += 1
                    break
            else:
                histogram[f">{bucket_edges[-1]}"] += 1
            marks.add(prev, -1)
        seen_at[line] = t
        marks.add(t, 1)
    return dict(histogram)


def metadata_footprint(trace: Trace) -> Dict[str, float]:
    """Triage-style metadata statistics for a trace.

    Returns the number of distinct PC-localized pairs (= metadata
    entries an unbounded store would hold), the bytes they would occupy
    at 4 B/entry, and the Figure-1 skew numbers (share of entries reused
    more than 5x / 15x).
    """
    last_by_pc: Dict[int, int] = {}
    pair_seen: Dict[int, int] = {}  # trigger -> times re-trained
    reuse: Counter = Counter()
    for pc, addr, _ in trace:
        line = addr >> 6
        prev = last_by_pc.get(pc)
        if prev is not None and prev != line:
            if prev in pair_seen:
                reuse[prev] += 1
            pair_seen[prev] = line
        last_by_pc[pc] = line
    entries = len(pair_seen)
    more_than_5 = sum(1 for c in reuse.values() if c > 5)
    more_than_15 = sum(1 for c in reuse.values() if c > 15)
    return {
        "entries": entries,
        "bytes": entries * 4,
        "share_reused_gt5": more_than_5 / entries if entries else 0.0,
        "share_reused_gt15": more_than_15 / entries if entries else 0.0,
    }


def pair_stability_profile(trace: Trace) -> float:
    """Fraction of re-trained correlation pairs whose successor repeats.

    1.0 = perfectly repeatable traversals (chains); near 0 = reuse
    without order (the bzip2 anti-pattern).  This is the trace-level
    counterpart of ``MetadataStore.pair_stability``.
    """
    last_by_pc: Dict[int, int] = {}
    successor: Dict[int, int] = {}
    agree = 0
    conflict = 0
    for pc, addr, _ in trace:
        line = addr >> 6
        prev = last_by_pc.get(pc)
        if prev is not None and prev != line:
            old = successor.get(prev)
            if old is not None:
                if old == line:
                    agree += 1
                else:
                    conflict += 1
            successor[prev] = line
        last_by_pc[pc] = line
    total = agree + conflict
    return agree / total if total else 1.0
