"""Deterministic, seeded fault injection for the resilience test harness.

Real sweep fleets die in boring ways -- a worker OOMs, a cache entry is
truncated by a power cut, a trace read hits a flaky filesystem, a
payload will not pickle.  ``repro.faults`` lets tests (and the CI chaos
leg) inject exactly those failures at configurable rates, **without any
randomness across runs**: every fire/no-fire decision is a pure function
of ``(seed, site, token, attempt)``, so a chaos run is as reproducible
as a clean one.

Sites (where the harness consults the plan) are declared -- and
documented -- in exactly one place, :data:`SITE_REGISTRY`; a new
fault-consulting subsystem adds its sites there and nowhere else.

Configuration -- API or environment::

    faults.configure("worker_crash:0.2,cache_corrupt:0.1", seed=7)
    # or: REPRO_FAULTS="worker_crash:0.2,cache_corrupt:0.1" REPRO_FAULTS_SEED=7

Each clause is ``site:rate[:max_attempt]``.  ``rate`` is the fire
probability per decision; ``max_attempt`` (default
:data:`DEFAULT_MAX_ATTEMPT`) stops the site firing for a given operation
once its attempt counter reaches that value, so any harness retrying at
least that many times is *guaranteed* to converge.  Injection is wholly
inert unless configured -- every hook is one ``_PLAN is None`` check.

A typo'd site name in :func:`configure` raises immediately.  The same
typo in ``REPRO_FAULTS`` used to surface only as a ``ValueError`` raised
from deep inside the first simulation that consulted the plan; now the
unknown clause is dropped with a once-per-site stderr warning (and a
``faults.unknown_site`` obs event when a session is active), so a chaos
run with a misspelled site runs clean instead of crashing mid-sweep --
and tells you which clause it ignored.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "DEFAULT_MAX_ATTEMPT",
    "SITE_REGISTRY",
    "SITES",
    "FaultPlan",
    "InjectedFault",
    "active",
    "configure",
    "fire",
    "get_plan",
    "mark_worker",
    "plan_from_env",
    "reset",
    "should_fire",
]

#: After this many attempts at one operation, a site stops firing (so a
#: retrying harness always converges).  Override per site in the spec.
DEFAULT_MAX_ATTEMPT = 2

#: The single authoritative registry of fault sites: name -> what firing
#: it does.  The parser accepts exactly these names; docs/resilience.md
#: and docs/serving.md point here rather than keeping their own lists.
SITE_REGISTRY: Dict[str, str] = {
    "worker_crash": (
        "sweep worker hard-exits (os._exit) before returning its result, "
        "producing BrokenProcessPool in the parent; raises InjectedFault "
        "in serial (in-process) execution"
    ),
    "cell_timeout": (
        "worker sleeps REPRO_FAULT_SLEEP seconds (default 0.5) before "
        "running its cell, so a parent-enforced per-cell timeout trips"
    ),
    "cache_corrupt": (
        "a just-written cache entry is truncated to garbage, exercising "
        "the corruption-as-miss read path"
    ),
    "trace_io": "a cache trace read raises OSError mid-lookup",
    "pickle": (
        "payload submission raises InjectedFault in the parent, standing "
        "in for an unpicklable payload"
    ),
    "serve_worker_crash": (
        "a serve backend worker dies mid-request (raises InjectedFault); "
        "the circuit breaker records the failure and the request is "
        "retried on a later attempt"
    ),
    "serve_slow_reply": (
        "a serve backend worker stalls for the service's slow_reply_s "
        "before executing, so per-request deadlines and the degradation "
        "ladder's p95 signal both trip"
    ),
    "serve_deadline": (
        "a serve request's deadline is treated as already expired at "
        "execution time: an explicit DeadlineExceeded rejection with no "
        "session-state mutation"
    ),
}

#: Site names the parser accepts (kept as a tuple for existing callers).
SITES = tuple(SITE_REGISTRY)


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection framework."""

    def __init__(self, site: str, token: str):
        super().__init__(f"injected fault at site {site!r} (token {token})")
        self.site = site
        self.token = token


@dataclass(frozen=True)
class SiteSpec:
    rate: float
    max_attempt: int


class FaultPlan:
    """A parsed fault specification plus the deterministic decision rule."""

    def __init__(self, sites: Dict[str, SiteSpec], seed: int = 0):
        self.sites = dict(sites)
        self.seed = int(seed)

    @classmethod
    def parse(
        cls, spec: str, seed: int = 0, on_unknown: str = "raise"
    ) -> "FaultPlan":
        """Parse ``"site:rate[:max_attempt],..."`` into a plan.

        ``on_unknown`` controls what a clause naming an unregistered site
        does: ``"raise"`` (the default, used by :func:`configure`) raises
        ``ValueError``; ``"warn"`` (used for ``REPRO_FAULTS``) drops the
        clause with a once-per-site warning, so an environment typo
        cannot crash a run from deep inside the first fault hook.
        """
        if on_unknown not in ("raise", "warn"):
            raise ValueError(f"on_unknown must be 'raise' or 'warn', not {on_unknown!r}")
        sites: Dict[str, SiteSpec] = {}
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"bad fault clause {clause!r}; want site:rate[:max_attempt]"
                )
            site = parts[0].strip()
            if site not in SITE_REGISTRY:
                if on_unknown == "warn":
                    _warn_unknown_site(site)
                    continue
                raise ValueError(
                    f"unknown fault site {site!r}; want one of {SITES}"
                )
            rate = float(parts[1])
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {rate} out of [0, 1] for {site!r}")
            max_attempt = int(parts[2]) if len(parts) == 3 else DEFAULT_MAX_ATTEMPT
            sites[site] = SiteSpec(rate=rate, max_attempt=max_attempt)
        return cls(sites, seed=seed)

    def to_spec(self) -> str:
        """Render back to the ``site:rate[:max_attempt]`` string form."""
        return ",".join(
            f"{site}:{spec.rate}:{spec.max_attempt}"
            for site, spec in sorted(self.sites.items())
        )

    def should_fire(self, site: str, token: str, attempt: int = 0) -> bool:
        """Deterministic fire decision for one (site, operation, attempt).

        The decision is ``H(seed, site, token, attempt) < rate`` with H a
        SHA-256-derived uniform in [0, 1): the same inputs always give
        the same answer, and distinct attempts re-roll independently.
        """
        spec = self.sites.get(site)
        if spec is None or spec.rate <= 0.0:
            return False
        if attempt >= spec.max_attempt:
            return False
        digest = hashlib.sha256(
            f"{self.seed}\x00{site}\x00{token}\x00{attempt}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < spec.rate


def _warn_unknown_site(site: str) -> None:
    """Warn once per typo'd ``REPRO_FAULTS`` site, never once per hook.

    Deduplication and emission go through the shared
    :func:`repro.config.warn_once` discipline; :func:`reset` forgets
    these keys so tests see the warning again.
    """
    from repro import config  # lazy: faults is imported very early

    config.warn_once(
        ("faults.unknown_site", site),
        f"REPRO_FAULTS names unknown fault site {site!r} "
        f"(ignored); registered sites: {', '.join(SITES)}",
        category="faults.unknown_site",
        site=site,
        known=list(SITES),
    )


#: The process-wide plan; ``None`` (the default) disarms every hook.
_PLAN: Optional[FaultPlan] = None
#: Set by worker entry points so process-killing sites know it is safe.
_IN_WORKER = False
#: Tally of fired faults by site, for tests and reports.
FIRED: Dict[str, int] = {}


def configure(spec: Optional[str], seed: int = 0) -> Optional[FaultPlan]:
    """Install (and return) a process-wide plan; ``None``/"" disarms."""
    global _PLAN
    _PLAN = FaultPlan.parse(spec, seed=seed) if spec else None
    return _PLAN


def reset() -> None:
    """Disarm injection and clear the fired tally (test teardown)."""
    global _PLAN
    _PLAN = None
    FIRED.clear()
    from repro import config  # lazy: faults is imported very early

    config.forget_warnings("faults.unknown_site")


def plan_from_env() -> Optional[FaultPlan]:
    """A plan from ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``, or ``None``.

    Unknown site names are dropped with a once-per-site warning (see
    :meth:`FaultPlan.parse`); a plan whose every clause was dropped is
    still returned (empty), which is inert.
    """
    spec = os.environ.get("REPRO_FAULTS", "")
    if not spec:
        return None
    seed = int(os.environ.get("REPRO_FAULTS_SEED", "0") or 0)
    return FaultPlan.parse(spec, seed=seed, on_unknown="warn")


def get_plan() -> Optional[FaultPlan]:
    """The armed plan: :func:`configure`'s, else the environment's."""
    if _PLAN is not None:
        return _PLAN
    return plan_from_env()


def active() -> bool:
    return get_plan() is not None


def mark_worker(flag: bool = True) -> None:
    """Declare this process a pool worker (enables hard-exit sites)."""
    global _IN_WORKER
    _IN_WORKER = flag


def in_worker() -> bool:
    return _IN_WORKER


def should_fire(site: str, token: str, attempt: int = 0) -> bool:
    """Consult the armed plan (and tally); ``False`` when disarmed."""
    plan = get_plan()
    if plan is None:
        return False
    if not plan.should_fire(site, token, attempt):
        return False
    FIRED[site] = FIRED.get(site, 0) + 1
    return True


def fire(site: str, token: str, attempt: int = 0) -> None:
    """Act on a fire decision (no-op when the plan says no).

    ``worker_crash`` hard-exits pool workers and raises in-process;
    ``cell_timeout`` sleeps (the parent's deadline does the failing);
    every other site raises :class:`InjectedFault`.
    """
    if not should_fire(site, token, attempt):
        return
    if site == "worker_crash" and in_worker():
        os._exit(17)
    if site == "cell_timeout":
        import time

        time.sleep(float(os.environ.get("REPRO_FAULT_SLEEP", "0.5")))
        return
    raise InjectedFault(site, token)


def corrupt_file(path, site: str, token: str, attempt: int = 0) -> bool:
    """Truncate ``path`` to garbage if ``site`` fires; returns whether."""
    if not should_fire(site, token, attempt):
        return False
    try:
        with open(path, "wb") as fh:
            fh.write(b"\x00corrupt\x00")
    except OSError:
        pass
    return True
