"""Scoped wall-time attribution to named simulation phases.

``python -m repro profile <exp>`` answers "where does the wall time go"
without a real profiler's overhead: the engines bracket their phases
(trace generation, the L2 demand stream, the prefetcher, Triage's
metadata store) with :meth:`PhaseTimer.phase` or accumulate raw seconds
via :meth:`PhaseTimer.add`.  When profiling is off the engines skip the
timing calls entirely, so this module costs nothing by default.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Tuple


class PhaseTimer:
    """Accumulates (seconds, call count) per phase name."""

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` of wall time (over ``calls`` calls) to a phase."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + calls

    @contextmanager
    def phase(self, name: str):
        """Context manager form of :meth:`add`."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    # -- reporting -------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def sorted_phases(self) -> List[Tuple[str, float, int]]:
        """(name, seconds, calls), most expensive first."""
        return sorted(
            (
                (name, secs, self.calls.get(name, 0))
                for name, secs in self.seconds.items()
            ),
            key=lambda item: -item[1],
        )

    def table(self) -> str:
        """Aligned text table of phases with their share of total time."""
        total = self.total_seconds
        rows = [("phase", "seconds", "share", "calls")]
        for name, secs, calls in self.sorted_phases():
            share = secs / total if total else 0.0
            rows.append((name, f"{secs:.3f}", f"{share:6.1%}", str(calls)))
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        lines = ["== Wall-time by phase =="]
        for i, row in enumerate(rows):
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
            if i == 0:
                lines.append("-" * (sum(widths) + 6))
        lines.append(f"total: {total:.3f}s")
        return "\n".join(lines)
