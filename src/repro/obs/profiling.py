"""Scoped wall-time attribution to named simulation phases.

``python -m repro profile <exp>`` answers "where does the wall time go"
without a real profiler's overhead: the engines bracket their phases
(trace generation, the L2 demand stream, the prefetcher, Triage's
metadata store) with :meth:`PhaseTimer.phase` or accumulate raw seconds
via :meth:`PhaseTimer.add`.  When profiling is off the engines skip the
timing calls entirely, so this module costs nothing by default.

Beyond totals, each phase tracks the per-call spread (mean/min/max over
the individual :meth:`~PhaseTimer.add`/:meth:`~PhaseTimer.phase`
credits), which is what the benchmark harness's timing tables
(:mod:`repro.obs.bench`) consume.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Tuple


class PhaseTimer:
    """Accumulates (seconds, call count, min/max credit) per phase name."""

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.min_seconds: Dict[str, float] = {}
        self.max_seconds: Dict[str, float] = {}

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` of wall time (over ``calls`` calls) to a phase."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + calls
        # Min/max track one *credit* each; a batched add (calls > 1)
        # contributes its per-call average, the only per-call figure it
        # still carries.
        per_call = seconds / calls if calls > 0 else seconds
        if name in self.min_seconds:
            self.min_seconds[name] = min(self.min_seconds[name], per_call)
            self.max_seconds[name] = max(self.max_seconds[name], per_call)
        else:
            self.min_seconds[name] = per_call
            self.max_seconds[name] = per_call

    @contextmanager
    def phase(self, name: str):
        """Context manager form of :meth:`add`."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    # -- reporting -------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def mean_seconds(self, name: str) -> float:
        calls = self.calls.get(name, 0)
        return self.seconds.get(name, 0.0) / calls if calls else 0.0

    def sorted_phases(self) -> List[Tuple[str, float, int, float, float, float]]:
        """(name, seconds, calls, mean, min, max), most expensive first.

        Ties on total seconds break alphabetically, so the ordering is
        stable across runs and the bench timing tables diff cleanly.
        """
        return sorted(
            (
                (
                    name,
                    secs,
                    self.calls.get(name, 0),
                    self.mean_seconds(name),
                    self.min_seconds.get(name, 0.0),
                    self.max_seconds.get(name, 0.0),
                )
                for name, secs in self.seconds.items()
            ),
            key=lambda item: (-item[1], item[0]),
        )

    def table(self) -> str:
        """Aligned text table of phases with their share of total time."""
        total = self.total_seconds
        rows = [("phase", "seconds", "share", "calls", "mean", "min", "max")]
        for name, secs, calls, mean, lo, hi in self.sorted_phases():
            share = secs / total if total else 0.0
            rows.append(
                (
                    name,
                    f"{secs:.3f}",
                    f"{share:6.1%}",
                    str(calls),
                    f"{mean:.6f}",
                    f"{lo:.6f}",
                    f"{hi:.6f}",
                )
            )
        widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
        lines = ["== Wall-time by phase =="]
        for i, row in enumerate(rows):
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
            if i == 0:
                lines.append("-" * (sum(widths) + 6))
        lines.append(f"total: {total:.3f}s")
        return "\n".join(lines)
