"""Render a flushed observability directory back into readable tables.

``python -m repro report <dir>`` points here.  A run directory is what
:meth:`repro.obs.ObsSession.flush` wrote: ``manifests.jsonl``,
``epochs.jsonl`` (+ ``.csv``), ``events.jsonl``, ``metrics.json`` and
optionally ``profile.txt``.  A bare ``*.jsonl`` file is also accepted
and treated as an epoch time-series.

The epoch table is the diagnosis tool for diverging figures: it shows,
per run and per epoch, the per-core metadata way split, store hit rate,
DRAM utilization and coverage -- the internal trajectory behind the
end-of-run aggregate (see ``docs/observability.md``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: Epoch columns promoted to the front of the table when present.
_LEAD_COLUMNS = ("run", "epoch")
#: Epoch columns rendered by default (suffix match on flattened names).
_DEFAULT_SUFFIXES = (
    "meta_ways",
    "llc_data_ways",
    "meta_capacity_bytes",
    "meta_hit_rate",
    "dram_utilization",
    "coverage",
)


def _read_jsonl(path: Path) -> List[Dict[str, object]]:
    rows = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def load_run_dir(path) -> Dict[str, object]:
    """Load whatever observability artifacts exist under ``path``."""
    path = Path(path)
    if path.is_file():
        return {"manifests": [], "epochs": _read_jsonl(path), "events": [], "metrics": {}}
    if not path.is_dir():
        raise FileNotFoundError(f"no such run directory: {path}")
    out: Dict[str, object] = {"manifests": [], "epochs": [], "events": [], "metrics": {}}
    manifests = path / "manifests.jsonl"
    if manifests.exists():
        out["manifests"] = _read_jsonl(manifests)
    epochs = path / "epochs.jsonl"
    if epochs.exists():
        out["epochs"] = _read_jsonl(epochs)
    events = path / "events.jsonl"
    if events.exists():
        out["events"] = _read_jsonl(events)
    metrics = path / "metrics.json"
    if metrics.exists():
        out["metrics"] = json.loads(metrics.read_text())
    profile = path / "profile.txt"
    if profile.exists():
        out["profile"] = profile.read_text().rstrip("\n")
    return out


def _format_table(headers: Sequence[str], rows: List[List[object]], title: str) -> str:
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        if cell is None:
            return "-"
        return str(cell)

    table = [list(headers)] + [[fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = [f"== {title} =="]
    for i, row in enumerate(table):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def _epoch_columns(rows: List[Dict[str, object]], columns: Optional[Sequence[str]]) -> List[str]:
    seen: Dict[str, None] = {}
    for row in rows:
        for key in row:
            seen.setdefault(key, None)
    if columns:
        picked = [c for c in seen if c in columns]
    else:
        picked = [
            c for c in seen
            if c not in _LEAD_COLUMNS and c.endswith(tuple(_DEFAULT_SUFFIXES))
        ]
        if not picked:  # fall back to everything this sampler recorded
            picked = [c for c in seen if c not in _LEAD_COLUMNS]
    lead = [c for c in _LEAD_COLUMNS if c in seen]
    return lead + picked


def epochs_table(
    rows: List[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "Epoch time-series",
) -> str:
    """The epoch rows as one table (way-split columns by default)."""
    if not rows:
        return f"== {title} ==\n(no epoch samples)"
    headers = _epoch_columns(rows, columns)
    body = [[row.get(h) for h in headers] for row in rows]
    return _format_table(headers, body, title)


def manifests_table(manifests: List[Dict[str, object]]) -> str:
    headers = ["kind", "workloads", "prefetcher", "trace_len", "warmup", "seeds", "wall_s"]
    rows = [
        [
            m.get("kind"),
            ",".join(m.get("workloads", [])),
            m.get("prefetcher"),
            m.get("trace_length"),
            m.get("warmup"),
            ",".join(str(s) for s in m.get("seeds", [])),
            m.get("wall_time_s"),
        ]
        for m in manifests
    ]
    return _format_table(headers, rows, "Run manifests")


def events_table(events: List[Dict[str, object]], tail: int = 8) -> str:
    counts: Dict[str, int] = {}
    for event in events:
        key = f"{event.get('category')}/{event.get('severity')}"
        counts[key] = counts.get(key, 0) + 1
    rows = [[k, v] for k, v in sorted(counts.items())]
    out = _format_table(["category/severity", "count"], rows, "Trace events")
    if events and tail > 0:
        out += "\nlast events:"
        for event in events[-tail:]:
            out += "\n  " + json.dumps(event, sort_keys=True)
    return out


def render_report(
    path,
    columns: Optional[Sequence[str]] = None,
    events_tail: int = 8,
) -> str:
    """The full textual report for one run directory (or epochs file).

    ``events_tail`` is how many of the newest trace events are echoed
    verbatim below the per-category counts (``--events-tail`` on the
    ``report`` CLI).
    """
    data = load_run_dir(path)
    sections = []
    if data["manifests"]:
        sections.append(manifests_table(data["manifests"]))
    sections.append(epochs_table(data["epochs"], columns=columns))
    if data["events"]:
        sections.append(events_table(data["events"], tail=events_tail))
    if data["metrics"]:
        rows = [[name, value] for name, value in sorted(data["metrics"].items())
                if not isinstance(value, dict)]
        hist_rows = [[name, json.dumps(value)] for name, value in sorted(data["metrics"].items())
                     if isinstance(value, dict)]
        sections.append(_format_table(["metric", "value"], rows + hist_rows, "Metrics"))
    if "profile" in data:
        sections.append(data["profile"])
    return "\n\n".join(sections)
