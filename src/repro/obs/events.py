"""Ring-buffered structured trace events with severity/category filters.

Discrete happenings that a time-series cannot capture -- a partition
re-decision, a Hawkeye prediction flip, a metadata eviction -- are
emitted as :class:`TraceEvent` records into a bounded ring buffer (old
events fall off rather than growing memory without bound on long runs).
Producers are component hooks (``store.events.emit(...)``) that the
simulation engines attach only when observability is on.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Ascending severity order; filters keep events at or above a level.
SEVERITIES = ("debug", "info", "warn", "error")
_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}

#: Ring capacity when neither the caller nor ``REPRO_OBS_EVENTS`` says
#: otherwise.  Large enough for any single experiment's event volume,
#: small enough that an abandoned session cannot hold real memory.
DEFAULT_CAPACITY = 65_536


def capacity_from_env(default: int = DEFAULT_CAPACITY) -> int:
    """Ring capacity from ``REPRO_OBS_EVENTS``, else ``default``.

    Invalid, zero or negative values warn once (stderr plus a
    ``config.invalid_env`` trace event) and fall back to ``default`` --
    the shared :func:`repro.config.positive_env` discipline also applied
    to ``REPRO_JOBS``/``REPRO_RETRIES``/``REPRO_TRACE``.
    """
    from repro.config import positive_env  # lazy: keep obs imports light

    value = positive_env("REPRO_OBS_EVENTS", int, minimum=1)
    return int(value) if value is not None else default


@dataclass(slots=True)
class TraceEvent:
    """One structured event: identity, classification, free-form fields."""

    seq: int
    category: str
    severity: str
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "category": self.category,
            "severity": self.severity,
            **self.fields,
        }


class TraceEventStream:
    """Bounded event sink with category/severity admission control.

    ``categories=None`` admits every category; otherwise only listed
    category *prefixes* pass (``"partition"`` admits
    ``"partition.decision"``).  ``min_severity`` drops anything below the
    given level.  ``emitted`` counts accepted events even after they age
    out of the ring; ``filtered`` counts rejected ones.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        min_severity: str = "debug",
        categories: Optional[Sequence[str]] = None,
    ):
        if capacity is None:
            capacity = capacity_from_env()
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if min_severity not in _RANK:
            raise ValueError(f"unknown severity {min_severity!r}; want one of {SEVERITIES}")
        self.capacity = capacity
        self.min_rank = _RANK[min_severity]
        self.categories: Optional[Tuple[str, ...]] = (
            tuple(categories) if categories is not None else None
        )
        self._ring: deque = deque(maxlen=capacity)
        self.emitted = 0
        self.filtered = 0

    def _admits(self, category: str, severity: str) -> bool:
        if _RANK.get(severity, 0) < self.min_rank:
            return False
        if self.categories is None:
            return True
        return any(
            category == c or category.startswith(c + ".") for c in self.categories
        )

    def emit(self, category: str, severity: str = "info", **fields) -> bool:
        """Record one event; returns whether it passed the filters."""
        rank = _RANK.get(severity)
        if rank is None:
            raise ValueError(f"unknown severity {severity!r}; want one of {SEVERITIES}")
        if rank < self.min_rank or (
            self.categories is not None and not self._admits(category, severity)
        ):
            self.filtered += 1
            return False
        self._ring.append(TraceEvent(self.emitted, category, severity, fields))
        self.emitted += 1
        return True

    # -- inspection ------------------------------------------------------

    def events(
        self, category: Optional[str] = None, severity: Optional[str] = None
    ) -> List[TraceEvent]:
        """Buffered events, optionally narrowed by category prefix/severity."""
        out = list(self._ring)
        if category is not None:
            out = [
                e
                for e in out
                if e.category == category or e.category.startswith(category + ".")
            ]
        if severity is not None:
            rank = _RANK[severity]
            out = [e for e in out if _RANK[e.severity] >= rank]
        return out

    def counts_by_category(self) -> Dict[str, int]:
        return dict(TallyCounter(e.category for e in self._ring))

    def __len__(self) -> int:
        return len(self._ring)

    # -- export ----------------------------------------------------------

    def write_jsonl(self, path) -> Path:
        """One JSON object per line, oldest first."""
        path = Path(path)
        with path.open("w") as fh:
            for event in self._ring:
                fh.write(json.dumps(event.to_dict()) + "\n")
        return path
