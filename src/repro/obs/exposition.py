"""Prometheus text exposition (v0.0.4) for the metrics registry.

Renders a :class:`~repro.obs.registry.MetricsRegistry` -- plus ad-hoc
counter/gauge dicts such as a :class:`~repro.serve.service.PrefetchService`'s
health snapshot -- into the plain-text scrape format::

    # HELP repro_serve_served_total ...
    # TYPE repro_serve_served_total counter
    repro_serve_served_total 8123

Mapping rules:

* dotted registry names become underscore-joined metric names under the
  ``repro_`` prefix (``serve.queue_depth`` -> ``repro_serve_queue_depth``);
* counters get the conventional ``_total`` suffix;
* log2 histograms render as cumulative ``_bucket{le="..."}`` series
  (upper bounds are the registry's ``2**i - 1`` geometry) plus ``_sum``
  and ``_count``, with the mandatory ``le="+Inf"`` bucket;
* string-valued states render as a labeled info-style gauge
  (``repro_serve_health{status="degraded"} 1``).

:func:`parse_text` is the matching validating parser -- the CI lint that
keeps ``repro metrics`` output actually scrapeable: it enforces name
syntax, TYPE-before-samples, no duplicate series, monotonic cumulative
buckets and ``_count`` == the ``+Inf`` bucket.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["ExpositionError", "parse_text", "render"]

#: Prometheus metric-name syntax (we never emit a colon).
_METRIC_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_LABEL_RE = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\{(?P<labels>[^}]*)\}$')


class ExpositionError(ValueError):
    """The text is not valid Prometheus exposition format."""


def _mangle(dotted: str, prefix: str) -> str:
    return f"{prefix}_{dotted.replace('.', '_')}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _counter_lines(name: str, value: float, help_text: str) -> List[str]:
    return [
        f"# HELP {name}_total {help_text}",
        f"# TYPE {name}_total counter",
        f"{name}_total {_format_value(value)}",
    ]


def _gauge_lines(name: str, value: float, help_text: str) -> List[str]:
    return [
        f"# HELP {name} {help_text}",
        f"# TYPE {name} gauge",
        f"{name} {_format_value(value)}",
    ]


def _histogram_lines(name: str, hist: Histogram, help_text: str) -> List[str]:
    lines = [
        f"# HELP {name} {help_text}",
        f"# TYPE {name} histogram",
    ]
    cumulative = 0
    for i, count in enumerate(hist.counts):
        cumulative += count
        lines.append(
            f'{name}_bucket{{le="{hist.bucket_upper_bound(i)}"}} {cumulative}'
        )
    lines.append(f'{name}_bucket{{le="+Inf"}} {hist.total}')
    lines.append(f"{name}_sum {_format_value(hist.sum)}")
    lines.append(f"{name}_count {hist.total}")
    return lines


def render(
    registry: Optional[MetricsRegistry] = None,
    counters: Optional[Dict[str, float]] = None,
    gauges: Optional[Dict[str, float]] = None,
    states: Optional[Dict[str, str]] = None,
    prefix: str = "repro",
) -> str:
    """The registry (and extras) as Prometheus text exposition.

    ``counters``/``gauges`` take dotted names like the registry;
    ``states`` maps a dotted name to a string rendered as a labeled
    ``{state="..."} 1`` gauge.  Output is sorted by metric name, so
    identical inputs render byte-identically.
    """
    blocks: List[Tuple[str, List[str]]] = []
    if registry is not None:
        for dotted in registry.names():
            metric = registry.get(dotted)
            name = _mangle(dotted, prefix)
            help_text = f"repro metric {dotted}"
            if isinstance(metric, Counter):
                blocks.append((name, _counter_lines(name, metric.value, help_text)))
            elif isinstance(metric, Gauge):
                blocks.append((name, _gauge_lines(name, metric.value, help_text)))
            elif isinstance(metric, Histogram):
                blocks.append((name, _histogram_lines(name, metric, help_text)))
    for dotted, value in (counters or {}).items():
        name = _mangle(dotted, prefix)
        blocks.append((name, _counter_lines(name, value, f"repro counter {dotted}")))
    for dotted, value in (gauges or {}).items():
        name = _mangle(dotted, prefix)
        blocks.append((name, _gauge_lines(name, value, f"repro gauge {dotted}")))
    for dotted, state in (states or {}).items():
        name = _mangle(dotted, prefix)
        blocks.append(
            (
                name,
                [
                    f"# HELP {name} repro state {dotted}",
                    f"# TYPE {name} gauge",
                    f'{name}{{state="{_escape_label(str(state))}"}} 1',
                ],
            )
        )
    lines: List[str] = []
    for _, block in sorted(blocks, key=lambda item: item[0]):
        lines.extend(block)
    return "\n".join(lines) + "\n" if lines else ""


# -- the validating parser (CI lint) -----------------------------------------


def _parse_sample(line: str) -> Tuple[str, Dict[str, str], float]:
    parts = line.rsplit(" ", 1)
    if len(parts) != 2:
        raise ExpositionError(f"malformed sample line: {line!r}")
    series, raw_value = parts
    labels: Dict[str, str] = {}
    match = _LABEL_RE.match(series)
    if match:
        name = match.group("name")
        body = match.group("labels")
        if body:
            for pair in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"', body):
                labels[pair[0]] = pair[1]
            if not re.fullmatch(
                r'\s*(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"\s*,?\s*)*', body
            ):
                raise ExpositionError(f"malformed labels in: {line!r}")
    else:
        name = series
    if not _METRIC_RE.match(name):
        raise ExpositionError(f"invalid metric name {name!r}")
    try:
        value = float(raw_value)
    except ValueError as exc:
        raise ExpositionError(f"invalid sample value in {line!r}") from exc
    return name, labels, value


def _family_of(name: str, types: Dict[str, str]) -> Optional[str]:
    """The declared family a sample belongs to, honoring suffixes."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def parse_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse (and validate) exposition text; family name -> details.

    Raises :class:`ExpositionError` on any violation a Prometheus
    scraper would reject (plus the stricter conventions ``render``
    guarantees: every sample is preceded by its TYPE declaration, no
    duplicate series, cumulative histogram buckets are monotonic and
    consistent with ``_count``).
    """
    types: Dict[str, str] = {}
    families: Dict[str, Dict[str, object]] = {}
    seen_series: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ExpositionError(f"line {lineno}: malformed HELP: {line!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ExpositionError(f"line {lineno}: malformed TYPE: {line!r}")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ExpositionError(f"line {lineno}: unknown type {kind!r}")
            family = name[:-6] if kind == "counter" and name.endswith("_total") else name
            if family in types:
                raise ExpositionError(f"line {lineno}: duplicate TYPE for {family!r}")
            types[family] = kind
            families[family] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        name, labels, value = _parse_sample(line)
        family = _family_of(name, types)
        if family is None:
            raise ExpositionError(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
        series_key = (name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            raise ExpositionError(f"line {lineno}: duplicate series {series_key!r}")
        seen_series.add(series_key)
        families[family]["samples"].append(
            {"name": name, "labels": labels, "value": value}
        )
    for family, info in families.items():
        if not info["samples"]:
            raise ExpositionError(f"family {family!r} declared but has no samples")
        if info["type"] == "histogram":
            _validate_histogram(family, info["samples"])
    return families


def _validate_histogram(family: str, samples: List[Dict[str, object]]) -> None:
    buckets = [s for s in samples if s["name"] == f"{family}_bucket"]
    counts = [s for s in samples if s["name"] == f"{family}_count"]
    if not buckets or not counts:
        raise ExpositionError(f"histogram {family!r} missing buckets or _count")
    bounds: List[Tuple[float, float]] = []
    inf_value: Optional[float] = None
    for sample in buckets:
        le = sample["labels"].get("le")
        if le is None:
            raise ExpositionError(f"histogram {family!r} bucket without le label")
        bound = float("inf") if le == "+Inf" else float(le)
        bounds.append((bound, sample["value"]))
        if bound == float("inf"):
            inf_value = sample["value"]
    if inf_value is None:
        raise ExpositionError(f"histogram {family!r} missing le=\"+Inf\" bucket")
    bounds.sort(key=lambda item: item[0])
    previous = -1.0
    for _, cumulative in bounds:
        if cumulative < previous:
            raise ExpositionError(
                f"histogram {family!r} buckets are not cumulative"
            )
        previous = cumulative
    if counts[0]["value"] != inf_value:
        raise ExpositionError(
            f"histogram {family!r}: _count {counts[0]['value']} != "
            f"+Inf bucket {inf_value}"
        )
