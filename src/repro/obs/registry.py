"""Hierarchical metrics registry: counters, gauges, log2 histograms.

Metrics are addressed by dotted lowercase names mirroring the component
hierarchy (``triage.meta_store.evictions``, ``dram.queue_penalty_cycles``)
so that dumps sort into a readable tree.  A disabled registry hands out
shared null instruments whose mutators are no-ops and which are **not**
stored, so instrumented components cost one attribute call and the
registry's dump stays empty.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Union

#: Dotted names: lowercase segments of [a-z0-9_], joined by single dots.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: Histogram geometry: bucket ``i`` counts values with ``bit_length == i``
#: (i.e. ``2**(i-1) <= v < 2**i``); bucket 0 counts zeros.  33 buckets
#: cover every value below 2**32.
DEFAULT_BUCKETS = 33


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def dump(self) -> int:
        return self.value


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0

    def dump(self) -> float:
        return self.value


class Histogram:
    """Fixed log2-bucketed histogram for non-negative values.

    Bucket ``i`` holds observations whose integer part has
    ``bit_length() == i`` (bucket 0 holds zeros); the upper bound of
    bucket ``i`` is therefore ``2**i - 1``.  The last bucket absorbs
    overflow.
    """

    __slots__ = ("name", "counts", "total", "sum")

    def __init__(self, name: str, buckets: int = DEFAULT_BUCKETS):
        self.name = name
        self.counts = [0] * buckets
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r} observed negative {value}")
        idx = min(int(value).bit_length(), len(self.counts) - 1)
        self.counts[idx] += 1
        self.total += 1
        self.sum += value

    def bucket_upper_bound(self, index: int) -> int:
        return (1 << index) - 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def reset(self) -> None:
        self.counts = [0] * len(self.counts)
        self.total = 0
        self.sum = 0.0

    def dump(self) -> Dict[str, object]:
        nonzero = {
            str(self.bucket_upper_bound(i)): c
            for i, c in enumerate(self.counts)
            if c
        }
        return {"count": self.total, "sum": self.sum, "buckets": nonzero}


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass

    def dump(self) -> int:
        return 0


NULL_INSTRUMENT = _NullInstrument()

Metric = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricsRegistry:
    """Name -> instrument map with type-checked, validated registration.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the existing instrument afterwards; asking for an existing name with
    a different type is an error (it would silently fork the metric).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    # -- registration ----------------------------------------------------

    def _get_or_create(self, name: str, cls, *args) -> Metric:
        if not self.enabled:
            return NULL_INSTRUMENT
        if not _NAME_RE.match(name):
            raise ValueError(
                f"bad metric name {name!r}: want dotted lowercase segments"
            )
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = cls(name, *args)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, buckets: int = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    # -- inspection ------------------------------------------------------

    def names(self, prefix: str = "") -> List[str]:
        """Sorted metric names, optionally under a dotted ``prefix``."""
        names = sorted(self._metrics)
        if prefix:
            names = [
                n for n in names if n == prefix or n.startswith(prefix + ".")
            ]
        return names

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def as_dict(self) -> Dict[str, object]:
        """Flat ``{name: value-or-histogram-dump}`` snapshot."""
        return {name: self._metrics[name].dump() for name in self.names()}

    def dump_typed(self) -> Dict[str, Dict[str, object]]:
        """A self-describing snapshot that :meth:`merge_typed` can fold in.

        Unlike :meth:`as_dict` this keeps the instrument type explicit,
        so a parallel worker's registry can be merged into the parent's
        without guessing whether a number was a counter or a gauge.
        """
        out: Dict[str, Dict[str, object]] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            elif isinstance(metric, Histogram):
                out[name] = {
                    "type": "histogram",
                    "counts": list(metric.counts),
                    "total": metric.total,
                    "sum": metric.sum,
                }
        return out

    def merge_typed(self, dump: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`dump_typed` snapshot into this registry.

        Counters and histograms accumulate; gauges are last-write-wins
        (callers merge worker dumps in submission order, which keeps the
        result deterministic).
        """
        for name in sorted(dump):
            spec = dump[name]
            kind = spec.get("type")
            if kind == "counter":
                self.counter(name).inc(int(spec["value"]))
            elif kind == "gauge":
                self.gauge(name).set(spec["value"])
            elif kind == "histogram":
                counts = list(spec["counts"])
                hist = self.histogram(name, buckets=len(counts))
                last = len(hist.counts) - 1
                for i, c in enumerate(counts):
                    hist.counts[min(i, last)] += c
                hist.total += spec["total"]
                hist.sum += spec["sum"]
            else:
                raise ValueError(f"metric {name!r} has unknown type {kind!r}")

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=1, sort_keys=True)

    def reset(self) -> None:
        """Zero every instrument (registrations survive)."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop every registration."""
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)
