"""Observability for every simulation: metrics, time-series, traces.

The ``repro.obs`` subsystem gives each simulation run the internal
visibility the paper's own evaluation relies on (the epoch-by-epoch way
split of Figure 15/19, metadata store dynamics, DRAM utilization) without
taxing the default path:

* :mod:`repro.obs.registry` -- hierarchical metrics (counters, gauges,
  log2-bucketed histograms) addressed by dotted name
  (``triage.meta_store.evictions``, ``dram.queue_penalty_cycles``);
* :mod:`repro.obs.sampler` -- an epoch time-series sampler whose rows
  export to JSONL/CSV;
* :mod:`repro.obs.events` -- a ring-buffered structured trace-event
  stream (partition re-decisions, Hawkeye training flips, metadata
  evictions) with severity/category filtering;
* :mod:`repro.obs.tracing` -- causal spans (trace/span/parent ids,
  derived deterministically from seeded tokens) with JSONL export, the
  per-request / per-cell waterfall source;
* :mod:`repro.obs.slo` -- declarative service-level objectives with
  multi-window burn-rate verdicts;
* :mod:`repro.obs.exposition` -- Prometheus text exposition of the
  registry (``repro metrics``, ``PrefetchService.metrics()``);
* :mod:`repro.obs.manifest` -- run manifests (config, workload, seed,
  trace length, wall time, package version, metric dump) attached to
  every :class:`~repro.sim.stats.SimulationResult`;
* :mod:`repro.obs.profiling` -- scoped wall-time attribution to phases
  (trace gen, L2 stream, prefetcher, metadata store);
* :mod:`repro.obs.report` -- renders a flushed run directory back into
  human-readable tables (``python -m repro report <dir>``);
* :mod:`repro.obs.bench` -- timed, KPI-stamped benchmark records in
  append-only ``BENCH_<experiment>.json`` trajectories with regression
  comparison (``python -m repro bench <exp>`` / ``repro compare``).

Observability is **off by default**: the simulators only instrument when
an :class:`ObsSession` is active (passed explicitly or enabled globally
via :func:`enable`), and component hooks are single ``is None`` checks,
so the disabled path adds no keys to hot-path dicts and no measurable
wall time.

Usage::

    from repro import obs

    session = obs.enable(out_dir="results/obs/demo")
    simulate(trace, "triage_dynamic")       # instruments automatically
    session.flush()                         # epochs.jsonl, events.jsonl, ...
    obs.disable()
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.events import TraceEventStream
from repro.obs.manifest import RunManifest
from repro.obs.profiling import PhaseTimer
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import EpochSampler
from repro.obs.tracing import Tracer

__all__ = [
    "ObsSession",
    "RunObserver",
    "enable",
    "disable",
    "get_session",
]


class _StackedContext:
    """Enter/exit several context managers as one (profiler phase + span)."""

    __slots__ = ("_cms",)

    def __init__(self, *cms):
        self._cms = cms

    def __enter__(self):
        for cm in self._cms:
            cm.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        suppressed = False
        for cm in reversed(self._cms):
            if cm.__exit__(exc_type, exc, tb):
                suppressed = True
        return suppressed


class RunObserver:
    """Per-run handle handed to a simulation engine by the session.

    Components that emit trace events receive this object as their
    ``events`` hook (it exposes ``emit``); the engine calls
    :meth:`sample_epoch` once per timing epoch and :meth:`finish` with
    the run's manifest.
    """

    def __init__(self, session: "ObsSession", run_id: str):
        self.session = session
        self.run_id = run_id
        self.epoch = 0
        self.profiler = session.profiler
        self._started = time.perf_counter()

    # -- trace events (duck-typed sink for component hooks) --------------

    def emit(self, category: str, severity: str = "info", **fields) -> None:
        """Forward one structured event into the session's stream."""
        self.session.events.emit(category, severity, run=self.run_id, **fields)

    # -- epoch time-series ------------------------------------------------

    def sample_epoch(self, **values) -> Dict[str, object]:
        """Record one epoch snapshot row tagged with this run's id."""
        row = self.session.sampler.sample(
            run=self.run_id, epoch=self.epoch, **values
        )
        self.epoch += 1
        return row

    # -- lifecycle ---------------------------------------------------------

    @property
    def wall_time_s(self) -> float:
        return time.perf_counter() - self._started

    def finish(self, manifest: RunManifest, metrics: Optional[Dict] = None) -> None:
        """Attach the metric dump to ``manifest`` and file it."""
        if metrics:
            for name, value in metrics.items():
                manifest.metrics[name] = value
        manifest.metrics.update(self.session.registry.as_dict())
        self.session.manifests.append(manifest)


class ObsSession:
    """One observability scope: registry + sampler + events + profiler.

    A session typically spans one experiment invocation (many simulate
    calls); :meth:`flush` writes everything it accumulated to disk.
    """

    def __init__(
        self,
        out_dir: Optional[object] = None,
        event_capacity: Optional[int] = None,
        min_severity: str = "debug",
        categories: Optional[Sequence[str]] = None,
        profile: bool = False,
        capacity: Optional[int] = None,
        trace: Optional[bool] = None,
        trace_capacity: Optional[int] = None,
    ):
        if capacity is not None and event_capacity is not None:
            raise TypeError("pass capacity or event_capacity, not both")
        if capacity is not None:
            event_capacity = capacity
        self.registry = MetricsRegistry()
        self.sampler = EpochSampler()
        self.events = TraceEventStream(
            capacity=event_capacity,
            min_severity=min_severity,
            categories=categories,
        )
        # ``trace=None`` defers to REPRO_TRACE (enabled by default):
        # tracing costs nothing until a component actually opens a trace.
        self.tracer = Tracer(capacity=trace_capacity, enabled=trace)
        self.profiler: Optional[PhaseTimer] = PhaseTimer() if profile else None
        self.manifests: List[RunManifest] = []
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self._next_run = 0

    # -- run lifecycle -----------------------------------------------------

    def begin_run(self, workload: str, prefetcher: str) -> RunObserver:
        """Open a new observed run; the id encodes order + identity."""
        run_id = f"{self._next_run:03d}:{workload}:{prefetcher}"
        self._next_run += 1
        return RunObserver(self, run_id)

    def phase(self, name: str):
        """Scoped wall-time attribution (no-op when profiling is off).

        When tracing is on *and* a span is current (e.g. a sweep cell's
        trace), the phase also records a ``phase.<name>`` child span, so
        waterfalls show where a cell's wall time went.
        """
        if self.tracer.enabled and self.tracer.current() is not None:
            span_cm = self.tracer.span(f"phase.{name}")
            if self.profiler is None:
                return span_cm
            return _StackedContext(self.profiler.phase(name), span_cm)
        if self.profiler is None:
            return nullcontext()
        return self.profiler.phase(name)

    # -- export ------------------------------------------------------------

    def flush(self, out_dir: Optional[object] = None) -> Dict[str, Path]:
        """Write everything collected so far; returns the paths written."""
        target = Path(out_dir) if out_dir is not None else self.out_dir
        if target is None:
            raise ValueError("no output directory: pass out_dir or set it on the session")
        target.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {}
        paths["epochs"] = self.sampler.to_jsonl(target / "epochs.jsonl")
        self.sampler.to_csv(target / "epochs.csv")
        paths["events"] = self.events.write_jsonl(target / "events.jsonl")
        manifest_path = target / "manifests.jsonl"
        with manifest_path.open("w") as fh:
            for manifest in self.manifests:
                fh.write(manifest.to_json() + "\n")
        paths["manifests"] = manifest_path
        metrics_path = target / "metrics.json"
        metrics_path.write_text(self.registry.to_json() + "\n")
        paths["metrics"] = metrics_path
        if len(self.tracer):
            paths["spans"] = self.tracer.write_jsonl(target / "spans.jsonl")
        if self.profiler is not None:
            profile_path = target / "profile.txt"
            profile_path.write_text(self.profiler.table() + "\n")
            paths["profile"] = profile_path
        return paths


#: The process-wide session, used by simulators when no explicit session
#: is passed.  ``None`` means observability is disabled (the default).
_SESSION: Optional[ObsSession] = None


def enable(**kwargs) -> ObsSession:
    """Install (and return) a global session; see :class:`ObsSession`."""
    global _SESSION
    _SESSION = ObsSession(**kwargs)
    return _SESSION


def disable() -> None:
    """Tear down the global session (observability back to zero-cost)."""
    global _SESSION
    _SESSION = None


def get_session() -> Optional[ObsSession]:
    """The active global session, or ``None`` when disabled."""
    return _SESSION


@contextmanager
def session(**kwargs):
    """Context-managed :func:`enable`/:func:`disable` pair."""
    sess = enable(**kwargs)
    try:
        yield sess
    finally:
        disable()
