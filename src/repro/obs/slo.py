"""Declarative service-level objectives with multi-window burn rates.

An :class:`Objective` names a good/bad classification of events (served
requests under the latency target, requests not shed, sweep cells that
succeeded) and a target good-fraction (``0.95`` = "95% of requests
...").  The **error budget** is ``1 - objective``; the **burn rate**
over a window is how fast that budget is being consumed::

    burn = (bad_events / total_events in window) / (1 - objective)

``burn == 1`` exactly exhausts the budget if sustained for the SLO
period; SRE practice alerts on *pairs* of windows -- a short window at a
high burn (page: you are torching the budget right now) and a long
window at a low burn (ticket: a slow leak) -- which is what
:class:`Window` encodes as ``(seconds, warn, breach)`` thresholds.

:class:`SLOTracker` records ``(t, good)`` observations on whatever clock
the caller uses.  Loadtests feed it virtual time, so the burn rates,
window tallies and verdicts in a :class:`~repro.serve.loadgen.LoadtestReport`
are bit-deterministic and are gated in CI like any KPI.  Everything is
rounded to 6 decimal places at the report boundary so two identical runs
produce byte-identical verdict dicts.

Count-based objectives with no useful time axis (a sweep's cell failure
rate) skip the tracker and use :func:`evaluate_counts`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import config

__all__ = [
    "Objective",
    "SLOTracker",
    "Window",
    "default_serve_slos",
    "evaluate_counts",
    "sweep_cell_objective",
    "worst_verdict",
]

#: Verdicts, worst last; a report's overall verdict is the max.
VERDICTS = ("ok", "warn", "breach")
_VERDICT_RANK = {v: i for i, v in enumerate(VERDICTS)}


def worst_verdict(verdicts) -> str:
    """The most severe of an iterable of verdict strings."""
    worst = "ok"
    for verdict in verdicts:
        if _VERDICT_RANK[verdict] > _VERDICT_RANK[worst]:
            worst = verdict
    return worst


@dataclass(frozen=True)
class Window:
    """One burn-rate evaluation window with its alert thresholds."""

    seconds: float
    #: Burn rate at or above which this window reports ``warn``.
    warn: float = 1.0
    #: Burn rate at or above which this window reports ``breach``.
    breach: float = 2.0

    def verdict(self, burn: float) -> str:
        if burn >= self.breach:
            return "breach"
        if burn >= self.warn:
            return "warn"
        return "ok"


@dataclass(frozen=True)
class Objective:
    """One declarative SLO: what counts as good, and how good, how fast."""

    name: str
    description: str
    #: Target good-fraction in [0, 1); the error budget is ``1 - objective``.
    objective: float
    windows: Tuple[Window, ...]

    def __post_init__(self) -> None:
        if not 0.0 <= self.objective < 1.0:
            raise ValueError(
                f"objective {self.objective} for {self.name!r} must be in [0, 1)"
            )
        if not self.windows:
            raise ValueError(f"objective {self.name!r} needs at least one window")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective


class SLOTracker:
    """Accumulates ``(t, good)`` observations for one objective."""

    def __init__(self, objective: Objective):
        self.objective = objective
        self._times: List[float] = []
        self._bad_times: List[float] = []
        self.total = 0
        self.bad = 0

    def record(self, t: float, good: bool) -> None:
        self.total += 1
        self._times.append(t)
        if not good:
            self.bad += 1
            self._bad_times.append(t)

    # -- evaluation -------------------------------------------------------

    def _window_counts(self, window_s: float, now: float) -> Tuple[int, int]:
        cutoff = now - window_s
        total = sum(1 for t in self._times if t >= cutoff)
        bad = sum(1 for t in self._bad_times if t >= cutoff)
        return total, bad

    def burn_rate(self, window_s: float, now: float) -> float:
        """Budget-consumption speed over the trailing window (0 if idle)."""
        total, bad = self._window_counts(window_s, now)
        if total == 0:
            return 0.0
        return (bad / total) / self.objective.budget

    def report(self, now: float) -> Dict[str, object]:
        """The verdict dict stamped into loadtest reports and manifests."""
        windows = []
        for window in self.objective.windows:
            total, bad = self._window_counts(window.seconds, now)
            # Verdicts apply to the *rounded* burn, so the verdict always
            # matches the number the report displays (1.0 - 0.95 is not
            # exactly 0.05 in floats; without rounding a displayed burn
            # of 2.0 could sit just under a threshold of 2.0).
            burn = (
                round((bad / total) / self.objective.budget, 6) if total else 0.0
            )
            windows.append(
                {
                    "seconds": round(window.seconds, 6),
                    "total": total,
                    "bad": bad,
                    "burn": burn,
                    "verdict": window.verdict(burn),
                }
            )
        overall_bad_frac = self.bad / self.total if self.total else 0.0
        return {
            "name": self.objective.name,
            "description": self.objective.description,
            "objective": round(self.objective.objective, 6),
            "total": self.total,
            "bad": self.bad,
            "bad_fraction": round(overall_bad_frac, 6),
            "budget": round(self.objective.budget, 6),
            "windows": windows,
            "verdict": worst_verdict(w["verdict"] for w in windows),
        }


def evaluate_counts(objective: Objective, total: int, bad: int) -> Dict[str, object]:
    """A windowless verdict from final tallies (sweep cell failures).

    The single configured window's thresholds apply to the whole-run
    burn rate; use for objectives where events have no meaningful
    time axis.
    """
    burn = round((bad / total) / objective.budget, 6) if total else 0.0
    window = objective.windows[0]
    return {
        "name": objective.name,
        "description": objective.description,
        "objective": round(objective.objective, 6),
        "total": total,
        "bad": bad,
        "bad_fraction": round(bad / total, 6) if total else 0.0,
        "budget": round(objective.budget, 6),
        "burn": round(burn, 6),
        "verdict": window.verdict(burn),
    }


def _paired_windows(duration_s: float) -> Tuple[Window, Window]:
    """The short/long window pair scaled to one loadtest's duration.

    Real deployments use 5m/1h pairs against a 30-day budget; a virtual
    loadtest compresses that to 10% and 50% of the run -- short window
    pages on fast burn (>=8x budget speed), long window flags slow leaks
    (>=2x warn, >=4x breach).
    """
    return (
        Window(seconds=max(duration_s * 0.1, 1e-9), warn=4.0, breach=8.0),
        Window(seconds=max(duration_s * 0.5, 1e-9), warn=2.0, breach=4.0),
    )


def default_serve_slos(
    duration_s: float, p95_target_s: Optional[float] = None
) -> List[Objective]:
    """The serving layer's objectives for one loadtest of ``duration_s``.

    ``p95_target_s`` defaults to the degradation ladder's 0.100 s p95
    target, overridable ambiently via ``REPRO_SLO`` (seconds).
    """
    if p95_target_s is None:
        p95_target_s = config.slo_target_env(0.100)
    windows = _paired_windows(duration_s)
    return [
        Objective(
            name="serve_p95_latency",
            description=(
                f"95% of served requests complete within "
                f"{p95_target_s * 1e3:.0f} ms"
            ),
            objective=0.95,
            windows=windows,
        ),
        Objective(
            name="serve_shed_rate",
            description="95% of submitted requests are not shed",
            objective=0.95,
            windows=windows,
        ),
    ]


#: Latency target used by :func:`default_serve_slos` callers that need
#: the same number for good/bad classification.
def serve_latency_target_s() -> float:
    return config.slo_target_env(0.100)


def sweep_cell_objective() -> Objective:
    """Cell failure rate: 99% of sweep cells succeed without exhausting retries."""
    return Objective(
        name="sweep_cell_failures",
        description="99% of sweep cells complete without failing",
        objective=0.99,
        windows=(Window(seconds=float("inf"), warn=1.0, breach=2.0),),
    )
