"""Epoch time-series sampling: one row of named values per timing epoch.

The simulation engines call :meth:`EpochSampler.sample` at every epoch
boundary with the signals the paper itself plots over time -- the
per-core metadata way split (Figures 15/19), metadata store hit rate,
DRAM utilization, prefetch coverage so far.  Probes registered with
:meth:`add_probe` are evaluated lazily at each sample, so components
never push values on the hot path.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable, Dict, List, Tuple


class EpochSampler:
    """Accumulates dict rows; exports JSONL (lossless) and CSV (tabular)."""

    def __init__(self):
        self._probes: List[Tuple[str, Callable[[], object]]] = []
        self.rows: List[Dict[str, object]] = []

    def add_probe(self, name: str, fn: Callable[[], object]) -> None:
        """Register ``fn`` to be evaluated into column ``name`` per sample."""
        if any(existing == name for existing, _ in self._probes):
            raise ValueError(f"duplicate probe {name!r}")
        self._probes.append((name, fn))

    def sample(self, **values) -> Dict[str, object]:
        """Record one row: explicit ``values`` plus every probe's output."""
        row = dict(values)
        for name, fn in self._probes:
            row[name] = fn()
        self.rows.append(row)
        return row

    # -- inspection ------------------------------------------------------

    def column(self, name: str) -> List[object]:
        """One column across all rows (``None`` where a row lacks it)."""
        return [row.get(name) for row in self.rows]

    def columns(self) -> List[str]:
        """Union of keys across rows, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.rows)

    # -- export ----------------------------------------------------------

    def to_jsonl(self, path) -> Path:
        path = Path(path)
        with path.open("w") as fh:
            for row in self.rows:
                fh.write(json.dumps(row) + "\n")
        return path

    def to_csv(self, path) -> Path:
        path = Path(path)
        headers = self.columns()
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=headers)
            writer.writeheader()
            writer.writerows(self.rows)
        return path
