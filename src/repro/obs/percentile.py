"""Nearest-rank percentiles, shared by bench, loadgen and waterfall.

The three percentile consumers (cell-latency p50/p95 in
:mod:`repro.obs.bench`, the serving p50/p95 KPIs in
:mod:`repro.serve.loadgen`, the p95-slowest trace pick in
:mod:`repro.obs.reporting.waterfall`) used to each round
``q * (n - 1)`` with :func:`round`, whose banker's rounding made the
picked element depend on list-length parity (``round(0.5) == 0`` but
``round(1.5) == 2``).  This module is the single owner of the fix: the
classic nearest-rank definition, rank ``ceil(q * n)`` (1-based) over the
sorted sample, which is parity-independent and always an actual sample
element.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["nearest_rank", "nearest_rank_index"]


def nearest_rank_index(n: int, q: float) -> int:
    """0-based index of the nearest-rank ``q``-percentile in ``n`` samples.

    Rank ``ceil(q * n)`` clamped into ``[1, n]``; raises on ``n <= 0``
    (callers own their empty-input semantics).
    """
    if n <= 0:
        raise ValueError("nearest_rank_index needs at least one sample")
    rank = math.ceil(q * n)
    return min(max(rank, 1), n) - 1


def nearest_rank(ordered: Sequence, q: float):
    """The nearest-rank ``q``-percentile element of a **sorted** sequence."""
    return ordered[nearest_rank_index(len(ordered), q)]
