"""Benchmark trajectory: KPI extraction, timed runs, cross-run compare.

The paper's claims are quantitative (Figure 5/6 coverage and speedup,
Figure 11 off-chip traffic, Figure 19 way allocation), and the ROADMAP's
north star is speed -- so every revision of this repo needs a
machine-readable record of *what the figures produce* and *how fast they
run*.  This module is that record:

* **KPI extraction** -- each experiment module may define
  ``kpis(table) -> dict`` (fig05/fig06/fig11/fig19 do); everything else
  falls back to :func:`table_kpis`, the numeric cells of the table's
  aggregate row.  :func:`simulation_kpis` extracts the same headline
  metrics straight from a :class:`~repro.sim.stats.SimulationResult`.
* **Timed runs** -- :func:`bench_experiment` runs one experiment with
  warmup + N timed repeats (process memos cleared between repeats, so
  each repeat does full work), recording wall times, demand-access
  throughput, peak RSS, result-cache hit/miss deltas and per-cell
  latency p50/p95 harvested from the ``parallel.cell_done`` trace
  events, all stamped with the machine fingerprint
  (:func:`repro.obs.manifest.machine_fingerprint`).
* **Trajectory** -- :func:`append_record` appends one schema-versioned
  record to ``BENCH_<experiment>.json`` at the repo root (append-only:
  existing records are never rewritten), giving every later PR a
  baseline to diff against.
* **Compare** -- :func:`compare_records` diffs two records' KPIs and
  wall time against relative tolerances; ``python -m repro compare``
  exits non-zero on a thresholded regression, which is the CI perf gate.

See ``docs/benchmarking.md`` for the schema and tolerance semantics.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.manifest import drain_run_log, machine_fingerprint
from repro.obs.percentile import nearest_rank

#: Trajectory record format version, bumped on breaking schema changes.
SCHEMA_VERSION = 1

#: Required record fields and the types a valid record carries.
_RECORD_FIELDS: Dict[str, tuple] = {
    "schema": (int,),
    "experiment": (str,),
    "quick": (bool,),
    "repeats": (int,),
    "warmup": (int,),
    "created_unix": (int, float),
    "kpis": (dict,),
    "wall_times_s": (list,),
    "wall_time_mean_s": (int, float),
    "wall_time_min_s": (int, float),
    "accesses_total": (int,),
    "throughput_accesses_per_s": (int, float),
    "peak_rss_kb": (int,),
    "cache": (dict,),
    "cell_latency_s": (dict,),
    "fingerprint": (dict,),
}


class BenchSchemaError(ValueError):
    """A trajectory record is malformed or two records are incomparable."""


# -- KPI extraction ----------------------------------------------------------


def _sanitize(header: str) -> str:
    out = "".join(c if c.isalnum() else "_" for c in str(header).lower())
    while "__" in out:
        out = out.replace("__", "_")
    return out.strip("_") or "col"


def table_kpis(table) -> Dict[str, float]:
    """Generic fallback: numeric cells of the table's last (aggregate) row.

    Most figure tables end in a ``geomean``/``average``/``mean`` row;
    for those that don't, the last data row is still a stable, if less
    meaningful, signature of the figure's output.
    """
    if not getattr(table, "rows", None):
        return {}
    last = table.rows[-1]
    out: Dict[str, float] = {}
    for header, cell in zip(table.headers, last):
        if isinstance(cell, bool) or not isinstance(cell, (int, float)):
            continue
        out[_sanitize(header)] = float(cell)
    return out


def simulation_kpis(result) -> Dict[str, float]:
    """Headline KPIs straight from one :class:`SimulationResult`."""
    return {
        "ipc": float(result.ipc),
        "coverage": float(result.coverage),
        "accuracy": float(result.accuracy),
        "traffic_bytes": float(result.total_traffic_bytes),
        "metadata_llc_accesses": float(result.metadata_llc_accesses),
        "metadata_dram_accesses": float(result.metadata_dram_accesses),
    }


def kpis_for(name: str, module, table) -> Dict[str, float]:
    """The experiment's own ``kpis(table)`` when defined, else the fallback."""
    extractor = getattr(module, "kpis", None)
    if extractor is not None:
        return {k: float(v) for k, v in extractor(table).items()}
    return table_kpis(table)


# -- timed runs --------------------------------------------------------------


def _peak_rss_kb() -> int:
    """Peak resident set size over this process and its workers, in KB."""
    try:
        import resource
    except ImportError:  # non-POSIX: report 0 rather than failing the bench
        return 0
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(max(own, kids))


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (deterministic)."""
    if not sorted_values:
        return 0.0
    return float(nearest_rank(sorted_values, q))


def _cache_counts() -> Tuple[bool, int, int]:
    from repro import cache

    store = cache.get_cache()
    if store is None:
        return False, 0, 0
    return True, store.hits, store.misses


def bench_experiment(
    name: str,
    repeats: int = 3,
    warmup: int = 1,
    quick: bool = False,
) -> Dict[str, object]:
    """Run one experiment timed, returning a schema-valid trajectory record.

    ``warmup`` untimed runs come first (imports, disk-cache population,
    allocator steady state), then ``repeats`` timed runs; the process
    memo caches are cleared before every run so each timed repeat does
    the experiment's full work.  A configured disk cache
    (``REPRO_CACHE_DIR``) still serves -- the record's cache hit/miss
    delta says how much, so a warm-cache bench is distinguishable from a
    cold one.  KPIs are extracted from the final repeat's table.
    """
    from repro import obs
    from repro.experiments import common
    from repro.experiments.registry import EXPERIMENTS

    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; choose from: {known}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    module = EXPERIMENTS[name]

    session = obs.get_session()
    ephemeral = session is None
    if ephemeral:
        session = obs.enable()
    try:
        for _ in range(max(0, warmup)):
            common.clear_caches()
            module.run(quick=quick)

        drain_run_log()
        enabled, hits0, misses0 = _cache_counts()

        wall_times: List[float] = []
        latencies: List[float] = []
        accesses_total = 0
        table = None
        seq_marker = session.events.emitted
        for _ in range(repeats):
            common.clear_caches()
            start = time.perf_counter()
            table = module.run(quick=quick)
            wall_times.append(time.perf_counter() - start)
            for manifest in drain_run_log():
                accesses_total += int(manifest.trace_length or 0)
            # Harvest this repeat's per-cell latencies immediately: the
            # next repeat's merged worker events would otherwise age
            # them out of the bounded event ring.
            latencies.extend(
                float(event.fields.get("seconds", 0.0))
                for event in session.events.events("parallel.cell_done")
                if event.seq >= seq_marker
            )
            seq_marker = session.events.emitted

        _, hits1, misses1 = _cache_counts()
        latencies.sort()
    finally:
        if ephemeral:
            obs.disable()

    from repro import config as config_mod

    timed_total = sum(wall_times)
    record: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "experiment": name,
        # Optional provenance field (absent in pre-engine records, which
        # compare as "analytic"): which simulation engine produced the
        # timings, so `compare` never reads a batched-vs-scalar speedup
        # as a regression or an improvement in the code under test.
        "engine": config_mod.engine_env(),
        "quick": bool(quick),
        "repeats": int(repeats),
        "warmup": int(max(0, warmup)),
        "created_unix": time.time(),
        "kpis": kpis_for(name, module, table),
        "wall_times_s": [round(t, 6) for t in wall_times],
        "wall_time_mean_s": round(timed_total / len(wall_times), 6),
        "wall_time_min_s": round(min(wall_times), 6),
        "accesses_total": accesses_total,
        "throughput_accesses_per_s": round(
            accesses_total / timed_total if timed_total > 0 else 0.0, 3
        ),
        "peak_rss_kb": _peak_rss_kb(),
        "cache": {
            "enabled": enabled,
            "hits": hits1 - hits0,
            "misses": misses1 - misses0,
        },
        "cell_latency_s": {
            "count": len(latencies),
            "p50": round(_percentile(latencies, 0.50), 6),
            "p95": round(_percentile(latencies, 0.95), 6),
        },
        "fingerprint": machine_fingerprint(),
    }
    validate_record(record)
    return record


def tracing_overhead_pct(
    name: str, quick: bool = False, repeats: int = 2
) -> float:
    """Measured wall-time overhead of span recording, in percent.

    Times the experiment under a full observability session with tracing
    **off**, then again with tracing **on** (min wall over ``repeats``
    each, after one untimed warmup), so the delta isolates the span
    layer from the cost of observability as a whole.  Negative values
    (noise on a machine where tracing is cheaper than the jitter) are
    reported as measured; the CLI gate only cares about the upper bound.

    The ambient global session, if any, is restored on exit.
    """
    from repro import obs
    from repro.experiments import common
    from repro.experiments.registry import EXPERIMENTS

    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; choose from: {known}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    module = EXPERIMENTS[name]
    previous = obs.get_session()

    def timed(trace_enabled: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            obs.enable(trace=trace_enabled)
            try:
                common.clear_caches()
                start = time.perf_counter()
                module.run(quick=quick)
                best = min(best, time.perf_counter() - start)
            finally:
                obs.disable()
        return best

    try:
        obs.enable(trace=False)
        try:
            common.clear_caches()
            module.run(quick=quick)  # warmup: imports, trace generation
        finally:
            obs.disable()
        off = timed(False)
        on = timed(True)
    finally:
        obs._SESSION = previous
    if off <= 0:
        return 0.0
    return round(100.0 * (on - off) / off, 3)


# -- trajectory files --------------------------------------------------------


def default_trajectory_path(name: str, root: Optional[object] = None) -> Path:
    """``BENCH_<experiment>.json`` under ``root`` (default: the CWD)."""
    base = Path(root) if root is not None else Path.cwd()
    return base / f"BENCH_{name}.json"


def validate_record(record: Dict[str, object]) -> None:
    """Raise :class:`BenchSchemaError` unless ``record`` is schema-valid."""
    if not isinstance(record, dict):
        raise BenchSchemaError(f"record is {type(record).__name__}, not an object")
    for key, types in _RECORD_FIELDS.items():
        if key not in record:
            raise BenchSchemaError(f"record is missing required field {key!r}")
        if not isinstance(record[key], types):
            raise BenchSchemaError(
                f"field {key!r} is {type(record[key]).__name__}, want "
                + "/".join(t.__name__ for t in types)
            )
    if record["schema"] != SCHEMA_VERSION:
        raise BenchSchemaError(
            f"record schema v{record['schema']} != supported v{SCHEMA_VERSION}"
        )
    for kpi, value in record["kpis"].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise BenchSchemaError(f"KPI {kpi!r} is not numeric: {value!r}")


def load_trajectory(path) -> List[Dict[str, object]]:
    """Every record in one ``BENCH_*.json`` file (oldest first)."""
    path = Path(path)
    if not path.exists():
        return []
    text = path.read_text().strip()
    if not text:
        return []
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(data, list):
        raise BenchSchemaError(f"{path}: trajectory must be a JSON array")
    return data


def append_record(path, record: Dict[str, object]) -> Path:
    """Append one record to a trajectory file (created when missing).

    Existing records ride along untouched -- the trajectory is
    append-only, so committed history is never rewritten by a new bench.
    """
    validate_record(record)
    path = Path(path)
    records = load_trajectory(path)
    records.append(record)
    path.write_text(json.dumps(records, indent=1, sort_keys=True) + "\n")
    return path


# -- cross-run comparison ----------------------------------------------------


@dataclass
class Comparison:
    """Outcome of diffing two trajectory records."""

    experiment: str
    rows: List[List[object]] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "ok": self.ok,
            "rows": [
                dict(zip(("metric", "baseline", "candidate", "delta_pct", "status"), r))
                for r in self.rows
            ],
            "regressions": list(self.regressions),
            "notes": list(self.notes),
        }


def _rel_delta(base: float, cand: float) -> float:
    if base == 0:
        return 0.0 if cand == 0 else float("inf")
    return (cand - base) / abs(base)


def compare_records(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    kpi_tol: float = 0.05,
    time_tol: float = 0.5,
) -> Comparison:
    """Diff two records: KPIs against ``kpi_tol``, time against ``time_tol``.

    Both tolerances are *relative*: a KPI regresses when it moved by
    more than ``kpi_tol`` of the baseline value in either direction
    (both directions, because an unexplained improvement is as much a
    fidelity question as a loss); wall time regresses only when the
    candidate is *slower* by more than ``time_tol``.  A KPI present in
    the baseline but missing from the candidate is schema drift and
    counts as a regression; a new KPI is noted but passes.  Wall-time
    comparison is skipped (with a note) when the two records ran
    different quick modes or on different machine fingerprints.
    """
    validate_record(baseline)
    validate_record(candidate)
    if baseline["experiment"] != candidate["experiment"]:
        raise BenchSchemaError(
            f"cannot compare {baseline['experiment']!r} with "
            f"{candidate['experiment']!r}"
        )
    comparison = Comparison(experiment=str(baseline["experiment"]))
    base_kpis: Dict[str, float] = dict(baseline["kpis"])
    cand_kpis: Dict[str, float] = dict(candidate["kpis"])

    for kpi in sorted(set(base_kpis) | set(cand_kpis)):
        if kpi not in cand_kpis:
            comparison.rows.append([kpi, base_kpis[kpi], None, None, "REMOVED"])
            comparison.regressions.append(
                f"KPI {kpi!r} disappeared from the candidate (schema drift)"
            )
            continue
        if kpi not in base_kpis:
            comparison.rows.append([kpi, None, cand_kpis[kpi], None, "new"])
            comparison.notes.append(f"KPI {kpi!r} is new in the candidate")
            continue
        base, cand = float(base_kpis[kpi]), float(cand_kpis[kpi])
        delta = _rel_delta(base, cand)
        status = "ok"
        if abs(delta) > kpi_tol:
            status = "REGRESSED"
            comparison.regressions.append(
                f"KPI {kpi!r} moved {delta:+.1%} (tolerance ±{kpi_tol:.1%}): "
                f"{base:.6g} -> {cand:.6g}"
            )
        comparison.rows.append([kpi, base, cand, 100.0 * delta, status])

    comparable = True
    if baseline["quick"] != candidate["quick"]:
        comparable = False
        comparison.notes.append(
            "quick modes differ; wall-time comparison skipped"
        )
    if baseline["fingerprint"] != candidate["fingerprint"]:
        comparable = False
        comparison.notes.append(
            "machine fingerprints differ; wall-time comparison skipped"
        )
    base_engine = baseline.get("engine", "analytic")
    cand_engine = candidate.get("engine", "analytic")
    if base_engine != cand_engine:
        comparable = False
        comparison.notes.append(
            f"engines differ ({base_engine} vs {cand_engine}); wall-time "
            "comparison skipped (KPIs must still agree: engines are "
            "bit-identical by contract)"
        )
    base_t = float(baseline["wall_time_mean_s"])
    cand_t = float(candidate["wall_time_mean_s"])
    if comparable and base_t > 0:
        delta = _rel_delta(base_t, cand_t)
        status = "ok"
        if delta > time_tol:
            status = "REGRESSED"
            comparison.regressions.append(
                f"wall time regressed {delta:+.1%} (tolerance +{time_tol:.0%}): "
                f"{base_t:.3f}s -> {cand_t:.3f}s"
            )
        comparison.rows.append(
            ["wall_time_mean_s", base_t, cand_t, 100.0 * delta, status]
        )
        tput_b = float(baseline["throughput_accesses_per_s"])
        tput_c = float(candidate["throughput_accesses_per_s"])
        comparison.rows.append(
            [
                "throughput_accesses_per_s",
                tput_b,
                tput_c,
                100.0 * _rel_delta(tput_b, tput_c) if tput_b else 0.0,
                "info",
            ]
        )
    return comparison


def render_comparison(comparison: Comparison) -> str:
    """The comparison as an aligned text table plus notes/regressions."""
    def fmt(cell: object) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    headers = ["metric", "baseline", "candidate", "delta%", "status"]
    body = [[fmt(c) for c in row] for row in comparison.rows]
    table = [headers] + body
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = [f"== Bench compare: {comparison.experiment} =="]
    for i, row in enumerate(table):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for note in comparison.notes:
        lines.append(f"note: {note}")
    for regression in comparison.regressions:
        lines.append(f"REGRESSION: {regression}")
    lines.append("verdict: " + ("ok" if comparison.ok else "REGRESSED"))
    return "\n".join(lines)
