"""Run manifests: the provenance record of one simulation.

Every simulation engine builds a :class:`RunManifest` for every run --
observability on or off -- capturing what would be needed to reproduce
or audit the run: the machine config as a dict, workload names and
seeds, trace length and warmup, instruction/cycle totals, wall time and
the package version.  With observability on, the session's metric dump
rides along.

Manifests are attached to ``SimulationResult.manifest`` /
``MultiCoreResult.manifest`` and also appended to a small process-wide
ring (:data:`RUN_LOG`) that the benchmark harness drains to persist
provenance next to ``results/<bench>.txt``.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Manifest format version, bumped on breaking schema changes.
SCHEMA_VERSION = 1


def _package_version() -> str:
    # Lazy: repro/__init__ is mid-import when this module first loads.
    module = sys.modules.get("repro")
    return getattr(module, "__version__", "unknown")


#: Cached fingerprint: the answer cannot change within one process, and
#: caching makes the stamp deterministic even if the platform module
#: were to wobble (the bench tests pin this down).
_FINGERPRINT: Optional[Dict[str, object]] = None


def machine_fingerprint() -> Dict[str, object]:
    """Identity of the machine/interpreter producing a run.

    Stamped into every run manifest (``host``) and every benchmark
    trajectory record (:mod:`repro.obs.bench`), so a KPI or timing delta
    can always be traced to a hardware or interpreter change.  Stable
    across calls within one process.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import os
        import platform

        _FINGERPRINT = {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "system": platform.system(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
            "package_version": _package_version(),
        }
    return dict(_FINGERPRINT)


@dataclass
class RunManifest:
    """Everything needed to identify and re-run one simulation."""

    kind: str  # "single" | "multi" | "queued"
    workloads: List[str]
    prefetcher: str
    config: Dict[str, object]
    seeds: List[Optional[int]] = field(default_factory=list)
    trace_length: int = 0
    warmup: int = 0
    instructions: float = 0.0
    cycles: float = 0.0
    wall_time_s: float = 0.0
    package_version: str = ""
    schema: int = SCHEMA_VERSION
    created_unix: float = 0.0
    #: Machine/interpreter fingerprint (see :func:`machine_fingerprint`).
    host: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        unknown = {k: v for k, v in data.items() if k not in known}
        manifest = cls(**kwargs)
        if unknown:  # forward compatibility: newer writers, older readers
            manifest.extra.update(unknown)
        return manifest

    def write(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n")
        return path

    @classmethod
    def read(cls, path) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))


def build_manifest(
    kind: str,
    workloads: List[str],
    prefetcher: str,
    config,
    seeds: List[Optional[int]],
    trace_length: int,
    warmup: int,
    instructions: float,
    cycles: float,
    wall_time_s: float,
    extra: Optional[Dict[str, object]] = None,
) -> RunManifest:
    """Assemble a manifest from a finished run and log it process-wide."""
    manifest = RunManifest(
        kind=kind,
        workloads=list(workloads),
        prefetcher=prefetcher,
        config=dataclasses.asdict(config) if dataclasses.is_dataclass(config) else dict(config),
        seeds=list(seeds),
        trace_length=trace_length,
        warmup=warmup,
        instructions=instructions,
        cycles=cycles,
        wall_time_s=wall_time_s,
        package_version=_package_version(),
        created_unix=time.time(),
        host=machine_fingerprint(),
        extra=dict(extra or {}),
    )
    RUN_LOG.append(manifest)
    return manifest


def log_cached_manifest(result) -> None:
    """File a cache-served result's producing manifest with this process.

    Simulation registers manifests through the run observer; a result
    served from the persistent cache or the resume journal skips
    simulation entirely, so the cache-hit paths call this to keep both
    the process-wide :data:`RUN_LOG` and any active obs session carrying
    the producing run's provenance.  Without it a fully cache-served
    sweep flushes an empty ``manifests.jsonl`` and its report has no
    runs to describe.
    """
    manifest = getattr(result, "manifest", None)
    if manifest is None:
        return
    RUN_LOG.append(manifest)
    from repro import obs  # lazy: repro.obs imports this module

    session = obs.get_session()
    if session is not None:
        session.manifests.append(manifest)


#: Always-on bounded log of recent manifests (newest last).  Bounded so
#: a long-lived process (the full figure suite) cannot grow it without
#: limit; 512 comfortably covers any single experiment's run count.
RUN_LOG: deque = deque(maxlen=512)


def drain_run_log() -> List[RunManifest]:
    """Remove and return every logged manifest (oldest first)."""
    drained = list(RUN_LOG)
    RUN_LOG.clear()
    return drained
