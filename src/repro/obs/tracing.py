"""Causal request tracing: deterministic spans over any clock.

A **span** is one named stage of work with a start/end time, a status
and free-form attributes; spans form trees via ``parent_id`` and trees
group into **traces** via ``trace_id``.  The serving layer opens one
trace per request (admission -> queued -> breaker gate -> execute ->
session apply), the sweep engine opens one per cell, and the simulation
engines attach ``sim.run`` (and profiler-phase) spans underneath
whichever of those is current.

Determinism is the design center, mirroring the rest of the repo:

* **Ids are derived, not drawn.**  ``trace_id`` is a content hash of the
  seeded request/cell token (``"tenant-3:17"``, the cell identity
  hash); ``span_id`` is a hash of ``(trace_id, parent_id, name,
  per-parent child index)``.  Two runs of the same seeded scenario --
  or the serial and 2-job executions of the same sweep -- produce the
  *same* ids, which is what lets tests compare whole trace trees for
  equality.
* **Clocks are injected.**  The service stamps spans with the event-loop
  clock, so under :class:`repro.serve.vtime.VirtualTimeLoop` the full
  trace set -- timestamps included -- is bit-reproducible.  Engine-side
  spans default to ``time.perf_counter`` and are compared structurally
  (ids/names/status), never by duration.

Cost discipline matches the metrics registry: a disabled tracer hands
out the shared :data:`NULL_SPAN` (no allocation, every method a no-op),
and instrumented code guards with single ``is None`` / ``enabled``
checks, so the tracing-off hot path allocates zero spans.

Cross-process propagation: :meth:`Tracer.to_wire` /
:meth:`Tracer.begin_from_wire` serialize a span context into a plain
dict that rides in the worker payload; the worker reconstructs the
*identical* root span (same ids) and builds children under it, and the
parent merges the finished records back in submission order.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro import config

__all__ = [
    "DEFAULT_CAPACITY",
    "NULL_SPAN",
    "Span",
    "SpanContext",
    "Tracer",
    "settings_from_env",
    "trace_id_for",
]

#: Span-ring capacity when neither the caller nor ``REPRO_TRACE`` says
#: otherwise; sized like the event ring (one experiment's volume).
DEFAULT_CAPACITY = 65_536

#: Hex digits kept from the SHA-1 derivations (64-bit ids, like OTel).
_ID_HEX = 16


def settings_from_env(default_capacity: int = DEFAULT_CAPACITY):
    """``(enabled, capacity)`` from ``REPRO_TRACE`` (see :mod:`repro.config`)."""
    return config.trace_env(default_capacity)


def trace_id_for(token: str) -> str:
    """The deterministic trace id of a seeded request/cell token."""
    digest = hashlib.sha1(b"trace\x00" + str(token).encode("utf-8")).hexdigest()
    return digest[:_ID_HEX]


def _span_id(trace_id: str, parent_id: str, name: str, index: int) -> str:
    material = f"span\x00{trace_id}\x00{parent_id}\x00{name}\x00{index}"
    return hashlib.sha1(material.encode("utf-8")).hexdigest()[:_ID_HEX]


class SpanContext:
    """The propagatable identity of a span: ``(trace_id, span_id)``."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, wire: Dict[str, str]) -> "SpanContext":
        return cls(str(wire["trace_id"]), str(wire["span_id"]))


class Span:
    """One live span; finished spans become plain record dicts.

    Usable as a context manager: entering makes it the tracer's current
    span (so nested ``tracer.span(...)`` calls parent under it), exiting
    finishes it with status ``ok`` -- or ``error`` if an exception is
    propagating.  Explicit lifecycles (the serve layer) skip the context
    manager and call :meth:`Tracer.finish` with an explicit clock value.
    """

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id",
        "start", "end", "status", "attrs", "_children",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str,
        start: float,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self._children = 0

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def annotate(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    # -- context manager protocol ----------------------------------------

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._pop(self)
        self.tracer.finish(self, status="error" if exc_type else self.status)
        return False


class _NullSpan:
    """Shared no-op span handed out by a disabled tracer.

    Also its own (re-entrant, stateless) context manager, so
    ``with tracer.span(...)`` costs zero allocations when tracing is
    off.
    """

    __slots__ = ()
    name = "<null>"
    trace_id = span_id = parent_id = ""
    start = end = 0.0
    status = "ok"
    attrs: Dict[str, object] = {}

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    @property
    def context(self) -> SpanContext:
        return SpanContext("", "")

    def to_dict(self) -> Dict[str, object]:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Span factory + bounded ring of finished span records.

    ``clock`` supplies default timestamps when a caller does not pass
    explicit ``t=`` values; the serve layer always passes the event-loop
    clock explicitly, which is what makes virtual-time traces
    bit-reproducible.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        enabled: Optional[bool] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        env_enabled, env_capacity = settings_from_env()
        if capacity is None:
            capacity = env_capacity
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.enabled = env_enabled if enabled is None else bool(enabled)
        self.capacity = capacity
        self.clock = clock
        self._ring: deque = deque(maxlen=capacity)
        #: (trace_id, parent_id) -> next child index, for id derivation.
        self._child_index: Dict[tuple, int] = {}
        #: Innermost-last stack of context-managed spans.
        self._stack: List[Span] = []
        self.started = 0
        self.finished = 0

    # -- span creation ----------------------------------------------------

    def _next_index(self, trace_id: str, parent_id: str, parent: Optional[Span]) -> int:
        if parent is not None:
            index = parent._children
            parent._children += 1
            return index
        key = (trace_id, parent_id)
        index = self._child_index.get(key, 0)
        self._child_index[key] = index + 1
        return index

    def start_trace(
        self, name: str, token: str, /, t: Optional[float] = None, **attrs
    ):
        """Open the root span of a new trace identified by ``token``."""
        if not self.enabled:
            return NULL_SPAN
        trace_id = trace_id_for(token)
        span_id = _span_id(trace_id, "", name, self._next_index(trace_id, "", None))
        self.started += 1
        return Span(
            self, name, trace_id, span_id, "",
            t if t is not None else self.clock(), attrs,
        )

    def start_span(
        self, name: str, /, parent=None, t: Optional[float] = None, **attrs
    ):
        """Open a child span under ``parent`` (or the current span).

        ``parent`` may be a :class:`Span`, a :class:`SpanContext`
        (cross-process), or ``None`` to use the innermost
        context-managed span.  With no parent at all the span is
        dropped (returns :data:`NULL_SPAN`): an engine phase outside
        any trace has nothing to attach to.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = self._stack[-1] if self._stack else None
            if parent is None:
                return NULL_SPAN
        parent_span = parent if isinstance(parent, Span) else None
        trace_id = parent.trace_id
        parent_id = parent.span_id
        index = self._next_index(trace_id, parent_id, parent_span)
        span_id = _span_id(trace_id, parent_id, name, index)
        self.started += 1
        return Span(
            self, name, trace_id, span_id, parent_id,
            t if t is not None else self.clock(), attrs,
        )

    def span(self, name: str, /, parent=None, **attrs):
        """Context-managed :meth:`start_span` (finishes with ok/error)."""
        return self.start_span(name, parent=parent, **attrs)

    def begin_from_wire(
        self, wire: Dict[str, str], name: str, t: Optional[float] = None, **attrs
    ):
        """Reconstruct a propagated root span with its *given* ids.

        The submitting side derives the context purely from the cell
        token (:meth:`to_wire`); the executing side -- worker process or
        the in-process serial path -- rebuilds the identical span here,
        so children derive the same ids either way.
        """
        if not self.enabled or not wire:
            return NULL_SPAN
        self.started += 1
        return Span(
            self, name, str(wire["trace_id"]), str(wire["span_id"]), "",
            t if t is not None else self.clock(), attrs,
        )

    @staticmethod
    def to_wire(token: str, name: str) -> Dict[str, str]:
        """The wire context of the root span a token's trace will own."""
        trace_id = trace_id_for(token)
        return {"trace_id": trace_id, "span_id": _span_id(trace_id, "", name, 0)}

    # -- lifecycle ---------------------------------------------------------

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def finish(self, span, status: Optional[str] = None, t: Optional[float] = None) -> None:
        """Close ``span`` and move its record into the ring."""
        if span is NULL_SPAN or not isinstance(span, Span):
            return
        if span.end is not None:
            return  # already finished (idempotent for error paths)
        span.end = t if t is not None else self.clock()
        if status is not None:
            span.status = status
        self.finished += 1
        self._ring.append(span.to_dict())

    def event(
        self, parent, name: str, start: float, end: float, **attrs
    ) -> None:
        """Record an already-measured child span in one call.

        Used to synthesize profiler-phase children after the fact: the
        engines accumulate phase seconds with raw ``perf_counter``
        deltas (too hot to wrap in live spans), then file them here.
        """
        if not self.enabled or parent is NULL_SPAN or parent is None:
            return
        span = self.start_span(name, parent=parent, t=start, **attrs)
        self.finish(span, t=end)

    # -- inspection / export ----------------------------------------------

    def records(self) -> List[Dict[str, object]]:
        """Finished span records, oldest first."""
        return list(self._ring)

    def traces(self) -> Dict[str, List[Dict[str, object]]]:
        """Finished spans grouped by trace id (insertion order kept)."""
        out: Dict[str, List[Dict[str, object]]] = {}
        for record in self._ring:
            out.setdefault(record["trace_id"], []).append(record)
        return out

    def __len__(self) -> int:
        return len(self._ring)

    def merge(self, records: List[Dict[str, object]]) -> None:
        """Fold one worker's finished records into this ring.

        Callers merge worker dumps in submission order (like the metric
        registry), keeping the merged stream deterministic.
        """
        for record in records:
            self._ring.append(dict(record))
            self.finished += 1

    def write_jsonl(self, path) -> Path:
        """One finished span per line, oldest first."""
        path = Path(path)
        with path.open("w") as fh:
            for record in self._ring:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path
