"""Inline-SVG chart rendering: grouped bars and multi-series lines.

The report's figures are plain SVG strings -- no matplotlib, no
JavaScript, no external fonts or fetches -- so the emitted HTML is one
self-contained artifact that renders anywhere.  Charts are deliberately
small: a categorical grouped-bar chart (the paper's per-benchmark bar
grids) and a multi-series line chart (epoch time-series, bench
trajectories).  Both are deterministic for identical inputs.
"""

from __future__ import annotations

import math
from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

#: Color-blind-safe categorical palette (cycled past its length).
PALETTE = (
    "#4C72B0", "#DD8452", "#55A868", "#C44E52",
    "#8172B3", "#937860", "#DA8BC3", "#8C8C8C",
)

#: A series flagged for highlighting (regressions) renders in this color.
HIGHLIGHT = "#C0392B"

_FONT = "font-family=\"system-ui, sans-serif\""


def color(index: int) -> str:
    return PALETTE[index % len(PALETTE)]


def _nice_ceiling(value: float) -> float:
    """The smallest 1/2/2.5/5 x 10^k at or above ``value``."""
    if value <= 0:
        return 1.0
    exponent = math.floor(math.log10(value))
    for mantissa in (1.0, 2.0, 2.5, 5.0, 10.0):
        candidate = mantissa * (10.0 ** exponent)
        if candidate >= value * (1 - 1e-9):
            return candidate
    return 10.0 ** (exponent + 1)


def _fmt_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def _axis(x0: float, y0: float, x1: float, y1: float) -> str:
    return (
        f'<line x1="{x0:.1f}" y1="{y1:.1f}" x2="{x0:.1f}" y2="{y0:.1f}" '
        'stroke="#444" stroke-width="1"/>'
        f'<line x1="{x0:.1f}" y1="{y1:.1f}" x2="{x1:.1f}" y2="{y1:.1f}" '
        'stroke="#444" stroke-width="1"/>'
    )


def _legend(labels: Sequence[str], colors: Sequence[str], x: float, y: float) -> str:
    parts = []
    for i, (label, fill) in enumerate(zip(labels, colors)):
        ly = y + 16 * i
        parts.append(
            f'<rect x="{x:.1f}" y="{ly:.1f}" width="10" height="10" fill="{fill}"/>'
            f'<text x="{x + 14:.1f}" y="{ly + 9:.1f}" font-size="11" {_FONT}>'
            f"{escape(str(label))}</text>"
        )
    return "".join(parts)


def bar_chart(
    title: str,
    categories: Sequence[str],
    series: Dict[str, Sequence[Optional[float]]],
    ylabel: str = "",
    width: int = 680,
    height: int = 300,
    highlight: Optional[Sequence[str]] = None,
) -> str:
    """A grouped bar chart as one ``<svg>`` string.

    ``series`` maps a legend label to one value per category (``None``
    leaves a gap).  Labels listed in ``highlight`` render in the
    regression color instead of the palette.
    """
    if not categories or not series:
        return empty_figure(title, "no data")
    highlight = set(highlight or ())
    labels = list(series)
    values = [
        v
        for vs in series.values()
        for v in vs
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    ]
    if not values:
        return empty_figure(title, "no numeric data")
    top = _nice_ceiling(max(max(values), 0.0) * 1.05)
    bottom = min(0.0, min(values))
    if bottom < 0:
        bottom = -_nice_ceiling(-bottom * 1.05)
    span = top - bottom or 1.0

    margin_left, margin_right = 56.0, 120.0
    margin_top, margin_bottom = 34.0, 46.0
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    def y_of(value: float) -> float:
        return margin_top + plot_h * (1 - (value - bottom) / span)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">',
        f'<text x="{margin_left}" y="18" font-size="13" font-weight="bold" '
        f"{_FONT}>{escape(title)}</text>",
    ]
    # y gridlines + ticks
    n_ticks = 4
    for t in range(n_ticks + 1):
        value = bottom + span * t / n_ticks
        y = y_of(value)
        parts.append(
            f'<line x1="{margin_left:.1f}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w:.1f}" y2="{y:.1f}" '
            'stroke="#ddd" stroke-width="0.5"/>'
            f'<text x="{margin_left - 6:.1f}" y="{y + 3.5:.1f}" font-size="10" '
            f'text-anchor="end" {_FONT}>{_fmt_tick(value)}</text>'
        )
    if ylabel:
        parts.append(
            f'<text x="14" y="{margin_top + plot_h / 2:.1f}" font-size="10" '
            f'{_FONT} transform="rotate(-90 14 {margin_top + plot_h / 2:.1f})" '
            f'text-anchor="middle">{escape(ylabel)}</text>'
        )

    group_w = plot_w / len(categories)
    bar_w = max(2.0, min(22.0, 0.8 * group_w / len(labels)))
    zero_y = y_of(max(0.0, bottom))
    for c, category in enumerate(categories):
        group_x = margin_left + c * group_w
        cluster_w = bar_w * len(labels)
        start_x = group_x + (group_w - cluster_w) / 2
        for s, label in enumerate(labels):
            value = series[label][c] if c < len(series[label]) else None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            y = y_of(float(value))
            bar_top, bar_h = (y, zero_y - y) if value >= 0 else (zero_y, y - zero_y)
            fill = HIGHLIGHT if label in highlight else color(s)
            parts.append(
                f'<rect x="{start_x + s * bar_w:.1f}" y="{bar_top:.1f}" '
                f'width="{bar_w - 1:.1f}" height="{max(bar_h, 0.5):.1f}" '
                f'fill="{fill}"><title>{escape(str(category))} / '
                f"{escape(str(label))}: {float(value):.4g}</title></rect>"
            )
        parts.append(
            f'<text x="{group_x + group_w / 2:.1f}" '
            f'y="{margin_top + plot_h + 14:.1f}" font-size="10" '
            f'text-anchor="middle" {_FONT}>{escape(str(category))}</text>'
        )
    parts.append(_axis(margin_left, margin_top, margin_left + plot_w, margin_top + plot_h))
    parts.append(
        _legend(
            labels,
            [HIGHLIGHT if l in highlight else color(i) for i, l in enumerate(labels)],
            margin_left + plot_w + 10,
            margin_top,
        )
    )
    parts.append("</svg>")
    return "".join(parts)


def line_chart(
    title: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    xlabel: str = "",
    ylabel: str = "",
    width: int = 680,
    height: int = 280,
    highlight: Optional[Sequence[str]] = None,
) -> str:
    """A multi-series line chart as one ``<svg>`` string.

    ``series`` maps a legend label to ``(x, y)`` points (sorted by the
    caller); markers are drawn at every point so single-point series
    stay visible.
    """
    points = [
        (float(x), float(y))
        for pts in series.values()
        for x, y in pts
    ]
    if not points:
        return empty_figure(title, "no data")
    highlight = set(highlight or ())
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min = min(min(ys), 0.0)
    y_max = _nice_ceiling(max(ys) * 1.05) if max(ys) > 0 else max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    margin_left, margin_right = 56.0, 120.0
    margin_top, margin_bottom = 34.0, 46.0
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    def sx(x: float) -> float:
        return margin_left + plot_w * (x - x_min) / x_span

    def sy(y: float) -> float:
        return margin_top + plot_h * (1 - (y - y_min) / y_span)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">',
        f'<text x="{margin_left}" y="18" font-size="13" font-weight="bold" '
        f"{_FONT}>{escape(title)}</text>",
    ]
    n_ticks = 4
    for t in range(n_ticks + 1):
        value = y_min + y_span * t / n_ticks
        y = sy(value)
        parts.append(
            f'<line x1="{margin_left:.1f}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w:.1f}" y2="{y:.1f}" '
            'stroke="#ddd" stroke-width="0.5"/>'
            f'<text x="{margin_left - 6:.1f}" y="{y + 3.5:.1f}" font-size="10" '
            f'text-anchor="end" {_FONT}>{_fmt_tick(value)}</text>'
        )
        x_value = x_min + x_span * t / n_ticks
        parts.append(
            f'<text x="{sx(x_value):.1f}" y="{margin_top + plot_h + 14:.1f}" '
            f'font-size="10" text-anchor="middle" {_FONT}>'
            f"{_fmt_tick(x_value)}</text>"
        )
    if ylabel:
        parts.append(
            f'<text x="14" y="{margin_top + plot_h / 2:.1f}" font-size="10" '
            f'{_FONT} transform="rotate(-90 14 {margin_top + plot_h / 2:.1f})" '
            f'text-anchor="middle">{escape(ylabel)}</text>'
        )
    if xlabel:
        parts.append(
            f'<text x="{margin_left + plot_w / 2:.1f}" y="{height - 8:.1f}" '
            f'font-size="10" text-anchor="middle" {_FONT}>{escape(xlabel)}</text>'
        )

    labels = list(series)
    for s, label in enumerate(labels):
        pts = sorted((float(x), float(y)) for x, y in series[label])
        if not pts:
            continue
        stroke = HIGHLIGHT if label in highlight else color(s)
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
            for i, (x, y) in enumerate(pts)
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{stroke}" stroke-width="1.5"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.2" '
                f'fill="{stroke}"><title>{escape(str(label))}: '
                f"({x:.4g}, {y:.4g})</title></circle>"
            )
    parts.append(_axis(margin_left, margin_top, margin_left + plot_w, margin_top + plot_h))
    parts.append(
        _legend(
            labels,
            [HIGHLIGHT if l in highlight else color(i) for i, l in enumerate(labels)],
            margin_left + plot_w + 10,
            margin_top,
        )
    )
    parts.append("</svg>")
    return "".join(parts)


def empty_figure(title: str, reason: str, width: int = 680, height: int = 80) -> str:
    """A placeholder SVG explaining why a figure could not be drawn."""
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">'
        f'<text x="12" y="24" font-size="13" font-weight="bold" {_FONT}>'
        f"{escape(title)}</text>"
        f'<text x="12" y="48" font-size="11" fill="#777" {_FONT}>'
        f"({escape(reason)})</text></svg>"
    )
