"""Trace-waterfall rendering: span trees as inline SVG.

Consumes the span records :class:`repro.obs.tracing.Tracer` exports
(``spans.jsonl``) and renders one trace's tree as a horizontal-bar
waterfall -- each span a bar offset/scaled by its start/duration
relative to the root -- in the same dependency-free inline-SVG style as
:mod:`repro.obs.reporting.figures`.  The report shows the waterfall of
the **p95-slowest** trace (nearest-rank over root durations): the
exemplar that explains tail latency, not the unlucky max.

Everything is deterministic for identical span sets: traces group in
first-seen order, children sort by ``(start, span_id)``, and the p95
selection is nearest-rank (no interpolation).
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.percentile import nearest_rank
from repro.obs.reporting import figures, page

__all__ = [
    "group_traces",
    "p95_trace_id",
    "slowest_exemplars",
    "trace_duration",
    "waterfall_svg",
    "waterfall_section",
]

#: Bars drawn per waterfall before clipping (deep trees stay legible).
MAX_WATERFALL_ROWS = 64

#: Exemplar-table rows (slowest first).
MAX_EXEMPLARS = 10

_FONT = 'font-family="system-ui, sans-serif"'

#: Bar fill per span status.
_STATUS_FILL = {"ok": figures.PALETTE[0], "served": figures.PALETTE[2]}
_ERROR_FILL = figures.HIGHLIGHT


def _fill_for(record: Dict[str, object], depth: int) -> str:
    status = str(record.get("status", "ok"))
    if status in ("error", "fault"):
        return _ERROR_FILL
    return figures.color(depth)


def group_traces(
    spans: Sequence[Dict[str, object]]
) -> Dict[str, List[Dict[str, object]]]:
    """Span records grouped by trace id, first-seen order, deduplicated.

    A retried cell re-opens its root span with the same derived ids;
    only the first record of each ``(span_id, start)`` pair is kept so
    waterfalls do not draw the same bar twice.
    """
    out: Dict[str, List[Dict[str, object]]] = {}
    seen = set()
    for record in spans:
        trace_id = str(record.get("trace_id", ""))
        if not trace_id:
            continue
        key = (trace_id, record.get("span_id"), record.get("start"))
        if key in seen:
            continue
        seen.add(key)
        out.setdefault(trace_id, []).append(record)
    return out


def _root_of(records: Sequence[Dict[str, object]]) -> Optional[Dict[str, object]]:
    ids = {r.get("span_id") for r in records}
    for record in records:
        parent = record.get("parent_id") or ""
        if not parent or parent not in ids:
            return record
    return None


def trace_duration(records: Sequence[Dict[str, object]]) -> float:
    """A trace's wall extent: its root's duration, else the span hull."""
    root = _root_of(records)
    if root is not None and root.get("end") is not None:
        return float(root["end"]) - float(root["start"])
    starts = [float(r["start"]) for r in records if r.get("start") is not None]
    ends = [float(r["end"]) for r in records if r.get("end") is not None]
    if not starts or not ends:
        return 0.0
    return max(ends) - min(starts)


def p95_trace_id(
    traces: Dict[str, List[Dict[str, object]]]
) -> Optional[str]:
    """The nearest-rank p95-slowest trace id (``None`` when empty)."""
    if not traces:
        return None
    ranked = sorted(
        traces, key=lambda tid: (trace_duration(traces[tid]), tid)
    )
    return nearest_rank(ranked, 0.95)


def slowest_exemplars(
    traces: Dict[str, List[Dict[str, object]]], limit: int = MAX_EXEMPLARS
) -> List[Dict[str, object]]:
    """The slowest traces, one summary row each, slowest first."""
    rows = []
    for trace_id, records in traces.items():
        root = _root_of(records)
        rows.append(
            {
                "trace_id": trace_id,
                "root": str(root.get("name", "?")) if root else "?",
                "status": str(root.get("status", "?")) if root else "?",
                "duration_s": round(trace_duration(records), 6),
                "spans": len(records),
                "token": (root.get("attrs") or {}).get("token") if root else None,
            }
        )
    rows.sort(key=lambda r: (-r["duration_s"], r["trace_id"]))
    return rows[:limit]


def _tree_rows(
    records: Sequence[Dict[str, object]],
) -> List[Tuple[int, Dict[str, object]]]:
    """Depth-first ``(depth, record)`` rows, children by (start, span_id)."""
    ids = {r.get("span_id") for r in records}
    children: Dict[str, List[Dict[str, object]]] = {}
    roots: List[Dict[str, object]] = []
    for record in records:
        parent = str(record.get("parent_id") or "")
        if parent and parent in ids:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)

    def order(rs: List[Dict[str, object]]) -> List[Dict[str, object]]:
        return sorted(
            rs, key=lambda r: (float(r.get("start") or 0.0), str(r.get("span_id")))
        )

    rows: List[Tuple[int, Dict[str, object]]] = []

    def visit(record: Dict[str, object], depth: int) -> None:
        rows.append((depth, record))
        for child in order(children.get(str(record.get("span_id")), [])):
            visit(child, depth + 1)

    for root in order(roots):
        visit(root, 0)
    return rows


def waterfall_svg(
    records: Sequence[Dict[str, object]],
    title: str,
    width: int = 680,
) -> str:
    """One trace's span tree as a horizontal-bar waterfall SVG."""
    rows = _tree_rows(records)
    if not rows:
        return figures.empty_figure(title, "no spans")
    clipped = len(rows) > MAX_WATERFALL_ROWS
    rows = rows[:MAX_WATERFALL_ROWS]
    t0 = min(float(r.get("start") or 0.0) for _, r in rows)
    t1 = max(
        float(r["end"]) for _, r in rows if r.get("end") is not None
    ) if any(r.get("end") is not None for _, r in rows) else t0
    span_s = max(t1 - t0, 1e-12)

    row_h, label_w = 18.0, 250.0
    margin_top, margin_bottom = 30.0, 20.0
    plot_w = width - label_w - 16.0
    height = int(margin_top + row_h * len(rows) + margin_bottom)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">',
        f'<text x="8" y="18" font-size="13" font-weight="bold" {_FONT}>'
        f"{escape(title)}</text>",
    ]
    for i, (depth, record) in enumerate(rows):
        y = margin_top + i * row_h
        name = str(record.get("name", "?"))
        status = str(record.get("status", "ok"))
        start = float(record.get("start") or t0)
        end = record.get("end")
        duration = (float(end) - start) if end is not None else 0.0
        x = label_w + plot_w * (start - t0) / span_s
        bar_w = max(plot_w * duration / span_s, 1.5)
        label = ("  " * depth) + name
        suffix = f" [{status}]" if status not in ("ok", "served") else ""
        parts.append(
            f'<text x="{8 + 10 * depth:.1f}" y="{y + 12:.1f}" font-size="10" '
            f"{_FONT}>{escape(name + suffix)}</text>"
            f'<rect x="{x:.1f}" y="{y + 3:.1f}" width="{bar_w:.1f}" '
            f'height="{row_h - 7:.1f}" fill="{_fill_for(record, depth)}">'
            f"<title>{escape(label)}: {duration * 1e3:.3f} ms "
            f"[{escape(status)}]</title></rect>"
        )
    parts.append(
        f'<text x="{label_w:.1f}" y="{height - 6:.1f}" font-size="10" '
        f'{_FONT} fill="#777">0 .. {span_s * 1e3:.3f} ms'
        + (f" (first {MAX_WATERFALL_ROWS} spans)" if clipped else "")
        + "</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def waterfall_section(
    spans: Sequence[Dict[str, object]],
) -> Tuple[str, Dict[str, object]]:
    """The report's trace section: ``(html, machine-readable summary)``.

    Renders the p95-slowest trace's waterfall plus a slowest-exemplar
    table; returns the facts (trace/span counts, the chosen exemplar)
    for the report manifest alongside the HTML.
    """
    traces = group_traces(spans)
    summary: Dict[str, object] = {
        "spans": sum(len(v) for v in traces.values()),
        "traces": len(traces),
    }
    if not traces:
        return (
            "<p class='meta'>no spans discovered (tracing off, or nothing "
            "opened a trace); waterfalls unavailable</p>",
            summary,
        )
    exemplar = p95_trace_id(traces)
    summary["p95_trace_id"] = exemplar
    summary["p95_duration_s"] = round(trace_duration(traces[exemplar]), 6)
    exemplars = slowest_exemplars(traces)
    summary["slowest"] = exemplars
    chunks = [
        page.figure_html(
            waterfall_svg(
                traces[exemplar],
                f"p95-slowest trace {exemplar} "
                f"({summary['p95_duration_s'] * 1e3:.3f} ms, "
                f"{len(traces[exemplar])} spans)",
            )
        ),
        "<h3>Slowest traces</h3>",
        page.html_table(
            ["trace", "root span", "status", "duration ms", "spans"],
            [
                [
                    e["trace_id"], e["root"], e["status"],
                    round(e["duration_s"] * 1e3, 3), e["spans"],
                ]
                for e in exemplars
            ],
        ),
    ]
    return "\n".join(chunks), summary
