"""Reporting: render the observability stack's artifacts for humans.

Every layer of the reproduction emits structured artifacts -- run
manifests, epoch JSONL time-series, ring-buffered trace events,
checkpoint journals, ``BENCH_<exp>.json`` trajectories -- and this
package is their read side:

* :mod:`repro.obs.reporting.discover` -- recursive artifact discovery
  under a results/cache root, tolerant of partial or corrupt trees;
* :mod:`repro.obs.reporting.frames` -- a dependency-free columnar frame
  over the discovered rows (``to_pandas()`` when pandas is installed);
* :mod:`repro.obs.reporting.figures` -- inline-SVG bar/line charts, no
  matplotlib and no network fetches;
* :mod:`repro.obs.reporting.html` -- a self-contained static HTML
  report per sweep (manifest, machine fingerprint, resolved config,
  KPIs, figures, epoch time-series, resilience events, cache economics,
  the Figure-13 energy model) plus a machine-readable
  ``report-manifest.json``;
* :mod:`repro.obs.reporting.dashboard` -- the cross-run KPI/perf
  dashboard over ``BENCH_*.json`` trajectories with regression
  highlighting against the ``repro compare`` tolerances.

CLI: ``python -m repro report html <root> [--out DIR] [--open]`` and
``python -m repro dashboard``.  ``sweep(report=True)`` (or
``REPRO_REPORT=1``) drops a report at sweep end.  See
``docs/reporting.md``.
"""

from __future__ import annotations

from repro.obs.reporting.dashboard import dashboard_data, generate_dashboard
from repro.obs.reporting.discover import (
    ArtifactTree,
    RunDir,
    TrajectoryFile,
    discover,
    read_jsonl_tolerant,
)
from repro.obs.reporting.frames import Frame
from repro.obs.reporting.html import ReportError, generate_report

__all__ = [
    "ArtifactTree",
    "Frame",
    "ReportError",
    "RunDir",
    "TrajectoryFile",
    "dashboard_data",
    "discover",
    "generate_dashboard",
    "generate_report",
    "read_jsonl_tolerant",
]
