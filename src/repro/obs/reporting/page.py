"""Shared static-HTML building blocks for reports and dashboards.

Everything emitted here is self-contained: one inline ``<style>`` block,
no ``<script>``, no external stylesheets, fonts, images or fetches of
any kind.  The only URLs in an emitted page are SVG XML namespaces,
which browsers never dereference.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Sequence

#: Inline stylesheet shared by every emitted page.
CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 72rem;
       color: #222; line-height: 1.45; padding: 0 1rem; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #4C72B0; padding-bottom: .3rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; color: #2c3e50; }
h3 { font-size: 1rem; margin-top: 1.2rem; color: #2c3e50; }
table { border-collapse: collapse; margin: .6rem 0; font-size: .85rem; }
th, td { border: 1px solid #ccc; padding: .25rem .55rem; text-align: left; }
th { background: #eef2f7; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.regressed td { background: #fdecea; }
tr.ok td.status, td.status-ok { color: #1e7d32; }
td.status-regressed { color: #c0392b; font-weight: bold; }
.problem { color: #a15c07; background: #fff8e6; padding: .4rem .6rem;
           border-left: 3px solid #e0a800; margin: .25rem 0; font-size: .85rem; }
.meta { color: #666; font-size: .85rem; }
.badge-ok { color: #1e7d32; font-weight: bold; }
.badge-regressed { color: #c0392b; font-weight: bold; }
figure { margin: 1rem 0; }
figcaption { font-size: .8rem; color: #666; }
code { background: #f4f4f4; padding: 0 .25rem; border-radius: 3px; }
details > summary { cursor: pointer; color: #4C72B0; }
"""


def html_page(title: str, body: str, generator: str = "repro.obs.reporting") -> str:
    """A complete standalone HTML document around ``body``."""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{escape(title)}</title>\n"
        f'<meta name="generator" content="{escape(generator)}">\n'
        f"<style>{CSS}</style>\n"
        f"</head><body>\n<h1>{escape(title)}</h1>\n{body}\n</body></html>\n"
    )


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def html_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    row_classes: Optional[Sequence[str]] = None,
    cell_classes: Optional[Dict[int, str]] = None,
) -> str:
    """An HTML table; numeric cells get the ``num`` class automatically.

    ``row_classes`` assigns one CSS class per row (empty string for
    none); ``cell_classes`` maps a column index to an extra class.
    """
    cell_classes = cell_classes or {}
    parts = ["<table><thead><tr>"]
    parts.extend(f"<th>{escape(str(h))}</th>" for h in headers)
    parts.append("</tr></thead><tbody>")
    for r, row in enumerate(rows):
        cls = row_classes[r] if row_classes and r < len(row_classes) else ""
        parts.append(f'<tr class="{escape(cls)}">' if cls else "<tr>")
        for c, cell in enumerate(row):
            classes = []
            if isinstance(cell, (int, float)) and not isinstance(cell, bool):
                classes.append("num")
            if c in cell_classes:
                classes.append(cell_classes[c])
            attr = f' class="{" ".join(classes)}"' if classes else ""
            parts.append(f"<td{attr}>{escape(_format_cell(cell))}</td>")
        parts.append("</tr>")
    parts.append("</tbody></table>")
    return "".join(parts)


def section(title: str, *chunks: str, anchor: Optional[str] = None) -> str:
    """An ``<h2>`` section wrapping pre-rendered HTML chunks."""
    ident = f' id="{escape(anchor)}"' if anchor else ""
    return f"<h2{ident}>{escape(title)}</h2>\n" + "\n".join(c for c in chunks if c)


def problems_html(problems: Sequence[str]) -> str:
    """Degradation notes as visually distinct callouts ('' when none)."""
    if not problems:
        return ""
    return "\n".join(f'<p class="problem">{escape(p)}</p>' for p in problems)


def figure_html(svg: str, caption: str = "") -> str:
    cap = f"<figcaption>{escape(caption)}</figcaption>" if caption else ""
    return f"<figure>{svg}{cap}</figure>"


def kv_table(data: Dict[str, object]) -> str:
    """A two-column key/value table (sorted keys) for dict-shaped facts."""
    return html_table(
        ["key", "value"], [[k, data[k]] for k in sorted(data)]
    )


def self_containment_violations(html: str) -> List[str]:
    """Markup constructs that would make a page fetch external resources.

    The report tests assert this returns ``[]`` for every emitted page;
    keeping the checker next to the builders keeps the invariant honest.
    """
    violations = []
    lowered = html.lower()
    for needle in ("<script", "<link", "<iframe", "@import", "url(", "src=\"http"):
        if needle in lowered:
            violations.append(needle)
    return violations
